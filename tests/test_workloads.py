"""Benchmark-workload builder tests.

Each builder's MiniC source must compute exactly what its Python
reference computes, in every execution mode.
"""

import pytest

from repro import compile_program
from repro.bench.workloads import (
    PAPER_EXPRESSION, Workload, all_workloads, calculator_workload,
    compile_rpn, event_dispatcher_workload, make_guards, make_records,
    make_sparse_matrix, record_sorter_workload, rpn_reference,
    scalar_matrix_workload, sparse_matvec_workload,
)

from helpers import interp_run


def check_workload(workload: Workload) -> None:
    value, _ = interp_run(workload.source)
    assert value == workload.expected, (
        "%s: interpreter %r != reference %r"
        % (workload.name, value, workload.expected))
    dynamic = compile_program(workload.source, mode="dynamic").run()
    assert dynamic.value == workload.expected


# -- RPN calculator -------------------------------------------------------


def test_rpn_reference_matches_expression():
    for x in (-2, 0, 1, 5):
        for y in (-1, 0, 3):
            expected = (x * y - 3 * y * y - x * x
                        + (x + 5) * (y - x) + x + y - 1)
            assert rpn_reference(PAPER_EXPRESSION, x, y) == expected


def test_compile_rpn_emits_pairs():
    text = compile_rpn([(1, 0), (0, 42)])
    assert "prog[0] = 1;" in text
    assert "prog[3] = 42;" in text


def test_calculator_workload_small():
    check_workload(calculator_workload(xs=4, ys=4))


def test_calculator_executions_metadata():
    workload = calculator_workload(xs=3, ys=5)
    assert workload.executions == 15
    assert workload.unit == "interpretations"


# -- scalar-matrix ------------------------------------------------------------


def test_scalar_matrix_workload_small():
    check_workload(scalar_matrix_workload(rows=4, cols=6, scalars=5))


def test_scalar_matrix_units():
    workload = scalar_matrix_workload(rows=4, cols=6, scalars=5)
    assert workload.units_per_execution == 24.0
    assert workload.executions == 5


# -- sparse ---------------------------------------------------------------------


def test_make_sparse_matrix_structure():
    rowptr, colidx, values = make_sparse_matrix(10, 3, seed=5)
    assert len(rowptr) == 11
    assert rowptr[0] == 0 and rowptr[-1] == 30
    assert len(colidx) == len(values) == 30
    for r in range(10):
        row_cols = colidx[rowptr[r]:rowptr[r + 1]]
        assert row_cols == sorted(row_cols)
        assert len(set(row_cols)) == 3
        assert all(0 <= c < 10 for c in row_cols)


def test_make_sparse_matrix_deterministic():
    assert make_sparse_matrix(8, 2, seed=9) == make_sparse_matrix(8, 2,
                                                                  seed=9)
    assert make_sparse_matrix(8, 2, seed=9) != make_sparse_matrix(8, 2,
                                                                  seed=10)


def test_sparse_workload_small():
    check_workload(sparse_matvec_workload(size=8, per_row=3, reps=3))


# -- dispatcher -------------------------------------------------------------------


def test_make_guards_handlers_are_distinct_bits():
    guards = make_guards(6)
    handlers = [g[2] for g in guards]
    assert handlers == [1, 2, 4, 8, 16, 32]


def test_dispatcher_workload_small():
    check_workload(event_dispatcher_workload(nguards=5, events=25))


# -- sorter -----------------------------------------------------------------------


def test_make_records_shape():
    records = make_records(7, fields=3, seed=1)
    assert len(records) == 7
    assert all(len(r) == 3 for r in records)
    assert all(-25 <= v < 25 for r in records for v in r)


def test_sorter_one_key_small():
    check_workload(record_sorter_workload(count=20, keys=[(0, 0)]))


def test_sorter_descending_key():
    check_workload(record_sorter_workload(count=20, keys=[(1, 1)]))


def test_sorter_magnitude_key():
    check_workload(record_sorter_workload(count=20, keys=[(0, 2)]))


def test_sorter_multi_key():
    check_workload(record_sorter_workload(
        count=20, keys=[(3, 1), (1, 0), (0, 2)]))


def test_sorter_actually_sorts():
    workload = record_sorter_workload(count=15, keys=[(0, 0)])
    # patch main to print the first field of each sorted record
    source = workload.source.replace(
        "print_int(nCompares);",
        "for (i = 0; i < n; i++) print_int(recs[i][0]);")
    _, output = interp_run(source)
    fields = output[:15]
    assert fields == sorted(fields)


# -- the full set ------------------------------------------------------------------


def test_all_workloads_cover_the_paper_rows():
    workloads = all_workloads()
    names = [w.name for w in workloads]
    assert names.count("record sorter") == 2
    assert names.count("sparse matrix-vector multiply") == 2
    assert "calculator" in names
    assert "scalar-matrix multiply" in names
    assert "event dispatcher" in names
    assert len(workloads) == 7


def test_workload_scaling():
    small = all_workloads(scale=0.5)
    default = all_workloads(scale=1.0)
    assert len(small) == len(default)
    assert small[0].executions < default[0].executions
