"""Additional dynamic-compilation end-to-end scenarios."""

import pytest

from repro import compile_program

from helpers import run_all_ways

LINKED_LIST = """
struct Node { int weight; Node *next; };

int weigh(Node *lst, int *xs) {
    dynamicRegion (lst) {
        int t = 0;
        int i = 0;
        Node *p;
        unrolled for (p = lst; p != 0; p = p->next) {
            t += p->weight * xs dynamic[ i ];
            i = i + 1;
        }
        return t;
    }
}

int main() {
    Node *head = 0;
    int w;
    for (w = 5; w > 0; w--) {
        Node *n = (Node*) alloc(sizeof(Node));
        n->weight = w * w;
        n->next = head;
        head = n;
    }
    int xs[5];
    int i;
    for (i = 0; i < 5; i++) xs[i] = i - 2;
    int total = 0;
    for (i = 0; i < 25; i++) total += weigh(head, xs);
    return total;
}
"""


def test_pointer_chasing_unrolled_while():
    # The paper's linked-list unrolling example (section 3.1 figure):
    # p walks run-time-constant next pointers; p != NULL is constant.
    run_all_ways(LINKED_LIST)


def test_linked_list_unrolls_per_node():
    program = compile_program(LINKED_LIST, mode="dynamic")
    result = program.run()
    (report,) = result.stitch_reports
    # 5 nodes + the final null check
    assert report.loop_iterations == {1: 6}


def test_region_calling_user_function():
    run_all_ways("""
        int helper(int a, int b) { return a * 2 + b; }
        int f(int c, int v) {
            dynamicRegion (c) {
                int d = c + 1;
                return helper(v, d);
            }
        }
        int main() { return f(5, 3) + f(5, 4); }
    """)


def test_region_calling_pure_builtin_with_variable():
    run_all_ways("""
        int f(int c, int v) {
            dynamicRegion (c) {
                int lo = imin(c, 10);
                return imax(v, lo);
            }
        }
        int main() { return f(25, 3) * 100 + f(25, 99); }
    """)


def test_float_unrolled_region():
    run_all_ways("""
        float poly(float *coeffs, int n, float x) {
            dynamicRegion (coeffs, n) {
                float acc = 0.0;
                int i;
                unrolled for (i = 0; i < n; i++) {
                    acc = acc * x + coeffs[i];
                }
                return acc;
            }
        }
        int main() {
            float cs[4];
            cs[0] = 2.0; cs[1] = 0.0; cs[2] = 1.5; cs[3] = 7.0;
            float t = 0.0;
            int i;
            for (i = 0; i < 8; i++) t = t + poly(cs, 4, (float) i);
            print_float(t);
            return (int) t;
        }
    """)


def test_region_with_goto_inside():
    run_all_ways("""
        int f(int c, int v) {
            dynamicRegion (c) {
                int r = 0;
                if (c > 10) goto big;
                r = v + c;
                goto done;
            big:
                r = v * c;
            done:
                return r;
            }
        }
        int main() { return f(20, 3) * 1000 + f(20, 4); }
    """)


def test_region_switch_fallthrough_on_constant():
    run_all_ways("""
        int f(int mode, int v) {
            dynamicRegion (mode) {
                int r = 0;
                switch (mode) {
                    case 1: r += 100;      // falls through
                    case 2: r += 10; break;
                    default: r += 1;
                }
                return r + v;
            }
        }
        int main() { return f(1, 5); }
    """)


def test_unsigned_arithmetic_region():
    run_all_ways("""
        int f(uint mask, uint v) {
            dynamicRegion (mask) {
                uint folded = mask | (mask >> 1);
                return (int)((v & folded) % (mask + 1));
            }
        }
        int main() { return f(7, 100) * 100 + f(7, 9); }
    """)


def test_region_writing_through_constant_pointer():
    # Stores through run-time constant pointers stay in the template
    # (stores are never "constant"), and work.
    run_all_ways("""
        int counterStore[1];
        int bump(int *slot, int v) {
            dynamicRegion (slot) {
                *slot = dynamic* slot + v;
                return dynamic* slot;
            }
        }
        int main() {
            counterStore[0] = 5;
            int a = bump(counterStore, 2);   // 7
            int b = bump(counterStore, 3);   // 10
            return a * 100 + b;
        }
    """)


def test_many_keys_cache_growth():
    source = """
    int f(int k, int v) {
        dynamicRegion key(k) (k) { return v * k + 1; }
    }
    int main() {
        int t = 0; int k; int r;
        for (r = 0; r < 3; r++)
            for (k = 0; k < 12; k++)
                t += f(k, r);
        return t;
    }
    """
    run_all_ways(source)
    result = compile_program(source, mode="dynamic").run()
    assert len(result.stitch_reports) == 12  # once per key, not per round


def test_two_functions_with_regions():
    run_all_ways("""
        int scaleA(int c, int v) {
            dynamicRegion (c) { return v * c; }
        }
        int scaleB(int c, int v) {
            dynamicRegion (c) { return v * c * 2; }
        }
        int main() {
            return scaleA(3, 5) * 1000 + scaleB(3, 5);
        }
    """)


def test_deep_expression_of_constants():
    run_all_ways("""
        int f(int a, int b, int v) {
            dynamicRegion (a, b) {
                int c1 = a * b + 7;
                int c2 = c1 * c1 - a;
                int c3 = imax(c2, b) + imin(a, b);
                int c4 = (c3 << 2) ^ (c1 & b);
                return c4 + v;
            }
        }
        int main() { return f(3, 11, 1) + f(3, 11, 2); }
    """)


def test_empty_region_body():
    run_all_ways("""
        int f(int c) {
            dynamicRegion (c) { }
            return c;
        }
        int main() { return f(9); }
    """)


def test_zero_iteration_unrolled_loop():
    source = """
    int f(int n, int *xs) {
        dynamicRegion (n) {
            int t = 100;
            int i;
            unrolled for (i = 0; i < n; i++) t += xs dynamic[ i ];
            return t;
        }
    }
    int main() { int xs[1]; xs[0] = 5; return f(0, xs); }
    """
    run_all_ways(source)
    result = compile_program(source, mode="dynamic").run()
    assert result.value == 100
    (report,) = result.stitch_reports
    assert report.loop_iterations == {1: 1}  # only the false check
