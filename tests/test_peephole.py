"""Value-based peephole tests: every rewrite must compute the same
result as the original instruction, verified by execution on the VM."""

import pytest

from repro.dynamic.peephole import reduce_alu
from repro.machine.isa import MInstr, RV, ZERO
from repro.machine.vm import VM
from repro.ir.semantics import eval_binop
from repro.machine.isa import ALU_OPS


def evaluate(instrs, input_value, in_reg=1, out_reg=RV):
    vm = VM(memory_words=1 << 16)
    code = [i.copy() for i in instrs]
    code.append(MInstr("ret"))
    entry = vm.install_code(code)
    vm.run(entry, [(in_reg, input_value)])
    return int(vm.regs[out_reg])


def check_rewrite(op, constant, inputs, expect_event=None):
    instr = MInstr(op, rd=RV, ra=1, imm=0)
    rewrite = reduce_alu(instr, constant)
    assert rewrite is not None, "expected a rewrite for %s by %d" % (
        op, constant)
    replacement, event = rewrite
    if expect_event:
        assert event == expect_event
    for value in inputs:
        got = evaluate(replacement, value)
        want = eval_binop(ALU_OPS[op], value, constant)
        assert got == want, (
            "%s %d by %d: got %d want %d" % (op, value, constant, got, want))


INPUTS = [0, 1, 2, 3, 5, 7, 100, 12345, -1, -17, (1 << 40) + 9]


def test_mul_by_zero():
    check_rewrite("mulq", 0, INPUTS, "mul_to_shift")


def test_mul_by_one():
    check_rewrite("mulq", 1, INPUTS, "mul_to_shift")


def test_mul_by_minus_one():
    check_rewrite("mulq", -1, INPUTS, "mul_to_shift")


@pytest.mark.parametrize("constant", [2, 4, 8, 32, 1024, 1 << 20])
def test_mul_by_power_of_two(constant):
    check_rewrite("mulq", constant, INPUTS, "mul_to_shift")


@pytest.mark.parametrize("constant", [3, 5, 6, 10, 12, 24, 40, 96, 516])
def test_mul_by_two_bit_constants(constant):
    check_rewrite("mulq", constant, INPUTS, "mul_to_shift_add")


@pytest.mark.parametrize("constant", [7, 15, 31, 63, 127])
def test_mul_by_power_minus_one(constant):
    check_rewrite("mulq", constant, INPUTS, "mul_to_shift_sub")


def test_mul_general_constant_not_rewritten():
    assert reduce_alu(MInstr("mulq", rd=RV, ra=1, imm=0), 37) is None


def test_mul_rewrite_with_aliased_registers():
    # rd == ra must still be correct (t = t * 3).
    instr = MInstr("mulq", rd=1, ra=1, imm=0)
    replacement, _ = reduce_alu(instr, 3)
    for value in INPUTS:
        got = evaluate(replacement, value, in_reg=1, out_reg=1)
        assert got == eval_binop("mul", value, 3)


@pytest.mark.parametrize("constant", [1, 2, 8, 512, 1 << 14])
def test_udiv_by_power_of_two(constant):
    check_rewrite("udivq", constant, INPUTS)


def test_udiv_by_non_power_not_rewritten():
    assert reduce_alu(MInstr("udivq", rd=RV, ra=1, imm=0), 6) is None


@pytest.mark.parametrize("constant", [1, 2, 16, 4096])
def test_umod_by_power_of_two(constant):
    check_rewrite("uremq", constant, INPUTS)


def test_umod_by_huge_power_not_rewritten():
    # mask would not fit the immediate field
    assert reduce_alu(MInstr("uremq", rd=RV, ra=1, imm=0), 1 << 40) is None


def test_signed_div_never_rewritten():
    # sra is not signed division for negative values; the paper only
    # strength-reduces the unsigned forms.
    assert reduce_alu(MInstr("divq", rd=RV, ra=1, imm=0), 8) is None


def test_add_zero_identity():
    check_rewrite("addq", 0, INPUTS, "identity")
    check_rewrite("subq", 0, INPUTS, "identity")


def test_or_xor_zero_identity():
    check_rewrite("bis", 0, INPUTS, "identity")
    check_rewrite("xor", 0, INPUTS, "identity")


def test_and_zero():
    check_rewrite("and", 0, INPUTS, "identity")


def test_shift_zero_identity():
    check_rewrite("sll", 0, INPUTS, "identity")
    check_rewrite("srl", 0, INPUTS, "identity")


def test_compare_not_rewritten():
    assert reduce_alu(MInstr("cmpeq", rd=RV, ra=1, imm=0), 5) is None
