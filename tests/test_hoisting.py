"""Set-up hoisting and extended-loop-scope tests.

Covers the splitter's handling of run-time constants that live on
paths set-up code cannot follow: speculatable defs hoist to the
nearest reachable dominator; iteration-scoped constants consumed on
loop-exit paths force per-iteration stitching of those exit blocks.
"""

import pytest

from repro import compile_program
from repro.dynamic.splitter import split_module
from repro.frontend.errors import AnnotationError
from repro.ir.ssa import to_ssa
from repro.opt.pipeline import optimize

from helpers import build, run_all_ways


def split(source):
    module = build(source)
    for func in module.functions.values():
        to_ssa(func)
        optimize(func)
    return module, split_module(module)


def test_constant_under_nonconstant_branch_hoisted():
    # d = c * 3 executes only when v > 0, but it is speculatable, so
    # set-up code computes it unconditionally.
    run_all_ways("""
        int f(int c, int v) {
            dynamicRegion (c) {
                if (v > 0) {
                    int d = c * 3;
                    return d + v;
                }
                return v;
            }
        }
        int main() { return f(7, 5) * 1000 + f(7, -1) + 10; }
    """)


def test_iteration_constant_on_exit_path():
    # The early-return value (0 - dir) is iteration scoped and consumed
    # outside the loop body: the stitcher must emit the exit block once
    # per iteration (extended body).
    run_all_ways("""
        int pick(int *dirs, int n, int *xs) {
            dynamicRegion (dirs, n) {
                int i;
                unrolled for (i = 0; i < n; i++) {
                    int dir = dirs[i];
                    if (xs dynamic[ i ] > 0) return 0 - dir;
                }
                return 99;
            }
        }
        int main() {
            int dirs[3]; int xs[3];
            dirs[0] = 5; dirs[1] = 7; dirs[2] = 9;
            xs[0] = 0; xs[1] = 1; xs[2] = 0;
            int a = pick(dirs, 3, xs);     // hits i=1 -> -7
            xs[1] = 0;
            int b = pick(dirs, 3, xs);     // no hit -> 99
            xs[0] = 2;
            int c = pick(dirs, 3, xs);     // hits i=0 -> -5
            return a * 10000 + b * 10 + c + 500;
        }
    """)


def test_extended_body_recorded():
    module, plans = split("""
        int pick(int *dirs, int n, int *xs) {
            dynamicRegion (dirs, n) {
                int i;
                unrolled for (i = 0; i < n; i++) {
                    int dir = dirs[i];
                    if (xs dynamic[ i ] > 0) return 0 - dir;
                }
                return 99;
            }
        }
    """)
    (plan,) = plans
    (loop,) = plan.table.loops.values()
    assert loop.extended_body  # the early-return block


def test_exit_blocks_stitched_per_iteration():
    source = """
    int pick(int *dirs, int n, int *xs) {
        dynamicRegion (dirs, n) {
            int i;
            unrolled for (i = 0; i < n; i++) {
                int dir = dirs[i];
                if (xs dynamic[ i ] > 0) return 0 - dir;
            }
            return 99;
        }
    }
    int main() {
        int dirs[4]; int xs[4]; int i;
        for (i = 0; i < 4; i++) { dirs[i] = i + 1; xs[i] = 0; }
        return pick(dirs, 4, xs);
    }
    """
    program = compile_program(source, mode="dynamic")
    result = program.run()
    assert result.value == 99
    (report,) = result.stitch_reports
    # 4 iterations of body, each with its own copy of the return block.
    template = program.template_size("pick", 1)
    assert report.instrs_emitted > template  # duplication happened


def test_hoisted_constant_in_loop_context():
    # A per-iteration constant under a non-constant branch inside the
    # loop hoists to the loop body, staying iteration scoped.
    run_all_ways("""
        int f(int *ws, int n, int *xs) {
            dynamicRegion (ws, n) {
                int t = 0; int i;
                unrolled for (i = 0; i < n; i++) {
                    if (xs dynamic[ i ] != 0) {
                        int scaled = ws[i] * 2;
                        t += scaled;
                    }
                }
                return t;
            }
        }
        int main() {
            int ws[3]; int xs[3];
            ws[0] = 10; ws[1] = 20; ws[2] = 30;
            xs[0] = 1; xs[1] = 0; xs[2] = 1;
            return f(ws, 3, xs);
        }
    """)


def test_cut_follows_constants():
    # The non-constant branch cut follows the side holding the
    # constant merge, so this shape needs no hoisting at all.
    run_all_ways("""
        int f(int c, int v) {
            dynamicRegion (c) {
                int d = 0;
                if (v > 0) {
                    if (c > 10) d = c * 2; else d = c * 3;
                    return d + v;
                }
                return v;
            }
        }
        int main() { return f(20, 3) * 100 + f(20, -1) + 5; }
    """)


def test_constant_phi_unreachable_by_setup_rejected():
    # Both sides of a non-constant branch contain constant merges whose
    # results templates need; set-up code can only follow one side, and
    # a constant *merge* cannot be speculated by hoisting.
    module = build("""
        int f(int c, int v) {
            dynamicRegion (c) {
                int d = 0;
                int e = 0;
                if (v > 0) {
                    if (c > 10) d = c * 2; else d = c * 3;
                    return d + v;
                }
                if (c > 5) e = c * 4; else e = c * 5;
                return e + v;
            }
        }
    """)
    for func in module.functions.values():
        to_ssa(func)
        optimize(func)
    with pytest.raises(AnnotationError):
        split_module(module)
