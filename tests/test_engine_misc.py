"""Engine / Program API tests and accounting invariants."""

import pytest

from repro import (
    FUSED_STITCHER, OptOptions, StitcherCosts, compile_program,
)
from repro.machine.vm import VMError

SIMPLE = """
int f(int c, int v) {
    dynamicRegion (c) { return c * 2 + v; }
}
int main() { return f(4, 3); }
"""


def test_invalid_mode_rejected():
    with pytest.raises(ValueError):
        compile_program(SIMPLE, mode="jit")


def test_cycle_accounting_sums_exactly():
    for mode in ("static", "dynamic"):
        result = compile_program(SIMPLE, mode=mode).run()
        assert sum(result.cycles_by_owner.values()) == result.cycles


def test_owner_prefix_helper():
    result = compile_program(SIMPLE, mode="dynamic").run()
    assert result.owner_cycles("fn:") > 0
    assert result.owner_cycles("stitch") > 0
    assert result.owner_cycles("nonexistent:") == 0


def test_region_cycles_static_vs_dynamic_keys():
    static = compile_program(SIMPLE, mode="static").run()
    dynamic = compile_program(SIMPLE, mode="dynamic").run()
    assert set(static.region_cycles("f", 1, "static")) == {"region"}
    assert set(dynamic.region_cycles("f", 1, "dynamic")) == {
        "stitched", "setup", "stitcher", "dispatch"}


def test_template_size_lookup():
    program = compile_program(SIMPLE, mode="dynamic")
    assert program.template_size("f", 1) > 0
    with pytest.raises(KeyError):
        program.template_size("f", 99)


def test_fresh_vm_per_run():
    program = compile_program(SIMPLE, mode="dynamic")
    first = program.run()
    second = program.run()
    # identical cycles: each run starts from a cold code cache
    assert first.cycles == second.cycles
    assert len(first.stitch_reports) == len(second.stitch_reports) == 1


def test_max_cycles_enforced():
    source = "int main() { while (1) { } return 0; }"
    program = compile_program(source, mode="static")
    with pytest.raises(VMError):
        program.run(max_cycles=10_000)


def test_unknown_entry_function():
    program = compile_program(SIMPLE, mode="static")
    with pytest.raises(VMError):
        program.run("nope")


def test_opt_options_plumbed():
    unopt = compile_program(SIMPLE, mode="static",
                            opt_options=OptOptions(
                                fold=False, copyprop=False, cse=False,
                                algebraic=False, dce=False, merge=False))
    opt = compile_program(SIMPLE, mode="static")
    r1 = unopt.run()
    r2 = opt.run()
    assert r1.value == r2.value == 11
    assert r1.cycles > r2.cycles  # optimization actually saved cycles


def test_stitcher_costs_plumbed():
    expensive = StitcherCosts().scaled(10.0)
    cheap = compile_program(SIMPLE, mode="dynamic",
                            stitcher_costs=FUSED_STITCHER).run()
    dear = compile_program(SIMPLE, mode="dynamic",
                           stitcher_costs=expensive).run()
    assert dear.stitch_reports[0].cycles > cheap.stitch_reports[0].cycles
    assert dear.value == cheap.value


def test_opt_stats_available():
    program = compile_program(SIMPLE, mode="static")
    assert "f" in program.opt_stats
    assert "main" in program.opt_stats


def test_static_mode_attributes_region_cycles():
    result = compile_program(SIMPLE, mode="static").run()
    assert result.region_cycles("f", 1, "static")["region"] > 0


def test_output_capture_order():
    source = """
    int main() {
        print_int(1);
        print_float(2.5);
        print_int(3);
        return 0;
    }
    """
    result = compile_program(source, mode="static").run()
    assert result.output == [1, 2.5, 3]


def test_float_entry_result():
    source = "float half(float x) { return x / 2.0; }\nint main() { return 0; }"
    program = compile_program(source, mode="static")
    result = program.run("half", [])  # float args unsupported via CLI path
    # value register defaults; just check float_value is exposed
    assert isinstance(result.float_value, float)


def test_memory_words_option():
    program = compile_program(SIMPLE, mode="static")
    result = program.run(memory_words=1 << 18)
    assert result.value == 11
