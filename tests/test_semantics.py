"""Operator semantics unit tests (shared by interpreter, folder, VM)."""

import pytest

from repro.ir.semantics import EvalTrap, eval_binop, eval_unop
from repro.ir.values import to_unsigned, wrap_int


# -- wrapping -------------------------------------------------------------


def test_wrap_int_identity_in_range():
    assert wrap_int(42) == 42
    assert wrap_int(-42) == -42


def test_wrap_int_overflow():
    assert wrap_int(1 << 63) == -(1 << 63)
    assert wrap_int((1 << 63) - 1) == (1 << 63) - 1
    assert wrap_int(1 << 64) == 0


def test_to_unsigned():
    assert to_unsigned(-1) == (1 << 64) - 1
    assert to_unsigned(5) == 5


# -- integer arithmetic ------------------------------------------------------


def test_add_wraps():
    assert eval_binop("add", (1 << 63) - 1, 1) == -(1 << 63)


def test_sub_wraps():
    assert eval_binop("sub", -(1 << 63), 1) == (1 << 63) - 1


def test_mul_wraps():
    assert eval_binop("mul", 1 << 62, 4) == 0


def test_signed_division_truncates_toward_zero():
    assert eval_binop("div", 7, 2) == 3
    assert eval_binop("div", -7, 2) == -3
    assert eval_binop("div", 7, -2) == -3
    assert eval_binop("div", -7, -2) == 3


def test_signed_modulo_sign_of_dividend():
    assert eval_binop("mod", 7, 3) == 1
    assert eval_binop("mod", -7, 3) == -1
    assert eval_binop("mod", 7, -3) == 1


def test_unsigned_division():
    assert eval_binop("udiv", -1, 2) == (1 << 63) - 1
    assert eval_binop("umod", -1, 10) == ((1 << 64) - 1) % 10


def test_division_by_zero_traps():
    with pytest.raises(EvalTrap):
        eval_binop("div", 1, 0)
    with pytest.raises(EvalTrap):
        eval_binop("udiv", 1, 0)
    with pytest.raises(EvalTrap):
        eval_binop("mod", 1, 0)
    with pytest.raises(EvalTrap):
        eval_binop("umod", 1, 0)


def test_float_division_by_zero_traps():
    with pytest.raises(EvalTrap):
        eval_binop("fdiv", 1.0, 0.0)


# -- shifts --------------------------------------------------------------------


def test_shift_left():
    assert eval_binop("shl", 1, 4) == 16


def test_shift_count_masked():
    assert eval_binop("shl", 1, 64) == 1
    assert eval_binop("shl", 1, 65) == 2


def test_arithmetic_shift_right():
    assert eval_binop("ashr", -8, 1) == -4


def test_logical_shift_right():
    assert eval_binop("lshr", -8, 1) == ((1 << 64) - 8) >> 1


# -- comparisons ----------------------------------------------------------------


def test_signed_vs_unsigned_compare():
    assert eval_binop("lt", -1, 0) == 1
    assert eval_binop("ult", -1, 0) == 0  # -1 is huge unsigned


def test_comparison_results_are_ints():
    assert eval_binop("eq", 3, 3) == 1
    assert eval_binop("ne", 3, 3) == 0
    assert eval_binop("feq", 1.5, 1.5) == 1
    assert eval_binop("flt", 1.0, 2.0) == 1


# -- bitwise --------------------------------------------------------------------


def test_bitwise():
    assert eval_binop("and", 0b1100, 0b1010) == 0b1000
    assert eval_binop("or", 0b1100, 0b1010) == 0b1110
    assert eval_binop("xor", 0b1100, 0b1010) == 0b0110


# -- unary ----------------------------------------------------------------------


def test_neg_wraps():
    assert eval_unop("neg", -(1 << 63)) == -(1 << 63)


def test_logical_not():
    assert eval_unop("not", 0) == 1
    assert eval_unop("not", 17) == 0


def test_bitwise_not():
    assert eval_unop("bnot", 0) == -1


def test_conversions():
    assert eval_unop("itof", 3) == 3.0
    assert eval_unop("ftoi", 3.9) == 3
    assert eval_unop("ftoi", -3.9) == -3  # truncation toward zero


def test_float_arithmetic():
    assert eval_binop("fadd", 1.5, 2.5) == 4.0
    assert eval_binop("fmul", 2.0, 3.0) == 6.0
    assert eval_binop("fdiv", 7.0, 2.0) == 3.5


def test_unknown_ops_raise():
    with pytest.raises(ValueError):
        eval_binop("frobnicate", 1, 2)
    with pytest.raises(ValueError):
        eval_unop("frobnicate", 1)
