"""Stitched code is shared across activations of its function.

The paper's templates are optimized "in the context of their enclosing
procedure"; the compiled region code is entered from *any* activation.
These tests pin the consequences: frame-relative values must be read
through the current frame (never baked in), and recursive functions
can re-enter their own stitched code at different depths.
"""

from repro import compile_program

from helpers import run_all_ways

RECURSIVE_REGION = """
int walk(int c, int depth) {
    int local[2];
    local[0] = depth * 10;
    local[1] = depth;
    int r = 0;
    dynamicRegion (c) {
        r = local[0] * c + local[1];
    }
    if (depth == 0) return r;
    return r + walk(c, depth - 1);
}

int main() { return walk(3, 4); }
"""


def reference(c, depth):
    total = 0
    for d in range(depth, -1, -1):
        total += (d * 10) * c + d
    return total


def test_region_inside_recursive_function():
    run_all_ways(RECURSIVE_REGION)
    program = compile_program(RECURSIVE_REGION, mode="dynamic")
    result = program.run()
    assert result.value == reference(3, 4)
    # stitched once, entered five times at five different frames
    assert len(result.stitch_reports) == 1


def test_region_reads_current_frame_not_first_frame():
    # If stitched code captured the *first* activation's frame address,
    # the second call (different local values) would see stale data.
    source = """
    int f(int c, int seed) {
        int buffer[1];
        buffer[0] = seed;
        int r = 0;
        dynamicRegion (c) {
            r = buffer[0] + c;
        }
        return r;
    }
    int main() { return f(100, 1) * 1000 + f(100, 7); }
    """
    result = compile_program(source, mode="dynamic").run()
    assert result.value == 101 * 1000 + 107


def test_mutual_recursion_through_region():
    run_all_ways("""
        int pong(int c, int n);
        int ping(int c, int n) {
            int r = 0;
            dynamicRegion (c) { r = c * 2; }
            if (n == 0) return r;
            return r + pong(c, n - 1);
        }
        int pong(int c, int n) {
            return ping(c, n) + 1;
        }
        int main() { return ping(5, 3); }
    """)


def test_region_function_called_from_stitched_code():
    # A region's template calls a function that itself has a region.
    run_all_ways("""
        int inner(int k, int v) {
            dynamicRegion (k) { return v * k; }
        }
        int outer(int c, int v) {
            dynamicRegion (c) {
                int base = c + 1;
                return inner(4, v) + base;
            }
        }
        int main() { return outer(9, 2) + outer(9, 3); }
    """)


def test_negative_and_zero_keys():
    source = """
    int f(int k, int v) {
        dynamicRegion key(k) (k) { return v * k + 1; }
    }
    int main() {
        return f(0 - 3, 2) * 10000 + f(0, 5) * 100 + f(3, 2);
    }
    """
    run_all_ways(source)
    result = compile_program(source, mode="dynamic").run()
    assert len(result.stitch_reports) == 3
    assert sorted(r.key for r in result.stitch_reports) == \
        [(-3,), (0,), (3,)]
