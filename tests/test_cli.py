"""Command-line interface tests (python -m repro)."""

import subprocess
import sys

import pytest

PROGRAM = """
int f(int c, int v) {
    dynamicRegion (c) {
        return c * 6 + v;
    }
}
int main(int x) {
    int t = 0; int i;
    for (i = 0; i < 4; i++) t += f(7, x + i);
    print_int(t);
    return t;
}
"""


@pytest.fixture()
def source_file(tmp_path):
    path = tmp_path / "prog.c"
    path.write_text(PROGRAM)
    return str(path)


def run_cli(*args):
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True, text=True, timeout=120)


def test_runs_dynamic_by_default(source_file):
    proc = run_cli(source_file, "--args", "10")
    assert proc.returncode == 0, proc.stderr
    # 4 calls: 52,53,54,55 -> 214
    assert "214" in proc.stdout
    assert "cycles" in proc.stdout


def test_static_mode(source_file):
    proc = run_cli(source_file, "--mode", "static", "--args", "10")
    assert proc.returncode == 0
    assert "214" in proc.stdout


def test_stats_output(source_file):
    proc = run_cli(source_file, "--args", "0", "--stats")
    assert proc.returncode == 0
    assert "stitched:f:1" in proc.stdout
    assert "optimizations:" in proc.stdout


def test_dump_ir(source_file):
    proc = run_cli(source_file, "--args", "0", "--dump-ir")
    assert proc.returncode == 0
    assert "func f(" in proc.stdout
    assert "region 1" in proc.stdout


def test_dump_asm(source_file):
    proc = run_cli(source_file, "--args", "0", "--dump-asm")
    assert proc.returncode == 0
    assert "$epilogue:" in proc.stdout
    assert "ret" in proc.stdout


def test_dump_templates(source_file):
    proc = run_cli(source_file, "--args", "0", "--dump-templates")
    assert proc.returncode == 0
    assert "region 1 of f" in proc.stdout
    assert "HOLE" in proc.stdout


def test_dump_directives(source_file):
    proc = run_cli(source_file, "--args", "0", "--dump-directives")
    assert proc.returncode == 0
    assert "stitcher directives for region 1" in proc.stdout
    assert "START(" in proc.stdout
    assert "END(" in proc.stdout


def test_register_actions_flag(source_file):
    proc = run_cli(source_file, "--args", "10", "--register-actions")
    assert proc.returncode == 0
    assert "214" in proc.stdout


def test_fused_stitcher_flag(source_file):
    proc = run_cli(source_file, "--args", "10", "--fused-stitcher")
    assert proc.returncode == 0
    assert "214" in proc.stdout


def test_compile_error_reported(tmp_path):
    path = tmp_path / "bad.c"
    path.write_text("int main() { return undeclared; }")
    proc = run_cli(str(path))
    assert proc.returncode == 1
    assert "compile error" in proc.stderr


def test_missing_file():
    proc = run_cli("/nonexistent/path.c")
    assert proc.returncode == 2


# -- adaptive tiering ---------------------------------------------------------

def test_tier_threshold_flag(source_file):
    proc = run_cli(source_file, "--args", "10", "--tier", "threshold:2")
    assert proc.returncode == 0, proc.stderr
    assert "214" in proc.stdout
    assert "tier[threshold:2]" in proc.stdout
    assert "cold entries" in proc.stdout


def test_tier_breakeven_flag(source_file):
    proc = run_cli(source_file, "--args", "10", "--tier", "breakeven:16")
    assert proc.returncode == 0, proc.stderr
    assert "214" in proc.stdout
    assert "tier[breakeven:16]" in proc.stdout


def test_tier_eager_prints_no_tier_summary(source_file):
    proc = run_cli(source_file, "--args", "10")
    assert proc.returncode == 0
    assert "tier[" not in proc.stdout


def test_tier_bad_spec_rejected(source_file):
    proc = run_cli(source_file, "--tier", "sometimes")
    assert proc.returncode == 2
    assert "--tier" in proc.stderr


def test_stitch_mode_async_flag(source_file):
    proc = run_cli(source_file, "--args", "10",
                   "--stitch-mode", "async:drain=2")
    assert proc.returncode == 0, proc.stderr
    assert "214" in proc.stdout  # same value as the sync run
    assert "stitchq[async:drain=2]" in proc.stdout
    assert "enqueued" in proc.stdout


def test_stitch_mode_sync_prints_no_queue_summary(source_file):
    proc = run_cli(source_file, "--args", "10")
    assert proc.returncode == 0
    assert "stitchq[" not in proc.stdout


def test_stitch_mode_bad_spec_rejected(source_file):
    proc = run_cli(source_file, "--stitch-mode", "sometimes")
    assert proc.returncode == 2
    assert "--stitch-mode" in proc.stderr


# -- bench --seed threading (regression) --------------------------------------

def test_bench_seed_threads_to_cache_pressure_sweep(monkeypatch, capsys):
    """Regression: ``python -m repro.bench --seed`` must reach the
    cache-pressure sweep's skewed-key generator (it used to stop at
    the Table 2 workloads, leaving the sweep pinned to the historical
    stream)."""
    from types import SimpleNamespace

    import repro.bench.__main__ as bench_main
    import repro.bench.cachepressure as cp

    seen = {}

    def fake_sweep(executions, program=None, seed=None, **kwargs):
        seen["seed"] = seed
        return []

    monkeypatch.setattr(cp, "sweep", fake_sweep)
    monkeypatch.setattr(cp, "compile_pressure_program", lambda: None)
    monkeypatch.setattr(cp, "format_sweep", lambda rows: "(sweep)")
    # Skip the slow Table 2 measurements: one pre-measured dummy row.
    workload = SimpleNamespace(name="dummy", config="cfg")
    monkeypatch.setattr(bench_main, "all_workloads",
                        lambda scale, seed=None: [workload])
    monkeypatch.setattr(bench_main, "measure",
                        lambda w, **kwargs: "row")
    monkeypatch.setattr(bench_main, "format_table2", lambda rows: "t2")
    monkeypatch.setattr(bench_main, "format_table3", lambda rows: "t3")

    assert bench_main.main(["--seed", "23"]) == 0
    assert seen["seed"] == 23
    assert bench_main.main([]) == 0
    assert seen["seed"] == cp.DEFAULT_SEED
    capsys.readouterr()


def test_cachepressure_cli_seed_changes_key_stream(tmp_path):
    """Different --seed values must produce different key streams
    (observable as different bounded-cache behavior)."""
    def cell(seed):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.bench.cachepressure",
             "--executions", "60", "--cardinality", "8",
             "--capacity", "2", "--seed", str(seed)],
            capture_output=True, text=True, timeout=120)
        assert proc.returncode == 0, proc.stderr
        return proc.stdout

    assert cell(7) != cell(23)
