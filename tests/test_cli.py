"""Command-line interface tests (python -m repro)."""

import subprocess
import sys

import pytest

PROGRAM = """
int f(int c, int v) {
    dynamicRegion (c) {
        return c * 6 + v;
    }
}
int main(int x) {
    int t = 0; int i;
    for (i = 0; i < 4; i++) t += f(7, x + i);
    print_int(t);
    return t;
}
"""


@pytest.fixture()
def source_file(tmp_path):
    path = tmp_path / "prog.c"
    path.write_text(PROGRAM)
    return str(path)


def run_cli(*args):
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True, text=True, timeout=120)


def test_runs_dynamic_by_default(source_file):
    proc = run_cli(source_file, "--args", "10")
    assert proc.returncode == 0, proc.stderr
    # 4 calls: 52,53,54,55 -> 214
    assert "214" in proc.stdout
    assert "cycles" in proc.stdout


def test_static_mode(source_file):
    proc = run_cli(source_file, "--mode", "static", "--args", "10")
    assert proc.returncode == 0
    assert "214" in proc.stdout


def test_stats_output(source_file):
    proc = run_cli(source_file, "--args", "0", "--stats")
    assert proc.returncode == 0
    assert "stitched:f:1" in proc.stdout
    assert "optimizations:" in proc.stdout


def test_dump_ir(source_file):
    proc = run_cli(source_file, "--args", "0", "--dump-ir")
    assert proc.returncode == 0
    assert "func f(" in proc.stdout
    assert "region 1" in proc.stdout


def test_dump_asm(source_file):
    proc = run_cli(source_file, "--args", "0", "--dump-asm")
    assert proc.returncode == 0
    assert "$epilogue:" in proc.stdout
    assert "ret" in proc.stdout


def test_dump_templates(source_file):
    proc = run_cli(source_file, "--args", "0", "--dump-templates")
    assert proc.returncode == 0
    assert "region 1 of f" in proc.stdout
    assert "HOLE" in proc.stdout


def test_dump_directives(source_file):
    proc = run_cli(source_file, "--args", "0", "--dump-directives")
    assert proc.returncode == 0
    assert "stitcher directives for region 1" in proc.stdout
    assert "START(" in proc.stdout
    assert "END(" in proc.stdout


def test_register_actions_flag(source_file):
    proc = run_cli(source_file, "--args", "10", "--register-actions")
    assert proc.returncode == 0
    assert "214" in proc.stdout


def test_fused_stitcher_flag(source_file):
    proc = run_cli(source_file, "--args", "10", "--fused-stitcher")
    assert proc.returncode == 0
    assert "214" in proc.stdout


def test_compile_error_reported(tmp_path):
    path = tmp_path / "bad.c"
    path.write_text("int main() { return undeclared; }")
    proc = run_cli(str(path))
    assert proc.returncode == 1
    assert "compile error" in proc.stderr


def test_missing_file():
    proc = run_cli("/nonexistent/path.c")
    assert proc.returncode == 2
