"""Assorted unit tests: liveness, loader, cost model, bench CLI."""

import subprocess
import sys

import pytest

from repro.analysis.liveness import block_use_def, liveness
from repro.ir.ssa import from_ssa, to_ssa
from repro.machine.costs import (
    FUSED_STITCHER, OP_CYCLES, RT_CYCLES, StitcherCosts, op_cost,
)
from repro.machine.isa import MInstr, OPCODES
from repro.machine.loader import load_program
from repro.machine.vm import VM, VMError

from helpers import build


def phi_free(source, func="main"):
    module = build(source)
    f = module.functions[func]
    to_ssa(f)
    from_ssa(f)
    return f


# -- liveness ---------------------------------------------------------------


def test_liveness_rejects_phis():
    module = build("int main(int a) { int x; if (a) x = 1; else x = 2;"
                   " return x; }")
    f = module.functions["main"]
    to_ssa(f)
    with pytest.raises(ValueError):
        liveness(f)


def test_loop_variable_live_around_backedge():
    f = phi_free("""
        int main() {
            int i = 0; int t = 0;
            while (i < 5) { t += i; i++; }
            return t;
        }
    """)
    live_in, live_out = liveness(f)
    header = next(n for n in f.blocks if n.startswith("while"))
    # both accumulator and induction variable live into the header
    live = {name.split(".")[0] for name in live_in[header]}
    assert "i" in live and "t" in live


def test_dead_value_not_live_out():
    f = phi_free("""
        int main(int a) {
            int dead = a * 2;
            return a;
        }
    """)
    live_in, live_out = liveness(f)
    for block in f.blocks:
        assert not any(n.startswith("dead") for n in live_out[block])


def test_use_def_upward_exposed():
    f = phi_free("int main(int a) { int x = a + 1; return x + a; }")
    uses, defs = block_use_def(f)[f.entry]
    assert "arg_a" in uses
    assert any(n.startswith("x") for n in defs)


# -- cost model ---------------------------------------------------------------


def test_every_opcode_has_a_cost():
    for op in OPCODES:
        if op == "call_rt":
            continue
        assert op in OP_CYCLES, "missing cost for %s" % op


def test_op_cost_for_runtime_calls():
    assert op_cost("call_rt", "alloc") == RT_CYCLES["alloc"]
    assert op_cost("call_rt", "unknown_service") == 20


def test_loads_cost_more_than_alu():
    assert OP_CYCLES["ldq"] > OP_CYCLES["addq"]
    assert OP_CYCLES["divq"] > OP_CYCLES["mulq"] > OP_CYCLES["sll"]


def test_scaled_costs():
    base = StitcherCosts()
    half = base.scaled(0.5)
    assert half.per_directive == base.per_directive // 2
    assert half.enable_peepholes == base.enable_peepholes


def test_fused_model_cheaper_everywhere():
    base = StitcherCosts()
    assert FUSED_STITCHER.per_directive < base.per_directive
    assert FUSED_STITCHER.per_instr_copied < base.per_instr_copied
    assert FUSED_STITCHER.per_hole < base.per_hole


# -- loader ------------------------------------------------------------------------


def test_loader_resolves_cross_function_calls():
    from repro.codegen.lower import DataLayout, lower_module

    module = build("""
        int helper(int x) { return x * 3; }
        int main() { return helper(7); }
    """)
    for f in module.functions.values():
        to_ssa(f)
        from_ssa(f)
    layout = DataLayout()
    layout.add_module_globals(module)
    compiled = lower_module(module, layout)
    vm = VM(memory_words=1 << 18)
    layout.write_into(vm)
    load_program(vm, compiled)
    jsrs = [i for i in compiled["main"].code if i.op == "jsr"]
    assert jsrs and jsrs[0].target == compiled["helper"].base
    value, _ = vm.run(compiled["main"].base)
    assert value == 21


def test_loader_rejects_unknown_callee():
    from repro.codegen.lower import DataLayout
    from repro.codegen.objects import CompiledFunction

    fn = CompiledFunction(name="f")
    fn.code = [MInstr("jsr", label="func:ghost"), MInstr("ret")]
    fn.labels = {"f": 0}
    vm = VM(memory_words=1 << 16)
    with pytest.raises(VMError):
        load_program(vm, {"f": fn})


# -- op-count statistics --------------------------------------------------------------


def test_op_counts_recorded():
    from repro import compile_program

    result = compile_program(
        "int main() { int t = 0; int i;"
        " for (i = 0; i < 10; i++) t += i * 2; return t; }",
        mode="static").run()
    assert result.op_counts.get("mulq", 0) + \
        result.op_counts.get("sll", 0) >= 1
    assert sum(result.op_counts.values()) == \
        sum(result.instrs_by_owner.values())


# -- bench CLI --------------------------------------------------------------------------


def test_bench_cli_smoke():
    proc = subprocess.run(
        [sys.executable, "-m", "repro.bench", "--scale", "0.3",
         "--only", "event"],
        capture_output=True, text=True, timeout=300)
    assert proc.returncode == 0, proc.stderr
    assert "event dispatcher" in proc.stdout
    assert "Speedup" in proc.stdout
