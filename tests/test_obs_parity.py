"""Observer-effect parity: tracing/metrics never change the simulation.

The whole observability layer is host-side: every simulated observable
-- final value, total cycles, per-owner cycle/instruction accounting,
opcode histogram, stitch reports, region-entry counts -- must be
bit-identical between a run with tracing+metrics fully on and a run
with both off.  If a hook ever leaks into the cost model (say, by
charging a cycle for a trace event), this is the test that catches it.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.bench.workloads import (
    calculator_workload, event_dispatcher_workload, sparse_matvec_workload,
)
from repro.obs import metrics, trace
from repro.runtime.engine import compile_program

CASES = {
    "calculator": lambda: calculator_workload(xs=3, ys=3),
    "sparse_matvec": lambda: sparse_matvec_workload(size=8, per_row=3,
                                                    reps=2),
    "event_dispatcher": lambda: event_dispatcher_workload(nguards=6,
                                                          events=30),
}


def observables(result):
    return {
        "value": result.value,
        "cycles": result.cycles,
        "output": list(result.output),
        "cycles_by_owner": dict(result.cycles_by_owner),
        "instrs_by_owner": dict(result.instrs_by_owner),
        "op_counts": dict(result.op_counts),
        "region_entries": dict(result.region_entries),
        "cache_hits": list(result.cache_hits),
        "stitch_reports": [dataclasses.asdict(report)
                           for report in result.stitch_reports],
    }


@pytest.mark.parametrize("mode", ["dynamic", "static"])
@pytest.mark.parametrize("name", sorted(CASES))
def test_tracing_and_metrics_do_not_perturb_simulation(name, mode):
    source = CASES[name]().source

    plain = observables(compile_program(source, mode=mode).run())

    tracer = trace.Tracer()
    metrics.registry.enable()
    try:
        with trace.tracing(tracer):
            observed = observables(
                compile_program(source, mode=mode).run())
    finally:
        metrics.registry.disable()
        metrics.registry.reset()

    assert observed == plain
    if mode == "dynamic":
        assert tracer.events, "tracer recorded nothing in dynamic mode"
    assert trace.validate_events(tracer.events) == []


def test_sampler_and_exporters_do_not_perturb_simulation():
    """The full telemetry stack -- labeled metrics, the time-series
    sampler on both logical clocks, counter-track tracing, and both
    exporters -- must leave every simulated observable bit-identical."""
    from repro.obs import export, timeseries

    source = CASES["sparse_matvec"]().source
    plain = observables(compile_program(source, mode="dynamic").run())

    tracer = trace.Tracer()
    sampler = timeseries.TimeSeriesSampler(every_entries=2,
                                           every_cycles=5_000, capacity=16)
    metrics.registry.clear()
    metrics.registry.enable()
    try:
        with trace.tracing(tracer), timeseries.sampling(sampler):
            observed = observables(
                compile_program(source, mode="dynamic").run())
        snap = metrics.registry.snapshot()
    finally:
        metrics.registry.disable()
        metrics.registry.clear()

    assert observed == plain
    assert sampler.samples > 0, "sampler never fired"
    document = export.series_document(sampler, snapshot=snap)
    assert document["series"], "no series recorded"
    export.parse_openmetrics(export.to_openmetrics(snap))
    assert any(event["ph"] == "C" for event in tracer.events), \
        "no Perfetto counter tracks in the trace"
    assert trace.validate_events(tracer.events) == []


def test_rerun_parity_with_tracing_toggled_between_runs():
    """Toggling observability *between* runs of one Program must not
    change the second run either (reset_for_rerun path)."""
    source = CASES["sparse_matvec"]().source
    program = compile_program(source, mode="dynamic")
    first = observables(program.run())
    tracer = trace.Tracer()
    with trace.tracing(tracer):
        second = observables(program.run())
    assert second == first
