"""Dominator tree and SSA construction/destruction tests."""

from repro.ir.dominance import DominatorTree
from repro.ir.instructions import Assign, Phi
from repro.ir.ssa import base_name, from_ssa, is_ssa, to_ssa
from repro.ir.values import Temp

from helpers import build, ssa_then_back

LOOP_SRC = """
int main() {
    int i = 0; int t = 0;
    while (i < 10) { t += i; i++; }
    return t;
}
"""

IF_SRC = """
int main() {
    int x = 0;
    int c = 3;
    if (c > 1) x = 1; else x = 2;
    return x;
}
"""


def get_main(source):
    module = build(source)
    return module.functions["main"]


# -- dominance ----------------------------------------------------------------


def test_entry_dominates_everything():
    func = get_main(LOOP_SRC)
    dom = DominatorTree(func)
    for name in func.rpo():
        assert dom.dominates(func.entry, name)


def test_self_domination():
    func = get_main(LOOP_SRC)
    dom = DominatorTree(func)
    for name in func.rpo():
        assert dom.dominates(name, name)


def test_loop_header_dominates_body():
    func = get_main(LOOP_SRC)
    dom = DominatorTree(func)
    header = next(n for n in func.blocks if n.startswith("while"))
    body = next(n for n in func.blocks if n.startswith("body"))
    assert dom.dominates(header, body)
    assert not dom.dominates(body, header)


def test_branch_sides_do_not_dominate_join():
    func = get_main(IF_SRC)
    dom = DominatorTree(func)
    then = next(n for n in func.blocks if n.startswith("then"))
    join = next(n for n in func.blocks if n.startswith("join"))
    assert not dom.dominates(then, join)


def test_dominance_frontier_of_branch_sides_is_join():
    func = get_main(IF_SRC)
    dom = DominatorTree(func)
    then = next(n for n in func.blocks if n.startswith("then"))
    join = next(n for n in func.blocks if n.startswith("join"))
    assert join in dom.frontier[then]


def test_loop_header_in_own_frontier():
    func = get_main(LOOP_SRC)
    dom = DominatorTree(func)
    header = next(n for n in func.blocks if n.startswith("while"))
    assert header in dom.frontier[header]


def test_dom_tree_preorder_covers_all_blocks():
    func = get_main(LOOP_SRC)
    dom = DominatorTree(func)
    order = dom.dom_tree_preorder()
    assert set(order) == set(func.rpo())
    assert order[0] == func.entry


# -- SSA ------------------------------------------------------------------------


def test_to_ssa_single_def():
    func = get_main(LOOP_SRC)
    to_ssa(func)
    assert is_ssa(func)
    func.verify()


def test_loop_gets_phis():
    func = get_main(LOOP_SRC)
    to_ssa(func)
    header = next(n for n in func.blocks if n.startswith("while"))
    names = {base_name(p.dst.name) for p in func.blocks[header].phis()}
    assert "i" in names and "t" in names


def test_if_join_gets_phi():
    func = get_main(IF_SRC)
    to_ssa(func)
    join = next(n for n in func.blocks if n.startswith("join"))
    phis = func.blocks[join].phis()
    assert any(base_name(p.dst.name) == "x" for p in phis)


def test_dead_phis_removed():
    src = """
    int main() {
        int unused = 0;
        int c = 1;
        if (c) unused = 1; else unused = 2;
        return 7;
    }
    """
    func = get_main(src)
    to_ssa(func)
    for block in func.blocks.values():
        for phi in block.phis():
            assert base_name(phi.dst.name) != "unused"


def test_base_name():
    assert base_name("x.3") == "x"
    assert base_name("x") == "x"
    assert base_name("a.b.12") == "a.b"
    assert base_name("t1") == "t1"


def test_from_ssa_removes_phis():
    func = get_main(LOOP_SRC)
    to_ssa(func)
    from_ssa(func)
    for block in func.blocks.values():
        assert not any(isinstance(i, Phi) for i in block.instrs)
    func.verify()


def test_ssa_round_trip_semantics():
    ssa_then_back(LOOP_SRC)
    ssa_then_back(IF_SRC)


def test_ssa_round_trip_unstructured():
    ssa_then_back("""
    int main() {
        int i = 0; int t = 0;
    top:
        t += i;
        i++;
        if (i < 7) goto top;
        return t;
    }
    """)


def test_ssa_round_trip_switch():
    ssa_then_back("""
    int main() {
        int t = 0; int i;
        for (i = 0; i < 6; i++) {
            switch (i % 3) {
                case 0: t += 1;
                case 1: t += 10; break;
                default: t += 100;
            }
        }
        return t;
    }
    """)


def test_swap_problem():
    # Classic parallel-copy cycle: a,b swap each iteration.
    ssa_then_back("""
    int main() {
        int a = 1; int b = 2; int i;
        for (i = 0; i < 5; i++) {
            int t = a; a = b; b = t;
        }
        return a * 10 + b;
    }
    """)


def test_region_const_temps_recorded():
    src = """
    int f(int c) {
        dynamicRegion (c) { return c * 2; }
    }
    """
    module = build(src)
    func = module.functions["f"]
    to_ssa(func)
    region = func.regions[0]
    assert region.const_temps is not None
    assert len(region.const_temps) == 1
    assert isinstance(region.const_temps[0], Temp)
    assert base_name(region.const_temps[0].name) == "c"
