"""Shared helpers for the test suite."""

from __future__ import annotations

import copy
from typing import List, Optional, Tuple, Union

from repro.dynamic.splitter import split_module
from repro.frontend.parser import parse
from repro.frontend.typecheck import check
from repro.ir.builder import build_module
from repro.ir.cfg import Module
from repro.ir.ssa import from_ssa, to_ssa
from repro.opt.pipeline import OptOptions, optimize
from repro.runtime.engine import compile_program
from repro.runtime.interp import Interpreter

Number = Union[int, float]


def build(source: str) -> Module:
    """Parse, check and lower MiniC to an IR module."""
    return build_module(check(parse(source)))


def interp_run(source: str, func: str = "main",
               args: Optional[List[Number]] = None
               ) -> Tuple[Optional[Number], List[Number]]:
    """Reference-interpret MiniC; returns (result, printed output)."""
    module = build(source)
    interp = Interpreter(module)
    return interp.run(func, args), interp.output


def ssa_module(source: str, optimize_too: bool = True) -> Module:
    module = build(source)
    for func in module.functions.values():
        to_ssa(func)
        if optimize_too:
            optimize(func)
    return module


def run_all_ways(source: str, func: str = "main",
                 args: Optional[List[Number]] = None
                 ) -> Tuple[Number, List[Number]]:
    """Run a program five ways and assert they all agree.

    1. reference interpreter on raw IR
    2. reference interpreter on optimized SSA IR
    3. reference interpreter on post-split IR (if it has regions)
    4. compiled static code on the VM
    5. compiled dynamic (stitched) code on the VM

    Returns the agreed (value, output).
    """
    module = build(source)
    interp = Interpreter(copy.deepcopy(module))
    expected = interp.run(func, args)
    expected_out = list(interp.output)

    opt_mod = copy.deepcopy(module)
    for f in opt_mod.functions.values():
        to_ssa(f)
        optimize(f)
    interp2 = Interpreter(copy.deepcopy(opt_mod))
    got = interp2.run(func, args)
    assert got == expected, "optimized interp: %r != %r" % (got, expected)
    assert interp2.output == expected_out

    has_regions = any(f.regions for f in module.functions.values())
    if has_regions:
        split_mod = copy.deepcopy(opt_mod)
        plans = split_module(split_mod)
        interp3 = Interpreter(split_mod, plans=plans)
        got = interp3.run(func, args)
        assert got == expected, "post-split interp: %r != %r" % (got, expected)
        assert interp3.output == expected_out

    static = compile_program(source, mode="static")
    rs = static.run(func, args)
    assert rs.value == expected, "static VM: %r != %r" % (rs.value, expected)
    assert rs.output == expected_out

    dynamic = compile_program(source, mode="dynamic")
    rd = dynamic.run(func, args)
    assert rd.value == expected, "dynamic VM: %r != %r" % (rd.value, expected)
    assert rd.output == expected_out
    return expected, expected_out


def ssa_then_back(source: str, func: str = "main",
                  args: Optional[List[Number]] = None) -> None:
    """SSA round-trip must preserve interpreter results."""
    module = build(source)
    interp = Interpreter(copy.deepcopy(module))
    expected = interp.run(func, args)
    for f in module.functions.values():
        to_ssa(f)
        f.verify()
    mid = Interpreter(copy.deepcopy(module)).run(func, args)
    assert mid == expected
    for f in module.functions.values():
        from_ssa(f)
        f.verify()
    post = Interpreter(module).run(func, args)
    assert post == expected
