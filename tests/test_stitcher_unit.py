"""Stitcher-internals tests: reports, directive counts, error paths,
label resolution, branch elision, the linearized constants pool."""

import pytest

from repro import compile_program
from repro.dynamic.stitcher import MAX_UNROLL, StitchError, StitchReport
from repro.machine.costs import FUSED_STITCHER, StitcherCosts
from repro.machine.loader import load_program
from repro.machine.vm import VM
from repro.runtime.engine import _RegionRuntime


def stitch_and_inspect(source, args=None, **compile_kwargs):
    """Compile dynamically, run on a persistent VM, return
    (program, vm, reports, run_value)."""
    program = compile_program(source, mode="dynamic", **compile_kwargs)
    vm = VM()
    program.layout.write_into(vm)
    load_program(vm, program.compiled)
    runtime = _RegionRuntime(program, vm)
    vm.rt_handlers["region_lookup"] = runtime.lookup
    vm.rt_handlers["region_stitch"] = runtime.stitch
    preload = [(16 + i, v) for i, v in enumerate(args or [])]
    value, _ = vm.run(program.compiled["main"].base, preload)
    return program, vm, runtime.reports, value


SIMPLE = """
int f(int c, int v) {
    dynamicRegion (c) {
        int d = c * 5 + 2;
        return d + v;
    }
}
int main() { return f(8, 1) + f(8, 2); }
"""


def test_stitched_code_installed_after_functions(      ):
    program, vm, reports, value = stitch_and_inspect(SIMPLE)
    (report,) = reports
    function_end = max(fn.base + len(fn.code)
                       for fn in program.compiled.values())
    assert report.entry >= function_end
    assert value == 43 + 44  # d = 8*5+2 = 42, plus v = 1 and 2


def test_branch_targets_resolved_absolutely():
    program, vm, reports, _ = stitch_and_inspect(SIMPLE)
    (report,) = reports
    for instr in vm.code[report.entry:]:
        if instr.op in ("br", "beq", "bne"):
            assert 0 <= instr.target < len(vm.code)


def test_directive_count_includes_start_end():
    _, _, reports, _ = stitch_and_inspect(SIMPLE)
    (report,) = reports
    # START + END + at least one HOLE
    assert report.directives >= 3


def test_cycles_match_cost_model():
    costs = StitcherCosts()
    _, _, reports, _ = stitch_and_inspect(SIMPLE, stitcher_costs=costs)
    (report,) = reports
    expected = (
        costs.per_region
        + report.directives * costs.per_directive
        + report.instrs_emitted * costs.per_instr_copied
        + report.holes_patched * costs.per_hole
        + report.branch_fixups * costs.per_branch_fixup
        + report.pool_entries * costs.per_pool_entry
        + report.records_followed * costs.per_loop_record
        + sum(report.peepholes.values()) * costs.per_peephole
    )
    assert report.cycles == expected


def test_fused_costs_cheaper():
    _, _, reports_a, _ = stitch_and_inspect(SIMPLE)
    _, _, reports_b, _ = stitch_and_inspect(
        SIMPLE, stitcher_costs=FUSED_STITCHER)
    assert reports_b[0].cycles < reports_a[0].cycles
    assert reports_b[0].instrs_emitted == reports_a[0].instrs_emitted


def test_large_constant_goes_to_pool():
    source = """
    int f(int c, int v) {
        dynamicRegion (c) {
            int big = c * 100000;
            return big + v;      // big = 7 billion-ish, not imm16
        }
    }
    int main() { return f(70000, 1) == 7000000001; }
    """
    program, vm, reports, value = stitch_and_inspect(source)
    (report,) = reports
    assert value == 1
    assert report.pool_entries >= 1
    # the pool value is in data memory at pool_base
    pool_values = [vm.memory[report.pool_base + i]
                   for i in range(report.pool_entries)]
    assert 7000000000 in pool_values


def test_float_constants_always_pooled():
    source = """
    float f(float c, float v) {
        dynamicRegion (c) {
            float d = c + c;
            return d * v;
        }
    }
    int main() { return (int) f(1.25, 4.0); }
    """
    _, vm, reports, value = stitch_and_inspect(source)
    (report,) = reports
    assert value == 10
    assert report.pool_entries >= 1
    assert vm.memory[report.pool_base] == 2.5


def test_branch_to_next_instruction_elided():
    # Straight-line region: the jump joining consecutive blocks should
    # be removed by the stitcher's layout pass.
    source = """
    int f(int c, int v) {
        dynamicRegion (c) {
            int d = c * 3;
            v = v + d;
            v = v * 2;
            return v;
        }
    }
    int main() { return f(2, 1); }
    """
    _, vm, reports, value = stitch_and_inspect(source)
    (report,) = reports
    assert value == 14
    code = vm.code[report.entry:]
    # only the final exit branch remains
    branch_count = sum(1 for i in code if i.op == "br")
    assert branch_count <= 1


def test_broken_record_chain_raises():
    from repro.codegen.objects import RegionCode
    from repro.dynamic.table import LoopPlan, TablePlan

    program = compile_program("""
        int f(int n, int *xs) {
            int t = 0;
            dynamicRegion (n) {
                int i;
                unrolled for (i = 0; i < n; i++) t += xs dynamic[ i ];
                return t;
            }
        }
        int main() { int xs[3]; xs[0]=1; xs[1]=2; xs[2]=3;
                     return f(3, xs); }
    """, mode="dynamic")
    vm = VM()
    program.layout.write_into(vm)
    load_program(vm, program.compiled)
    region = program.region_codes()[0]
    # Hand the stitcher a table whose loop head pointer is null.
    table_addr = vm.alloc(region.table.top_size)
    from repro.dynamic.stitcher import Stitcher
    stitcher = Stitcher(vm, program.compiled["f"], region, table_addr,
                        StitcherCosts())
    with pytest.raises(StitchError):
        stitcher.stitch()


def test_report_optimizations_shape():
    report = StitchReport("f", 1)
    opts = report.optimizations_applied()
    assert set(opts) == {
        "constant_folding", "static_branch_elimination",
        "dead_code_elimination", "complete_loop_unrolling",
        "strength_reduction",
    }
    assert not any(opts.values())


def test_stitch_once_then_cache_hit():
    program, vm, reports, _ = stitch_and_inspect(SIMPLE)
    assert len(reports) == 1  # second call hit the cache
    # dispatch owner saw two lookups
    assert vm.instrs_by_owner.get("dispatch:f:1", 0) > 0


def test_peephole_toggle_respected():
    costs = StitcherCosts()
    costs.enable_peepholes = False
    source = """
    int f(int c, int v) {
        dynamicRegion (c) { return v * c; }
    }
    int main() { return f(8, 5); }
    """
    _, _, reports, value = stitch_and_inspect(source, stitcher_costs=costs)
    assert value == 40
    assert reports[0].peepholes == {}
    _, _, reports2, _ = stitch_and_inspect(source)
    assert "mul_to_shift" in reports2[0].peepholes


def test_owner_tagging_of_stitched_code():
    _, vm, reports, _ = stitch_and_inspect(SIMPLE)
    (report,) = reports
    for instr in vm.code[report.entry:]:
        assert instr.owner == "stitched:f:1"


# -- directive-level behaviour ---------------------------------------------

def _stitched_is_acyclic(vm, report):
    """No branch inside the stitched code targets an earlier (or its
    own) stitched pc -- i.e. complete unrolling left no loops."""
    for offset, instr in enumerate(vm.code[report.entry:]):
        if instr.op in ("br", "beq", "bne") and instr.target is not None:
            if report.entry <= instr.target <= report.entry + offset:
                return False
    return True


def test_restart_loop_follows_one_record_per_iteration():
    source = """
    int f(int n, int v) {
        int t = 0;
        dynamicRegion (n) {
            int i;
            unrolled for (i = 0; i < n; i++) t += i;
            return t * v;
        }
    }
    int main() { return f(5, 2); }
    """
    _, vm, reports, value = stitch_and_inspect(source)
    (report,) = reports
    assert value == (0 + 1 + 2 + 3 + 4) * 2
    (iterations,) = report.loop_iterations.values()
    # The header is stitched once per record: ENTER_LOOP reads the head
    # record, then each back edge is a RESTART_LOOP advancing the
    # chain.  Five bodies -> five back edges -> six header copies.
    assert iterations == 6
    assert report.records_followed == 6
    # START + END + ENTER + 5 RESTARTs are all directives, on top of
    # the per-copy CONST_BRANCH/HOLE ones.
    assert report.directives >= 2 + 6
    assert _stitched_is_acyclic(vm, report)


def test_nested_unrolled_loops_fully_unrolled():
    source = """
    int f(int n, int m, int v) {
        int t = 0;
        dynamicRegion (n, m) {
            int i; int j;
            unrolled for (i = 0; i < n; i++) {
                unrolled for (j = 0; j < m; j++) {
                    t += i * m + j;
                }
            }
            return t + v;
        }
    }
    int main() { return f(3, 2, 100); }
    """
    _, vm, reports, value = stitch_and_inspect(source)
    (report,) = reports
    assert value == 100 + sum(i * 2 + j for i in range(3) for j in range(2))
    assert len(report.loop_iterations) == 2
    # The outer chain has 4 records (3 bodies + exit test); the inner
    # loop is re-entered per outer iteration, each entry following a
    # 3-record chain of its own: 4 + 3 * 3 records in total.
    assert report.records_followed == 4 + 3 * 3
    # loop_iterations counts ENTER once (first entry) plus one per
    # RESTART: outer 1 + 3, inner 1 + 3 entries * 2 back edges.
    assert sorted(report.loop_iterations.values()) == [4, 7]
    assert report.optimizations_applied()["complete_loop_unrolling"]
    assert _stitched_is_acyclic(vm, report)


def test_const_branch_chain_drops_both_dead_arms():
    # Chained constant branches: the untaken side of the outer branch
    # holds another constant branch -- neither of its arms may be
    # stitched at all, and the taken side's own dead arm is elided.
    source = """
    int f(int c, int v) {
        int r = v;
        dynamicRegion (c) {
            if (c > 4) {
                if (c > 8) { r = r * 11; } else { r = r * 12345; }
            } else {
                if (c < 2) { r = r * 23456; } else { r = r * 339; }
            }
            return r;
        }
    }
    int main() { return f(9, 3); }
    """
    _, vm, reports, value = stitch_and_inspect(source)
    (report,) = reports
    assert value == 3 * 11
    # Only the branches actually reached get resolved: the outer test
    # and the inner test on its taken side.  The else-side inner branch
    # is dead code and is never even visited.
    assert report.const_branches_resolved == 2
    assert report.dead_sides_eliminated == 2
    dead_constants = {12345, 23456, 339}
    for instr in vm.code[report.entry:]:
        assert instr.imm not in dead_constants
    pool = [vm.memory[report.pool_base + i]
            for i in range(report.pool_entries)]
    assert not dead_constants & set(pool)
