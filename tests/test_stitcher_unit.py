"""Stitcher-internals tests: reports, directive counts, error paths,
label resolution, branch elision, the linearized constants pool."""

import pytest

from repro import compile_program
from repro.dynamic.stitcher import MAX_UNROLL, StitchError, StitchReport
from repro.machine.costs import FUSED_STITCHER, StitcherCosts
from repro.machine.loader import load_program
from repro.machine.vm import VM
from repro.runtime.engine import _RegionRuntime


def stitch_and_inspect(source, args=None, **compile_kwargs):
    """Compile dynamically, run on a persistent VM, return
    (program, vm, reports, run_value)."""
    program = compile_program(source, mode="dynamic", **compile_kwargs)
    vm = VM()
    program.layout.write_into(vm)
    load_program(vm, program.compiled)
    runtime = _RegionRuntime(program, vm)
    vm.rt_handlers["region_lookup"] = runtime.lookup
    vm.rt_handlers["region_stitch"] = runtime.stitch
    preload = [(16 + i, v) for i, v in enumerate(args or [])]
    value, _ = vm.run(program.compiled["main"].base, preload)
    return program, vm, runtime.reports, value


SIMPLE = """
int f(int c, int v) {
    dynamicRegion (c) {
        int d = c * 5 + 2;
        return d + v;
    }
}
int main() { return f(8, 1) + f(8, 2); }
"""


def test_stitched_code_installed_after_functions(      ):
    program, vm, reports, value = stitch_and_inspect(SIMPLE)
    (report,) = reports
    function_end = max(fn.base + len(fn.code)
                       for fn in program.compiled.values())
    assert report.entry >= function_end
    assert value == 43 + 44  # d = 8*5+2 = 42, plus v = 1 and 2


def test_branch_targets_resolved_absolutely():
    program, vm, reports, _ = stitch_and_inspect(SIMPLE)
    (report,) = reports
    for instr in vm.code[report.entry:]:
        if instr.op in ("br", "beq", "bne"):
            assert 0 <= instr.target < len(vm.code)


def test_directive_count_includes_start_end():
    _, _, reports, _ = stitch_and_inspect(SIMPLE)
    (report,) = reports
    # START + END + at least one HOLE
    assert report.directives >= 3


def test_cycles_match_cost_model():
    costs = StitcherCosts()
    _, _, reports, _ = stitch_and_inspect(SIMPLE, stitcher_costs=costs)
    (report,) = reports
    expected = (
        costs.per_region
        + report.directives * costs.per_directive
        + report.instrs_emitted * costs.per_instr_copied
        + report.holes_patched * costs.per_hole
        + report.branch_fixups * costs.per_branch_fixup
        + report.pool_entries * costs.per_pool_entry
        + report.records_followed * costs.per_loop_record
        + sum(report.peepholes.values()) * costs.per_peephole
    )
    assert report.cycles == expected


def test_fused_costs_cheaper():
    _, _, reports_a, _ = stitch_and_inspect(SIMPLE)
    _, _, reports_b, _ = stitch_and_inspect(
        SIMPLE, stitcher_costs=FUSED_STITCHER)
    assert reports_b[0].cycles < reports_a[0].cycles
    assert reports_b[0].instrs_emitted == reports_a[0].instrs_emitted


def test_large_constant_goes_to_pool():
    source = """
    int f(int c, int v) {
        dynamicRegion (c) {
            int big = c * 100000;
            return big + v;      // big = 7 billion-ish, not imm16
        }
    }
    int main() { return f(70000, 1) == 7000000001; }
    """
    program, vm, reports, value = stitch_and_inspect(source)
    (report,) = reports
    assert value == 1
    assert report.pool_entries >= 1
    # the pool value is in data memory at pool_base
    pool_values = [vm.memory[report.pool_base + i]
                   for i in range(report.pool_entries)]
    assert 7000000000 in pool_values


def test_float_constants_always_pooled():
    source = """
    float f(float c, float v) {
        dynamicRegion (c) {
            float d = c + c;
            return d * v;
        }
    }
    int main() { return (int) f(1.25, 4.0); }
    """
    _, vm, reports, value = stitch_and_inspect(source)
    (report,) = reports
    assert value == 10
    assert report.pool_entries >= 1
    assert vm.memory[report.pool_base] == 2.5


def test_branch_to_next_instruction_elided():
    # Straight-line region: the jump joining consecutive blocks should
    # be removed by the stitcher's layout pass.
    source = """
    int f(int c, int v) {
        dynamicRegion (c) {
            int d = c * 3;
            v = v + d;
            v = v * 2;
            return v;
        }
    }
    int main() { return f(2, 1); }
    """
    _, vm, reports, value = stitch_and_inspect(source)
    (report,) = reports
    assert value == 14
    code = vm.code[report.entry:]
    # only the final exit branch remains
    branch_count = sum(1 for i in code if i.op == "br")
    assert branch_count <= 1


def test_broken_record_chain_raises():
    from repro.codegen.objects import RegionCode
    from repro.dynamic.table import LoopPlan, TablePlan

    program = compile_program("""
        int f(int n, int *xs) {
            int t = 0;
            dynamicRegion (n) {
                int i;
                unrolled for (i = 0; i < n; i++) t += xs dynamic[ i ];
                return t;
            }
        }
        int main() { int xs[3]; xs[0]=1; xs[1]=2; xs[2]=3;
                     return f(3, xs); }
    """, mode="dynamic")
    vm = VM()
    program.layout.write_into(vm)
    load_program(vm, program.compiled)
    region = program.region_codes()[0]
    # Hand the stitcher a table whose loop head pointer is null.
    table_addr = vm.alloc(region.table.top_size)
    from repro.dynamic.stitcher import Stitcher
    stitcher = Stitcher(vm, program.compiled["f"], region, table_addr,
                        StitcherCosts())
    with pytest.raises(StitchError):
        stitcher.stitch()


def test_report_optimizations_shape():
    report = StitchReport("f", 1)
    opts = report.optimizations_applied()
    assert set(opts) == {
        "constant_folding", "static_branch_elimination",
        "dead_code_elimination", "complete_loop_unrolling",
        "strength_reduction",
    }
    assert not any(opts.values())


def test_stitch_once_then_cache_hit():
    program, vm, reports, _ = stitch_and_inspect(SIMPLE)
    assert len(reports) == 1  # second call hit the cache
    # dispatch owner saw two lookups
    assert vm.instrs_by_owner.get("dispatch:f:1", 0) > 0


def test_peephole_toggle_respected():
    costs = StitcherCosts()
    costs.enable_peepholes = False
    source = """
    int f(int c, int v) {
        dynamicRegion (c) { return v * c; }
    }
    int main() { return f(8, 5); }
    """
    _, _, reports, value = stitch_and_inspect(source, stitcher_costs=costs)
    assert value == 40
    assert reports[0].peepholes == {}
    _, _, reports2, _ = stitch_and_inspect(source)
    assert "mul_to_shift" in reports2[0].peepholes


def test_owner_tagging_of_stitched_code():
    _, vm, reports, _ = stitch_and_inspect(SIMPLE)
    (report,) = reports
    for instr in vm.code[report.entry:]:
        assert instr.owner == "stitched:f:1"
