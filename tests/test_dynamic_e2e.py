"""End-to-end dynamic-compilation tests.

For every program here the full tower must agree: reference
interpreter (raw IR, optimized IR, post-split IR) and the VM in static
and dynamic modes.  Then we check the things the paper's system
promises: set-up runs once, stitched code is reused, keyed regions get
one compiled version per key, const branches are eliminated, unrolled
loops are unrolled.
"""

import pytest

from repro import compile_program

from helpers import run_all_ways

CACHE_LOOKUP = """
struct SetStructure { int tag; };
struct Line { SetStructure **sets; };
struct Cache { int blockSize; int numLines; Line **lines; int associativity; };

int cacheLookup(uint addr, Cache *cache) {
    dynamicRegion (cache) {
        uint blockSize = (uint)cache->blockSize;
        uint numLines = (uint)cache->numLines;
        uint tag = addr / (blockSize * numLines);
        uint line = (addr / blockSize) % numLines;
        SetStructure **setArray = cache->lines[line]->sets;
        int assoc = cache->associativity;
        int set;
        unrolled for (set = 0; set < assoc; set++) {
            if ((uint)setArray[set] dynamic-> tag == tag)
                return 1;
        }
        return 0;
    }
}

Cache *makeCache(int blockSize, int numLines, int assoc) {
    Cache *c = (Cache*)alloc(sizeof(Cache));
    c->blockSize = blockSize;
    c->numLines = numLines;
    c->associativity = assoc;
    c->lines = (Line**)alloc(numLines);
    int i;
    for (i = 0; i < numLines; i++) {
        Line *ln = (Line*)alloc(sizeof(Line));
        ln->sets = (SetStructure**)alloc(assoc);
        int j;
        for (j = 0; j < assoc; j++) {
            SetStructure *s = (SetStructure*)alloc(sizeof(SetStructure));
            s->tag = 0 - 1;
            ln->sets[j] = s;
        }
        c->lines[i] = ln;
    }
    return c;
}

int main() {
    Cache *c = makeCache(32, 64, 4);
    uint addr = 123456;
    c->lines[(addr / 32) % 64]->sets[2]->tag = (int)(addr / (32 * 64));
    int hits = 0;
    int a;
    for (a = 0; a < 3000; a += 137) {
        hits += cacheLookup((uint)a, c);
    }
    hits += cacheLookup(addr, c) * 100;
    print_int(hits);
    return hits;
}
"""


def test_cache_lookup_all_ways():
    value, _ = run_all_ways(CACHE_LOOKUP)
    assert value >= 100  # the planted address must hit


def test_simple_region_no_loop():
    run_all_ways("""
        int f(int c, int v) {
            dynamicRegion (c) {
                int d = c * 3 + 1;
                return d * v;
            }
        }
        int main() {
            int t = 0; int i;
            for (i = 0; i < 20; i++) t += f(7, i);
            return t;
        }
    """)


def test_region_with_const_branch():
    run_all_ways("""
        int f(int mode, int v) {
            dynamicRegion (mode) {
                int r;
                if (mode > 2) r = v * 10; else r = v + 1;
                return r;
            }
        }
        int main() {
            return f(5, 3) * 1000 + f(5, 4);
        }
    """)


def test_region_with_const_switch():
    # op varies between calls, so the region must be keyed on it.
    run_all_ways("""
        int f(int op, int a, int b) {
            dynamicRegion key(op) (op) {
                switch (op) {
                    case 0: return a + b;
                    case 1: return a - b;
                    case 2: return a * b;
                    default: return 0;
                }
            }
        }
        int main() {
            return f(2, 6, 7) * 100 + f(1, 9, 4) * 10 + f(9, 1, 1);
        }
    """)


def test_annotation_error_reuses_stale_specialization():
    # The paper's documented sharp edge: annotating a *varying* value as
    # a run-time constant (without key) silently reuses the first
    # specialization.  This pins down that behaviour.
    source = """
    int f(int op, int a, int b) {
        dynamicRegion (op) {
            if (op) return a + b;
            return a * b;
        }
    }
    int main() { return f(1, 2, 3) * 10 + f(0, 2, 3); }
    """
    static_result = compile_program(source, mode="static").run()
    dynamic_result = compile_program(source, mode="dynamic").run()
    assert static_result.value == 56      # 5*10 + 6
    assert dynamic_result.value == 55     # second call reuses op=1 code
    # and only one stitch happened:
    assert len(dynamic_result.stitch_reports) == 1


def test_unrolled_loop_region():
    run_all_ways("""
        int dot(int *xs, int n, int *ys) {
            dynamicRegion (xs, n) {
                int t = 0; int i;
                unrolled for (i = 0; i < n; i++) {
                    t += xs[i] * ys dynamic[ i ];
                }
                return t;
            }
        }
        int main() {
            int xs[4]; int ys[4]; int i;
            for (i = 0; i < 4; i++) { xs[i] = i + 1; ys[i] = 10 - i; }
            int t = 0;
            for (i = 0; i < 30; i++) t += dot(xs, 4, ys);
            return t;
        }
    """)


def test_region_used_by_multiple_callers_same_frame_safety():
    # The stitched code must not capture frame addresses.
    run_all_ways("""
        int f(int c) {
            int local[2];
            local[0] = c * 2;
            local[1] = c * 3;
            dynamicRegion (c) {
                return local[0] + local[1] + c;
            }
        }
        int main() {
            return f(10) + f(10) * 1000;
        }
    """)


def test_float_constants_in_region():
    run_all_ways("""
        float scale(float x, float factor) {
            dynamicRegion (factor) {
                float twice = factor * 2.0;
                return x * twice + factor;
            }
        }
        int main() {
            float t = 0.0; int i;
            for (i = 0; i < 10; i++) t = t + scale((float) i, 2.5);
            print_float(t);
            return (int) t;
        }
    """)


def test_region_return_of_constant():
    run_all_ways("""
        int f(int c) {
            dynamicRegion (c) {
                int d = c * c;
                return d;
            }
        }
        int main() { return f(9) + f(9); }
    """)


def test_constant_used_after_region():
    # Rematerialization: a run-time constant computed in the region and
    # used after it must be re-established by stitched code.
    run_all_ways("""
        int f(int c, int v) {
            int d = 0;
            dynamicRegion (c) {
                d = c * 5;
            }
            return d + v;
        }
        int main() { return f(4, 1) + f(4, 2) * 100; }
    """)


def test_region_with_stores():
    run_all_ways("""
        int f(int *out, int c, int v) {
            dynamicRegion (c) {
                out dynamic[ 0 ] = c * v;
                out dynamic[ 1 ] = c + v;
            }
            return out[0] + out[1];
        }
        int main() {
            int buffer[2];
            return f(buffer, 6, 7) + f(buffer, 6, 8) * 100;
        }
    """)


def test_two_regions_one_function():
    run_all_ways("""
        int f(int a, int b, int v) {
            int r1 = 0; int r2 = 0;
            dynamicRegion (a) {
                r1 = a * 2 + v;
            }
            dynamicRegion (b) {
                r2 = b * 3 + v;
            }
            return r1 * 100 + r2;
        }
        int main() { return f(3, 4, 1) + f(3, 4, 2); }
    """)


def test_nested_unrolled_loops():
    run_all_ways("""
        int f(int rows, int cols, int *m) {
            dynamicRegion (rows, cols, m) {
                int t = 0; int i; int j;
                unrolled for (i = 0; i < rows; i++) {
                    unrolled for (j = 0; j < cols; j++) {
                        t += m dynamic[ i * cols + j ];
                    }
                }
                return t;
            }
        }
        int main() {
            int m[6]; int i;
            for (i = 0; i < 6; i++) m[i] = i * i;
            return f(2, 3, m) + f(2, 3, m) * 100;
        }
    """)


def test_keyed_region_caches_per_key():
    source = """
    int scale(int v, int s) {
        dynamicRegion key(s) (s) {
            return v * s;
        }
    }
    int main() {
        int t = 0; int i;
        for (i = 0; i < 10; i++) {
            t += scale(i, 3) + scale(i, 5) + scale(i, 3);
        }
        return t;
    }
    """
    run_all_ways(source)
    program = compile_program(source, mode="dynamic")
    result = program.run()
    # exactly one stitch per distinct key value
    assert len(result.stitch_reports) == 2
    assert sorted(r.key for r in result.stitch_reports) == [(3,), (5,)]


def test_setup_runs_once_per_key():
    source = """
    int f(int c, int v) {
        dynamicRegion (c) {
            int d = c * 7;
            return d + v;
        }
    }
    int main() {
        int t = 0; int i;
        for (i = 0; i < 100; i++) t += f(6, i);
        return t;
    }
    """
    program = compile_program(source, mode="dynamic")
    result = program.run()
    assert len(result.stitch_reports) == 1
    breakdown = result.region_cycles("f", 1, "dynamic")
    # set-up + stitcher are one-time; stitched code dominates.
    assert breakdown["stitched"] > breakdown["setup"]
    assert breakdown["dispatch"] > 0


def test_const_branch_dead_code_not_emitted():
    source = """
    int f(int mode, int v) {
        dynamicRegion (mode) {
            if (mode) { return v * 1111; }
            return v * 2222;
        }
    }
    int main() { return f(1, 2); }
    """
    program = compile_program(source, mode="dynamic")
    result = program.run()
    (report,) = result.stitch_reports
    assert report.const_branches_resolved == 1
    assert report.dead_sides_eliminated >= 1
    template_size = program.template_size("f", 1)
    assert report.instrs_emitted < template_size


def test_unrolled_loop_iterations_reported():
    source = """
    int f(int n, int *data) {
        int t = 0;
        dynamicRegion (n) {
            int i;
            unrolled for (i = 0; i < n; i++) t += data dynamic[ i ];
            return t;
        }
    }
    int main() {
        int data[5]; int i;
        for (i = 0; i < 5; i++) data[i] = i;
        return f(5, data);
    }
    """
    program = compile_program(source, mode="dynamic")
    result = program.run()
    (report,) = result.stitch_reports
    # 5 body iterations + the final (false-predicate) record.
    assert report.loop_iterations == {1: 6}
    assert report.optimizations_applied()["complete_loop_unrolling"]


def test_reachability_ablation_still_correct():
    # Turning off the reachability analysis loses optimization but must
    # not change results.
    program = compile_program(CACHE_LOOKUP, mode="dynamic",
                              use_reachability=False)
    result = program.run()
    reference = compile_program(CACHE_LOOKUP, mode="static").run()
    assert result.value == reference.value
