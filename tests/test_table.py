"""Run-time constants table plan unit tests."""

from repro.dynamic.table import LoopPlan, TablePlan


def make_plan():
    plan = TablePlan(region_id=1)
    plan.slots = {"c0": 0, "c1": 1}
    outer = LoopPlan(loop_id=1, header="H1", latch="L1", entry_pred="E",
                     body=["H1", "B1", "L1"], parent=None, head_slot=2,
                     predicate="p1")
    outer.slots = {"i": 1, "w": 2}
    inner = LoopPlan(loop_id=2, header="H2", latch="L2", entry_pred="B1",
                     body=["H2", "B2", "L2"], parent=1, predicate="p2")
    inner.slots = {"j": 1}
    outer.inner_head_slots[2] = 3
    inner.head_slot = 3
    plan.loops = {1: outer, 2: inner}
    plan.top_size = 3
    return plan


def test_slot_of_top_level():
    plan = make_plan()
    assert plan.slot_of("c0") == (None, 0)
    assert plan.slot_of("c1") == (None, 1)


def test_slot_of_iteration_constant():
    plan = make_plan()
    assert plan.slot_of("i") == (1, 1)
    assert plan.slot_of("j") == (2, 1)


def test_slot_of_predicate_is_record_zero():
    plan = make_plan()
    assert plan.slot_of("p1") == (1, 0)
    assert plan.slot_of("p2") == (2, 0)


def test_slot_of_unknown():
    plan = make_plan()
    assert plan.slot_of("ghost") is None


def test_record_size_counts_all_parts():
    plan = make_plan()
    outer = plan.loops[1]
    # predicate + 2 constants + 1 nested head + next pointer
    assert outer.record_size == 5
    assert outer.next_offset == 4
    inner = plan.loops[2]
    assert inner.record_size == 3  # predicate + j + next
    assert inner.next_offset == 2


def test_loop_of_header():
    plan = make_plan()
    assert plan.loop_of_header("H2").loop_id == 2
    assert plan.loop_of_header("nope") is None
