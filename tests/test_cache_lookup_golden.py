"""Golden tests for the paper's worked example (sections 2-4).

The cache-lookup routine, compiled for a 512-line, 32-byte-block,
4-way set-associative cache, must stitch into code with the shape the
paper shows at the end of section 4:

* ``tag = addr >> 14`` -- the division by blockSize*numLines became a
  shift;
* ``line = (addr >> 5) & 511`` -- division and modulus became shift
  and mask;
* four unrolled probe copies, one per way;
* no loads of cache geometry (blockSize/numLines/associativity) remain.
"""

import pytest

from repro import compile_program

SOURCE = """
struct SetStructure { int tag; };
struct Line { SetStructure **sets; };
struct Cache { int blockSize; int numLines; Line **lines; int associativity; };

int cacheLookup(uint addr, Cache *cache) {
    dynamicRegion (cache) {
        uint blockSize = (uint)cache->blockSize;
        uint numLines = (uint)cache->numLines;
        uint tag = addr / (blockSize * numLines);
        uint line = (addr / blockSize) % numLines;
        SetStructure **setArray = cache->lines[line]->sets;
        int assoc = cache->associativity;
        int set;
        unrolled for (set = 0; set < assoc; set++) {
            if ((uint)setArray[set] dynamic-> tag == tag)
                return 1;
        }
        return 0;
    }
}

Cache *makeCache(int blockSize, int numLines, int assoc) {
    Cache *c = (Cache*)alloc(sizeof(Cache));
    c->blockSize = blockSize;
    c->numLines = numLines;
    c->associativity = assoc;
    c->lines = (Line**)alloc(numLines);
    int i;
    for (i = 0; i < numLines; i++) {
        Line *ln = (Line*)alloc(sizeof(Line));
        ln->sets = (SetStructure**)alloc(assoc);
        int j;
        for (j = 0; j < assoc; j++) {
            SetStructure *s = (SetStructure*)alloc(sizeof(SetStructure));
            s->tag = 0 - 1;
            ln->sets[j] = s;
        }
        c->lines[i] = ln;
    }
    return c;
}

int main() {
    Cache *c = makeCache(32, 512, 4);
    int r0 = cacheLookup(123456, c);           // miss
    c->lines[(123456 / 32) % 512]->sets[3]->tag = 123456 / (32 * 512);
    int r1 = cacheLookup(123456, c);           // hit in way 3
    return r1 * 10 + r0;
}
"""


@pytest.fixture(scope="module")
def run():
    program = compile_program(SOURCE, mode="dynamic")
    result = program.run()
    return program, result


def stitched_code(program, result):
    """The installed stitched instructions for the one region."""
    # Re-run on a persistent VM to inspect its code memory.
    from repro.machine.loader import load_program
    from repro.machine.vm import VM
    from repro.runtime.engine import _RegionRuntime
    vm = VM()
    program.layout.write_into(vm)
    load_program(vm, program.compiled)
    runtime = _RegionRuntime(program, vm)
    vm.rt_handlers["region_lookup"] = runtime.lookup
    vm.rt_handlers["region_stitch"] = runtime.stitch
    vm.run(program.compiled["main"].base)
    (report,) = runtime.reports
    end = len(vm.code)
    return vm.code[report.entry:end], report


def test_result_correct(run):
    _, result = run
    assert result.value == 10  # miss then hit


def test_single_stitch(run):
    _, result = run
    assert len(result.stitch_reports) == 1


def test_divisions_became_shifts(run):
    program, result = run
    code, report = stitched_code(program, result)
    ops = [i.op for i in code]
    assert "udivq" not in ops
    assert "uremq" not in ops
    assert "divq" not in ops
    shifts = [i for i in code if i.op == "srl"]
    assert len(shifts) >= 2
    # tag = addr >> 14 (blockSize * numLines = 16384 = 2^14)
    assert any(i.imm == 14 for i in shifts)
    # line = (addr >> 5) & 511
    assert any(i.imm == 5 for i in shifts)
    assert any(i.op == "and" and i.imm == 511 for i in code)


def test_strength_reduction_events(run):
    _, result = run
    (report,) = result.stitch_reports
    assert report.peepholes.get("div_to_shift") == 2
    assert report.peepholes.get("mod_to_and") == 1


def test_loop_fully_unrolled_four_ways(run):
    _, result = run
    (report,) = result.stitch_reports
    # 4 body iterations plus the final (false) record.
    assert report.loop_iterations == {1: 5}
    program, _ = run
    code, _ = stitched_code(program, result)
    # four probe loads of the dynamic tag field
    dynamic_probes = [i for i in code if i.op == "ldq" and i.imm == 0
                      and i.ra not in (31,)]
    assert len([i for i in code if i.op == "ldq"]) >= 4


def test_no_geometry_loads_remain(run):
    # blockSize, numLines, associativity and cache->lines were all
    # folded into the code: the only remaining loads walk the per-line
    # sets and read the (dynamic) tags.
    program, result = run
    code, report = stitched_code(program, result)
    loads = [i for i in code if i.op in ("ldq", "ldt")]
    # per paper: the cache->lines pointer is a large constant fetched
    # from the linearized table (1 load), setArray is computed from
    # lines[line] (2 loads), and each of the 4 probes reads setArray[k]
    # and its (dynamic) tag (2 loads each).
    assert len(loads) <= 1 + 2 + 4 * 2
    assert report.holes_patched >= 5


def test_constant_folding_reported(run):
    _, result = run
    (report,) = result.stitch_reports
    opts = report.optimizations_applied()
    assert opts["constant_folding"]
    assert opts["complete_loop_unrolling"]
    assert opts["strength_reduction"]
    # The only constant branch is the unrolled loop's termination test,
    # which counts as unrolling rather than branch elimination.
    assert not opts["static_branch_elimination"]


def test_overhead_accounted(run):
    _, result = run
    breakdown = result.region_cycles("cacheLookup", 1, "dynamic")
    assert breakdown["stitcher"] > 0
    assert breakdown["setup"] > 0
    (report,) = result.stitch_reports
    assert report.cycles == breakdown["stitcher"]
    assert report.directives > 10


def test_speedup_over_static():
    dynamic = compile_program(SOURCE, mode="dynamic")
    static = compile_program(SOURCE, mode="static")
    probes = """
    int drive(Cache *c) {
        int t = 0; int a;
        for (a = 0; a < 40000; a += 61) t += cacheLookup((uint)a, c);
        return t;
    }
    """
    src2 = SOURCE.replace("int main()", probes + "\nint main()").replace(
        "return r1 * 10 + r0;", "drive(c); return r1 * 10 + r0;")
    rd = compile_program(src2, mode="dynamic").run()
    rs = compile_program(src2, mode="static").run()
    assert rd.value == rs.value
    static_cycles = rs.region_cycles("cacheLookup", 1, "static")["region"]
    stitched = rd.region_cycles("cacheLookup", 1, "dynamic")["stitched"]
    assert stitched < static_cycles  # asymptotic win
