"""Reachability-condition (DNF of branch outcomes) algebra tests.

These exercise the representation of section 3.1 / appendix A.2,
including the paper's simplification rule
``{{A->T,cs}, {A->F,cs}, ds} -> {{cs}, ds}``.
"""

from repro.analysis.conditions import (
    Condition, FALSE, MAX_DISJUNCTS, TRUE, and_atom, drop_branch, exclusive,
    or_, pairwise_exclusive, simplify,
)


def cond(*conjuncts):
    return Condition(frozenset(frozenset(c) for c in conjuncts))


A_T = ("A", "T")
A_F = ("A", "F")
B_1 = ("B", "1")
B_2 = ("B", "2")
B_3 = ("B", "3")

ARITY = {"A": 2, "B": 3}


def test_true_and_false():
    assert TRUE.is_true()
    assert not TRUE.is_false()
    assert FALSE.is_false()
    assert not FALSE.is_true()


def test_and_atom_on_true():
    assert and_atom(TRUE, A_T) == cond([A_T])


def test_and_atom_contradiction_eliminates_disjunct():
    # (A->T) AND (A->F) is unsatisfiable.
    assert and_atom(cond([A_T]), A_F).is_false()


def test_and_atom_distributes():
    c = cond([A_T], [A_F, B_1])
    result = and_atom(c, B_2)
    assert result == cond([A_T, B_2])  # second disjunct contradicted B->1


def test_or_unions_disjuncts():
    assert or_(cond([A_T]), cond([A_F, B_1]), ARITY) == \
        cond([A_T], [A_F, B_1])


def test_or_with_false_is_identity():
    c = cond([A_T])
    assert or_(c, FALSE, ARITY) == c


def test_or_with_true_is_true():
    assert or_(cond([A_T]), TRUE, ARITY).is_true()


def test_paper_merge_rule():
    # {{A->T}, {A->F}} -> true: both outcomes covered.
    assert or_(cond([A_T]), cond([A_F]), ARITY).is_true()


def test_paper_merge_rule_with_residue():
    # {{A->T,B->1}, {A->F,B->1}} -> {{B->1}}.
    merged = or_(cond([A_T, B_1]), cond([A_F, B_1]), ARITY)
    assert merged == cond([B_1])


def test_nway_merge_needs_all_cases():
    partial = or_(cond([B_1]), cond([B_2]), ARITY)
    assert partial == cond([B_1], [B_2])  # B has 3 successors
    full = or_(partial, cond([B_3]), ARITY)
    assert full.is_true()


def test_absorption():
    # {{A->T}, {A->T, B->1}} -> {{A->T}}.
    c = simplify(cond([A_T], [A_T, B_1]), ARITY)
    assert c == cond([A_T])


def test_exclusive_same_branch_different_successors():
    assert exclusive(cond([A_T]), cond([A_F]))
    assert exclusive(cond([B_1]), cond([B_2]))


def test_not_exclusive_same_condition():
    assert not exclusive(cond([A_T]), cond([A_T]))


def test_not_exclusive_independent_branches():
    assert not exclusive(cond([A_T]), cond([B_1]))


def test_exclusive_with_false():
    assert exclusive(FALSE, TRUE)
    assert exclusive(FALSE, FALSE)


def test_exclusive_needs_every_disjunct_pair():
    left = cond([A_T], [B_1])
    right = cond([A_F])
    # disjunct {B->1} is compatible with {A->F}.
    assert not exclusive(left, right)


def test_exclusive_disjunction_pairs():
    # The paper's unstructured example: {{a->T}} vs {{a->F,b->1},{a->F,b->2}}.
    left = cond([A_T])
    right = cond([A_F, B_1], [A_F, B_2])
    assert exclusive(left, right)


def test_pairwise_exclusive():
    assert pairwise_exclusive([cond([B_1]), cond([B_2]), cond([B_3])])
    assert not pairwise_exclusive([cond([B_1]), cond([B_2]), cond([B_2])])


def test_drop_branch():
    c = cond([A_T, B_1], [A_F])
    dropped = drop_branch(c, "A", {"B": 3})
    # {A->F} loses its only atom, leaving an empty (true) disjunct that
    # absorbs everything else.
    assert dropped.is_true()


def test_drop_branch_keeps_other_atoms():
    c = cond([A_T, B_1])
    dropped = drop_branch(c, "A", {"B": 3})
    assert dropped == cond([B_1])


def test_widening_to_true():
    big = Condition(frozenset(
        frozenset([("C%d" % i, "T")]) for i in range(MAX_DISJUNCTS + 1)
    ))
    arity = {"C%d" % i: 2 for i in range(MAX_DISJUNCTS + 1)}
    assert simplify(big, arity).is_true()


def test_repr_stable():
    assert repr(TRUE) == "true"
    assert repr(FALSE) == "false"
    assert "A->T" in repr(cond([A_T]))
