"""Register-actions (section 5 extension) tests."""

import pytest

from repro import compile_program

from helpers import interp_run

STACK_MACHINE = """
int run(int *prog, int n, int x) {
    int stack[8];
    dynamicRegion (prog, n) {
        int sp = 0;
        int pc;
        unrolled for (pc = 0; pc < n; pc++) {
            int op = prog[pc * 2];
            int arg = prog[pc * 2 + 1];
            switch (op) {
                case 0: stack[sp] = arg; sp = sp + 1; break;
                case 1: stack[sp] = x; sp = sp + 1; break;
                case 2: sp = sp - 1;
                        stack[sp - 1] = stack[sp - 1] + stack[sp]; break;
                case 3: sp = sp - 1;
                        stack[sp - 1] = stack[sp - 1] * stack[sp]; break;
            }
        }
        return stack[sp - 1];
    }
}

int main(int x) {
    int prog[10];
    prog[0] = 1; prog[1] = 0;    // push x
    prog[2] = 0; prog[3] = 3;    // push 3
    prog[4] = 3; prog[5] = 0;    // mul
    prog[6] = 0; prog[7] = 5;    // push 5
    prog[8] = 2; prog[9] = 0;    // add  -> 3x + 5
    int t = 0; int i;
    for (i = 0; i < 10; i++) t += run(prog, 5, x + i);
    return t;
}
"""


def expected_value(x):
    return sum(3 * (x + i) + 5 for i in range(10))


@pytest.fixture(scope="module")
def programs():
    plain = compile_program(STACK_MACHINE, mode="dynamic")
    actions = compile_program(STACK_MACHINE, mode="dynamic",
                              register_actions=True)
    return plain, actions


def test_results_identical(programs):
    plain, actions = programs
    for x in (0, 4, -3, 100):
        expected = expected_value(x)
        assert plain.run(args=[x]).value == expected
        assert actions.run(args=[x]).value == expected


def test_elements_promoted(programs):
    _, actions = programs
    result = actions.run(args=[2])
    (report,) = result.stitch_reports
    stats = report.reg_actions
    assert stats["elements_promoted"] >= 2
    assert stats["loads_rewritten"] > 0
    assert stats["stores_rewritten"] > 0
    assert stats["addr_calcs_removed"] > 0


def test_promotion_reduces_cycles(programs):
    plain, actions = programs
    plain_run = plain.run(args=[2])
    actions_run = actions.run(args=[2])
    plain_cycles = plain_run.region_cycles("run", 1, "dynamic")["stitched"]
    action_cycles = actions_run.region_cycles("run", 1, "dynamic")["stitched"]
    assert action_cycles < plain_cycles


def test_promotion_shrinks_code(programs):
    plain, actions = programs
    plain_report = plain.run(args=[1]).stitch_reports[0]
    action_report = actions.run(args=[1]).stitch_reports[0]
    assert action_report.instrs_emitted < plain_report.instrs_emitted


def test_no_promotion_without_flag(programs):
    plain, _ = programs
    (report,) = plain.run(args=[1]).stitch_reports
    assert report.reg_actions == {}


def test_candidates_detected(programs):
    _, actions = programs
    (region,) = actions.region_codes()
    assert region.promotable_arrays  # the stack array
    assert region.free_registers     # reserved by the allocator


def test_array_escaping_region_not_promoted():
    # The array is read after the region: promotion would leave memory
    # stale, so the array must be disqualified -- and results stay right.
    source = """
    int f(int c, int v) {
        int buffer[4];
        dynamicRegion (c) {
            buffer[0] = c * v;
            buffer[1] = c + v;
        }
        return buffer[0] + buffer[1];
    }
    int main() { return f(3, 4) + f(3, 5) * 100; }
    """
    expected, _ = interp_run(source)
    program = compile_program(source, mode="dynamic", register_actions=True)
    result = program.run()
    assert result.value == expected
    (region,) = program.region_codes()
    assert region.promotable_arrays == []


def test_variable_index_disqualifies_array():
    # stack[v] with a run-time variable index cannot be promoted.
    source = """
    int f(int c, int v) {
        int table[4];
        dynamicRegion (c) {
            table[v & 3] = c;
            table[0] = table[0] + c;
            return table[v & 3] + table[0];
        }
    }
    int main() { return f(5, 0) + f(5, 2); }
    """
    expected, _ = interp_run(source)
    program = compile_program(source, mode="dynamic", register_actions=True)
    assert program.run().value == expected
    (region,) = program.region_codes()
    assert region.promotable_arrays == []


def test_float_array_not_promoted():
    source = """
    int f(int c, float v) {
        float acc[2];
        dynamicRegion (c) {
            int i;
            unrolled for (i = 0; i < c; i++) {
                acc[0] = v * 2.0;
                acc[1] = acc[0] + v;
            }
            return (int)(acc[0] + acc[1]);
        }
    }
    int main() { return f(2, 3.0); }
    """
    expected, _ = interp_run(source)
    program = compile_program(source, mode="dynamic", register_actions=True)
    assert program.run().value == expected
    (region,) = program.region_codes()
    assert region.promotable_arrays == []


def test_register_actions_with_keyed_region():
    source = """
    int f(int k, int v) {
        int scratch[2];
        dynamicRegion key(k) (k) {
            scratch[0] = v * k;
            scratch[1] = scratch[0] + k;
            return scratch[1];
        }
    }
    int main() { return f(2, 10) + f(3, 10) * 1000; }
    """
    expected, _ = interp_run(source)
    program = compile_program(source, mode="dynamic", register_actions=True)
    result = program.run()
    assert result.value == expected
    assert len(result.stitch_reports) == 2
    for report in result.stitch_reports:
        assert report.reg_actions.get("elements_promoted", 0) >= 1
