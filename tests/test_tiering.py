"""Adaptive-tiering tests: the TierPolicy spec language, the eager
bit-identity guarantee, exact threshold promotion boundaries, the
breakeven economics, speculative key-versioning bounds, the
breaker/tiering precedence, the ``tier.flip`` chaos site, and the
hotness-weighted eviction hook.

The central claims under test:

* ``eager`` (the default) never constructs a controller -- every
  observable is bit-identical to the pre-tiering engine;
* adaptive runs change *when* regions stitch, never *what* they
  compute: values always match the static build;
* every region entry is accounted for:
  ``entries == cache hits + stitches + fallbacks + cold entries``.
"""

import pytest

from repro import BreakerConfig, FaultPlan, compile_program
from repro.bench.cachepressure import compile_pressure_program
from repro.codecache import CacheConfig
from repro.codecache.policy import CostAwarePolicy
from repro.runtime.tiering import (
    TIER_COUNTER_CYCLES, TIER_DECIDE_CYCLES, TierPolicy,
)
from repro.testing.oracle import run_oracle

#: n entries round-robin over m keys: every key sees the same count,
#: which makes threshold boundaries exact.
ROUND_ROBIN = """
int region(int k, int v) {
    int t = v;
    dynamicRegion key(k) (k) {
        int r = t * 3 + k * 5;
        return r;
    }
}

int main(int n, int m) {
    int t = 0;
    int i;
    for (i = 0; i < n; i++) {
        t = t + region(i % m, i);
    }
    return t;
}
"""


def round_robin_value(n, m):
    return sum(i * 3 + (i % m) * 5 for i in range(n))


#: One hot key (0) entered ``hot`` times, then ``tail`` keys entered
#: once each -- the reuse profile breakeven exists to exploit.  The
#: unrolled loop makes cold (fallback-tier) entries genuinely cost
#: more than stitched ones.
SKEWED = """
int region(int k, int v) {
    int t = v;
    dynamicRegion key(k) (k) {
        int i;
        unrolled for (i = 0; i < k + 2; i++) t += i * k + 1;
        return t;
    }
}

int main(int hot, int tail) {
    int t = 0;
    int i;
    for (i = 0; i < hot; i++) t = t + region(0, i);
    for (i = 0; i < tail; i++) t = t + region(i + 1, i);
    return t;
}
"""

#: Keys 1..3 seen once, then key 0 three times (promotes at its 3rd
#: entry under threshold:3), then keys 1..3 again: their second entries
#: land *under* the threshold, so only a speculative mark can stitch
#: them.
SPECULATE = """
int region(int k, int v) {
    int t = v;
    dynamicRegion key(k) (k) {
        int r = t * 3 + k * 5;
        return r;
    }
}

int main() {
    int t = 0;
    int i;
    for (i = 0; i < 3; i++) t = t + region(i + 1, i);
    for (i = 0; i < 3; i++) t = t + region(0, i);
    for (i = 0; i < 3; i++) t = t + region(i + 1, i + 10);
    return t;
}
"""


def static_value(source, args=None):
    return compile_program(source, mode="static").run("main", args).value


# -- the spec language --------------------------------------------------------

def test_parse_defaults_and_round_trips():
    assert TierPolicy.parse(None) == TierPolicy()
    assert TierPolicy.parse("") == TierPolicy()
    assert TierPolicy.parse("eager") == TierPolicy()
    assert not TierPolicy().adaptive
    policy = TierPolicy(mode="threshold", threshold=3)
    assert TierPolicy.parse(policy) is policy  # instance passthrough
    for spec, expected in [
        ("threshold:3", TierPolicy(mode="threshold", threshold=3)),
        ("breakeven", TierPolicy(mode="breakeven")),
        ("breakeven:64", TierPolicy(mode="breakeven", horizon=64)),
        ("threshold:4,spec=2,versions=3",
         TierPolicy(mode="threshold", threshold=4, speculate=2,
                    max_versions=3)),
        ("breakeven:32,speedup=1.5",
         TierPolicy(mode="breakeven", horizon=32, assumed_speedup=1.5)),
    ]:
        parsed = TierPolicy.parse(spec)
        assert parsed == expected, spec
        assert parsed.adaptive
        # describe() round-trips through parse().
        assert TierPolicy.parse(parsed.describe()) == parsed, spec
    assert TierPolicy().describe() == "eager"
    assert TierPolicy.parse("threshold:2,spec=1").describe() \
        == "threshold:2,spec=1,versions=4"


@pytest.mark.parametrize("spec", [
    "sometimes",            # unknown mode
    "threshold:two",        # non-integer argument
    "eager:3",              # eager takes no argument
    "threshold:2,nope=1",   # unknown option
    "threshold:2,spec",     # option without a value
    "breakeven:8,speedup=fast",  # non-float option value
])
def test_parse_rejects_bad_specs(spec):
    with pytest.raises(ValueError):
        TierPolicy.parse(spec)


def test_policy_field_validation():
    with pytest.raises(ValueError):
        TierPolicy(mode="threshold", threshold=0)
    with pytest.raises(ValueError):
        TierPolicy(mode="breakeven", horizon=0)
    with pytest.raises(ValueError):
        TierPolicy(mode="breakeven", assumed_speedup=1.0)
    with pytest.raises(ValueError):
        TierPolicy(mode="threshold", speculate=-1)


def test_with_mode():
    policy = TierPolicy.parse("threshold:3,spec=1")
    eager = policy.with_mode("eager")
    assert not eager.adaptive
    assert eager.threshold == 3 and eager.speculate == 1


# -- eager: the bit-identity guarantee ----------------------------------------

def test_eager_tier_is_bit_identical():
    """``tier="eager"`` must not merely compute the same value -- every
    simulated observable must match a run that never heard of tiering,
    and no tiering state may appear in the result."""
    program = compile_program(ROUND_ROBIN, mode="dynamic")
    baseline = program.run("main", [10, 2])
    eager = program.run("main", [10, 2], tier="eager")
    assert eager.value == baseline.value
    assert eager.cycles == baseline.cycles
    assert eager.cycles_by_owner == baseline.cycles_by_owner
    assert eager.instrs_by_owner == baseline.instrs_by_owner
    assert eager.op_counts == baseline.op_counts
    assert eager.tier_stats == {} and eager.cold_entries == []
    assert not any(owner.startswith("tier:")
                   for owner in eager.cycles_by_owner)


def test_eager_never_consults_tier_flip():
    """The ``tier.flip`` site is only consulted by adaptive decisions;
    an eager run under a 100% flip plan must be bit-identical to a
    fault-free run (no draws consumed, nothing injected)."""
    program = compile_program(ROUND_ROBIN, mode="dynamic")
    baseline = program.run("main", [10, 2])
    flipped = program.run("main", [10, 2],
                          fault_plan=FaultPlan({"tier.flip": 1.0}))
    assert flipped.value == baseline.value
    assert flipped.cycles == baseline.cycles
    assert flipped.cycles_by_owner == baseline.cycles_by_owner
    assert flipped.fault_counts == {}


# -- threshold mode -----------------------------------------------------------

def test_threshold_promotes_at_exact_boundary():
    """threshold:3, two keys, five entries each: entries 1-2 of every
    key run cold, entry 3 stitches, entries 4-5 hit the cache."""
    program = compile_program(ROUND_ROBIN, mode="dynamic")
    result = program.run("main", [10, 2], tier="threshold:3")
    assert result.value == round_robin_value(10, 2)
    assert len(result.stitch_reports) == 2
    assert sorted(r.key for r in result.stitch_reports) == [(0,), (1,)]
    # Cold entries carry the key's 1-based count at the time it ran
    # cold: exactly counts 1 and 2, for each key.
    colds = sorted((c.key, c.count) for c in result.cold_entries)
    assert colds == [((0,), 1), ((0,), 2), ((1,), 1), ((1,), 2)]
    assert result.cache_stats.hits == 4
    stats = result.tier_stats[("region", 1)]
    assert stats["mode"] == "threshold:3"
    assert stats["keys"] == 2 and stats["keys_promoted"] == 2
    assert stats["cold_entries"] == 4 and stats["promotions"] == 2
    assert stats["demotions"] == 0 and stats["decision_flips"] == 0
    assert stats["counters"] == {"[0]": 5, "[1]": 5}
    # Every entry accounted for.
    assert sum(result.region_entries.values()) \
        == result.cache_stats.hits + len(result.stitch_reports) \
        + len(result.fallbacks) + len(result.cold_entries)


def test_threshold_one_stitches_every_first_entry():
    """threshold:1 promotes on first entry -- no cold entries, the
    same stitch schedule as eager, but the adaptive bookkeeping is
    visibly charged to the ``tier:`` owner."""
    program = compile_program(ROUND_ROBIN, mode="dynamic")
    eager = program.run("main", [10, 2])
    tiered = program.run("main", [10, 2], tier="threshold:1")
    assert tiered.value == eager.value
    assert tiered.cold_entries == []
    assert len(tiered.stitch_reports) == len(eager.stitch_reports)
    assert tiered.cycles > eager.cycles
    assert tiered.cycles_by_owner["tier:region:1"] > 0


def test_tier_owner_accounting_is_exact():
    """The ``tier:`` owner charges exactly counter-maintenance per
    entry plus the decision cost per cache miss -- nothing hidden."""
    program = compile_program(ROUND_ROBIN, mode="dynamic")
    result = program.run("main", [12, 3], tier="threshold:2")
    entries = sum(result.region_entries.values())
    misses = len(result.stitch_reports) + len(result.cold_entries) \
        + len(result.fallbacks)
    assert result.cycles_by_owner["tier:region:1"] \
        == entries * TIER_COUNTER_CYCLES + misses * TIER_DECIDE_CYCLES


# -- breakeven mode -----------------------------------------------------------

def test_breakeven_promotes_hot_key_only():
    """One hot key and a one-shot tail: breakeven stitches exactly the
    hot key (after measuring it) and keeps every tail key cold."""
    program = compile_program(SKEWED, mode="dynamic")
    result = program.run("main", [60, 5], tier="breakeven")
    assert result.value == static_value(SKEWED, [60, 5])
    assert [r.key for r in result.stitch_reports] == [(0,)]
    stats = result.tier_stats[("region", 1)]
    assert stats["keys"] == 6 and stats["keys_promoted"] == 1
    assert stats["promoted_keys"] == ["[0]"]
    # Tail keys (one entry each) all ran cold; the hot key ran cold
    # only while under measurement / below its predicted break-even.
    tail_colds = [c for c in result.cold_entries if c.key != (0,)]
    assert len(tail_colds) == 5
    assert all(c.count == 1 for c in tail_colds)


def test_breakeven_promotion_respects_predicted_breakeven():
    """The hot key promotes only after its entry count clears the
    recorded prediction ``B`` (promote at the B+1-th entry): its cold
    entries number exactly ``B``."""
    program = compile_program(SKEWED, mode="dynamic")
    result = program.run("main", [60, 5], tier="breakeven")
    stats = result.tier_stats[("region", 1)]
    predicted = stats["predicted_breakeven_by_key"]["[0]"]
    assert predicted == stats["predicted_breakeven"]
    assert 1 <= predicted <= 59
    hot_colds = [c for c in result.cold_entries if c.key == (0,)]
    assert len(hot_colds) == predicted
    assert [c.count for c in hot_colds] == list(range(1, predicted + 1))
    # The stitched entry's hotness follows the key's live count.
    assert stats["counters"]["[0]"] == 60


def test_breakeven_horizon_blocks_promotion():
    """A speedup estimate barely above 1 makes every predicted
    break-even count huge; with a 1-entry horizon nothing may promote
    -- and the program must still be correct, all entries cold."""
    program = compile_program(SKEWED, mode="dynamic")
    result = program.run("main", [12, 3],
                         tier="breakeven:1,speedup=1.01")
    assert result.value == static_value(SKEWED, [12, 3])
    assert result.stitch_reports == []
    assert len(result.cold_entries) == 15
    stats = result.tier_stats[("region", 1)]
    assert stats["keys_promoted"] == 0 and stats["promotions"] == 0


# -- speculative key-versioning -----------------------------------------------

def test_speculation_marks_hottest_siblings():
    """When key 0 earns promotion, spec=2 marks its two hottest cold
    siblings (count ties break toward the smaller key: 1 and 2); their
    next entries stitch speculatively, below the threshold.  Key 3
    stays cold -- the budget is spent."""
    program = compile_program(SPECULATE, mode="dynamic")
    result = program.run(tier="threshold:3,spec=2")
    assert result.value == static_value(SPECULATE)
    assert sorted(r.key for r in result.stitch_reports) \
        == [(0,), (1,), (2,)]
    stats = result.tier_stats[("region", 1)]
    assert stats["promotions"] == 3
    assert stats["speculative_promotions"] == 2
    assert stats["promoted_keys"] == ["[0]", "[1]", "[2]"]
    assert ((3,), 2) in [(c.key, c.count) for c in result.cold_entries]


def test_speculation_bounded_by_max_versions():
    """spec=2 but versions=1: only one mark may be handed out."""
    program = compile_program(SPECULATE, mode="dynamic")
    result = program.run(tier="threshold:3,spec=2,versions=1")
    assert result.value == static_value(SPECULATE)
    stats = result.tier_stats[("region", 1)]
    assert stats["speculative_promotions"] == 1
    assert sorted(r.key for r in result.stitch_reports) == [(0,), (1,)]


def test_no_speculation_by_default():
    """Without spec=K, sibling keys wait out their own threshold (and
    never reach it on this workload)."""
    program = compile_program(SPECULATE, mode="dynamic")
    result = program.run(tier="threshold:3")
    assert result.value == static_value(SPECULATE)
    assert [r.key for r in result.stitch_reports] == [(0,)]
    stats = result.tier_stats[("region", 1)]
    assert stats["speculative_promotions"] == 0
    assert stats["keys_promoted"] == 1


# -- chaos: tier.flip ---------------------------------------------------------

def test_tier_flip_is_economically_wrong_never_semantically():
    """A 100% flip plan inverts every promotion decision: threshold:1
    would stitch every first entry, so the flipped run stitches
    *nothing* -- and still computes the right answer, cold."""
    program = compile_program(ROUND_ROBIN, mode="dynamic")
    result = program.run("main", [10, 2], tier="threshold:1",
                         fault_plan=FaultPlan({"tier.flip": 1.0}))
    assert result.value == round_robin_value(10, 2)
    assert result.stitch_reports == []
    assert len(result.cold_entries) == 10
    assert not result.fallbacks  # cold is policy, not degradation
    stats = result.tier_stats[("region", 1)]
    assert stats["decision_flips"] == 10
    assert result.fault_counts == {"tier.flip": 10}


def test_failed_speculative_stitch_counts_demotion():
    """A marked (promotion-eligible) key whose speculative stitch hits
    an injected fault lands on the degradation fallback and is counted
    as a demotion -- and the program is still correct.  Seed 22 is a
    draw sequence where key 0's earned stitch succeeds and both marked
    siblings' speculative stitches fault."""
    program = compile_program(SPECULATE, mode="dynamic")
    result = program.run(
        tier="threshold:3,spec=2",
        fault_plan=FaultPlan({"stitch.hole": 0.5}, seed=22))
    assert result.value == static_value(SPECULATE)
    assert [r.key for r in result.stitch_reports] == [(0,)]
    assert sorted(e.key for e in result.fallbacks) == [(1,), (2,)]
    assert all(e.reason == "fault" for e in result.fallbacks)
    stats = result.tier_stats[("region", 1)]
    assert stats["demotions"] == 2
    assert stats["speculative_promotions"] == 0


# -- breaker / tiering precedence ---------------------------------------------

#: Fresh key per entry: every entry is a stitch attempt.
FRESH_KEYS = """
int region(int k, int v) {
    int t = v;
    dynamicRegion key(k) (k) {
        int i;
        unrolled for (i = 0; i < k + 2; i++) t += i * k + 1;
        return t;
    }
}

int main(int n) {
    int t = 0;
    int i;
    for (i = 0; i < n; i++) t = t + region(i, i);
    return t;
}
"""


def test_breaker_outranks_tiering():
    """A tripped breaker serves entries from the degradation fallback
    *before* the tier policy is consulted: mid-cooldown entries are
    fallbacks (not cold entries), and their keys never promote."""
    program = compile_program(
        FRESH_KEYS, mode="dynamic",
        breaker_config=BreakerConfig(threshold=3, backoff=2))
    result = program.run(
        "main", [9], tier="threshold:1",
        fault_plan=FaultPlan({"stitch.hole": 1.0}, limit=3))
    assert result.value == static_value(FRESH_KEYS, [9])
    reasons = [event.reason for event in result.fallbacks]
    assert reasons[:3] == ["fault", "fault", "fault"]
    assert "breaker" in reasons[3:]
    # threshold:1 never runs anything cold; every non-stitched entry
    # here is a degradation, correctly separated from cold entries.
    assert result.cold_entries == []
    breaker_keys = {e.key for e in result.fallbacks
                    if e.reason == "breaker"}
    stitched_keys = {r.key for r in result.stitch_reports}
    assert breaker_keys and not (breaker_keys & stitched_keys)
    stats = result.tier_stats[("region", 1)]
    assert stats["promotions"] == len(result.stitch_reports)


# -- hotness-weighted eviction ------------------------------------------------

class _Entry:
    def __init__(self, base, cycles, last_use, hotness=0):
        class _Report:
            pass
        self.report = _Report()
        self.report.cycles = cycles
        self.base = base
        self.last_use = last_use
        self.hotness = hotness


def test_cost_aware_eviction_protects_hot_entries():
    """Equal stitch cost and recency: the entry the tier controller
    has seen run hot survives; with hotness all zero (every non-tiered
    run) the historical order is untouched."""
    policy = CostAwarePolicy()
    cold = _Entry(base=0, cycles=100, last_use=5)
    hot = _Entry(base=10, cycles=100, last_use=5, hotness=3)
    assert policy.victim([cold, hot], tick=6) is cold
    assert policy.victim([hot, cold], tick=6) is cold
    # hotness can outweigh a modest stitch-cost advantage...
    pricey_cold = _Entry(base=0, cycles=150, last_use=5)
    assert policy.victim([pricey_cold, hot], tick=6) is pricey_cold
    # ...and all-zero hotness degrades to the historical score.
    a = _Entry(base=0, cycles=100, last_use=5)
    b = _Entry(base=10, cycles=100, last_use=7)
    assert policy.victim([a, b], tick=8) is a


def test_tiered_bounded_cache_preserves_results():
    """Tiering + eviction + re-stitch: a proven-hot key that gets
    evicted re-stitches immediately on re-entry (no cooling-off), and
    the program result stays identical to the eager unbounded run."""
    program = compile_pressure_program()
    baseline = program.run("main", [60, 8, 7])
    for cache in ("lru:2", "cost-aware:2"):
        result = program.run("main", [60, 8, 7], tier="threshold:2",
                             cache=CacheConfig.parse(cache))
        assert result.value == baseline.value, cache
        stats = result.tier_stats[("region", 1)]
        # Re-stitches of promoted keys count as promotions too.
        assert stats["promotions"] >= stats["keys_promoted"], cache
        assert result.cache_stats.restitch_mismatches == [], cache
        assert sum(result.region_entries.values()) \
            == result.cache_stats.hits + len(result.stitch_reports) \
            + len(result.fallbacks) + len(result.cold_entries), cache


# -- the differential oracle, tiered leg --------------------------------------

def test_oracle_passes_with_tiered_leg():
    report = run_oracle(ROUND_ROBIN, [12, 3], tier="threshold:2")
    assert report.ok, [str(d) for d in report.divergences]


def test_oracle_passes_tiered_under_faults_and_bounded_cache():
    report = run_oracle(FRESH_KEYS, [8], tier="breakeven:64,spec=1",
                        faults="all:0.2",
                        cache_config=CacheConfig.parse("lru:2"))
    assert report.ok, [str(d) for d in report.divergences]
