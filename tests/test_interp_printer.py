"""Reference-interpreter edge cases and IR printer tests."""

import pytest

from repro.ir.printer import format_function, format_module
from repro.ir.ssa import to_ssa
from repro.runtime.interp import Interpreter, InterpError, run_source

from helpers import build


# -- interpreter ------------------------------------------------------------


def test_run_source_convenience():
    value, output = run_source(
        "int main() { print_int(5); return 9; }")
    assert value == 9
    assert output == [5]


def test_run_with_arguments():
    value, _ = run_source("int main(int a, int b) { return a - b; }",
                          args=[10, 4])
    assert value == 6


def test_wrong_arity_raises():
    module = build("int main(int a) { return a; }")
    with pytest.raises(InterpError):
        Interpreter(module).run("main", [])


def test_unknown_function_raises():
    module = build("int main() { return 0; }")
    with pytest.raises(InterpError):
        Interpreter(module).run("ghost")


def test_step_limit():
    module = build("int main() { while (1) { } return 0; }")
    interp = Interpreter(module, max_steps=1000)
    with pytest.raises(InterpError):
        interp.run()


def test_heap_allocation_addresses_disjoint():
    source = """
    int main() {
        int *a = (int*) alloc(10);
        int *b = (int*) alloc(10);
        a[9] = 1;
        b[0] = 2;
        return (int)(b - a);
    }
    """
    value, _ = run_source(source)
    assert value >= 10


def test_stack_restored_after_calls():
    source = """
    int deep(int n) {
        int pad[50];
        pad[0] = n;
        if (n == 0) return pad[0];
        return deep(n - 1) + pad[0];
    }
    int main() { return deep(20); }
    """
    value, _ = run_source(source)
    assert value == sum(range(21))


def test_global_initial_values():
    module = build("int g = 7; float h = 2.5; int main() { return 0; }")
    interp = Interpreter(module)
    assert interp.memory[interp.global_addrs["g"]] == 7
    assert interp.memory[interp.global_addrs["h"]] == 2.5


# -- printer ------------------------------------------------------------------


def test_format_function_basics():
    module = build("""
        int main(int a) {
            int t = 0;
            if (a > 0) t = a; else t = 0 - a;
            return t;
        }
    """)
    text = format_function(module.functions["main"])
    assert text.startswith("func main(")
    assert "; entry" in text
    assert "return" in text
    assert text.rstrip().endswith("}")


def test_format_function_shows_region_metadata():
    module = build("""
        int f(int c) {
            dynamicRegion (c) {
                int i; int t = 0;
                unrolled for (i = 0; i < c; i++) t += i;
                return t;
            }
        }
    """)
    text = format_function(module.functions["f"])
    assert "; region 1" in text
    assert "; unrolled loop 1" in text


def test_format_function_shows_phis_after_ssa():
    module = build("""
        int main(int a) {
            int x;
            if (a) x = 1; else x = 2;
            return x;
        }
    """)
    func = module.functions["main"]
    to_ssa(func)
    text = format_function(func)
    assert "phi(" in text


def test_format_module_includes_globals():
    module = build("int g = 3; int main() { return g; }")
    text = format_module(module)
    assert "global g" in text
    assert "func main" in text
