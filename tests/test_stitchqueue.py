"""The deterministic async stitching queue.

Covers the job lifecycle end to end: spec parse/describe round-trips,
the five-way entry partition and queue-conservation invariants,
priority shedding, retry with seeded jittered backoff, the watchdog +
breaker ladder under ``stitch.hang``, ``queue.drop`` accounting,
cancellation on eviction/invalidation, and the guard-rail helpers the
queue shares with the breaker (:func:`seeded_jitter`, the cooldown
cap).  Sync mode must stay bit-identical to the historical engine --
that is what keeps every committed golden valid.
"""

from __future__ import annotations

import pytest

from repro import compile_program, seeded_jitter
from repro.bench.stitchqueue import check_hang, hang_gate
from repro.faults import FAULT_SITES, FaultPlan
from repro.runtime.guards import BreakerConfig, RegionBreaker
from repro.runtime.stitchqueue import StitchQueueConfig

KEYED = """
int region(int k, int v) {
    int t = v;
    dynamicRegion key(k) (k) {
        int r = t * 3 + k * 5;
        return r;
    }
}

int main(int n) {
    int t = 0;
    int i;
    for (i = 0; i < n; i++) t = t + region(i % 4, i);
    return t;
}
"""


def queue_conserves(qs) -> bool:
    return qs.enqueued == (qs.landed + qs.expired + qs.total_cancelled
                           + qs.pending)


# -- the spec string ---------------------------------------------------------

def test_config_parse_and_describe_round_trip():
    assert not StitchQueueConfig.parse(None).asynchronous
    assert not StitchQueueConfig.parse("").asynchronous
    assert not StitchQueueConfig.parse("sync").asynchronous
    assert not StitchQueueConfig.parse("off").asynchronous
    assert StitchQueueConfig.parse("async").asynchronous
    for spec in ("sync", "async", "async:depth=2",
                 "async:depth=4,drain=2,cycles=5000,batch=2,"
                 "deadline=1000,retries=1,backoff=2,jitter=3,seed=7"):
        config = StitchQueueConfig.parse(spec)
        assert StitchQueueConfig.parse(config.describe()) == config
    config = StitchQueueConfig.parse("async:drain=2,depth=2")
    assert config.depth == 2 and config.drain_entries == 2
    # Defaults are omitted from the description.
    assert StitchQueueConfig.parse("async").describe() == "async"
    # A config object parses to itself (the Program.run fast path).
    assert StitchQueueConfig.parse(config) is config


@pytest.mark.parametrize("bad", ["bogus", "async:depth", "async:depth=x",
                                 "async:wat=3", "async:depth=0"])
def test_config_rejects_bad_specs(bad):
    with pytest.raises(ValueError):
        StitchQueueConfig.parse(bad)


# -- sync bit-identity -------------------------------------------------------

def test_sync_mode_is_the_historical_engine():
    program = compile_program(KEYED, mode="dynamic")
    default = program.run("main", [12])
    explicit = program.run("main", [12], stitch="sync")
    assert default.value == explicit.value
    assert default.cycles == explicit.cycles
    assert explicit.queue_stats is None
    assert explicit.queued_entries == []


# -- the async lifecycle -----------------------------------------------------

def test_async_landing_preserves_results_and_partition():
    program = compile_program(KEYED, mode="dynamic")
    sync = program.run("main", [16])
    run = program.run("main", [16], stitch="async:drain=2")
    assert run.value == sync.value
    qs = run.queue_stats
    assert qs is not None and qs.landed > 0 and queue_conserves(qs)
    assert len(qs.land_latencies) == qs.landed
    assert all(lat >= 0 for lat in qs.land_latencies)
    # Five-way entry partition: hit/stitch/fallback/cold/queued.
    entries = sum(run.region_entries.values())
    assert entries == (run.cache_stats.hits + len(run.stitch_reports)
                       + len(run.fallbacks) + len(run.cold_entries)
                       + len(run.queued_entries))
    # Cycle conservation includes the queue's bookkeeping owners.
    assert sum(run.cycles_by_owner.values()) == run.cycles
    assert run.cycles_by_owner.get("stitchq:sched", 0) > 0
    assert run.cycles_by_owner.get("stitchq:region:1", 0) > 0


def test_async_runs_are_bit_deterministic():
    program = compile_program(KEYED, mode="dynamic")
    first = program.run("main", [16], stitch="async:drain=2,depth=2")
    second = program.run("main", [16], stitch="async:drain=2,depth=2")
    assert first.value == second.value
    assert first.cycles == second.cycles
    assert first.queued_entries == second.queued_entries
    assert first.queue_stats.land_latencies \
        == second.queue_stats.land_latencies


def test_admission_control_sheds_at_depth():
    program = compile_program(KEYED, mode="dynamic")
    sync = program.run("main", [16])
    # depth=1 with four live keys: the queue must shed, yet results
    # and conservation hold.
    run = program.run("main", [16], stitch="async:depth=1,drain=2")
    qs = run.queue_stats
    assert run.value == sync.value
    assert qs.shed > 0 and qs.max_depth <= 1 and queue_conserves(qs)
    phases = {entry.phase for entry in run.queued_entries}
    assert "shed" in phases


def test_failed_landing_retries_with_backoff_then_lands():
    program = compile_program(KEYED, mode="dynamic")
    sync = program.run("main", [16])
    run = program.run(
        "main", [16], stitch="async:drain=2,retries=2,backoff=2",
        fault_plan=FaultPlan({"stitch.table": 1.0}, limit=1))
    qs = run.queue_stats
    assert run.value == sync.value
    assert qs.retries == 1 and queue_conserves(qs)
    # The failed landing degraded that entry to fallback (reason
    # "fault"), then the retry landed the stitch.
    assert any(event.reason == "fault" for event in run.fallbacks)
    assert qs.landed > 0


def test_retries_exhausted_cancels_job_as_failed():
    program = compile_program(KEYED, mode="dynamic")
    sync = program.run("main", [16])
    run = program.run(
        "main", [16], stitch="async:drain=2,retries=1,backoff=1",
        fault_plan=FaultPlan({"stitch.table": 1.0}))
    qs = run.queue_stats
    assert run.value == sync.value
    assert qs.cancelled.get("failed", 0) > 0 or \
        qs.cancelled.get("breaker", 0) > 0
    assert qs.landed == 0 and queue_conserves(qs)


def test_queue_drop_fault_accounting():
    program = compile_program(KEYED, mode="dynamic")
    sync = program.run("main", [16])
    run = program.run("main", [16], stitch="async:drain=2",
                      fault_plan=FaultPlan({"queue.drop": 1.0}))
    qs = run.queue_stats
    assert run.value == sync.value
    assert qs.dropped == run.fault_counts["queue.drop"] > 0
    assert qs.dropped <= qs.shed
    assert qs.enqueued == 0 and queue_conserves(qs)


def test_watchdog_and_breaker_degrade_hung_region():
    """The bench hang gate doubles as the unit-level contract: a
    region whose stitches all hang must expire on deadline, trip its
    breaker, and never block the sibling region or the run."""
    assert check_hang(hang_gate()) == []


def test_queue_under_bounded_cache_cancels_on_eviction():
    from repro.bench.cachepressure import (
        DEFAULT_SEED, compile_pressure_program,
    )
    from repro.codecache import CacheConfig

    program = compile_pressure_program()
    args = [120, 8, DEFAULT_SEED]
    baseline = program.run("main", list(args))
    run = program.run("main", list(args),
                      cache=CacheConfig(policy="lru", max_entries=2),
                      stitch="async:drain=2")
    assert run.value == baseline.value
    qs = run.queue_stats
    assert queue_conserves(qs)
    entries = sum(run.region_entries.values())
    assert entries == (run.cache_stats.hits + len(run.stitch_reports)
                       + len(run.fallbacks) + len(run.cold_entries)
                       + len(run.queued_entries))


def test_async_composes_with_tiering():
    program = compile_program(KEYED, mode="dynamic")
    sync = program.run("main", [24])
    run = program.run("main", [24], tier="threshold:2",
                      stitch="async:drain=2")
    assert run.value == sync.value
    qs = run.queue_stats
    assert queue_conserves(qs)
    entries = sum(run.region_entries.values())
    assert entries == (run.cache_stats.hits + len(run.stitch_reports)
                       + len(run.fallbacks) + len(run.cold_entries)
                       + len(run.queued_entries))
    # Tier snapshots count the queued entries they deferred to.
    queued = sum(s.get("queued_entries", 0)
                 for s in run.tier_stats.values())
    assert queued == len(run.queued_entries)


# -- shared guard-rail helpers ----------------------------------------------

def test_seeded_jitter_is_deterministic_and_bounded():
    token = ("region", 1, (3,), 2)
    assert seeded_jitter(7, token, 5) == seeded_jitter(7, token, 5)
    assert 0 <= seeded_jitter(7, token, 5) <= 5
    assert seeded_jitter(7, token, 0) == 0
    assert seeded_jitter(7, token, -1) == 0
    # Different seeds or tokens decorrelate (not a hard guarantee per
    # pair, but across a small sweep at least one must differ).
    assert any(seeded_jitter(s, token, 100)
               != seeded_jitter(s + 1, token, 100) for s in range(8))


def test_breaker_cooldown_caps_at_max():
    breaker = RegionBreaker(
        BreakerConfig(threshold=1, backoff=4, max_cooldown=16),
        "f", 1)
    cooldowns = []
    for _ in range(5):
        breaker.on_failure()  # trips immediately (threshold=1)
        cooldowns.append(breaker.cooldown)
        while not breaker.should_attempt():
            breaker.on_entry_while_open()
    # Exponential up to the cap, then pinned exactly at the boundary.
    assert cooldowns == [4, 8, 16, 16, 16]


def test_breaker_jitter_is_seeded_and_additive():
    config = BreakerConfig(threshold=1, backoff=4, max_cooldown=16,
                           jitter=3, jitter_seed=9)
    first = RegionBreaker(config, "f", 1)
    second = RegionBreaker(config, "f", 1)
    first.on_failure()
    second.on_failure()
    assert first.cooldown == second.cooldown  # same seed: identical
    assert 4 <= first.cooldown <= 4 + 3      # base + bounded jitter
    other = RegionBreaker(BreakerConfig(threshold=1, backoff=4,
                                        max_cooldown=16, jitter=3,
                                        jitter_seed=10), "f", 1)
    other.on_failure()
    # The default config keeps the historical exact doubling.
    plain = RegionBreaker(BreakerConfig(threshold=1, backoff=4), "f", 1)
    plain.on_failure()
    assert plain.cooldown == 4


# -- the fault-plan spec surface ---------------------------------------------

def test_fault_plan_describe_round_trips():
    for spec in ("stitch.table:0.2", "stitch.hole:1.0,arena.code:0.5@7",
                 "queue.drop:0.25,stitch.hang:0.5@3",
                 "stitch.table:0.2,queue.drop[region.1]:0.5@7",
                 "stitch.hang[rega]:1.0"):
        plan = FaultPlan.parse(spec)
        described = plan.describe()
        replay = FaultPlan.parse(described)
        assert replay.describe() == described
        assert replay.probabilities == plan.probabilities
        assert replay.seed == plan.seed


def test_fault_plan_all_covers_every_site():
    plan = FaultPlan.parse("all:0.1@5")
    assert set(plan.probabilities) == set(FAULT_SITES)
    assert {"queue.drop", "stitch.hang", "tier.flip"} <= set(FAULT_SITES)
    described = plan.describe()
    assert FaultPlan.parse(described).probabilities == plan.probabilities


def test_fault_plan_scopes_gate_without_consuming_randomness():
    plan = FaultPlan.parse("stitch.hang[f.1]:1.0")
    # Scope mismatch: never fires, and consumes no randomness (the
    # matching region still fires deterministically afterwards).
    assert not plan.should_fire("stitch.hang", region=("g", 1))
    assert not plan.should_fire("stitch.hang", region=("f", 2))
    assert plan.should_fire("stitch.hang", region=("f", 1))
    with pytest.raises(ValueError):
        FaultPlan.parse("all[f.1]:0.5")
