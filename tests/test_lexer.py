"""Lexer unit tests."""

import pytest

from repro.frontend.errors import LexError
from repro.frontend.lexer import tokenize


def kinds(source):
    return [t.kind for t in tokenize(source)][:-1]  # drop eof


def texts(source):
    return [t.text for t in tokenize(source)][:-1]


def test_empty_source():
    tokens = tokenize("")
    assert len(tokens) == 1
    assert tokens[0].kind == "eof"


def test_identifiers_and_keywords():
    tokens = tokenize("int foo while unrolled dynamicRegion bar_2")
    assert [(t.kind, t.text) for t in tokens[:-1]] == [
        ("kw", "int"), ("ident", "foo"), ("kw", "while"),
        ("kw", "unrolled"), ("kw", "dynamicRegion"), ("ident", "bar_2"),
    ]


def test_dynamic_and_key_are_keywords():
    assert kinds("dynamic key") == ["kw", "kw"]


def test_integer_literals():
    tokens = tokenize("0 42 123456789")
    assert [t.value for t in tokens[:-1]] == [0, 42, 123456789]
    assert all(t.kind == "int" for t in tokens[:-1])


def test_hex_literals():
    tokens = tokenize("0x10 0xff 0XABC")
    assert [t.value for t in tokens[:-1]] == [16, 255, 0xABC]


def test_float_literals():
    tokens = tokenize("1.5 0.25 3.0")
    assert [t.value for t in tokens[:-1]] == [1.5, 0.25, 3.0]
    assert all(t.kind == "float" for t in tokens[:-1])


def test_float_with_exponent():
    tokens = tokenize("1e3 2.5e-2 1E+2")
    assert [t.value for t in tokens[:-1]] == [1000.0, 0.025, 100.0]


def test_leading_dot_float():
    tokens = tokenize(".5")
    assert tokens[0].kind == "float"
    assert tokens[0].value == 0.5


def test_integer_then_member_access_not_float():
    # "a.b" must not lex the dot into a float
    assert texts("a.b") == ["a", ".", "b"]


def test_multi_char_operators():
    ops = "-> ++ -- << >> <= >= == != && || += -= *= /= %="
    assert texts(ops) == ops.split()


def test_maximal_munch():
    assert texts("a+++b") == ["a", "++", "+", "b"]
    assert texts("a<<=b") == ["a", "<<=", "b"]


def test_single_char_operators():
    assert texts("+ - * / % < > = ! & | ^ ~ ; , . ( ) { } [ ] ? :") == \
        "+ - * / % < > = ! & | ^ ~ ; , . ( ) { } [ ] ? :".split()


def test_line_comment():
    assert texts("a // comment here\n b") == ["a", "b"]


def test_block_comment():
    assert texts("a /* multi \n line */ b") == ["a", "b"]


def test_unterminated_block_comment():
    with pytest.raises(LexError):
        tokenize("a /* never ends")


def test_string_literal():
    tokens = tokenize('"hello world"')
    assert tokens[0].kind == "string"
    assert tokens[0].value == "hello world"


def test_string_escapes():
    tokens = tokenize(r'"a\nb\tc\\d"')
    assert tokens[0].value == "a\nb\tc\\d"


def test_unterminated_string():
    with pytest.raises(LexError):
        tokenize('"never ends')


def test_unexpected_character():
    with pytest.raises(LexError):
        tokenize("a $ b")


def test_line_and_column_tracking():
    tokens = tokenize("a\n  b")
    assert tokens[0].line == 1 and tokens[0].col == 1
    assert tokens[1].line == 2 and tokens[1].col == 3


def test_error_position():
    try:
        tokenize("ok\n   @")
    except LexError as exc:
        assert exc.line == 2
        assert exc.col == 4
    else:
        pytest.fail("expected LexError")


def test_keywords_not_inside_identifiers():
    tokens = tokenize("integer whiles dynamics")
    assert all(t.kind == "ident" for t in tokens[:-1])


def test_underscore_identifier():
    tokens = tokenize("_private __x")
    assert [t.text for t in tokens[:-1]] == ["_private", "__x"]
