"""Optimization pass tests: each pass does its job and preserves
semantics (checked through the reference interpreter)."""

import copy

from repro.ir.instructions import Assign, BinOp, CondBr, Load, Switch
from repro.ir.ssa import to_ssa
from repro.opt.copyprop import copy_propagation
from repro.opt.cse import common_subexpression_elimination
from repro.opt.dce import dead_code_elimination
from repro.opt.fold import fold_constants
from repro.opt.pipeline import OptOptions, optimize
from repro.opt.simplify import merge_blocks, simplify_algebraic
from repro.ir.values import IntConst
from repro.runtime.interp import Interpreter

from helpers import build


def prepare(source, func="main"):
    module = build(source)
    f = module.functions[func]
    to_ssa(f)
    return module, f


def instr_count(func):
    return sum(len(b.all_instrs()) for b in func.blocks.values())


def has_op(func, op):
    return any(isinstance(i, BinOp) and i.op == op
               for i in func.iter_instrs())


# -- constant folding ------------------------------------------------------


def test_fold_arithmetic():
    module, f = prepare("int main() { return 2 * 3 + 4; }")
    fold_constants(f)
    assert not has_op(f, "mul") and not has_op(f, "add")
    assert Interpreter(module).run() == 10


def test_fold_preserves_trap():
    module, f = prepare("int main() { return 5 / 0; }")
    fold_constants(f)
    assert has_op(f, "div")  # cannot fold a trapping division


def test_fold_branch_removes_dead_side():
    module, f = prepare("""
        int main() {
            int x;
            if (1 < 2) x = 10; else x = 20;
            return x;
        }
    """)
    blocks_before = len(f.blocks)
    fold_constants(f)
    assert len(f.blocks) < blocks_before
    assert not any(isinstance(b.terminator, CondBr)
                   for b in f.blocks.values())
    assert Interpreter(module).run() == 10


def test_fold_switch():
    module, f = prepare("""
        int main() {
            int x = 0;
            switch (2) { case 1: x = 1; break; case 2: x = 2; break;
                         default: x = 9; }
            return x;
        }
    """)
    fold_constants(f)
    assert not any(isinstance(b.terminator, Switch)
                   for b in f.blocks.values())
    assert Interpreter(module).run() == 2


def test_fold_through_phi_of_identical():
    module, f = prepare("""
        int main(int v) {
            int x;
            if (v) x = 7; else x = 7;
            return x;
        }
    """, func="main")
    fold_constants(f)
    assert Interpreter(module).run("main", [1]) == 7
    assert Interpreter(module).run("main", [0]) == 7


# -- copy propagation ---------------------------------------------------------


def test_copyprop_removes_copies():
    module, f = prepare("""
        int main(int a) {
            int b = a;
            int c = b;
            return c + c;
        }
    """)
    removed = copy_propagation(f)
    assert removed >= 2
    assert Interpreter(module).run("main", [3]) == 6


def test_copyprop_updates_region_metadata():
    module, f = prepare("""
        int f(int c) {
            dynamicRegion (c) { return c * 2; }
        }
    """, func="f")
    copy_propagation(f)
    region = f.regions[0]
    (const_temp,) = region.const_temps
    # the copy c := arg_c is gone; the metadata must follow to arg_c
    assert const_temp.name == "arg_c"


# -- dead code elimination -------------------------------------------------------


def test_dce_removes_unused_chain():
    module, f = prepare("""
        int main() {
            int a = 3;
            int b = a * 10;
            int c = b + 1;
            return 5;
        }
    """)
    before = instr_count(f)
    removed = dead_code_elimination(f)
    assert removed >= 3
    assert instr_count(f) < before
    assert Interpreter(module).run() == 5


def test_dce_keeps_stores_and_calls():
    module, f = prepare("""
        int g;
        int main() {
            g = 42;
            print_int(7);
            return 0;
        }
    """)
    dead_code_elimination(f)
    interp = Interpreter(module)
    interp.run()
    assert interp.output == [7]
    assert interp.memory[interp.global_addrs["g"]] == 42


def test_dce_removes_unused_load():
    module, f = prepare("""
        int g;
        int main() { int x = g; return 1; }
    """)
    dead_code_elimination(f)
    assert not any(isinstance(i, Load) for i in f.iter_instrs())


# -- CSE --------------------------------------------------------------------------


def test_cse_removes_redundant_expression():
    module, f = prepare("""
        int main(int a, int b) {
            int x = a * b + 1;
            int y = a * b + 2;
            return x + y;
        }
    """)
    muls_before = sum(1 for i in f.iter_instrs()
                      if isinstance(i, BinOp) and i.op == "mul")
    replaced = common_subexpression_elimination(f)
    muls_after = sum(1 for i in f.iter_instrs()
                     if isinstance(i, BinOp) and i.op == "mul")
    assert replaced >= 1
    assert muls_after < muls_before
    assert Interpreter(module).run("main", [3, 4]) == 27


def test_cse_respects_commutativity():
    module, f = prepare("""
        int main(int a, int b) {
            return a * b + b * a;
        }
    """)
    replaced = common_subexpression_elimination(f)
    assert replaced >= 1
    assert Interpreter(module).run("main", [3, 4]) == 24


def test_cse_only_on_dominating_defs():
    module, f = prepare("""
        int main(int a, int b) {
            int x;
            if (a) x = a * b; else x = a * b;
            int y = a * b;
            return x + y;
        }
    """)
    common_subexpression_elimination(f)
    # y's computation is in the join which is not dominated by either
    # branch arm, so it must NOT reuse the arm values.
    assert Interpreter(module).run("main", [3, 4]) == 24


def test_cse_does_not_cross_region_entry():
    module, f = prepare("""
        int f(int c, int v) {
            int pre = c * 8;
            int r = 0;
            dynamicRegion (c) {
                r = c * 8 + v;
            }
            return r + pre;
        }
    """, func="f")
    common_subexpression_elimination(f)
    region = f.regions[0]
    muls_in_region = sum(
        1 for name in region.blocks if name in f.blocks
        for i in f.blocks[name].all_instrs()
        if isinstance(i, BinOp) and i.op == "mul")
    assert muls_in_region == 1  # still computed inside, stays constant


# -- algebraic simplification ---------------------------------------------------------


def test_algebraic_identities():
    module, f = prepare("""
        int main(int a) {
            int t = a + 0;
            t = t * 1;
            t = t - 0;
            t = t | 0;
            t = t ^ 0;
            t = t << 0;
            return t;
        }
    """)
    n = simplify_algebraic(f)
    assert n >= 6
    assert Interpreter(module).run("main", [9]) == 9


def test_mul_by_zero():
    module, f = prepare("int main(int a) { return a * 0; }")
    simplify_algebraic(f)
    assert not has_op(f, "mul")
    assert Interpreter(module).run("main", [9]) == 0


def test_sub_self():
    module, f = prepare("int main(int a) { return a - a; }")
    simplify_algebraic(f)
    assert not has_op(f, "sub")
    assert Interpreter(module).run("main", [9]) == 0


# -- CFG cleanup -------------------------------------------------------------------------


def test_merge_blocks_collapses_chain():
    module, f = prepare("""
        int main() {
            int t = 1;
            { t = t + 1; }
            { t = t + 2; }
            return t;
        }
    """)
    fold_constants(f)
    merge_blocks(f)
    assert Interpreter(module).run() == 4


def test_merge_preserves_region_boundaries():
    module, f = prepare("""
        int f(int c) {
            dynamicRegion (c) {
                int i; int t = 0;
                unrolled for (i = 0; i < c; i++) t += i;
                return t;
            }
        }
    """, func="f")
    region = f.regions[0]
    merge_blocks(f)
    assert region.entry in f.blocks
    for loop in region.unrolled_loops:
        assert loop.header in f.blocks
        assert loop.latch in f.blocks


# -- full pipeline --------------------------------------------------------------------------


def test_pipeline_converges_and_reports():
    module, f = prepare("""
        int main() {
            int a = 2 + 3;
            int b = a * 4;
            int c = b - b;
            int t = 0; int i;
            for (i = 0; i < b; i++) t += a + c;
            return t;
        }
    """)
    stats = optimize(f)
    assert stats.total() > 0
    assert stats.rounds < OptOptions().max_rounds
    assert Interpreter(module).run() == 100


def test_pipeline_respects_toggles():
    module, f = prepare("int main() { return 2 * 3; }")
    stats = optimize(f, OptOptions(fold=False, cse=False))
    assert stats.folds == 0
    assert Interpreter(module).run() == 6
