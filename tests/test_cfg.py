"""CFG structural tests."""

import pytest

from repro.ir.cfg import BasicBlock, Function, Module
from repro.ir.instructions import (
    Assign, CondBr, Jump, Phi, Return, Switch,
)
from repro.ir.values import IntConst, Temp


def diamond() -> Function:
    func = Function("f", [])
    entry = func.new_block("entry")
    then = func.new_block("then")
    other = func.new_block("else")
    join = func.new_block("join")
    entry.append(Assign(Temp("c"), IntConst(1)))
    entry.append(CondBr(Temp("c"), then.name, other.name))
    then.append(Jump(join.name))
    other.append(Jump(join.name))
    join.append(Return(IntConst(0)))
    return func


def test_entry_is_first_block():
    func = diamond()
    assert func.entry == "entry1"


def test_successors_and_predecessors():
    func = diamond()
    preds = func.predecessors()
    assert sorted(preds["join4"]) == ["else3", "then2"]
    assert func.blocks["entry1"].successors() == ["then2", "else3"]


def test_rpo_starts_at_entry():
    func = diamond()
    order = func.rpo()
    assert order[0] == "entry1"
    assert order[-1] == "join4"
    assert len(order) == 4


def test_rpo_ignores_unreachable():
    func = diamond()
    dead = func.new_block("dead")
    dead.append(Jump("join4"))
    assert "dead5" not in func.rpo()


def test_remove_unreachable_blocks_fixes_phis():
    func = diamond()
    dead = func.new_block("dead")
    dead.append(Jump("join4"))
    func.blocks["join4"].instrs.insert(
        0, Phi(Temp("x"), {"then2": IntConst(1), "else3": IntConst(2),
                           "dead5": IntConst(3)}))
    removed = func.remove_unreachable_blocks()
    assert removed == ["dead5"]
    phi = func.blocks["join4"].phis()[0]
    assert set(phi.args) == {"then2", "else3"}
    func.verify()


def test_verify_rejects_missing_terminator():
    func = Function("f", [])
    func.new_block("entry")
    with pytest.raises(ValueError):
        func.verify()


def test_verify_rejects_unknown_successor():
    func = Function("f", [])
    block = func.new_block("entry")
    block.append(Jump("nowhere"))
    with pytest.raises(ValueError):
        func.verify()


def test_verify_rejects_phi_after_non_phi():
    func = diamond()
    join = func.blocks["join4"]
    join.instrs.append(Assign(Temp("y"), IntConst(0)))
    join.instrs.append(Phi(Temp("x"), {"then2": IntConst(1),
                                       "else3": IntConst(2)}))
    with pytest.raises(ValueError):
        func.verify()


def test_verify_rejects_phi_pred_mismatch():
    func = diamond()
    func.blocks["join4"].instrs.insert(
        0, Phi(Temp("x"), {"then2": IntConst(1)}))
    with pytest.raises(ValueError):
        func.verify()


def test_append_after_terminator_rejected():
    block = BasicBlock("b")
    block.append(Return(None))
    with pytest.raises(ValueError):
        block.append(Assign(Temp("x"), IntConst(1)))


def test_split_critical_edges():
    func = Function("f", [])
    entry = func.new_block("entry")
    left = func.new_block("left")
    join = func.new_block("join")
    entry.append(CondBr(Temp("c"), left.name, join.name))  # critical
    left.append(Jump(join.name))
    join.instrs.insert(0, Phi(Temp("x"), {"entry1": IntConst(1),
                                          "left2": IntConst(2)}))
    join.append(Return(Temp("x")))
    func.temp_types["c"] = "int"
    records = func.split_critical_edges()
    assert len(records) == 1
    new, pred, succ = records[0]
    assert pred == "entry1" and succ == "join3"
    phi = func.blocks["join3"].phis()[0]
    assert new in phi.args and "entry1" not in phi.args
    func.verify()


def test_switch_successors_deduplicated():
    term = Switch(Temp("x"), [(1, "a"), (2, "a"), (3, "b")], "b")
    assert term.successors() == ["a", "b"]


def test_switch_replace_successor():
    term = Switch(Temp("x"), [(1, "a"), (2, "b")], "a")
    term.replace_successor("a", "c")
    assert term.cases == [(1, "c"), (2, "b")]
    assert term.default == "c"


def test_new_temp_types():
    func = Function("f", [])
    t1 = func.new_temp("int")
    t2 = func.new_temp("float")
    assert func.type_of(t1) == "int"
    assert func.type_of(t2) == "float"
    assert t1.name != t2.name


def test_module_duplicate_function_rejected():
    module = Module()
    module.add_function(Function("f", []))
    with pytest.raises(ValueError):
        module.add_function(Function("f", []))


def test_iter_instrs_includes_terminators():
    func = diamond()
    ops = list(func.iter_instrs())
    assert any(isinstance(i, Return) for i in ops)
    assert any(isinstance(i, CondBr) for i in ops)
