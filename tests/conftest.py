"""Shared test configuration: hypothesis profiles.

The property tests (``test_property*.py``) use hypothesis when it is
installed; profiles are registered here so CI can pick a bounded,
deadline-free configuration with ``HYPOTHESIS_PROFILE=ci`` while local
runs keep the defaults.
"""

import os

try:
    from hypothesis import HealthCheck, settings
except ImportError:  # hypothesis is optional; property tests skip
    settings = None

if settings is not None:
    settings.register_profile(
        "ci",
        deadline=None,
        max_examples=30,
        suppress_health_check=[HealthCheck.too_slow],
        print_blob=True,
    )
    settings.register_profile("dev", deadline=None)
    settings.register_profile(
        "thorough", deadline=None, max_examples=400)
    settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))
