"""Tracer semantics and trace-event schema validity (repro.obs.trace).

Covers the event buffer (spans, instants, ring mode, drop counting),
the module-level install/span helpers' disabled path, both
serializations round-tripping through :func:`load_trace`, and -- the CI
contract -- that a real compile+run under tracing emits only
schema-valid events with spans for every pipeline stage.
"""

from __future__ import annotations

import json

from repro.obs import trace
from repro.runtime.engine import compile_program

SOURCE = """
int kernel(int *xs, int n, int q) {
    int total = 0;
    dynamicRegion (n, q) {
        int i;
        unrolled for (i = 0; i < n; i++) {
            if (q > 2) total += xs dynamic[ i ] * q;
            else total += xs dynamic[ i ];
        }
    }
    return total;
}

int main() {
    int xs[6];
    int i;
    for (i = 0; i < 6; i++) xs[i] = i + 1;
    int sum = 0;
    for (i = 0; i < 40; i++) sum += kernel(xs, 6, 3);
    return sum;
}
"""


def test_span_records_complete_event_with_mutable_args():
    tracer = trace.Tracer()
    with tracer.span("opt.fold", "opt", func="f") as args:
        args["rewrites"] = 3
    (event,) = tracer.events
    assert event["ph"] == "X"
    assert event["name"] == "opt.fold"
    assert event["cat"] == "opt"
    assert event["args"] == {"func": "f", "rewrites": 3}
    assert event["dur"] >= 0
    assert trace.validate_events([event]) == []


def test_instant_event_schema():
    tracer = trace.Tracer()
    tracer.instant("cache.hit", "runtime", region="f:1")
    (event,) = tracer.events
    assert event["ph"] == "i"
    assert event["s"] == "t"
    assert trace.validate_events([event]) == []


def test_span_recorded_even_when_body_raises():
    tracer = trace.Tracer()
    try:
        with tracer.span("stage", "opt"):
            raise RuntimeError("boom")
    except RuntimeError:
        pass
    assert len(tracer.events) == 1


def test_non_ring_drops_and_counts_when_full():
    tracer = trace.Tracer(max_events=2)
    for i in range(5):
        tracer.instant("e%d" % i, "vm")
    assert [e["name"] for e in tracer.events] == ["e0", "e1"]
    assert tracer.dropped == 3


def test_ring_keeps_newest():
    tracer = trace.Tracer(max_events=3, ring=True)
    for i in range(10):
        tracer.instant("e%d" % i, "vm")
    assert [e["name"] for e in tracer.events] == ["e7", "e8", "e9"]
    assert tracer.dropped == 0
    assert tracer.tail(2)[-1]["name"] == "e9"


def test_module_helpers_noop_without_installed_tracer():
    assert trace.current() is None
    # Must not raise, must not record anywhere.
    with trace.span("x", "opt") as args:
        assert args is None
    trace.instant("y", "opt")


def test_tracing_contextmanager_restores_previous():
    outer = trace.Tracer()
    inner = trace.Tracer()
    with trace.tracing(outer):
        assert trace.current() is outer
        with trace.tracing(inner):
            trace.instant("only-inner", "vm")
            assert trace.current() is inner
        assert trace.current() is outer
    assert trace.current() is None
    assert [e["name"] for e in inner.events] == ["only-inner"]
    assert outer.events == []


def test_validate_rejects_malformed_events():
    bad = [
        {"name": "", "cat": "opt", "ph": "X", "ts": 0, "dur": 1,
         "pid": 0, "tid": 0, "args": {}},            # empty name
        {"name": "a", "cat": "nope", "ph": "X", "ts": 0, "dur": 1,
         "pid": 0, "tid": 0, "args": {}},            # unknown category
        {"name": "a", "cat": "opt", "ph": "Z", "ts": 0,
         "pid": 0, "tid": 0, "args": {}},            # bad phase
        {"name": "a", "cat": "opt", "ph": "X", "ts": -1, "dur": 1,
         "pid": 0, "tid": 0, "args": {}},            # negative ts
        {"name": "a", "cat": "opt", "ph": "X", "ts": 0,
         "pid": 0, "tid": 0, "args": {}},            # X without dur
        {"name": "a", "cat": "opt", "ph": "i", "ts": 0,
         "pid": 0, "tid": 0, "args": {}},            # instant w/o scope
        {"name": "a", "cat": "opt", "ph": "X", "ts": 0, "dur": 1,
         "pid": 0, "tid": 0, "args": []},            # args not a dict
    ]
    errors = trace.validate_events(bad)
    assert len(errors) == len(bad)


def test_chrome_and_jsonl_roundtrip(tmp_path):
    tracer = trace.Tracer()
    with tracer.span("stage", "codegen", n=1):
        tracer.instant("mark", "codegen")
    chrome_path = tmp_path / "trace.json"
    jsonl_path = tmp_path / "trace.jsonl"
    tracer.write_chrome(str(chrome_path))
    tracer.write_jsonl(str(jsonl_path))

    document = json.loads(chrome_path.read_text())
    assert trace.validate_chrome(document) == []
    assert document["traceEvents"] == list(tracer.events)

    for path in (chrome_path, jsonl_path):
        events = trace.load_trace(str(path))
        assert events == list(tracer.events)
        assert trace.validate_events(events) == []

    assert tracer.dumps_jsonl().count("\n") == 2
    line = trace.dumps_event(tracer.events[0])
    assert json.loads(line) == tracer.events[0]


def test_real_pipeline_trace_is_schema_valid_and_covers_stages():
    tracer = trace.Tracer()
    with trace.tracing(tracer):
        program = compile_program(SOURCE, mode="dynamic")
        result = program.run()
    assert result.value == 40 * 63
    assert trace.validate_events(tracer.events) == []
    names = {event["name"] for event in tracer.events}
    for expected in ("frontend.parse", "frontend.typecheck", "ir.build",
                     "opt.fold", "opt.dce", "analysis.rtconst",
                     "split.module", "split.region", "codegen.lower",
                     "stitch.region", "vm.run", "cache.hit",
                     "cache.miss"):
        assert expected in names, "missing %s in %s" % (expected,
                                                        sorted(names))
    # The stitch span carries the report's facts.
    (stitch,) = tracer.by_name("stitch.region")
    assert stitch["args"]["instrs_emitted"] > 0
    assert stitch["args"]["stitcher_cycles"] > 0
    # One cold lookup (miss), then cache hits for the remaining calls.
    assert len(tracer.by_name("cache.miss")) == 1
    assert len(tracer.by_name("cache.hit")) == 39
    # Opt spans carry IR size deltas.
    fold = tracer.by_name("opt.fold")[0]
    assert fold["args"]["instrs_before"] >= fold["args"]["instrs_after"]
