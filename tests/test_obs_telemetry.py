"""Continuous-telemetry tests: labels, sampler, exporters, health,
and the perf-trajectory flight recorder.

Covers the label semantics of repro.obs.metrics (children aggregate
into the parent for counters/histograms, gauges stay independent), the
deterministic time-series sampler (logical clocks only), the
OpenMetrics/JSON/Perfetto exporters (with a golden exposition for the
small sparse-matvec workload), the declarative health-rule engine
(trigger under seeded faults, silence on clean runs), and the
record/compare trajectory gate (synthetic 15% regression must fail a
10% gate and pass a 20% one).
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.obs import export, health, history, metrics, timeseries, trace
from repro.obs.metrics import MetricError, MetricsRegistry, format_snapshot

GOLDEN_OPENMETRICS = Path(__file__).parent / "golden_openmetrics.prom"


@pytest.fixture
def reg():
    registry = MetricsRegistry()
    registry.enable()
    return registry


# -- labeled instruments ---------------------------------------------------

def test_counter_children_aggregate_into_parent(reg):
    counter = reg.counter("cache.hits")
    counter.labels(region="f:1").inc(3)
    counter.labels(region="g:2").inc(2)
    counter.inc()  # unlabeled: parent only
    assert counter.value == 6  # parent is the all-series total
    assert counter.labels(region="f:1").value == 3
    assert counter.labels(region="g:2").value == 2
    # labels() with no kwargs is the unlabeled API: the parent itself.
    assert counter.labels() is counter
    # label order never matters: one child per frozen label *set*.
    two = reg.counter("multi")
    assert two.labels(a="1", b="2") is two.labels(b="2", a="1")


def test_labels_on_a_child_raises(reg):
    child = reg.counter("c").labels(region="f:1")
    with pytest.raises(MetricError):
        child.labels(region="f:1")


def test_gauge_children_are_independent(reg):
    gauge = reg.gauge("cache.entries")
    gauge.set(10)
    gauge.labels(policy="lru").set(4)
    assert gauge.value == 10  # a gauge parent is not a sum
    assert gauge.labels(policy="lru").value == 4


def test_histogram_children_aggregate_into_parent(reg):
    histogram = reg.histogram("stitch.cycles", buckets=(10, 100))
    histogram.labels(region="f:1").observe(5)
    histogram.labels(region="g:2").observe(50)
    assert histogram.count == 2 and histogram.sum == 55
    assert histogram.labels(region="f:1").count == 1
    assert histogram.bucket_counts == [1, 1, 0]


def test_reset_zeroes_children_and_keeps_identity(reg):
    counter = reg.counter("c")
    child = counter.labels(region="f:1")
    child.inc(5)
    reg.reset()
    assert counter.value == 0 and child.value == 0
    assert counter.labels(region="f:1") is child  # memoizable across reset


def test_histogram_underflow_bucket_for_zero_and_negative(reg):
    histogram = reg.histogram("h")  # DEFAULT_BUCKETS: leading 0 bound
    histogram.observe(0)
    histogram.observe(-3)
    histogram.observe(1)
    snap = reg.snapshot()["h"]
    assert snap["buckets"]["le_0"] == 2
    assert snap["buckets"]["le_1"] == 1
    assert snap["min"] == -3


def test_snapshot_series_and_format_are_sorted(reg):
    counter = reg.counter("c")
    counter.labels(region="z").inc(1)
    counter.labels(region="a").inc(2)
    counter.labels(policy="lru", region="m").inc(4)
    snap = reg.snapshot()
    series = snap["c"]["series"]
    rendered = [s["labels"] for s in series]
    assert rendered == sorted(rendered, key=lambda d: sorted(d.items()))
    text = format_snapshot(snap)
    a_line = text.index('c{region="a"}')
    z_line = text.index('c{region="z"}')
    assert a_line < z_line
    # snapshots with no children carry no "series" key (back-compat).
    reg.counter("plain").inc()
    assert "series" not in reg.snapshot()["plain"]


# -- the deterministic sampler ---------------------------------------------

class _FakeVM:
    def __init__(self):
        self.cycles = 0


def test_sampler_fires_on_entry_clock():
    registry = MetricsRegistry()
    registry.enable()
    counter = registry.counter("cache.hits")
    sampler = timeseries.TimeSeriesSampler(every_entries=4, capacity=8,
                                           registry=registry)
    vm = _FakeVM()
    for step in range(12):
        counter.inc()
        vm.cycles += 100
        sampler.on_entry(vm)
    assert sampler.samples == 3  # entries 4, 8, 12
    series = sampler.series()
    points = next(s for s in series
                  if s["name"] == "cache.hits")["points"]
    assert points == [[4, 400, 4], [8, 800, 8], [12, 1200, 12]]


def test_sampler_cycle_clock_and_ring_capacity():
    registry = MetricsRegistry()
    registry.enable()
    registry.counter("c").inc()
    sampler = timeseries.TimeSeriesSampler(every_entries=None,
                                           every_cycles=1000, capacity=2,
                                           registry=registry)
    vm = _FakeVM()
    for _ in range(10):
        vm.cycles += 600
        sampler.on_entry(vm)
    assert sampler.samples > 2
    points = sampler.series()[0]["points"]
    assert len(points) == 2  # ring keeps only the newest `capacity`


def test_sampler_requires_a_clock_and_capacity():
    with pytest.raises(ValueError):
        timeseries.TimeSeriesSampler(every_entries=None, every_cycles=None)
    with pytest.raises(ValueError):
        timeseries.TimeSeriesSampler(capacity=1)


def test_sampler_derived_ratios_and_rates():
    registry = MetricsRegistry()
    registry.enable()
    hits = registry.counter("cache.hits")
    misses = registry.counter("cache.misses")
    entries = registry.counter("region.entries")
    promotions = registry.counter("tier.promotions")
    evictions = registry.counter("cache.evictions")
    sampler = timeseries.TimeSeriesSampler(every_entries=100,
                                           registry=registry)
    sampler.sample(0)
    hits.inc(9)
    misses.inc(1)
    entries.inc(10)
    promotions.inc(5)
    evictions.inc(2)
    sampler.entries = 10
    sampler.sample(1000)
    derived = {d["name"]: d["points"] for d in sampler.derived()}
    assert derived["cache.hit_ratio"] == [[10, 1000, 0.9]]
    assert derived["tier.promotion_rate"] == [[10, 1000, 0.5]]
    assert derived["cache.evictions_per_kcycle"] == [[10, 1000, 2.0]]
    document = sampler.to_json()
    json.dumps(document)
    assert document["schema"] == 1
    assert document["clock"] == {"entries": 10, "cycles": 1000}


def test_sampler_emits_perfetto_counter_tracks():
    registry = MetricsRegistry()
    registry.enable()
    registry.counter("cache.hits").labels(region="f:1").inc(3)
    sampler = timeseries.TimeSeriesSampler(registry=registry)
    tracer = trace.Tracer()
    with trace.tracing(tracer):
        sampler.sample(500)
    counters = [e for e in tracer.events if e["ph"] == "C"]
    assert counters, "no counter-track events emitted"
    names = {e["name"] for e in counters}
    assert "cache.hits" in names
    assert 'cache.hits{region="f:1"}' in names
    assert all(e["cat"] == "telemetry" for e in counters)
    assert trace.validate_events(tracer.events) == []


# -- exporters -------------------------------------------------------------

def _run_small_spmv_snapshot():
    from repro.bench.workloads import sparse_matvec_workload
    from repro.runtime.engine import compile_program
    metrics.registry.clear()
    metrics.registry.enable()
    try:
        compile_program(sparse_matvec_workload(size=12, per_row=3).source,
                        mode="dynamic").run()
    finally:
        metrics.registry.disable()
    snap = metrics.registry.snapshot()
    metrics.registry.clear()
    return snap


def test_openmetrics_golden_sparse_matvec_small():
    snap = _run_small_spmv_snapshot()
    text = export.to_openmetrics(snap, exclude=("stitch.host_seconds",))
    assert text == GOLDEN_OPENMETRICS.read_text()


def test_openmetrics_parses_and_round_trips():
    snap = _run_small_spmv_snapshot()
    text = export.to_openmetrics(snap, exclude=("stitch.host_seconds",))
    parsed = export.parse_openmetrics(text)
    assert parsed["types"]["region_entries"] == "counter"
    samples = {(name, tuple(sorted(labels.items()))): value
               for name, labels, value in parsed["samples"]}
    assert samples[("region_entries_total", (("region", "spmv:1"),))] \
        == snap["region.entries"]["series"][0]["value"]
    assert samples[("vm_cycles_total", ())] == snap["vm.cycles"]["value"]


def test_openmetrics_rejects_malformed_text():
    with pytest.raises(ValueError):
        export.parse_openmetrics("vm_cycles_total 1\n")  # no # EOF
    with pytest.raises(ValueError):
        export.parse_openmetrics("!bad line!\n# EOF\n")
    with pytest.raises(ValueError):
        export.parse_openmetrics("# EOF\ntrailing 1\n")


def test_counter_remainder_sample_only_when_nonzero(reg):
    counter = reg.counter("c")
    counter.labels(region="f:1").inc(3)
    text = export.to_openmetrics(reg.snapshot())
    # Parent (3) == sum of children (3): no unlabeled remainder line.
    assert 'c_total{region="f:1"} 3' in text
    assert "\nc_total 3" not in text
    counter.inc(2)  # direct unlabeled increments -> remainder sample
    text = export.to_openmetrics(reg.snapshot())
    assert "\nc_total 2" in text


# -- health rules ----------------------------------------------------------

def test_parse_rule_grammar():
    rule = health.parse_rule("warn: fallback.count / region.entries > 0.1")
    assert rule.mode == "ratio" and rule.severity == "warn"
    assert rule.describe() == "warn: fallback.count / region.entries > 0.1"
    rate = health.parse_rule("breaker.trips rate > 0.05")
    assert rate.mode == "rate" and rate.severity == "fail"
    plain = health.parse_rule("cache.checksum_failures > 0")
    assert plain.mode == "value"
    for bad in ("nope", "a ?? 3", "a > x", "a b c > 1"):
        with pytest.raises(health.HealthRuleError):
            health.parse_rule(bad)


def test_evaluate_rate_ratio_and_zero_denominator():
    rules = health.parse_rules("""
        # comment lines are ignored
        warn: fallback.count / region.entries > 0.1
        fail: breaker.trips rate > 0.05
    """)
    report = health.evaluate({"fallback.count": 3, "region.entries": 10,
                              "breaker.trips": 1}, rules, cycles=1000)
    assert report.status == "fail"
    assert [r.rule.severity for r in report.fired] == ["warn", "fail"]
    assert report.results[1].value == pytest.approx(1.0)  # per kcycle
    # Zero denominator / zero cycles never fire.
    quiet = health.evaluate({"fallback.count": 3, "breaker.trips": 1},
                            rules, cycles=0)
    assert quiet.status == "ok"
    assert all(r.value == 0 for r in quiet.results)


def _oracle_dynamic_result(faults=None):
    from repro.bench.workloads import calculator_workload
    from repro.faults import FaultPlan
    from repro.runtime.engine import compile_program
    plan = FaultPlan.parse(faults) if faults else None
    program = compile_program(calculator_workload().source,
                              mode="dynamic", fault_plan=plan)
    return program.run()


def test_health_fires_under_seeded_faults_and_not_clean():
    clean = health.evaluate_result(_oracle_dynamic_result())
    assert clean.status == "ok" and not clean.fired
    chaotic = health.evaluate_result(
        _oracle_dynamic_result(faults="all:0.2@7"))
    assert chaotic.fired, "seeded chaos run fired no health rules"
    fired_metrics = {r.rule.metric for r in chaotic.fired}
    assert "fault.injected" in fired_metrics


def test_fuzz_health_flags():
    from repro.fuzz import health_flags

    class _Outcome:
        def __init__(self, run_result):
            self.run_result = run_result

    class _Report:
        def __init__(self, ok, outcomes):
            self.ok = ok
            self.compile_error = False
            self.outcomes = outcomes

    degraded = _oracle_dynamic_result(faults="all:0.2@7")
    clean = _oracle_dynamic_result()
    # Diverged yet green: the rules are blind to the failure.
    flags = health_flags(_Report(False, {"dynamic": _Outcome(clean)}),
                         faults_configured=False)
    assert flags and "diverged yet health is green" in flags[0]
    # Agreed with no faults configured, yet rules fired: silent
    # degradation.
    flags = health_flags(_Report(True, {"dynamic": _Outcome(degraded)}),
                         faults_configured=False)
    assert flags and "silent degradation" in flags[0]
    # Same degradation under a configured fault plan is expected.
    assert health_flags(_Report(True, {"dynamic": _Outcome(degraded)}),
                        faults_configured=True) == []
    # Clean and agreeing: nothing to flag.
    assert health_flags(_Report(True, {"dynamic": _Outcome(clean)}),
                        faults_configured=False) == []


# -- the flight recorder ---------------------------------------------------

def _seed_trajectory(tmp_path, values):
    path = tmp_path / "BENCH_tiering.json"
    entries = [history.make_entry(
        {"n=1": {"tiered_cycles": value, "eager_cycles": value,
                 "tiered_stitches": 4}}) for value in values]
    path.write_text(json.dumps({"schema": 1, "trajectory": entries},
                               indent=2) + "\n")
    return path


def test_compare_gates_synthetic_regression(tmp_path):
    _seed_trajectory(tmp_path, [100, 102, 115])  # candidate: 115 (+15%)
    failed = history.compare("tiering", directory=tmp_path)
    assert not failed.ok
    assert [d.metric for d in failed.regressions] \
        == ["tiered_cycles", "eager_cycles"]
    assert failed.regressions[0].delta_pct == pytest.approx(15.0)
    passed = history.compare("tiering", directory=tmp_path,
                             max_regression=20.0)
    assert passed.ok


def test_compare_uses_best_of_window(tmp_path):
    # Best of the last 5 is 100 even though the immediately previous
    # entry was worse; +8% vs best passes a 10% gate.
    _seed_trajectory(tmp_path, [100, 112, 108])
    comparison = history.compare("tiering", directory=tmp_path)
    assert comparison.ok
    assert comparison.deltas[0].best == 100
    # A window of 1 only sees the 112 entry: 108 is an improvement.
    narrow = history.compare("tiering", directory=tmp_path, window=1)
    assert narrow.ok and narrow.deltas[0].best == 112


def test_compare_host_metrics_gated_only_on_request(tmp_path):
    path = tmp_path / "BENCH_hostperf.json"
    entries = [history.make_entry({"calculator": {"steady_run_s": s,
                                                  "simulated_cycles": 50}})
               for s in (0.010, 0.015)]
    path.write_text(json.dumps({"schema": 1, "trajectory": entries}) + "\n")
    lenient = history.compare("hostperf", directory=tmp_path)
    assert lenient.ok  # +50% on seconds, but host metrics ride along
    host_delta = next(d for d in lenient.deltas
                      if d.metric == "steady_run_s")
    assert not host_delta.gated
    strict = history.compare("hostperf", directory=tmp_path,
                             include_host=True)
    assert not strict.ok


def test_append_entry_preserves_sibling_keys(tmp_path):
    path = tmp_path / "BENCH_hostperf.json"
    path.write_text(json.dumps({"schema": 1, "baseline": {"k": 1}}) + "\n")
    history.append_entry(path, history.make_entry({"r": {"m": 2}}))
    document = json.loads(path.read_text())
    assert document["baseline"] == {"k": 1}
    assert len(document["trajectory"]) == 1


def test_unknown_benchmark_raises(tmp_path):
    with pytest.raises(history.HistoryError):
        history.compare("nope", directory=tmp_path)
    with pytest.raises(history.HistoryError):
        history.compare("tiering", directory=tmp_path)  # empty trajectory
