"""Property-based fuzzing of the full dynamic-compilation pipeline.

Generates random dynamic regions — constant expression DAGs, constant
and variable branches, unrolled loops over generated tables, keyed
variants — and checks the central invariant: stitched code computes
exactly what the reference interpreter computes.
"""

import hypothesis.strategies as st
from hypothesis import HealthCheck, given, settings

from repro import compile_program

from helpers import interp_run

# -- generators ----------------------------------------------------------------


def const_expr(depth):
    """Expressions over region constants a, b and literals (derivable)."""
    leaf = st.one_of(
        st.sampled_from(["a", "b"]),
        st.integers(min_value=0, max_value=30).map(str),
    )
    if depth == 0:
        return leaf
    sub = const_expr(depth - 1)
    return st.one_of(
        leaf,
        st.tuples(sub, st.sampled_from(["+", "-", "*", "&", "|", "^"]),
                  sub).map(lambda t: "(%s %s %s)" % t),
        st.tuples(sub, st.integers(min_value=0, max_value=6)).map(
            lambda t: "(%s << %d)" % t),
    )


def var_expr(depth):
    """Expressions over the variable x and constants c0/c1."""
    leaf = st.sampled_from(["x", "c0", "c1", "3", "7"])
    if depth == 0:
        return leaf
    sub = var_expr(depth - 1)
    return st.one_of(
        leaf,
        st.tuples(sub, st.sampled_from(["+", "-", "*"]), sub).map(
            lambda t: "(%s %s %s)" % t),
    )


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    const_expr(2), const_expr(2),
    st.sampled_from(["c0 > c1", "c0 == c1", "(c0 & 1) != 0", "c1 < 5"]),
    var_expr(2), var_expr(2),
    st.integers(min_value=-8, max_value=8),
    st.integers(min_value=-8, max_value=8),
    st.integers(min_value=-10, max_value=10),
)
def test_random_constant_branch_regions(ce0, ce1, cond, ve_then, ve_else,
                                        a, b, x):
    source = """
    int f(int a, int b, int x) {
        dynamicRegion (a, b) {
            int c0 = %s;
            int c1 = %s;
            if (%s) return %s;
            return %s;
        }
    }
    int main(int x) {
        return f(%d, %d, x) + f(%d, %d, x + 1) * 3;
    }
    """ % (ce0, ce1, cond, ve_then, ve_else, a, b, a, b)
    expected, _ = interp_run(source, args=[x])
    result = compile_program(source, mode="dynamic").run(args=[x])
    assert result.value == expected


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    st.lists(st.integers(min_value=-6, max_value=6), min_size=1,
             max_size=5),
    st.lists(st.integers(min_value=0, max_value=3), min_size=1,
             max_size=5),
    st.integers(min_value=-5, max_value=5),
)
def test_random_unrolled_table_interpreters(weights, selectors, x):
    """An unrolled loop switching on per-iteration constants."""
    n = min(len(weights), len(selectors))
    init = "\n".join(
        "    ws[%d] = %d; sel[%d] = %d;" % (i, weights[i], i, selectors[i])
        for i in range(n))
    source = """
    int f(int *ws, int *sel, int n, int x) {
        dynamicRegion (ws, sel, n) {
            int t = 0;
            int i;
            unrolled for (i = 0; i < n; i++) {
                switch (sel[i]) {
                    case 0: t += ws[i] * x; break;
                    case 1: t += ws[i] + x; break;
                    case 2: t -= ws[i]; break;
                    default: t = t ^ ws[i];
                }
            }
            return t;
        }
    }
    int main(int x) {
        int ws[%d]; int sel[%d];
    %s
        return f(ws, sel, %d, x) * 100 + f(ws, sel, %d, x - 1);
    }
    """ % (n, n, init, n, n)
    expected, _ = interp_run(source, args=[x])
    dynamic = compile_program(source, mode="dynamic").run(args=[x])
    static = compile_program(source, mode="static").run(args=[x])
    assert static.value == expected
    assert dynamic.value == expected


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    st.lists(st.integers(min_value=1, max_value=12), min_size=1,
             max_size=4, unique=True),
    st.integers(min_value=-4, max_value=4),
)
def test_random_keyed_regions(keys, x):
    calls = "\n".join(
        "    t += g(%d, x + %d);" % (k, i) for i, k in enumerate(keys))
    source = """
    int g(int k, int v) {
        dynamicRegion key(k) (k) {
            return v * k + (k & 3);
        }
    }
    int main(int x) {
        int t = 0;
    %s
    %s
        return t;
    }
    """ % (calls, calls)
    expected, _ = interp_run(source, args=[x])
    result = compile_program(source, mode="dynamic").run(args=[x])
    assert result.value == expected
    assert len(result.stitch_reports) == len(keys)


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(min_value=0, max_value=10),
       st.integers(min_value=-20, max_value=20))
def test_random_unroll_counts(n, x):
    source = """
    int f(int n, int x) {
        dynamicRegion (n) {
            int t = 1;
            int i;
            unrolled for (i = 0; i < n; i++) {
                t = t * 2 + (x & i);
            }
            return t;
        }
    }
    int main(int x) { return f(%d, x); }
    """ % n
    expected, _ = interp_run(source, args=[x])
    result = compile_program(source, mode="dynamic").run(args=[x])
    assert result.value == expected
    if n > 0:
        assert result.stitch_reports[0].loop_iterations == {1: n + 1}


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(min_value=-30, max_value=30),
       st.integers(min_value=-30, max_value=30),
       st.integers(min_value=-30, max_value=30))
def test_register_actions_fuzz(a, b, x):
    source = """
    int f(int c, int x) {
        int cells[4];
        dynamicRegion (c) {
            cells[0] = x + c;
            cells[1] = cells[0] * 2;
            cells[2] = cells[1] - cells[0];
            cells[3] = cells[2] ^ c;
            return cells[0] + cells[1] + cells[2] + cells[3];
        }
    }
    int main(int x) { return f(%d, x) + f(%d, x + 1); }
    """ % (a, b if b else 1)
    # Note: both calls use the same region; keep c identical per the
    # annotation contract.
    source = source.replace("f(%d, x + 1)" % (b if b else 1),
                            "f(%d, x + 1)" % a)
    expected, _ = interp_run(source, args=[x])
    plain = compile_program(source, mode="dynamic").run(args=[x])
    actions = compile_program(source, mode="dynamic",
                              register_actions=True).run(args=[x])
    assert plain.value == expected
    assert actions.value == expected
