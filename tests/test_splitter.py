"""Region splitter structural tests (table plans, set-up graphs,
template rewriting, dispatch wiring)."""

import pytest

from repro.dynamic.regionops import RegionEnter, RegionLookup, RegionStitch
from repro.dynamic.splitter import split_module
from repro.frontend.errors import AnnotationError
from repro.ir.instructions import Load, Store
from repro.ir.ssa import to_ssa
from repro.ir.values import HoleRef
from repro.opt.pipeline import optimize

from helpers import build


def split(source):
    module = build(source)
    for func in module.functions.values():
        to_ssa(func)
        optimize(func)
    plans = split_module(module)
    return module, plans


SIMPLE = """
int f(int c, int v) {
    dynamicRegion (c) {
        int d = c * 3;
        return d + v;
    }
}
"""


def test_plan_has_dispatch_structure():
    module, (plan,) = split(SIMPLE)
    func = module.functions["f"]
    assert plan.dispatch_block in func.blocks
    assert plan.enter_block in func.blocks
    assert plan.stitch_block in func.blocks
    assert plan.setup_entry in func.blocks
    func.verify()


def test_dispatch_contains_region_ops():
    module, (plan,) = split(SIMPLE)
    func = module.functions["f"]
    dispatch = func.blocks[plan.dispatch_block]
    assert any(isinstance(i, RegionLookup) for i in dispatch.instrs)
    stitch = func.blocks[plan.stitch_block]
    assert any(isinstance(i, RegionStitch) for i in stitch.instrs)
    enter = func.blocks[plan.enter_block]
    assert isinstance(enter.terminator, RegionEnter)


def test_template_has_holes_no_const_defs():
    module, (plan,) = split(SIMPLE)
    func = module.functions["f"]
    hole_count = 0
    for name in plan.template_blocks:
        for instr in func.blocks[name].all_instrs():
            dst = instr.defs()
            if dst is not None:
                assert dst.name not in plan.analysis.const_names
            for used in instr.uses():
                if isinstance(used, HoleRef):
                    hole_count += 1
    assert hole_count >= 1


def test_setup_stores_resident_constants():
    module, (plan,) = split(SIMPLE)
    func = module.functions["f"]
    stores = [
        instr
        for name in plan.setup_blocks
        for instr in func.blocks[name].all_instrs()
        if isinstance(instr, Store)
    ]
    assert len(stores) == len(plan.table.slots)


def test_table_slots_dense_and_in_bounds():
    source = """
    int f(int n, int *xs, int v) {
        dynamicRegion (n, xs) {
            int t = 0; int i;
            unrolled for (i = 0; i < n; i++) {
                t += xs[i] * v;
            }
            return t;
        }
    }
    """
    module, (plan,) = split(source)
    table = plan.table
    slots = sorted(table.slots.values())
    assert slots == list(range(len(slots)))
    assert table.top_size == len(table.slots) + sum(
        1 for l in table.loops.values() if l.parent is None)
    for loop in table.loops.values():
        record_slots = sorted(loop.slots.values())
        assert record_slots == list(range(1, len(record_slots) + 1))
        assert loop.head_slot >= len(table.slots)
        assert loop.record_size == 1 + len(loop.slots) + \
            len(loop.inner_head_slots) + 1


def test_unrolled_loop_gets_loop_plan():
    source = """
    int f(int n, int *xs, int v) {
        dynamicRegion (n, xs) {
            int t = 0; int i;
            unrolled for (i = 0; i < n; i++) t += xs[i] * v;
            return t;
        }
    }
    """
    module, (plan,) = split(source)
    assert len(plan.table.loops) == 1
    (loop,) = plan.table.loops.values()
    assert loop.predicate  # the i < n test
    assert loop.header in plan.template_blocks


def test_const_branch_slot_recorded():
    source = """
    int f(int mode, int v) {
        dynamicRegion (mode) {
            if (mode > 1) return v * 2;
            return v;
        }
    }
    """
    module, (plan,) = split(source)
    assert len(plan.const_branch_slots) == 1
    ((block, slot),) = plan.const_branch_slots.items()
    assert block in plan.template_blocks
    loop_id, index = slot
    assert loop_id is None
    assert index in plan.table.slots.values()


def test_region_entry_preds_retargeted():
    module, (plan,) = split(SIMPLE)
    func = module.functions["f"]
    preds = func.predecessors()
    external = [p for p in preds[plan.template_entry]
                if p not in plan.template_blocks
                and p != plan.enter_block]
    assert external == []  # only the enter block reaches the template


def test_constant_loads_removed_from_template():
    # Loads through the constant pointer disappear from the template --
    # the paper's "load elimination".
    source = """
    struct Config { int a; int b; };
    int f(Config *cfg, int v) {
        dynamicRegion (cfg) {
            return cfg->a * v + cfg->b;
        }
    }
    """
    module, (plan,) = split(source)
    func = module.functions["f"]
    template_loads = [
        i for name in plan.template_blocks
        for i in func.blocks[name].all_instrs()
        if isinstance(i, Load)
    ]
    assert template_loads == []
    setup_loads = [
        i for name in plan.setup_blocks
        for i in func.blocks[name].all_instrs()
        if isinstance(i, Load)
    ]
    assert len(setup_loads) == 2


def test_dynamic_loads_stay_in_template():
    source = """
    int f(int *data, int v) {
        dynamicRegion (data) {
            return (dynamic* data) + v;
        }
    }
    """
    module, (plan,) = split(source)
    func = module.functions["f"]
    template_loads = [
        i for name in plan.template_blocks
        for i in func.blocks[name].all_instrs()
        if isinstance(i, Load)
    ]
    assert len(template_loads) == 1
    assert template_loads[0].dynamic
    assert isinstance(template_loads[0].addr, HoleRef)


def test_float_hole_marked():
    source = """
    float f(float factor, float x) {
        dynamicRegion (factor) {
            float twice = factor + factor;
            return x * twice;
        }
    }
    """
    module, (plan,) = split(source)
    func = module.functions["f"]
    holes = [
        used
        for name in plan.template_blocks
        for i in func.blocks[name].all_instrs()
        for used in i.uses()
        if isinstance(used, HoleRef)
    ]
    assert holes and all(h.is_float for h in holes)
    assert any(plan.table.float_names.values())


def test_setup_cycle_without_unrolled_annotation_rejected():
    # A constant computed inside a non-unrolled loop cannot be set up.
    with pytest.raises(AnnotationError):
        split("""
            int f(int n, int *xs, int v) {
                int t = 0;
                dynamicRegion (n, xs) {
                    int i = 0;
                    while (i < v) {
                        int d = n * 2;
                        t += xs dynamic[ d + i ];
                        i++;
                    }
                    return t;
                }
            }
        """)


def test_region_in_dead_code_is_skipped():
    source = """
    int f(int c) {
        if (0) {
            dynamicRegion (c) { return c; }
        }
        return 1;
    }
    int main() { return f(3); }
    """
    module, plans = split(source)
    assert plans == []  # folded away before splitting


def test_multiple_regions_get_distinct_plans():
    source = """
    int f(int a, int b) {
        int r1 = 0; int r2 = 0;
        dynamicRegion (a) { r1 = a * 2; }
        dynamicRegion (b) { r2 = b * 3; }
        return r1 + r2;
    }
    """
    module, plans = split(source)
    assert len(plans) == 2
    assert plans[0].region_id != plans[1].region_id
    assert not (plans[0].template_blocks & plans[1].template_blocks)
