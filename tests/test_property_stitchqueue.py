"""Property-based tests for the async stitch queue.

The two invariants the whole robustness story rests on, checked under
adversarial combinations of queue config x faults x tiering x bounded
cache, on **both** execution backends:

* **Five-way entry partition** -- every region entry is served by
  exactly one of {cache hit, inline stitch, fallback, cold, queued},
  and **cycle conservation** -- every simulated cycle has exactly one
  owner -- hold whatever the scheduler, the fault injector, and the
  eviction policy conspire to do.
* **Job conservation** -- every admitted job ends in exactly one of
  {landed, expired, cancelled, still pending}, latencies are recorded
  once per landing and never negative, and injected ``queue.drop`` /
  ``stitch.hang`` faults are accounted one-for-one.

Results must stay bit-identical to the synchronous fault-free run of
the same key sequence: the queue may only change *when* stitches
happen, never what the program computes.

The key sequence is packed into one integer argument (2 bits per key)
so two compiled programs (one per backend) serve every example.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro import compile_program
from repro.faults import FaultPlan

SOURCE = """
int region(int k, int v) {
    int t = v;
    dynamicRegion key(k) (k) {
        int r = t * 3 + k * 5;
        return r;
    }
}

int main(int packed, int n) {
    int t = 0;
    int i;
    int p = packed;
    for (i = 0; i < n; i++) {
        t = t + region(p % 4, i);
        p = p / 4;
    }
    return t;
}
"""

PROGRAMS = {
    "rvm": compile_program(SOURCE, mode="dynamic"),
    "pycode": compile_program(SOURCE, mode="dynamic", backend="pycode"),
}

BACKENDS = st.sampled_from(sorted(PROGRAMS))

STITCH_SPECS = st.sampled_from([
    "async",
    "async:drain=1",
    "async:drain=2,depth=1",
    "async:drain=2,depth=2,batch=2",
    "async:drain=4,deadline=500",
    "async:drain=2,retries=1,backoff=1,jitter=2,seed=5",
])

FAULT_SPECS = st.sampled_from([
    None,
    "queue.drop:0.5@3",
    "stitch.hang:0.5@5",
    "stitch.table:0.5@7",
    "all:0.15@11",
])

TIER_SPECS = st.sampled_from([None, "threshold:2", "breakeven:8"])

CACHE_SPECS = st.sampled_from([None, "lru:2", "cost-aware:1"])

KEY_SEQUENCES = st.lists(st.integers(min_value=0, max_value=3),
                         min_size=1, max_size=12)

#: Sites that degrade service without raising into the fallback path.
NON_RAISING = {"cache.checksum", "tier.flip", "queue.drop",
               "stitch.hang"}


def pack(keys):
    packed = 0
    for key in reversed(keys):
        packed = packed * 4 + key
    return packed


def run(backend, keys, **kwargs):
    from repro.codecache import CacheConfig
    cache = kwargs.pop("cache", None)
    if cache is not None:
        kwargs["cache"] = CacheConfig.parse(cache)
    return PROGRAMS[backend].run("main", [pack(keys), len(keys)],
                                 **kwargs)


@settings(max_examples=60, deadline=None)
@given(KEY_SEQUENCES, BACKENDS, STITCH_SPECS, FAULT_SPECS,
       TIER_SPECS, CACHE_SPECS)
def test_partition_and_conservation_under_chaos(keys, backend, stitch,
                                                faults, tier, cache):
    """The five-way partition, cycle conservation, and queue-job
    conservation all hold under combined queueing + faults + tiering +
    bounded cache -- and the observable result never changes."""
    reference = run(backend, keys)
    result = run(backend, keys, stitch=stitch, tier=tier, cache=cache,
                 fault_plan=FaultPlan.parse(faults))
    assert result.value == reference.value

    # Cycle conservation: every cycle has exactly one owner.
    assert sum(result.cycles_by_owner.values()) == result.cycles

    # Five-way entry partition.
    entries = sum(result.region_entries.values())
    assert entries == (result.cache_stats.hits
                       + len(result.stitch_reports)
                       + len(result.fallbacks)
                       + len(result.cold_entries)
                       + len(result.queued_entries))

    # Queue-job conservation and fault accounting.
    qs = result.queue_stats
    assert qs is not None
    assert qs.enqueued == (qs.landed + qs.expired + qs.total_cancelled
                           + qs.pending)
    assert len(qs.land_latencies) == qs.landed
    assert all(lat >= 0 for lat in qs.land_latencies)
    assert qs.dropped <= qs.shed
    assert qs.dropped == result.fault_counts.get("queue.drop", 0)
    assert qs.hung == result.fault_counts.get("stitch.hang", 0)

    # Raising faults all degraded into recorded fallback entries.
    raised = sum(count for site, count in result.fault_counts.items()
                 if site not in NON_RAISING)
    injected_fallbacks = sum(1 for event in result.fallbacks
                             if event.reason == "fault")
    assert injected_fallbacks == raised


@settings(max_examples=25, deadline=None)
@given(KEY_SEQUENCES, BACKENDS, STITCH_SPECS)
def test_async_schedule_is_bit_deterministic(keys, backend, stitch):
    """Two async runs of one key sequence agree on everything --
    cycles, queue events, latencies -- not just the value."""
    first = run(backend, keys, stitch=stitch)
    second = run(backend, keys, stitch=stitch)
    assert first.value == second.value
    assert first.cycles == second.cycles
    assert first.queued_entries == second.queued_entries
    assert first.queue_stats.land_latencies \
        == second.queue_stats.land_latencies
    assert first.queue_stats.cancelled == second.queue_stats.cancelled
