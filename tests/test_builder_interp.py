"""Language-semantics tests: MiniC through the builder + interpreter.

These pin down the meaning of MiniC programs; the compiled-code tests
reuse the same programs and compare against these results.
"""

import pytest

from repro.frontend.errors import CompileError
from repro.runtime.interp import InterpError

from helpers import build, interp_run


def run(source, func="main", args=None):
    return interp_run(source, func, args)[0]


# -- arithmetic & expressions ----------------------------------------------


def test_arithmetic():
    assert run("int main() { return 2 + 3 * 4 - 1; }") == 13


def test_division_and_modulo():
    assert run("int main() { return 17 / 5 * 10 + 17 % 5; }") == 32


def test_negative_division():
    assert run("int main() { return (0-17) / 5; }") == -3


def test_unsigned_operations():
    src = "int main() { uint x = 0 - 1; return (int)(x >> 60); }"
    assert run(src) == 15


def test_signed_shift():
    assert run("int main() { int x = 0 - 16; return x >> 2; }") == -4


def test_bitwise_ops():
    assert run("int main() { return (12 & 10) | (12 ^ 10); }") == 14


def test_comparisons():
    assert run("int main() { return (1 < 2) + (2 <= 2) + (3 > 4) + (5 >= 5)"
               " + (1 == 1) + (1 != 1); }") == 4


def test_logical_short_circuit():
    src = """
    int g;
    int bump() { g = g + 1; return 0; }
    int main() {
        int r = bump() && bump();
        return g * 10 + r;
    }
    """
    assert run(src) == 10  # second bump not evaluated


def test_logical_or_value():
    assert run("int main() { return (0 || 7) + (3 && 0); }") == 1


def test_ternary():
    assert run("int main() { int x = 5; return x > 3 ? 10 : 20; }") == 10


def test_post_increment_value():
    assert run("int main() { int i = 5; int j = i++; return i * 10 + j; }") \
        == 65


def test_compound_assignment():
    assert run("int main() { int x = 10; x += 5; x *= 2; x -= 3; x /= 2;"
               " return x; }") == 13


def test_float_arithmetic():
    value, output = interp_run(
        "int main() { float f = 1.5; f = f * 4.0 + 1.0; print_float(f);"
        " return 0; }")
    assert output == [7.0]


def test_int_float_promotion():
    value, output = interp_run(
        "int main() { float f = 3; print_float(f / 2); return 0; }")
    assert output == [1.5]


def test_float_to_int_cast_truncates():
    assert run("int main() { return (int) 3.9; }") == 3


def test_sizeof():
    src = """
    struct Pair { int a; float b; };
    int main() { return sizeof(Pair) * 100 + sizeof(int*) * 10
                        + sizeof(float); }
    """
    assert run(src) == 211


# -- control flow ---------------------------------------------------------------


def test_while_loop():
    assert run("int main() { int i = 0; int t = 0;"
               " while (i < 5) { t += i; i++; } return t; }") == 10


def test_do_while_runs_once():
    assert run("int main() { int t = 0; do t = 9; while (0); return t; }") == 9


def test_for_break_continue():
    src = """
    int main() {
        int t = 0; int i;
        for (i = 0; i < 100; i++) {
            if (i % 2 == 0) continue;
            if (i > 10) break;
            t += i;
        }
        return t;
    }
    """
    assert run(src) == 1 + 3 + 5 + 7 + 9


def test_nested_loops():
    src = """
    int main() {
        int t = 0; int i; int j;
        for (i = 0; i < 4; i++)
            for (j = 0; j < 4; j++)
                if (j > i) t += 1;
        return t;
    }
    """
    assert run(src) == 6


def test_switch_fallthrough():
    src = """
    int classify(int x) {
        int r = 0;
        switch (x) {
            case 1: r += 1;
            case 2: r += 2; break;
            case 5: r = 50; break;
            default: r = 99;
        }
        return r;
    }
    int main() {
        return classify(1) * 1000 + classify(2) * 100
             + classify(5) + classify(7) / 9;
    }
    """
    # classify(1)=3, classify(2)=2, classify(5)=50, classify(7)=99
    assert run(src) == 3000 + 200 + 50 + 11


def test_goto_forward_and_backward():
    src = """
    int main() {
        int i = 0; int t = 0;
    top:
        t += i;
        i++;
        if (i < 4) goto top;
        goto done;
        t = 999;
    done:
        return t;
    }
    """
    assert run(src) == 6


def test_unstructured_loop_exit():
    src = """
    int main() {
        int i; int j; int found = 0;
        for (i = 0; i < 10; i++) {
            for (j = 0; j < 10; j++) {
                if (i * j == 42) goto out;
            }
        }
    out:
        return i * 100 + j;
    }
    """
    assert run(src) == 607  # 6*7 == 42


# -- functions --------------------------------------------------------------------


def test_recursion():
    src = """
    int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }
    int main() { return fib(12); }
    """
    assert run(src) == 144


def test_mutual_recursion():
    src = """
    int is_odd(int n);
    int is_even(int n) { if (n == 0) return 1; return is_odd(n - 1); }
    int is_odd(int n) { if (n == 0) return 0; return is_even(n - 1); }
    int main() { return is_even(10) * 10 + is_odd(7); }
    """
    assert run(src) == 11


def test_arguments_passed_by_value():
    src = """
    int twiddle(int x) { x = 999; return x; }
    int main() { int x = 5; twiddle(x); return x; }
    """
    assert run(src) == 5


def test_float_function():
    src = """
    float avg(float a, float b) { return (a + b) / 2.0; }
    int main() { print_float(avg(1.0, 4.0)); return 0; }
    """
    assert interp_run(src)[1] == [2.5]


def test_builtins():
    src = """
    int main() {
        print_int(imax(3, 7));
        print_int(imin(3, 7));
        print_int(iabs(0 - 9));
        print_float(fsqrt(16.0));
        return 0;
    }
    """
    assert interp_run(src)[1] == [7, 3, 9, 4.0]


# -- memory -----------------------------------------------------------------------


def test_local_array():
    src = """
    int main() {
        int a[5]; int i; int t = 0;
        for (i = 0; i < 5; i++) a[i] = i * i;
        for (i = 0; i < 5; i++) t += a[i];
        return t;
    }
    """
    assert run(src) == 30


def test_pointer_walk():
    src = """
    int main() {
        int a[4];
        a[0] = 1; a[1] = 2; a[2] = 3; a[3] = 4;
        int *p = a;
        int t = 0;
        while (p < a + 4) { t += *p; p++; }
        return t;
    }
    """
    assert run(src) == 10


def test_address_of_local():
    src = """
    void set(int *p) { *p = 42; }
    int main() { int x = 0; set(&x); return x; }
    """
    assert run(src) == 42


def test_struct_on_heap():
    src = """
    struct Node { int value; Node *next; };
    int main() {
        Node *head = 0;
        int i;
        for (i = 1; i <= 4; i++) {
            Node *n = (Node*) alloc(sizeof(Node));
            n->value = i;
            n->next = head;
            head = n;
        }
        int t = 0;
        Node *p = head;
        while (p != 0) { t = t * 10 + p->value; p = p->next; }
        return t;
    }
    """
    assert run(src) == 4321


def test_nested_struct_field():
    src = """
    struct Inner { int x; int y; };
    struct Outer { int pad; Inner inner; };
    int main() {
        Outer o;
        o.inner.x = 3;
        o.inner.y = 4;
        return o.inner.x * 10 + o.inner.y;
    }
    """
    assert run(src) == 34


def test_global_variables():
    src = """
    int counter = 10;
    float ratio = 2.5;
    int bump() { counter = counter + 1; return counter; }
    int main() { bump(); bump(); print_float(ratio); return counter; }
    """
    value, output = interp_run(src)
    assert value == 12
    assert output == [2.5]


def test_global_array():
    src = """
    int table[10];
    int main() {
        int i;
        for (i = 0; i < 10; i++) table[i] = i;
        return table[3] + table[7];
    }
    """
    assert run(src) == 10


def test_matrix_via_pointers():
    src = """
    int main() {
        int m[12];  // 3x4 matrix
        int i; int j;
        for (i = 0; i < 3; i++)
            for (j = 0; j < 4; j++)
                m[i * 4 + j] = i * j;
        int t = 0;
        for (i = 0; i < 12; i++) t += m[i];
        return t;
    }
    """
    assert run(src) == 18


# -- error behaviour ------------------------------------------------------------------


def test_division_by_zero_traps():
    with pytest.raises(Exception):
        run("int main() { int z = 0; return 1 / z; }")


def test_wild_load_raises():
    with pytest.raises(InterpError):
        run("int main() { int *p = (int*)(0 - 5); return *p; }")


def test_return_default_when_falling_off():
    assert run("int main() { int x = 5; x = x; }") == 0
