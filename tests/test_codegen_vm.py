"""Static code generation tests: compiled RVM code must agree with the
reference interpreter on a zoo of programs."""

import pytest

from repro import compile_program

from helpers import interp_run

PROGRAMS = {
    "arith": "int main() { return 2 + 3 * 4 - 20 / 4 + 17 % 5; }",
    "unsigned": """
        int main() {
            uint x = 0 - 1;
            return (int)(x >> 60) + (int)(x / 4 % 7);
        }
    """,
    "big_constants": """
        int main() {
            int big = 123456789;
            int huge = big * 100;
            return huge / big;
        }
    """,
    "loops": """
        int main() {
            int t = 0; int i; int j;
            for (i = 0; i < 20; i++)
                for (j = 0; j < i; j++)
                    if ((i + j) % 3 == 0) t += i * j;
            return t;
        }
    """,
    "while_break": """
        int main() {
            int i = 0; int t = 0;
            while (1) {
                if (i >= 10) break;
                if (i % 2) { i++; continue; }
                t += i;
                i++;
            }
            return t;
        }
    """,
    "switch": """
        int main() {
            int t = 0; int i;
            for (i = 0; i < 12; i++) {
                switch (i % 4) {
                    case 0: t += 1;
                    case 1: t += 10; break;
                    case 2: t += 100; break;
                    default: t += 1000;
                }
            }
            return t;
        }
    """,
    "goto": """
        int main() {
            int i = 0; int t = 0;
        again:
            t += i * i;
            i++;
            if (i < 6) goto again;
            return t;
        }
    """,
    "recursion": """
        int fact(int n) { if (n <= 1) return 1; return n * fact(n - 1); }
        int main() { return fact(10); }
    """,
    "mutual_recursion": """
        int odd(int n);
        int even(int n) { if (n == 0) return 1; return odd(n - 1); }
        int odd(int n) { if (n == 0) return 0; return even(n - 1); }
        int main() { return even(20) * 2 + odd(13); }
    """,
    "many_locals_spill": """
        int main() {
            int a0 = 1; int a1 = 2; int a2 = 3; int a3 = 4; int a4 = 5;
            int a5 = 6; int a6 = 7; int a7 = 8; int a8 = 9; int a9 = 10;
            int b0 = a0*2; int b1 = a1*2; int b2 = a2*2; int b3 = a3*2;
            int b4 = a4*2; int b5 = a5*2; int b6 = a6*2; int b7 = a7*2;
            int b8 = a8*2; int b9 = a9*2;
            int c0 = b0+a0; int c1 = b1+a1; int c2 = b2+a2; int c3 = b3+a3;
            int c4 = b4+a4; int c5 = b5+a5; int c6 = b6+a6; int c7 = b7+a7;
            int c8 = b8+a8; int c9 = b9+a9;
            return a0+a1+a2+a3+a4+a5+a6+a7+a8+a9
                 + b0+b1+b2+b3+b4+b5+b6+b7+b8+b9
                 + c0+c1+c2+c3+c4+c5+c6+c7+c8+c9;
        }
    """,
    "arrays": """
        int main() {
            int a[16]; int i; int t = 0;
            for (i = 0; i < 16; i++) a[i] = 15 - i;
            for (i = 0; i < 16; i++) t = t * 2 + a[i] % 2;
            return t;
        }
    """,
    "pointers": """
        void swap(int *a, int *b) { int t = *a; *a = *b; *b = t; }
        int main() {
            int x = 3; int y = 9;
            swap(&x, &y);
            return x * 10 + y;
        }
    """,
    "structs_heap": """
        struct Node { int value; Node *next; };
        int main() {
            Node *head = 0; int i;
            for (i = 1; i <= 5; i++) {
                Node *n = (Node*) alloc(sizeof(Node));
                n->value = i * i;
                n->next = head;
                head = n;
            }
            int t = 0;
            Node *p;
            unrolled_placeholder: ;
            for (p = head; p != 0; p = p->next) t += p->value;
            return t;
        }
    """,
    "floats": """
        float poly(float x) { return x * x * 2.0 + x * 3.0 + 1.0; }
        int main() {
            float t = 0.0; int i;
            for (i = 0; i < 5; i++) t = t + poly((float) i);
            print_float(t);
            return (int) t;
        }
    """,
    "float_compare": """
        int main() {
            float a = 1.5; float b = 2.5;
            return (a < b) + (a >= b) * 10 + (a == a) * 100 + (a != b) * 1000;
        }
    """,
    "globals": """
        int counter;
        int table[8];
        float scale = 1.5;
        void init() {
            int i;
            for (i = 0; i < 8; i++) table[i] = i * 3;
        }
        int main() {
            init();
            counter = table[5];
            print_float(scale);
            return counter + table[2];
        }
    """,
    "builtins": """
        int main() {
            print_int(imax(8, 3));
            print_int(iabs(0 - 4));
            print_float(fsqrt(2.25));
            print_float(fpow(2.0, 10.0));
            return imin(9, 4);
        }
    """,
    "output_order": """
        int main() {
            int i;
            for (i = 0; i < 5; i++) print_int(i * i);
            return 0;
        }
    """,
    "ternary_chain": """
        int grade(int s) {
            return s > 90 ? 4 : s > 80 ? 3 : s > 70 ? 2 : s > 60 ? 1 : 0;
        }
        int main() {
            return grade(95) * 10000 + grade(85) * 1000 + grade(75) * 100
                 + grade(65) * 10 + grade(10);
        }
    """,
    "negative_numbers": """
        int main() {
            int a = 0 - 7;
            return a / 2 * 1000 + iabs(a % 2) * 100 + (a >> 1) + 200;
        }
    """,
}


@pytest.mark.parametrize("name", sorted(PROGRAMS))
def test_static_matches_interpreter(name):
    source = PROGRAMS[name].replace("unrolled_placeholder: ;", "")
    expected, expected_out = interp_run(source)
    program = compile_program(source, mode="static")
    result = program.run()
    assert result.value == expected
    assert result.output == expected_out


def test_main_with_arguments():
    source = "int main(int a, int b) { return a * 100 + b; }"
    program = compile_program(source, mode="static")
    assert program.run(args=[3, 7]).value == 307


def test_cycles_are_positive_and_attributed():
    program = compile_program(PROGRAMS["loops"], mode="static")
    result = program.run()
    assert result.cycles > 100
    assert result.cycles_by_owner.get("fn:main", 0) > 0
    assert sum(result.cycles_by_owner.values()) == result.cycles


def test_other_entry_function():
    source = """
    int helper(int x) { return x + 1; }
    int main() { return 0; }
    """
    program = compile_program(source, mode="static")
    assert program.run("helper", [41]).value == 42
