"""Golden cycle-accounting regression tests.

The VM's execution fast path (predecoded threaded dispatch) and the
stitcher's copy-and-patch fast path are *host-side* optimizations: the
simulated observables -- ``cycles``, ``cycles_by_owner``,
``instrs_by_owner``, ``op_counts``, and every :class:`StitchReport`
field -- must be bit-identical to the original interpretive
implementation.  This module pins them against snapshots taken from
the pre-fast-path implementation (``golden_accounting.json``).

Regenerate (only when an *intentional* semantic change lands) with::

    PYTHONPATH=src python tests/test_accounting_golden.py --regen
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List

import pytest

from repro.bench.workloads import (
    calculator_workload, event_dispatcher_workload, sparse_matvec_workload,
)
from repro.runtime.engine import compile_program
from repro.machine.vm import VMError

GOLDEN_PATH = Path(__file__).parent / "golden_accounting.json"

#: name -> workload builder; small configs keep the snapshots fast but
#: still cover unrolling, const branches, holes, and float templates.
CASES = {
    "calculator_small": lambda: calculator_workload(xs=3, ys=3),
    "sparse_matvec_tiny": lambda: sparse_matvec_workload(
        size=8, per_row=3, reps=2),
    "event_dispatcher_small": lambda: event_dispatcher_workload(
        nguards=6, events=30),
}

MODES = ("static", "dynamic")

#: StitchReport fields snapshotted for dynamic mode.
REPORT_FIELDS = (
    "func_name", "region_id", "instrs_emitted", "holes_patched",
    "directives", "const_branches_resolved", "dead_sides_eliminated",
    "branch_fixups", "pool_entries", "records_followed", "cycles",
    "entry", "pool_base",
)


def snapshot(name: str, mode: str) -> Dict[str, object]:
    workload = CASES[name]()
    program = compile_program(workload.source, mode=mode)
    result = program.run()
    snap: Dict[str, object] = {
        "value": result.value,
        "output": list(result.output),
        "cycles": result.cycles,
        "cycles_by_owner": dict(result.cycles_by_owner),
        "instrs_by_owner": dict(result.instrs_by_owner),
        "op_counts": dict(result.op_counts),
    }
    if mode == "dynamic":
        reports: List[Dict[str, object]] = []
        for report in result.stitch_reports:
            row = {f: getattr(report, f) for f in REPORT_FIELDS}
            row["key"] = list(report.key)
            row["loop_iterations"] = {
                str(k): v for k, v in report.loop_iterations.items()}
            row["peepholes"] = dict(report.peepholes)
            reports.append(row)
        snap["stitch_reports"] = reports

    # Whatever the dispatch implementation, a second run of the same
    # Program must reproduce the exact same accounting (this also
    # exercises the engine's cached-VM re-run path).
    rerun = program.run()
    assert rerun.cycles == result.cycles
    assert dict(rerun.cycles_by_owner) == dict(result.cycles_by_owner)
    assert dict(rerun.instrs_by_owner) == dict(result.instrs_by_owner)
    assert dict(rerun.op_counts) == dict(result.op_counts)
    assert rerun.value == result.value
    assert list(rerun.output) == list(result.output)
    if mode == "dynamic":
        assert len(rerun.stitch_reports) == len(result.stitch_reports)
        for a, b in zip(rerun.stitch_reports, result.stitch_reports):
            for f in REPORT_FIELDS:
                assert getattr(a, f) == getattr(b, f), f
    return snap


def _full_snapshot(result) -> Dict[str, object]:
    """Every observable of one run, stitch reports included."""
    snap: Dict[str, object] = {
        "value": result.value,
        "float_value": result.float_value,
        "output": list(result.output),
        "cycles": result.cycles,
        "cycles_by_owner": dict(result.cycles_by_owner),
        "instrs_by_owner": dict(result.instrs_by_owner),
        "op_counts": dict(result.op_counts),
        "stitch_reports": [
            tuple(getattr(report, f) for f in REPORT_FIELDS)
            + (tuple(report.key), dict(report.loop_iterations),
               dict(report.peepholes))
            for report in result.stitch_reports
        ],
    }
    return snap


@pytest.mark.parametrize("mode", MODES)
@pytest.mark.parametrize("name", sorted(CASES))
def test_dispatch_equivalence(name: str, mode: str) -> None:
    """Fast path vs slow path: the predecoded threaded dispatch and the
    retained naive decode loop must agree on *every* observable --
    results, output, and bit-identical cycle/owner/opcode accounting.
    The cost model is simulated, so host-side dispatch speed must never
    leak into it."""
    workload = CASES[name]()
    threaded = compile_program(workload.source, mode=mode)
    naive = compile_program(workload.source, mode=mode)
    a = _full_snapshot(threaded.run(dispatch="threaded"))
    b = _full_snapshot(naive.run(dispatch="naive"))
    for field in sorted(a):
        assert a[field] == b[field], \
            "%s/%s: %s differs between threaded and naive dispatch" \
            % (name, mode, field)
    # Cross-dispatch rerun on the same cached VM: a naive rerun of the
    # threaded Program (and vice versa) must reproduce it again.
    c = _full_snapshot(threaded.run(dispatch="naive"))
    d = _full_snapshot(naive.run(dispatch="threaded"))
    assert c == a
    assert d == a


def test_dispatch_equivalence_on_trap() -> None:
    """Both dispatchers must fault identically (same message, same
    cycle count at the fault) on a division by zero."""
    source = """
    int main(int x) {
        return 7 / x;
    }
    """
    outcomes = []
    for dispatch in ("threaded", "naive"):
        program = compile_program(source, mode="static")
        try:
            program.run("main", [0], dispatch=dispatch)
        except VMError as exc:
            outcomes.append((str(exc), program._vm.cycles))
        else:
            pytest.fail("division by zero did not trap (%s)" % dispatch)
    assert outcomes[0] == outcomes[1]
    assert "arithmetic trap" in outcomes[0][0]


def test_dispatch_rejects_unknown() -> None:
    program = compile_program("int main(int x) { return x; }")
    with pytest.raises(ValueError):
        program.run("main", [1], dispatch="sideways")


@pytest.mark.parametrize("mode", MODES)
@pytest.mark.parametrize("name", sorted(CASES))
def test_eager_tier_matches_golden(name: str, mode: str) -> None:
    """Tier parity: an explicit ``tier="eager"`` run must reproduce
    the pre-tiering golden snapshots bit-for-bit -- the eager path
    constructs no controller, charges no ``tier:`` owner, and records
    no tiering state."""
    golden = _load_golden()
    expected = golden["%s/%s" % (name, mode)]
    workload = CASES[name]()
    program = compile_program(workload.source, mode=mode, tier="eager")
    result = program.run(tier="eager")
    assert result.value == expected["value"]
    assert result.cycles == expected["cycles"]
    assert dict(result.cycles_by_owner) == expected["cycles_by_owner"]
    assert dict(result.instrs_by_owner) == expected["instrs_by_owner"]
    assert dict(result.op_counts) == expected["op_counts"]
    assert result.tier_stats == {}
    assert result.cold_entries == []
    if mode == "dynamic":
        assert len(result.stitch_reports) \
            == len(expected["stitch_reports"])
        for report, row in zip(result.stitch_reports,
                               expected["stitch_reports"]):
            for f in REPORT_FIELDS:
                assert getattr(report, f) == row[f], f
            assert list(report.key) == row["key"]


def _load_golden() -> Dict[str, Dict[str, object]]:
    if not GOLDEN_PATH.exists():
        pytest.skip("golden_accounting.json missing; run --regen")
    return json.loads(GOLDEN_PATH.read_text())


@pytest.mark.parametrize("mode", MODES)
@pytest.mark.parametrize("name", sorted(CASES))
def test_accounting_matches_golden(name: str, mode: str) -> None:
    golden = _load_golden()
    key = "%s/%s" % (name, mode)
    assert key in golden, "no golden entry for %s" % key
    current = snapshot(name, mode)
    expected = golden[key]
    # Compare field by field for readable failures.
    for field in sorted(expected):
        assert current[field] == expected[field], \
            "%s: %s diverged from golden" % (key, field)
    assert sorted(current) == sorted(expected)


def regen() -> None:
    golden = {}
    for name in sorted(CASES):
        for mode in MODES:
            print("snapshotting %s/%s ..." % (name, mode))
            golden["%s/%s" % (name, mode)] = snapshot(name, mode)
    GOLDEN_PATH.write_text(json.dumps(golden, indent=2, sort_keys=True)
                           + "\n")
    print("wrote %s" % GOLDEN_PATH)


if __name__ == "__main__":
    import sys
    if "--regen" in sys.argv:
        regen()
    else:
        print(__doc__)
