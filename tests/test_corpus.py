"""Regression tests over the fuzz corpus.

Every ``tests/corpus/*.c`` file is a minimized reproducer committed
when the differential fuzzer (``python -m repro.fuzz``) found a
divergence that was then fixed.  Replaying them through the three-way
oracle keeps the fixes honest; a short deterministic fuzz run guards
the generator/oracle plumbing itself.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

from repro.fuzz import fuzz_one
from repro.testing.oracle import run_oracle

CORPUS_DIR = Path(__file__).parent / "corpus"
CORPUS_FILES = sorted(CORPUS_DIR.glob("*.c")) if CORPUS_DIR.is_dir() else []


def corpus_args(text: str) -> list:
    """Argument values from a reproducer's ``// args:`` header line."""
    match = re.search(r"^// args:\s*(.*)$", text, re.MULTILINE)
    if match is None:
        return [0]
    return [int(tok) for tok in match.group(1).split()] or [0]


def corpus_tier(text: str):
    """Tier spec from a reproducer's ``// tier:`` header, if any --
    written by the fuzzer for tiering-specific divergences."""
    match = re.search(r"^// tier:\s*(\S+)", text, re.MULTILINE)
    return match.group(1) if match else None


def corpus_backend(text: str):
    """Backend name from a reproducer's ``// backend:`` header, if any
    -- written by the fuzzer when the divergence was found with a
    non-default primary backend."""
    match = re.search(r"^// backend:\s*(\S+)", text, re.MULTILINE)
    return match.group(1) if match else None


def corpus_stitch(text: str):
    """Stitch-queue spec from a reproducer's ``// stitch:`` header, if
    any -- written by the fuzzer for queue-specific divergences."""
    match = re.search(r"^// stitch:\s*(\S+)", text, re.MULTILINE)
    return match.group(1) if match else None


@pytest.mark.parametrize(
    "path", CORPUS_FILES, ids=[p.stem for p in CORPUS_FILES])
def test_corpus_reproducer_stays_fixed(path: Path) -> None:
    text = path.read_text()
    for arg in corpus_args(text):
        report = run_oracle(text, [arg], tier=corpus_tier(text),
                            stitch=corpus_stitch(text),
                            backend=corpus_backend(text))
        assert not report.annotation_reject, \
            "%s (arg %d): dynamic leg rejected: %s" \
            % (path.name, arg,
               [o.error for o in report.outcomes.values()])
        assert not report.divergences, \
            "%s (arg %d): %s" % (path.name, arg, report.divergences)


@pytest.mark.parametrize(
    "path", CORPUS_FILES, ids=[p.stem for p in CORPUS_FILES])
def test_corpus_reproducer_stays_fixed_under_pycode(path: Path) -> None:
    """Every known-tricky program replays bit-identically with the
    pycode backend driving the primary dynamic legs (the cross-backend
    leg then re-runs rvm, so both directions of the seam are proven
    on the corpus)."""
    text = path.read_text()
    for arg in corpus_args(text):
        report = run_oracle(text, [arg], tier=corpus_tier(text),
                            stitch=corpus_stitch(text),
                            backend="pycode")
        assert not report.divergences, \
            "%s (arg %d): %s" % (path.name, arg, report.divergences)


@pytest.mark.parametrize("backend", [None, "pycode"])
@pytest.mark.parametrize(
    "path", CORPUS_FILES, ids=[p.stem for p in CORPUS_FILES])
def test_corpus_reproducer_replays_under_async_stitching(
        path: Path, backend) -> None:
    """Every known-tricky program replays clean when its dynamic legs
    stitch through the async queue, on both backends -- the queue may
    reschedule compilation but never change results.  Reproducers
    pinned to a specific queue config by a ``// stitch:`` header keep
    their recorded spec."""
    text = path.read_text()
    stitch = corpus_stitch(text) or "async:drain=2,depth=2"
    for arg in corpus_args(text):
        report = run_oracle(text, [arg], tier=corpus_tier(text),
                            stitch=stitch,
                            backend=corpus_backend(text) or backend)
        assert not report.annotation_reject or report.ok
        assert not report.divergences, \
            "%s (arg %d, stitch=%s): %s" \
            % (path.name, arg, stitch, report.divergences)


def test_corpus_headers_well_formed() -> None:
    for path in CORPUS_FILES:
        text = path.read_text()
        assert re.search(r"^// args:", text, re.MULTILINE), \
            "%s lacks an // args: header" % path.name


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_fuzz_smoke(seed: int) -> None:
    """A few deterministic fuzzer iterations end-to-end: generated
    programs must either pass the oracle or be legitimate
    annotation rejections -- never diverge."""
    program, bad, _rejected = fuzz_one(seed, seed)
    assert bad is None, \
        "seed %d diverged: %s" % (seed, bad.divergences if bad else None)
    assert program.source  # generator produced something non-trivial
