"""Graceful-degradation tests: the typed error hierarchy, fault
plans, the static fallback tier, resource guards, cache checksum
recovery, and the per-region circuit breaker.

The central claims under test:

* an injected or genuine stitch-path failure degrades to the static
  fallback tier and the program still computes the right answer;
* every injected fault is accounted for (fallback event or checksum
  recovery) -- nothing is silently swallowed;
* with faults disabled the whole degradation machinery is inert:
  runs are bit-identical to a build that never heard of it.
"""

import pytest

from repro import (
    ArenaExhausted, BreakerConfig, FaultPlan, ReproError, StitchBudget,
    StitchBudgetExceeded, StitchError, VMError, compile_program,
)
from repro.codecache import CacheConfig
from repro.errors import RegionNotFound, mark_injected
from repro.faults import FAULT_SITES
from repro.machine.vm import VM
from repro.runtime.guards import RegionBreaker
from repro.testing.oracle import run_oracle

#: Keyed region (fresh key per call => every entry attempts a stitch)
#: with an unrolled loop, so fallback code must run a real loop over
#: the iteration-record chain.
KEYED = """
int region(int k, int v) {
    int t = v;
    dynamicRegion key(k) (k) {
        int i;
        unrolled for (i = 0; i < k + 2; i++) t += i * k + 1;
        return t;
    }
}

int main(int n) {
    int t = 0;
    int i;
    for (i = 0; i < n; i++) t = t + region(i, i);
    return t;
}
"""

FLOATS = """
float scale(float x, float factor) {
    dynamicRegion key(factor) (factor) {
        float twice = factor * 2.0;
        return x * twice + factor;
    }
}

int main(int n) {
    float t = 0.0;
    int i;
    for (i = 0; i < n; i++) t = t + scale((float) i, (float) i + 0.5);
    print_float(t);
    return (int) t;
}
"""


def expected_value(source, args):
    return compile_program(source, mode="static").run("main", args).value


# -- the error hierarchy ------------------------------------------------------

def test_error_hierarchy_and_context():
    assert issubclass(StitchError, ReproError)
    assert issubclass(StitchBudgetExceeded, StitchError)
    assert issubclass(VMError, ReproError)
    assert issubclass(ArenaExhausted, VMError)
    exc = StitchError("boom", func="f", region_id=1)
    assert "(region f:1)" in str(exc)
    assert exc.func == "f" and exc.region_id == 1
    assert not exc.injected
    assert mark_injected(exc) is exc and exc.injected


def test_arena_exhausted_is_typed_with_capacity_detail():
    # Memory sized so the heap limit sits 4 words above HEAP_BASE: the
    # first real allocation must fail with the typed error, not a bare
    # RecursionError/IndexError somewhere downstream.
    vm = VM(memory_words=VM.HEAP_BASE + (1 << 16) + 4)
    with pytest.raises(ArenaExhausted) as info:
        vm.alloc(8)
    exc = info.value
    assert exc.requested == 8 and exc.free == 4
    assert "requested 8 words" in str(exc)
    assert isinstance(exc, VMError)


def test_template_size_raises_region_not_found():
    program = compile_program(KEYED, mode="dynamic")
    with pytest.raises(RegionNotFound):
        program.template_size("region", 99)
    with pytest.raises(KeyError):  # back-compat: callers catch KeyError
        program.template_size("nosuch", 1)


# -- FaultPlan ----------------------------------------------------------------

def test_fault_plan_parse():
    assert FaultPlan.parse(None) is None
    assert FaultPlan.parse("") is None
    assert FaultPlan.parse("off") is None
    plan = FaultPlan.parse("all:0.25")
    assert set(plan.probabilities) == set(FAULT_SITES)
    assert all(p == 0.25 for p in plan.probabilities.values())
    plan = FaultPlan.parse("stitch.hole:1.0,arena.code:0.5@7")
    assert plan.probabilities == {"stitch.hole": 1.0, "arena.code": 0.5}
    assert plan.seed == 7
    assert "stitch.hole" in plan.describe()
    with pytest.raises(ValueError):
        FaultPlan.parse("bogus.site:0.5")
    with pytest.raises(ValueError):
        FaultPlan.parse("stitch.hole:2.0")
    with pytest.raises(ValueError):
        FaultPlan.parse("stitch.hole")


def test_fault_plan_is_deterministic_and_bounded():
    draws = [FaultPlan({"stitch.hole": 0.5}, seed=3) for _ in range(2)]
    seq = [[plan.should_fire("stitch.hole") for _ in range(64)]
           for plan in draws]
    assert seq[0] == seq[1]
    # Unconfigured sites consume no randomness and never fire.
    assert not any(draws[0].should_fire("arena.pool") for _ in range(8))
    limited = FaultPlan({"stitch.hole": 1.0}, limit=2)
    fired = sum(limited.should_fire("stitch.hole") for _ in range(10))
    assert fired == 2 and limited.total_injected == 2


# -- the fallback tier --------------------------------------------------------

@pytest.mark.parametrize("site", ["stitch.table", "stitch.hole",
                                  "arena.pool", "arena.code"])
def test_every_raising_site_degrades_to_correct_fallback(site):
    expected = expected_value(KEYED, [4])
    program = compile_program(KEYED, mode="dynamic")
    result = program.run("main", [4],
                         fault_plan=FaultPlan({site: 1.0}))
    assert result.value == expected
    assert result.fallbacks, "no degradation recorded"
    injected = [e for e in result.fallbacks if e.injected]
    assert injected and all(e.reason == "fault" for e in injected)
    assert result.fault_counts.get(site, 0) == len(injected)
    # Fallback execution is charged to its own owner kind.
    assert any(owner.startswith("fallback:") and cycles > 0
               for owner, cycles in result.cycles_by_owner.items())


def test_fallback_handles_float_pool_holes():
    report = run_oracle(FLOATS, [6], faults="all:1.0")
    assert report.ok, [str(d) for d in report.divergences]


def test_fallback_under_faults_matches_oracle_with_bounded_cache():
    report = run_oracle(KEYED, [8], faults="all:0.5",
                        cache_config=CacheConfig.parse("lru:2"))
    assert report.ok, [str(d) for d in report.divergences]


# -- resource guards ----------------------------------------------------------

def test_budget_aborts_mid_unroll_into_fallback():
    expected = expected_value(KEYED, [9])
    program = compile_program(KEYED, mode="dynamic",
                              stitch_budget=StitchBudget(max_unroll=4))
    result = program.run("main", [9])
    assert result.value == expected
    reasons = {event.reason for event in result.fallbacks}
    assert "budget" in reasons
    assert all(not event.injected for event in result.fallbacks)
    # The partial stitch work before the abort is still charged.
    assert any(owner.startswith("stitcher:") and cycles > 0
               for owner, cycles in result.cycles_by_owner.items())


def test_word_budget_aborts_into_fallback():
    program = compile_program(KEYED, mode="dynamic",
                              stitch_budget=StitchBudget(max_words=4))
    result = program.run("main", [3])
    assert result.value == expected_value(KEYED, [3])
    assert result.fallbacks
    assert {event.reason for event in result.fallbacks} <= \
        {"budget", "breaker"}


# -- circuit breaker ----------------------------------------------------------

def test_breaker_unit_semantics():
    breaker = RegionBreaker(BreakerConfig(threshold=2, backoff=4),
                            "f", 1)
    assert breaker.should_attempt()
    breaker.on_failure()
    assert breaker.should_attempt()  # below threshold
    breaker.on_failure()             # trips
    assert not breaker.should_attempt() and breaker.cooldown == 4
    for _ in range(4):
        breaker.on_entry_while_open()
    assert breaker.should_attempt()  # half-open
    breaker.on_failure()             # re-trip: doubled cooldown
    assert breaker.cooldown == 8 and breaker.trips == 2
    for _ in range(8):
        breaker.on_entry_while_open()
    breaker.on_success()
    assert breaker.resets == 1
    snap = breaker.snapshot()
    assert snap["trips"] == 2 and snap["resets"] == 1
    assert snap["cooldown"] == 0


def test_breaker_trips_then_recovers_end_to_end():
    expected = expected_value(KEYED, [9])
    program = compile_program(
        KEYED, mode="dynamic",
        breaker_config=BreakerConfig(threshold=3, backoff=2))
    result = program.run(
        "main", [9],
        fault_plan=FaultPlan({"stitch.hole": 1.0}, limit=3))
    assert result.value == expected
    reasons = [event.reason for event in result.fallbacks]
    # Three injected failures trip the breaker; the cooldown serves
    # entries from fallback without attempting (or drawing faults);
    # the half-open retry succeeds (fault budget exhausted) and the
    # remaining keys stitch normally.
    assert reasons[:3] == ["fault", "fault", "fault"]
    assert "breaker" in reasons[3:]
    stats = result.breaker_stats[("region", 1)]
    assert stats["trips"] == 1 and stats["resets"] == 1
    assert result.stitch_reports, "post-recovery entries should stitch"


# -- cache checksum recovery --------------------------------------------------

#: Repeated keys => cache hits, which is where checksum verification
#: happens.
REVISIT = KEYED.replace("region(i, i)", "region(i % 2, i)")


def test_checksum_failure_invalidates_and_restitches():
    expected = expected_value(REVISIT, [6])
    program = compile_program(REVISIT, mode="dynamic")
    result = program.run(
        "main", [6],
        fault_plan=FaultPlan({"cache.checksum": 1.0}, limit=1))
    assert result.value == expected
    stats = result.cache_stats
    assert stats.checksum_failures == 1, stats
    assert stats.restitches >= 1
    # Checksum faults recover by re-stitch, not by fallback.
    assert not result.fallbacks
    assert result.fault_counts == {"cache.checksum": 1}


# -- faults disabled => bit-identical -----------------------------------------

def test_disabled_faults_are_bit_identical():
    baseline = compile_program(KEYED, mode="dynamic").run("main", [7])
    inert_plan = FaultPlan({"stitch.hole": 0.0})
    guarded = compile_program(
        KEYED, mode="dynamic",
        breaker_config=BreakerConfig(threshold=1, backoff=64))
    result = guarded.run("main", [7], fault_plan=inert_plan)
    assert result.value == baseline.value
    assert result.cycles == baseline.cycles
    assert result.cycles_by_owner == baseline.cycles_by_owner
    assert result.instrs_by_owner == baseline.instrs_by_owner
    assert not result.fallbacks and not result.fault_counts
    assert not result.fallback_blocks
