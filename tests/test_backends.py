"""Backend-seam tests: registry behavior, rvm identity, and pycode's
bit-for-bit observable parity with the rvm oracle.

The seam contract (:mod:`repro.backends.base`) says a backend may
spend host time however it likes but must never change a simulated
observable.  These tests pin that down across the configurations that
stress the install/evict/fallback lifecycle: plain runs, bounded
caches, injected faults, adaptive tiering, and the exact cycle count
at a budget trap.
"""

from __future__ import annotations

from typing import Dict

import pytest

import repro.backends as backends_mod
from repro.backends import (
    DEFAULT_BACKEND, PycodeBackend, RVMBackend, available_backends,
    get_backend, register_backend,
)
from repro.bench.workloads import (
    calculator_workload, event_dispatcher_workload, record_sorter_workload,
    scalar_matrix_workload, sparse_matvec_workload,
)
from repro.codecache import CacheConfig
from repro.faults import FaultPlan
from repro.machine.vm import VMError
from repro.runtime.engine import compile_program

#: small configs keep runs fast while still covering unrolled loops,
#: const branches, float templates, two-block counted loops (the
#: scalar matrix), const-divisor arithmetic and data-dependent
#: branching (the sorter).
CASES = {
    "calculator": lambda: calculator_workload(xs=3, ys=3),
    "scalar_matrix": lambda: scalar_matrix_workload(rows=6, cols=8,
                                                    scalars=4),
    "sparse_matvec": lambda: sparse_matvec_workload(size=8, per_row=3,
                                                    reps=2),
    "event_dispatcher": lambda: event_dispatcher_workload(nguards=6,
                                                          events=30),
    "record_sorter": lambda: record_sorter_workload(count=24),
}

REPORT_FIELDS = (
    "func_name", "region_id", "instrs_emitted", "holes_patched",
    "directives", "const_branches_resolved", "dead_sides_eliminated",
    "branch_fixups", "pool_entries", "records_followed", "cycles",
    "entry", "pool_base",
)

CACHE_FIELDS = ("hits", "misses", "evictions", "compactions",
                "invalidations", "restitches", "live_entries",
                "live_code_words")


def full_snapshot(result) -> Dict[str, object]:
    """Every simulated observable of one run."""
    snap: Dict[str, object] = {
        "value": result.value,
        "float_value": result.float_value,
        "output": list(result.output),
        "cycles": result.cycles,
        "cycles_by_owner": dict(result.cycles_by_owner),
        "instrs_by_owner": dict(result.instrs_by_owner),
        "op_counts": dict(result.op_counts),
        "stitch_reports": [
            tuple(getattr(report, f) for f in REPORT_FIELDS)
            + (tuple(report.key), dict(report.loop_iterations),
               dict(report.peepholes))
            for report in result.stitch_reports
        ],
    }
    stats = result.cache_stats
    if stats is not None:
        snap["cache_stats"] = {f: getattr(stats, f) for f in CACHE_FIELDS}
    snap["tier_stats"] = result.tier_stats
    snap["fault_counts"] = dict(result.fault_counts or {})
    snap["fallback_reasons"] = [e.reason for e in result.fallbacks or []]
    return snap


# -- registry ---------------------------------------------------------


def test_default_backend_is_rvm() -> None:
    assert DEFAULT_BACKEND == "rvm"
    assert get_backend(None).name == "rvm"
    program = compile_program("int main(int x) { return x + 1; }")
    assert program.run("main", [4]).backend == "rvm"


def test_registry_lists_both_backends() -> None:
    assert available_backends() == ["pycode", "rvm"]
    assert isinstance(get_backend("rvm"), RVMBackend)
    assert isinstance(get_backend("pycode"), PycodeBackend)


def test_unknown_backend_error_names_registry() -> None:
    with pytest.raises(ValueError) as info:
        get_backend("sideways")
    assert "sideways" in str(info.value)
    assert "pycode, rvm" in str(info.value)


def test_backend_instance_passes_through() -> None:
    backend = PycodeBackend()
    assert get_backend(backend) is backend
    program = compile_program("int main(int x) { return x * 3; }",
                              backend=backend)
    result = program.run("main", [5])
    assert result.value == 15
    assert result.backend == "pycode"
    assert program.backend is backend


def test_register_backend_round_trip() -> None:
    class TaggedRVM(RVMBackend):
        name = "tagged-rvm"

    register_backend("tagged-rvm", TaggedRVM)
    try:
        assert "tagged-rvm" in available_backends()
        program = compile_program("int main(int x) { return x - 2; }",
                                  backend="tagged-rvm")
        result = program.run("main", [9])
        assert result.value == 7
        assert result.backend == "tagged-rvm"
    finally:
        backends_mod._REGISTRY.pop("tagged-rvm", None)
    with pytest.raises(ValueError):
        get_backend("tagged-rvm")


# -- rvm identity -----------------------------------------------------


@pytest.mark.parametrize("mode", ("static", "dynamic"))
def test_explicit_rvm_matches_default(mode: str) -> None:
    """``backend="rvm"`` must be byte-identical to passing nothing --
    the seam refactor cannot have changed the default path."""
    workload = CASES["calculator"]()
    default = compile_program(workload.source, mode=mode)
    explicit = compile_program(workload.source, mode=mode, backend="rvm")
    assert full_snapshot(default.run()) == full_snapshot(explicit.run())


# -- pycode parity ----------------------------------------------------


@pytest.mark.parametrize("mode", ("static", "dynamic"))
@pytest.mark.parametrize("name", sorted(CASES))
def test_pycode_matches_rvm(name: str, mode: str) -> None:
    """Every simulated observable bit-identical between backends, on
    the first run and on the cached-VM rerun."""
    workload = CASES[name]()
    rvm = compile_program(workload.source, mode=mode, backend="rvm")
    pycode = compile_program(workload.source, mode=mode,
                             backend="pycode")
    a = rvm.run()
    b = pycode.run()
    assert a.backend == "rvm" and b.backend == "pycode"
    assert full_snapshot(a) == full_snapshot(b)
    assert full_snapshot(rvm.run()) == full_snapshot(pycode.run())
    if mode == "dynamic":
        assert pycode.backend.segments_compiled > 0


@pytest.mark.parametrize("spec", ["lru:2", "cost-aware:2",
                                  "lru:4:256"])
def test_pycode_matches_rvm_under_cache_pressure(spec: str) -> None:
    """Eviction, compaction and re-stitch under a bounded cache must
    not open any observable gap between backends (the pycode overlay
    artifacts die with their entries)."""
    workload = CASES["event_dispatcher"]()
    config = CacheConfig.parse(spec)
    rvm = compile_program(workload.source, mode="dynamic",
                          cache_config=config, backend="rvm")
    pycode = compile_program(workload.source, mode="dynamic",
                             cache_config=config, backend="pycode")
    for _ in range(2):
        assert full_snapshot(rvm.run()) == full_snapshot(pycode.run())


def test_pycode_matches_rvm_under_faults() -> None:
    """Injected stitch/cache faults degrade both backends to the same
    fallback decisions, fault counts and final observables."""
    workload = CASES["calculator"]()
    snaps = []
    for backend in ("rvm", "pycode"):
        program = compile_program(workload.source, mode="dynamic",
                                  backend=backend)
        result = program.run(fault_plan=FaultPlan.parse("all:0.3@7"))
        snaps.append(full_snapshot(result))
    assert snaps[0] == snaps[1]


def test_pycode_matches_rvm_under_tiering() -> None:
    """Adaptive tiering promotes through the seam: cold profiled
    entries, promotions and the resulting stitches agree."""
    workload = CASES["sparse_matvec"]()
    snaps = []
    for backend in ("rvm", "pycode"):
        program = compile_program(workload.source, mode="dynamic",
                                  tier="threshold:2", backend=backend)
        runs = [full_snapshot(program.run(tier="threshold:2"))
                for _ in range(2)]
        snaps.append(runs)
    assert snaps[0] == snaps[1]


def test_budget_trap_parity() -> None:
    """Exhausting the cycle budget must trap at the same simulated
    cycle count with the same message under either backend -- the
    pycode superhandlers precheck the budget so the trap point stays
    exact."""
    workload = CASES["scalar_matrix"]()
    outcomes = []
    for backend in ("rvm", "pycode"):
        program = compile_program(workload.source, mode="dynamic",
                                  backend=backend)
        try:
            program.run(max_cycles=20_000)
        except VMError as exc:
            outcomes.append((str(exc), program._vm.cycles))
        else:
            pytest.fail("budget of 20k cycles did not trap (%s)"
                        % backend)
    assert outcomes[0] == outcomes[1]
    assert "cycle budget exceeded" in outcomes[0][0]


def test_pycode_dispatch_backcompat() -> None:
    """The ``dispatch`` knob still selects the loop for non-overlay
    execution under pycode, and both loops agree."""
    workload = CASES["calculator"]()
    program = compile_program(workload.source, mode="dynamic",
                              backend="pycode")
    a = full_snapshot(program.run(dispatch="threaded"))
    b = full_snapshot(program.run(dispatch="naive"))
    assert a == b
    with pytest.raises(ValueError):
        program.run(dispatch="sideways")


def test_pycode_trap_messages_match_rvm() -> None:
    """Arithmetic traps inside generated closures carry the rvm
    wording and pc.  (The contract only requires the same exception
    type for fatal traps -- cycle accounting at the fault may differ
    because pycode charges segments in bulk -- but the message, pc
    included, is kept byte-identical.)"""
    source = """
    int main(int x) {
        int acc = 100;
        while (x >= 0) {
            acc = acc / x;
            x = x - 3;
        }
        return acc;
    }
    """
    outcomes = []
    for backend in ("rvm", "pycode"):
        program = compile_program(source, mode="static", backend=backend)
        try:
            program.run("main", [6])
        except VMError as exc:
            outcomes.append(str(exc))
        else:
            pytest.fail("division by zero did not trap (%s)" % backend)
    assert outcomes[0] == outcomes[1]
    assert "arithmetic trap" in outcomes[0]
