"""Metrics-registry semantics (repro.obs.metrics).

The registry's contract: instruments are create-or-return by name,
every mutation is a no-op while the registry is disabled, re-requesting
a name as a different kind is an error, and snapshots are plain JSON
data.
"""

from __future__ import annotations

import json

import pytest

from repro.obs.metrics import (
    DEFAULT_BUCKETS, MetricError, MetricsRegistry, format_snapshot,
)


@pytest.fixture
def reg():
    registry = MetricsRegistry()
    registry.enable()
    return registry


def test_disabled_by_default_and_noop():
    registry = MetricsRegistry()
    assert not registry.enabled
    counter = registry.counter("c")
    gauge = registry.gauge("g")
    histogram = registry.histogram("h")
    counter.inc(100)
    gauge.set(7)
    gauge.add(3)
    histogram.observe(42)
    assert counter.value == 0
    assert gauge.value == 0
    assert histogram.count == 0 and histogram.sum == 0
    assert histogram.min is None and histogram.max is None


def test_enable_starts_collection_on_cached_instruments():
    registry = MetricsRegistry()
    counter = registry.counter("c")  # cached while disabled
    counter.inc()
    assert counter.value == 0
    registry.enable()
    counter.inc()
    counter.inc(4)
    assert counter.value == 5
    registry.disable()
    counter.inc()
    assert counter.value == 5


def test_counter_semantics(reg):
    counter = reg.counter("stitch.count")
    counter.inc()
    counter.inc(2.5)
    assert counter.value == 3.5
    with pytest.raises(MetricError):
        counter.inc(-1)
    assert reg.counter("stitch.count") is counter


def test_gauge_semantics(reg):
    gauge = reg.gauge("cache.size")
    gauge.set(10)
    gauge.add(-3)
    assert gauge.value == 7
    gauge.set(0)
    assert gauge.value == 0


def test_histogram_buckets_and_stats(reg):
    histogram = reg.histogram("lat", buckets=(1, 10, 100))
    for value in (0, 1, 5, 10, 50, 1000):
        histogram.observe(value)
    assert histogram.count == 6
    assert histogram.sum == 1066
    assert histogram.min == 0 and histogram.max == 1000
    assert histogram.mean == pytest.approx(1066 / 6)
    # cumulative-by-construction: each observation lands in exactly one
    # bucket; le_1 gets 0 and 1, le_10 gets 5 and 10, le_100 gets 50,
    # and 1000 overflows to +Inf.
    assert histogram.bucket_counts == [2, 2, 1, 1]


def test_histogram_bad_buckets(reg):
    with pytest.raises(MetricError):
        reg.histogram("bad", buckets=(10, 1))
    with pytest.raises(MetricError):
        reg.histogram("dup", buckets=(1, 1, 2))


def test_kind_mismatch_raises(reg):
    reg.counter("x")
    with pytest.raises(MetricError):
        reg.gauge("x")
    with pytest.raises(MetricError):
        reg.histogram("x")
    reg.gauge("y")
    with pytest.raises(MetricError):
        reg.counter("y")


def test_snapshot_is_json_and_sorted(reg):
    reg.counter("b.count").inc(2)
    reg.gauge("a.level").set(-4)
    reg.histogram("c.hist").observe(3)
    snap = reg.snapshot()
    assert list(snap) == sorted(snap)
    json.dumps(snap)  # must be JSON-serializable as-is
    assert snap["b.count"] == {"type": "counter", "value": 2}
    assert snap["a.level"] == {"type": "gauge", "value": -4}
    hist = snap["c.hist"]
    assert hist["type"] == "histogram"
    assert hist["count"] == 1 and hist["sum"] == 3
    assert hist["buckets"]["le_4"] == 1


def test_reset_zeroes_but_keeps_registration(reg):
    counter = reg.counter("c")
    histogram = reg.histogram("h")
    counter.inc(5)
    histogram.observe(9)
    reg.reset()
    assert counter.value == 0
    assert histogram.count == 0 and histogram.min is None
    assert reg.counter("c") is counter  # same object survives reset
    reg.clear()
    assert reg.counter("c") is not counter


def test_default_buckets_strictly_increasing():
    assert list(DEFAULT_BUCKETS) == sorted(set(DEFAULT_BUCKETS))


def test_format_snapshot_renders_every_metric(reg):
    reg.counter("runs").inc(3)
    reg.histogram("cyc").observe(10)
    text = format_snapshot(reg.snapshot())
    assert "runs" in text and "3" in text
    assert "cyc" in text and "count=1" in text
