"""Code-cache subsystem tests: key conventions, configuration
parsing, the arenas, eviction/re-stitch identity, multi-version keyed
regions, compaction, invalidation, and the accounting invariant under
randomized capacities."""

import pytest

from repro import compile_program
from repro.bench.cachepressure import compile_pressure_program
from repro.codecache import CacheConfig, CacheKey, CodeArena, PoolArena
from repro.codecache.keys import region_key
from repro.fuzz import random_cache_config
from repro.machine.isa import ARG_BASE, MInstr
from repro.machine.vm import VM, VMError


# -- satellite: the one key-extraction helper ---------------------------------

def test_region_key_offset_conventions():
    """Pin both register conventions: region_lookup keys start at
    ARG_BASE; region_stitch shifts them up by one (the table address
    occupies ARG_BASE).  codegen.lower emits exactly these layouts."""
    regs = [0] * 64
    for i in range(4):
        regs[ARG_BASE + i] = 100 + i
    assert region_key(regs, 3) == (100, 101, 102)
    assert region_key(regs, 3, stitch_args=True) == (101, 102, 103)
    assert region_key(regs, 0) == ()
    assert region_key(regs, 0, stitch_args=True) == ()


def test_lookup_and_stitch_conventions_agree_end_to_end():
    """The same key must be seen by both services: revisit hits carry
    the key the lookup extracted, stitch reports carry the key the
    stitcher extracted -- a skew would stitch under one key and look
    up under another, and the revisit would never hit."""
    program = compile_program(MULTI_VERSION, mode="dynamic")
    result = program.run()
    stitched = sorted(r.key for r in result.stitch_reports)
    hit = sorted(h.key for h in result.cache_hits)
    assert stitched == hit == [(k,) for k in range(5)]


def test_cache_key_named_tuple():
    key = CacheKey("f", 2, (3, 4))
    assert key.func == "f" and key.region_id == 2 and key.key == (3, 4)
    assert key.region == ("f", 2)
    assert key.pretty() == "f:2[3, 4]"


# -- CacheConfig --------------------------------------------------------------

def test_cache_config_parse():
    assert CacheConfig.parse("unbounded") == CacheConfig()
    assert CacheConfig.parse("lru:4") == CacheConfig("lru", 4, None)
    assert CacheConfig.parse("cost-aware:8:4096") == \
        CacheConfig("cost-aware", 8, 4096)
    assert CacheConfig.parse("lru::2048") == CacheConfig("lru", None, 2048)
    with pytest.raises(ValueError):
        CacheConfig.parse("fifo:2")
    with pytest.raises(ValueError):
        CacheConfig.parse("lru:1:2:3")


def test_cache_config_bounded_and_describe():
    assert not CacheConfig().bounded
    assert not CacheConfig("lru").bounded          # a policy with no cap
    assert not CacheConfig(max_entries=4).bounded  # a cap with no policy
    assert CacheConfig("lru", 2).bounded
    assert CacheConfig("lru", max_words=64).bounded
    assert CacheConfig().describe() == "unbounded"
    assert CacheConfig("lru", 2, 64).describe() == "lru entries=2 words=64"


# -- arenas -------------------------------------------------------------------

def _vm_with_blocks(*sizes):
    """A VM whose code space holds len(sizes) dummy blocks above an
    empty static image; returns (vm, arena, [block bases])."""
    vm = VM(memory_words=1 << 12)
    arena = CodeArena(vm)
    bases = [vm.install_code([MInstr("add", 0, 0, 0)] * size)
             for size in sizes]
    return vm, arena, bases


def test_code_arena_alloc_release_coalesce():
    vm, arena, (base,) = _vm_with_blocks(4)
    assert arena.start == base
    assert arena.try_alloc(1) is None  # empty free list -> append path
    arena.release(base, 4)
    assert arena.free_words == 4 and arena.largest_free == 4
    assert all(instr.op == "freed" for instr in vm.code[base:base + 4])
    got = arena.try_alloc(2)           # first-fit with split
    assert got == base
    assert arena.free == [(base + 2, 2)]
    arena.release(base, 2)             # coalesces back into one block
    assert arena.free == [(base, 4)]
    assert arena.used_words == 0


def test_code_arena_fragmentation():
    vm, arena, (b0, b1, b2) = _vm_with_blocks(4, 4, 4)
    arena.release(b0, 4)
    arena.release(b2, 4)               # b1 keeps them from coalescing
    assert arena.free_words == 8 and arena.largest_free == 4
    assert arena.fragmented(6)         # fits in total, no single block
    assert not arena.fragmented(4)     # a block can hold it
    assert not arena.fragmented(10)    # does not fit at all
    assert arena.try_alloc(6) is None


def test_pool_arena_reuse_and_zeroing():
    vm = VM()
    arena = PoolArena(vm)
    base = arena.alloc(3)              # empty free list -> vm.alloc
    for i in range(3):
        vm.store(base + i, 7 + i)
    arena.release(base, 3)
    assert [vm.load(base + i) for i in range(3)] == [0, 0, 0]
    assert arena.alloc(2) == base      # reused from the free list
    assert arena.alloc(1) == base + 2  # the split remainder
    assert arena.alloc(1) != base      # exhausted -> fresh vm.alloc


def test_freed_filler_faults_on_execution():
    """Evicted code words must trap, not silently execute, under both
    dispatchers."""
    vm = VM(memory_words=1 << 12)
    base = vm.install_code([MInstr("halt")])
    vm.fill_freed(base, 1)
    with pytest.raises(VMError, match="unknown opcode"):
        vm.run(base, [])
    with pytest.raises(VMError, match="unknown opcode"):
        vm.run(base, [], dispatch="naive")


# -- eviction: the lru:1 two-key acceptance scenario --------------------------

TWO_KEY = """
int region(int k, int v) {
    int t = v;
    dynamicRegion key(k) (k) {
        int r = t * 3 + k * 5;
        return r;
    }
}

int main(int n) {
    int t = 0;
    int i;
    for (i = 0; i < n; i++) {
        t = t + region(i % 2, i);
    }
    return t;
}
"""


def test_lru_capacity_one_two_alternating_keys():
    """Capacity 1 with two alternating keys: every entry after the
    first two is a re-stitch of an evicted version, each re-stitch is
    word-identical to the original, and the observables bit-match the
    unbounded run."""
    n = 10
    expected = sum(i * 3 + (i % 2) * 5 for i in range(n))
    program = compile_program(TWO_KEY, mode="dynamic")
    baseline = program.run("main", [n])
    assert baseline.value == expected
    assert len(baseline.stitch_reports) == 2

    bounded = program.run("main", [n], cache=CacheConfig("lru", 1))
    stats = bounded.cache_stats
    assert bounded.value == baseline.value
    assert bounded.output == baseline.output
    assert stats.hits == 0 and stats.misses == n
    assert len(bounded.stitch_reports) == n
    assert stats.evictions == n - 1
    assert stats.restitches == n - 2
    assert stats.restitch_mismatches == []
    assert stats.live_entries == 1
    # every region execution accounted for, whatever the policy:
    assert sum(bounded.region_entries.values()) == stats.hits + stats.misses


def test_lru_capacity_one_matches_naive_dispatch():
    program = compile_program(TWO_KEY, mode="dynamic")
    config = CacheConfig("lru", 1)
    threaded = program.run("main", [8], cache=config)
    naive = program.run("main", [8], dispatch="naive", cache=config)
    assert naive.value == threaded.value
    assert naive.cycles == threaded.cycles
    assert naive.cycles_by_owner == threaded.cycles_by_owner
    assert naive.cache_stats.evictions == threaded.cache_stats.evictions


# -- multi-version keyed regions ----------------------------------------------

MULTI_VERSION = """
int region(int k, int v) {
    int t = v;
    dynamicRegion key(k) (k) {
        int r = t + k * 9;
        return r;
    }
}

int main() {
    int t = 0;
    int j;
    int i;
    for (j = 0; j < 2; j++) {
        for (i = 0; i < 5; i++) {
            t = t + region(i, j * 10 + i);
        }
    }
    return t;
}
"""


def test_multi_version_region_n_keys_n_stitches():
    """N distinct keys -> N stitched versions; the second round over
    the same keys hits every time (unbounded default)."""
    program = compile_program(MULTI_VERSION, mode="dynamic")
    result = program.run()
    expected = sum(j * 10 + i + i * 9 for j in range(2) for i in range(5))
    assert result.value == expected
    assert len(result.stitch_reports) == 5
    stats = result.cache_stats
    assert stats.hits == 5 and stats.misses == 5
    assert stats.evictions == 0 and stats.restitches == 0
    assert sum(result.region_entries.values()) == stats.hits + stats.misses


def test_multi_version_bit_identical_across_dispatchers():
    program = compile_program(MULTI_VERSION, mode="dynamic")
    threaded = program.run()
    naive = program.run(dispatch="naive")
    assert naive.value == threaded.value
    assert naive.cycles == threaded.cycles
    assert naive.cycles_by_owner == threaded.cycles_by_owner
    assert naive.op_counts == threaded.op_counts


# -- compaction ---------------------------------------------------------------

def test_compaction_under_pressure_preserves_results():
    """The cache-pressure workload (variable-size versions) fragments
    the free list at a tiny capacity; compaction must fire and the
    result must stay bit-identical to the unbounded baseline."""
    program = compile_pressure_program()
    baseline = program.run("main", [30, 8, 7])
    bounded = program.run("main", [30, 8, 7], cache=CacheConfig("lru", 2))
    stats = bounded.cache_stats
    assert bounded.value == baseline.value
    assert stats.evictions > 0
    assert stats.compactions > 0
    assert stats.restitch_mismatches == []
    assert stats.live_entries <= 2
    assert sum(bounded.region_entries.values()) == stats.hits + stats.misses


# -- invalidation -------------------------------------------------------------

INVALIDATION = """
int region(int k, int c, int v) {
    int t = v;
    dynamicRegion key(k) (k, c) {
        int r = t + k * 7 + c;
        return r;
    }
}

int main() {
    int a = region(0, 10, 1);
    int b = region(1, 10, 2);
    int c = region(0, 20, 3);
    return a * 10000 + b * 100 + c;
}
"""


def test_invalidation_on_table_refill():
    """Re-filling a region's run-time-constants table with different
    values for an already-seen key drops every version of that region
    (and clears the word-identity archive: the new words legitimately
    differ from the old stitch)."""
    program = compile_program(INVALIDATION, mode="dynamic")
    # Capacity 1 forces key 0 out before its table changes; the third
    # call re-stitches it against c=20 and must invalidate the region.
    result = program.run(cache=CacheConfig("lru", 1))
    a, b, c = 1 + 0 + 10, 2 + 7 + 10, 3 + 0 + 20
    assert result.value == a * 10000 + b * 100 + c
    stats = result.cache_stats
    assert stats.invalidations == 1
    assert stats.restitch_mismatches == []
    assert stats.live_entries == 1
    assert sum(result.region_entries.values()) == stats.hits + stats.misses


# -- the accounting invariant under randomized capacities ---------------------

def test_accounting_invariant_under_random_capacities():
    """entries == cache hits + stitches for >= 200 randomized cache
    configurations (the fuzzer's distribution: unbounded, lru and
    cost-aware with tiny entry caps and occasional word caps), with
    results bit-identical to the unbounded baseline throughout."""
    program = compile_pressure_program()
    baseline = program.run("main", [16, 5, 7])
    for iteration in range(200):
        config = random_cache_config(11, iteration)
        result = program.run("main", [16, 5, 7], cache=config)
        stats = result.cache_stats
        assert result.value == baseline.value, config.describe()
        assert sum(result.region_entries.values()) \
            == stats.hits + stats.misses, config.describe()
        assert stats.misses == len(result.stitch_reports), config.describe()
        assert stats.restitch_mismatches == [], config.describe()
