"""Parser unit tests."""

import pytest

from repro.frontend import astnodes as ast
from repro.frontend.errors import ParseError
from repro.frontend.parser import parse
from repro.frontend.types import (
    FLOAT, INT, UINT, ArrayType, PointerType, StructType,
)


def parse_func(body: str, header: str = "int f()"):
    program = parse("%s { %s }" % (header, body))
    decl = program.decls[-1]
    assert isinstance(decl, ast.FuncDecl)
    return decl


def first_stmt(body: str):
    return parse_func(body).body.stmts[0]


def parse_expr(text: str):
    stmt = first_stmt("x = %s;" % text)
    assert isinstance(stmt, ast.ExprStmt)
    assert isinstance(stmt.expr, ast.Assign)
    return stmt.expr.value


# -- declarations -----------------------------------------------------------


def test_empty_function():
    decl = parse_func("")
    assert decl.name == "f"
    assert decl.params == []
    assert decl.body.stmts == []


def test_function_params():
    decl = parse_func("", header="int f(int a, float b, uint c)")
    assert [p.name for p in decl.params] == ["a", "b", "c"]
    assert [p.param_type for p in decl.params] == [INT, FLOAT, UINT]


def test_void_params():
    decl = parse_func("", header="int f(void)")
    assert decl.params == []


def test_pointer_types():
    decl = parse_func("", header="int f(int *p, int **pp)")
    assert decl.params[0].param_type == PointerType(INT)
    assert decl.params[1].param_type == PointerType(PointerType(INT))


def test_struct_declaration():
    program = parse("struct Pair { int a; float b; };")
    decl = program.decls[0]
    assert isinstance(decl, ast.StructDecl)
    assert decl.fields == [("a", INT), ("b", FLOAT)]


def test_struct_name_usable_as_type():
    program = parse("""
        struct Node { Node *next; };
        Node *head(Node *n) { return n; }
    """)
    func = program.decls[1]
    assert isinstance(func.ret_type, PointerType)
    assert isinstance(func.ret_type.pointee, StructType)


def test_global_variable():
    program = parse("int counter = 5;")
    decl = program.decls[0]
    assert isinstance(decl, ast.GlobalVar)
    assert decl.name == "counter"
    assert isinstance(decl.init, ast.IntLit)


def test_global_array():
    program = parse("int table[100];")
    assert program.decls[0].var_type == ArrayType(INT, 100)


def test_prototype():
    program = parse("int f(int a); int f(int a) { return a; }")
    assert program.decls[0].body is None
    assert program.decls[1].body is not None


def test_local_array_declaration():
    stmt = first_stmt("int a[10];")
    assert isinstance(stmt, ast.VarDecl)
    assert stmt.var_type == ArrayType(INT, 10)


def test_multi_declarator():
    stmt = parse_func("int a, b, c;").body.stmts[0]
    assert isinstance(stmt, ast.Block)
    assert len(stmt.stmts) == 3


# -- statements ---------------------------------------------------------------


def test_if_else():
    stmt = first_stmt("if (x) y = 1; else y = 2;")
    assert isinstance(stmt, ast.If)
    assert stmt.otherwise is not None


def test_dangling_else():
    stmt = first_stmt("if (a) if (b) x = 1; else x = 2;")
    assert isinstance(stmt, ast.If)
    assert stmt.otherwise is None  # else binds to inner if
    assert isinstance(stmt.then, ast.If)
    assert stmt.then.otherwise is not None


def test_while():
    stmt = first_stmt("while (x) x = x - 1;")
    assert isinstance(stmt, ast.While)


def test_do_while():
    stmt = first_stmt("do x = 1; while (x);")
    assert isinstance(stmt, ast.DoWhile)


def test_for_full():
    stmt = first_stmt("for (i = 0; i < 10; i++) x = i;")
    assert isinstance(stmt, ast.For)
    assert stmt.init is not None
    assert stmt.cond is not None
    assert stmt.update is not None
    assert not stmt.unrolled


def test_for_with_declaration():
    stmt = first_stmt("for (int i = 0; i < 10; i++) x = i;")
    assert isinstance(stmt.init, ast.VarDecl)


def test_for_empty_clauses():
    stmt = first_stmt("for (;;) break;")
    assert stmt.init is None and stmt.cond is None and stmt.update is None


def test_unrolled_for():
    stmt = first_stmt("unrolled for (i = 0; i < n; i++) x = i;")
    assert isinstance(stmt, ast.For)
    assert stmt.unrolled


def test_unrolled_while():
    stmt = first_stmt("unrolled while (p) p = q;")
    assert isinstance(stmt, ast.UnrolledWhile)


def test_unrolled_requires_loop():
    with pytest.raises(ParseError):
        parse_func("unrolled x = 1;")


def test_switch_with_fallthrough():
    stmt = first_stmt("""
        switch (x) {
            case 1: y = 1; break;
            case 2:
            case 3: y = 2;
            default: y = 3;
        }
    """)
    assert isinstance(stmt, ast.Switch)
    assert len(stmt.cases) == 3
    assert stmt.cases[0].values == [1]
    assert stmt.cases[1].values == [2, 3]
    assert stmt.cases[2].values is None


def test_case_labels_must_be_constant():
    with pytest.raises(ParseError):
        parse_func("switch (x) { case y: break; }")


def test_negative_case_label():
    stmt = first_stmt("switch (x) { case -1: break; }")
    assert stmt.cases[0].values == [-1]


def test_goto_and_label():
    decl = parse_func("goto end; x = 1; end: return 0;")
    assert isinstance(decl.body.stmts[0], ast.Goto)
    assert isinstance(decl.body.stmts[2], ast.LabeledStmt)


def test_return_void():
    stmt = first_stmt("return;")
    assert isinstance(stmt, ast.Return)
    assert stmt.value is None


# -- dynamic-region annotations -----------------------------------------------


def test_dynamic_region():
    stmt = first_stmt("dynamicRegion (a, b) { x = a; }")
    assert isinstance(stmt, ast.DynamicRegion)
    assert stmt.const_vars == ["a", "b"]
    assert stmt.key_vars == []


def test_dynamic_region_with_key():
    stmt = first_stmt("dynamicRegion key(k) (a) { x = a; }")
    assert stmt.key_vars == ["k"]
    assert stmt.const_vars == ["a"]


def test_dynamic_region_empty_constants():
    stmt = first_stmt("dynamicRegion key(k) () { x = 1; }")
    assert stmt.const_vars == []


def test_dynamic_deref():
    expr = parse_expr("dynamic* p")
    assert isinstance(expr, ast.Deref)
    assert expr.dynamic


def test_dynamic_arrow():
    expr = parse_expr("p dynamic-> f")
    assert isinstance(expr, ast.Field)
    assert expr.dynamic and expr.arrow


def test_dynamic_index():
    expr = parse_expr("a dynamic[ i ]")
    assert isinstance(expr, ast.Index)
    assert expr.dynamic


# -- expressions ------------------------------------------------------------


def test_precedence_mul_over_add():
    expr = parse_expr("1 + 2 * 3")
    assert isinstance(expr, ast.Binary) and expr.op == "+"
    assert isinstance(expr.rhs, ast.Binary) and expr.rhs.op == "*"


def test_precedence_shift_vs_compare():
    expr = parse_expr("a << 2 < b")
    assert expr.op == "<"
    assert expr.lhs.op == "<<"


def test_left_associativity():
    expr = parse_expr("a - b - c")
    assert expr.op == "-"
    assert isinstance(expr.lhs, ast.Binary) and expr.lhs.op == "-"


def test_assignment_right_associative():
    stmt = first_stmt("a = b = 1;")
    outer = stmt.expr
    assert isinstance(outer, ast.Assign)
    assert isinstance(outer.value, ast.Assign)


def test_compound_assignment():
    stmt = first_stmt("a += 2;")
    assert stmt.expr.op == "+"


def test_ternary():
    expr = parse_expr("a ? b : c")
    assert isinstance(expr, ast.Conditional)


def test_cast():
    expr = parse_expr("(uint) x")
    assert isinstance(expr, ast.Cast)
    assert expr.target == UINT


def test_cast_pointer():
    program = parse("struct S { int x; }; int f() { y = (S*) p; return 0; }")
    assign = program.decls[1].body.stmts[0].expr
    assert isinstance(assign.value, ast.Cast)


def test_parenthesized_not_cast():
    expr = parse_expr("(x) + 1")
    assert isinstance(expr, ast.Binary)


def test_sizeof():
    expr = parse_expr("sizeof(int)")
    assert isinstance(expr, ast.SizeOf)


def test_call_with_args():
    expr = parse_expr("g(1, x, h())")
    assert isinstance(expr, ast.Call)
    assert len(expr.args) == 3


def test_chained_postfix():
    expr = parse_expr("a[1].f->g[2]")
    assert isinstance(expr, ast.Index)
    assert isinstance(expr.base, ast.Field)


def test_address_of():
    expr = parse_expr("&x")
    assert isinstance(expr, ast.AddrOf)


def test_unary_chain():
    expr = parse_expr("-~!x")
    assert expr.op == "-"
    assert expr.operand.op == "~"
    assert expr.operand.operand.op == "!"


def test_postincrement():
    expr = parse_expr("i++")
    assert isinstance(expr, ast.IncDec)
    assert expr.op == "++"


# -- errors -------------------------------------------------------------------


def test_missing_semicolon():
    with pytest.raises(ParseError):
        parse("int f() { x = 1 }")


def test_unbalanced_braces():
    with pytest.raises(ParseError):
        parse("int f() { if (x) {")


def test_bad_top_level():
    with pytest.raises(ParseError):
        parse("42;")


def test_error_reports_position():
    try:
        parse("int f() {\n  x = ;\n}")
    except ParseError as exc:
        assert exc.line == 2
    else:
        pytest.fail("expected ParseError")
