"""Property-based tests (hypothesis).

The central invariant of the whole system: for any program, the
reference interpreter, statically compiled code and dynamically
compiled (stitched) code compute the same results.
"""

import hypothesis.strategies as st
from hypothesis import HealthCheck, given, settings

from repro import compile_program
from repro.analysis.conditions import (
    Condition, and_atom, exclusive, or_, simplify,
)
from repro.ir.semantics import eval_binop
from repro.ir.values import to_unsigned, wrap_int

from helpers import interp_run

# -- 64-bit arithmetic properties ----------------------------------------------

int64 = st.integers(min_value=-(1 << 63), max_value=(1 << 63) - 1)
any_int = st.integers(min_value=-(1 << 70), max_value=1 << 70)


@given(any_int)
def test_wrap_int_idempotent(x):
    assert wrap_int(wrap_int(x)) == wrap_int(x)


@given(any_int, any_int)
def test_wrap_add_homomorphic(x, y):
    assert wrap_int(wrap_int(x) + wrap_int(y)) == wrap_int(x + y)


@given(int64)
def test_unsigned_roundtrip(x):
    assert wrap_int(to_unsigned(x)) == x


@given(int64, int64)
def test_eval_matches_python_for_add_mul(x, y):
    mask = (1 << 64) - 1
    assert to_unsigned(eval_binop("add", x, y)) == (x + y) & mask
    assert to_unsigned(eval_binop("mul", x, y)) == (x * y) & mask


@given(int64, st.integers(min_value=0, max_value=63))
def test_shifts_consistent(x, count):
    assert eval_binop("shl", x, count) == wrap_int(x << count)
    assert eval_binop("lshr", x, count) == wrap_int(to_unsigned(x) >> count)


# -- reachability-condition algebra ------------------------------------------------

atoms = st.sampled_from([("A", "T"), ("A", "F"), ("B", "1"), ("B", "2"),
                         ("C", "T"), ("C", "F")])
conjuncts = st.frozensets(atoms, min_size=0, max_size=3)
conditions = st.builds(
    Condition, st.frozensets(conjuncts, min_size=0, max_size=4))

ARITY = {"A": 2, "B": 2, "C": 2}


def models(cond):
    """Enumerate truth assignments satisfying a condition."""
    import itertools
    results = set()
    for a, b, c in itertools.product(["T", "F"], ["1", "2"], ["T", "F"]):
        world = {("A", a), ("B", b), ("C", c)}
        for conj in cond.disjuncts:
            if conj <= world:
                results.add((a, b, c))
                break
    return results


@given(conditions, conditions)
def test_or_is_union_of_models(x, y):
    assert models(or_(x, y, ARITY)) == models(x) | models(y)


@given(conditions, atoms)
def test_and_atom_is_intersection(cond, atom):
    got = models(and_atom(cond, atom))
    expected = {w for w in models(cond) if atom in
                {("A", w[0]), ("B", w[1]), ("C", w[2])}}
    assert got == expected


@given(conditions)
def test_simplify_preserves_models(cond):
    assert models(simplify(cond, ARITY)) == models(cond)


@given(conditions, conditions)
def test_exclusive_implies_disjoint_models(x, y):
    if exclusive(x, y):
        assert not (models(x) & models(y))


@given(conditions, conditions)
def test_exclusive_symmetric(x, y):
    assert exclusive(x, y) == exclusive(y, x)


# -- random expression programs ------------------------------------------------------


def expr_strategy(depth):
    small = st.integers(min_value=-50, max_value=50).map(
        lambda v: "(0 - %d)" % -v if v < 0 else str(v))
    leaf = st.one_of(small, st.sampled_from(["a", "b", "x"]))
    if depth == 0:
        return leaf
    sub = expr_strategy(depth - 1)
    binop = st.tuples(sub, st.sampled_from(["+", "-", "*", "&", "|", "^"]),
                      sub).map(lambda t: "(%s %s %s)" % t)
    division = st.tuples(sub, st.sampled_from(["/", "%"]), sub).map(
        lambda t: "(%s %s ((%s) | 1))" % (t[0], t[1], t[2]))
    shift = st.tuples(sub, st.sampled_from(["<<", ">>"]),
                      st.integers(min_value=0, max_value=8)).map(
        lambda t: "(%s %s %d)" % t)
    compare = st.tuples(sub, st.sampled_from(["<", "<=", "==", "!="]),
                        sub).map(lambda t: "(%s %s %s)" % t)
    return st.one_of(leaf, binop, division, shift, compare)


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(expr_strategy(3), st.integers(-100, 100), st.integers(-100, 100))
def test_random_expressions_static_vm_matches_interp(expr, a, b):
    source = """
    int main(int a, int b) {
        int x = a * 2 - b;
        return %s;
    }
    """ % expr
    expected, _ = interp_run(source, args=[a, b])
    program = compile_program(source, mode="static")
    assert program.run(args=[a, b]).value == expected


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(expr_strategy(2), expr_strategy(2), st.integers(-20, 20))
def test_random_region_dynamic_matches_static(const_expr, var_expr, v):
    # 'a' and 'b' are region constants; 'x' is the variable input.
    source = """
    int f(int a, int b, int x) {
        dynamicRegion (a, b) {
            int c = %s;
            return c + %s;
        }
    }
    int main(int x) {
        int t = 0; int i;
        for (i = 0; i < 3; i++) t += f(7, 11, x + i);
        return t;
    }
    """ % (const_expr, var_expr)
    expected, _ = interp_run(source, args=[v])
    dynamic = compile_program(source, mode="dynamic")
    static = compile_program(source, mode="static")
    assert static.run(args=[v]).value == expected
    assert dynamic.run(args=[v]).value == expected


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.lists(st.integers(min_value=-9, max_value=9),
                min_size=1, max_size=6),
       st.integers(min_value=-10, max_value=10))
def test_random_unrolled_dot_product(weights, x):
    n = len(weights)
    inits = "\n".join("ws[%d] = %d;" % (i, w) if w >= 0 else
                      "ws[%d] = 0 - %d;" % (i, -w)
                      for i, w in enumerate(weights))
    source = """
    int apply(int *ws, int n, int x) {
        dynamicRegion (ws, n) {
            int t = 0; int i;
            unrolled for (i = 0; i < n; i++) {
                t += ws[i] * x;
            }
            return t;
        }
    }
    int main(int x) {
        int ws[%d];
        %s
        return apply(ws, %d, x) + apply(ws, %d, x + 1);
    }
    """ % (n, inits, n, n)
    expected, _ = interp_run(source, args=[x])
    dynamic = compile_program(source, mode="dynamic")
    result = dynamic.run(args=[x])
    assert result.value == expected
    assert len(result.stitch_reports) == 1  # stitched once, reused
