"""Frontend edge cases: tricky syntax, diagnostics, odd-but-legal C."""

import pytest

from repro.frontend.errors import ParseError, TypeError_
from repro.frontend.parser import parse
from repro.frontend.typecheck import check

from helpers import interp_run


def run(source, func="main", args=None):
    return interp_run(source, func, args)[0]


# -- syntax corners -------------------------------------------------------


def test_deeply_nested_expressions():
    expr = "1"
    for _ in range(60):
        expr = "(%s + 1)" % expr
    assert run("int main() { return %s; }" % expr) == 61


def test_deeply_nested_blocks():
    body = "x = x + 1;"
    for _ in range(40):
        body = "{ %s }" % body
    assert run("int main() { int x = 0; %s return x; }" % body) == 1


def test_comment_between_tokens():
    assert run("int main() { return 1 /*x*/ + /*y*/ 2; }") == 3


def test_empty_statements():
    assert run("int main() { ;;; return 5;; }") == 5


def test_for_with_comma_free_update():
    assert run("""
        int main() {
            int t = 0; int i;
            for (i = 10; i > 0; i--) t++;
            return t;
        }
    """) == 10


def test_chained_comparisons_parse_left_assoc():
    # (1 < 2) < 3  ->  1 < 3  -> 1
    assert run("int main() { return 1 < 2 < 3; }") == 1


def test_assignment_in_condition():
    assert run("""
        int main() {
            int x = 0; int n = 0;
            while ((x = x + 1) < 5) n++;
            return n * 10 + x;
        }
    """) == 45


def test_ternary_nests_right():
    assert run("int main() { int a = 0; return a ? 1 : a + 1 ? 2 : 3; }") == 2


def test_bitwise_precedence_like_c():
    # & binds tighter than ^ binds tighter than |
    assert run("int main() { return 1 | 2 ^ 3 & 2; }") == 1 | 2 ^ 3 & 2


def test_shift_then_add():
    assert run("int main() { return 1 << 2 + 1; }") == 8  # + binds tighter


def test_unary_minus_on_literal_expression():
    assert run("int main() { return -3 * -4; }") == 12


def test_struct_with_array_field():
    assert run("""
        struct Row { int cells[4]; int tag; };
        int main() {
            Row r;
            int i;
            for (i = 0; i < 4; i++) r.cells[i] = i * 2;
            r.tag = 9;
            return r.cells[3] + r.tag;
        }
    """) == 15


def test_pointer_to_struct_array_walk():
    assert run("""
        struct P { int x; int y; };
        int main() {
            P pts[3];
            int i;
            for (i = 0; i < 3; i++) { pts[i].x = i; pts[i].y = i * i; }
            P *p = &pts[1];
            return p->x * 10 + (p + 1)->y;
        }
    """) == 14


def test_sizeof_in_expression():
    assert run("""
        struct Wide { int a; int b; int c; };
        int main() { return sizeof(Wide) * 10 + sizeof(int*); }
    """) == 31


def test_switch_on_expression():
    assert run("""
        int main() {
            int t = 0; int i;
            for (i = 0; i < 9; i++)
                switch ((i * i) % 4) {
                    case 0: t += 1; break;
                    case 1: t += 10; break;
                    default: t += 0;
                }
            return t;
        }
    """) == 5 + 40


def test_do_while_with_break():
    assert run("""
        int main() {
            int i = 0;
            do { i++; if (i == 3) break; } while (i < 10);
            return i;
        }
    """) == 3


def test_goto_into_loop_body_is_parseable():
    # Unusual but legal C shape: jump to a label inside a loop.
    value = run("""
        int main() {
            int i = 0; int t = 0;
            goto inside;
            while (i < 4) {
        inside:
                t += 10;
                i++;
            }
            return t + i;
        }
    """)
    assert value == 44


# -- diagnostics ----------------------------------------------------------------


def test_parse_error_mentions_token():
    with pytest.raises(ParseError) as excinfo:
        parse("int main() { return }; }")
    assert "}" in str(excinfo.value) or "unexpected" in str(excinfo.value)


def test_type_error_mentions_identifier():
    with pytest.raises(TypeError_) as excinfo:
        check(parse("int main() { return missing_thing; }"))
    assert "missing_thing" in str(excinfo.value)


def test_error_line_numbers_accurate():
    source = "int main() {\n  int x = 1;\n  return y;\n}"
    with pytest.raises(TypeError_) as excinfo:
        check(parse(source))
    assert excinfo.value.line == 3


def test_arity_error_names_function():
    with pytest.raises(TypeError_) as excinfo:
        check(parse("""
            int two(int a, int b) { return a + b; }
            int main() { return two(1); }
        """))
    assert "two" in str(excinfo.value)


def test_field_error_names_struct_and_field():
    with pytest.raises(TypeError_) as excinfo:
        check(parse("""
            struct S { int a; };
            int main() { S s; return s.b; }
        """))
    message = str(excinfo.value)
    assert "S" in message and "b" in message


# -- numeric corners ----------------------------------------------------------------


def test_int64_wraparound_literals():
    assert run("""
        int main() {
            int big = 4611686018427387904;    // 2^62
            return (big * 4 == 0) + (big + big < 0);
        }
    """) == 2


def test_unsigned_wraparound():
    assert run("""
        int main() {
            uint x = 0;
            x = x - 1;
            return (x > 1000000) + (int)(x & 255);
        }
    """) == 1 + 255


def test_float_precision_survives_pipeline():
    value, output = interp_run("""
        int main() {
            float tiny = 0.0078125;     // 2^-7, exact in binary
            float acc = 0.0;
            int i;
            for (i = 0; i < 128; i++) acc = acc + tiny;
            print_float(acc);
            return (int) acc;
        }
    """)
    assert output == [1.0]
    assert value == 1
