"""CLI tests for the observability surface.

Covers ``python -m repro.obs`` (report / trace / profile / validate),
the ``--trace``/``--metrics`` flags on ``python -m repro``, and the
``--breakeven`` flag on ``python -m repro.bench``.  The report golden
check runs in-process (subprocess startup would dominate) against the
same workload pinned in tests/golden_breakeven.json.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.obs.__main__ import main as obs_main

GOLDEN_PATH = Path(__file__).parent / "golden_breakeven.json"

PROGRAM = """
int f(int c, int v) {
    dynamicRegion (c) {
        return c * 6 + v;
    }
}
int main() {
    int t = 0; int i;
    for (i = 0; i < 4; i++) t += f(7, i);
    return t;
}
"""


@pytest.fixture()
def source_file(tmp_path):
    path = tmp_path / "prog.c"
    path.write_text(PROGRAM)
    return str(path)


def test_report_matches_golden(tmp_path, capsys):
    json_path = tmp_path / "rows.json"
    code = obs_main(["report", "--only", "sparse",
                     "--json", str(json_path)])
    assert code == 0
    out = capsys.readouterr().out
    # The table's header and the region row are present.
    assert "breakeven" in out
    assert "spmv:1" in out
    golden = json.loads(GOLDEN_PATH.read_text())
    written = json.loads(json_path.read_text())
    # The bench-scale sparse workload (24x24) differs from the golden's
    # test-scale one (12x12); both must at least report the region.
    assert any("spmv:1" == row["region"]
               for rows in written.values() for row in rows)
    assert golden["rows"][0]["region"] == "spmv:1"


def test_trace_subcommand_writes_valid_chrome(tmp_path, source_file,
                                              capsys):
    out_path = tmp_path / "trace.json"
    code = obs_main(["trace", source_file, "--out", str(out_path)])
    assert code == 0
    document = json.loads(out_path.read_text())
    assert isinstance(document["traceEvents"], list)
    assert document["traceEvents"], "empty trace"
    assert obs_main(["validate", str(out_path)]) == 0
    assert "OK" in capsys.readouterr().out


def test_trace_subcommand_jsonl_and_metrics(tmp_path, source_file,
                                            capsys):
    out_path = tmp_path / "trace.jsonl"
    code = obs_main(["trace", source_file, "--out", str(out_path),
                     "--format", "jsonl", "--metrics"])
    assert code == 0
    lines = [json.loads(line)
             for line in out_path.read_text().splitlines() if line]
    assert any(event["name"] == "stitch.region" for event in lines)
    out = capsys.readouterr().out
    assert "cache.hits" in out
    assert "vm.runs" in out


def test_profile_subcommand(source_file, capsys):
    code = obs_main(["profile", source_file])
    assert code == 0
    out = capsys.readouterr().out
    assert "simulated-cycle profile" in out
    assert "stitched" in out
    assert "f:1" in out
    assert "breakeven" in out  # dynamic mode adds the break-even table


def test_validate_rejects_garbage(tmp_path, capsys):
    bad = tmp_path / "bad.json"
    bad.write_text('{"traceEvents": [{"nope": 1}]}')
    assert obs_main(["validate", str(bad)]) == 1
    missing = tmp_path / "missing.json"
    assert obs_main(["validate", str(missing)]) == 2


def test_main_cli_trace_flag(tmp_path, source_file):
    trace_path = tmp_path / "cli.json"
    proc = subprocess.run(
        [sys.executable, "-m", "repro", source_file,
         "--trace", str(trace_path), "--metrics"],
        capture_output=True, text=True, timeout=120)
    assert proc.returncode == 0, proc.stderr
    assert "=> 174" in proc.stdout
    assert "vm.runs" in proc.stdout
    assert "wrote trace" in proc.stderr
    document = json.loads(trace_path.read_text())
    assert document["traceEvents"]


def test_export_subcommand_writes_all_formats(tmp_path, source_file,
                                              capsys):
    om = tmp_path / "metrics.prom"
    series = tmp_path / "series.json"
    trace_path = tmp_path / "trace.json"
    code = obs_main(["export", source_file, "--sample-entries", "2",
                     "--openmetrics", str(om), "--series", str(series),
                     "--trace", str(trace_path),
                     "--exclude", "stitch.host_seconds"])
    assert code == 0
    from repro.obs.export import parse_openmetrics
    parsed = parse_openmetrics(om.read_text())
    assert any(name.startswith("region_entries")
               for name, _labels, _v in parsed["samples"])
    document = json.loads(series.read_text())
    assert document["schema"] == 1 and document["series"]
    assert obs_main(["validate", str(trace_path)]) == 0
    out = capsys.readouterr().out
    assert "samples over" in out


def test_export_subcommand_stdout_default(source_file, capsys):
    assert obs_main(["export", source_file]) == 0
    out = capsys.readouterr().out
    assert "# TYPE" in out and "# EOF" in out


def test_health_subcommand_fires_under_faults(tmp_path, source_file,
                                              capsys):
    json_path = tmp_path / "health.json"
    code = obs_main(["health", source_file, "--faults", "all:0.2@7",
                     "--expect-firing", "--json", str(json_path)])
    assert code == 0
    out = capsys.readouterr().out
    assert "health:" in out
    document = json.loads(json_path.read_text())
    assert document["status"] in ("warn", "fail")
    assert document["fired"] >= 1
    assert any(r["fired"] for r in document["rules"])


def test_health_subcommand_green_run_and_strict(source_file, capsys):
    assert obs_main(["health", source_file, "--strict"]) == 0
    assert "health: OK" in capsys.readouterr().out
    # --expect-firing on a clean run is the failure direction.
    assert obs_main(["health", source_file, "--expect-firing"]) == 1


def test_health_subcommand_custom_rules(tmp_path, source_file, capsys):
    rules = tmp_path / "rules.txt"
    rules.write_text("# always fires on any run\nfail: vm.runs > 0\n")
    code = obs_main(["health", source_file, "--rules", str(rules),
                     "--strict"])
    assert code == 1
    assert "FAIL" in capsys.readouterr().out


def test_record_and_compare_cycle(tmp_path, capsys):
    assert obs_main(["record", "tiering", "--dir", str(tmp_path),
                     "--note", "first"]) == 0
    assert obs_main(["record", "tiering", "--dir", str(tmp_path)]) == 0
    trajectory = json.loads(
        (tmp_path / "BENCH_tiering.json").read_text())["trajectory"]
    assert len(trajectory) == 2 and trajectory[0]["note"] == "first"
    # Identical deterministic reruns: the gate passes exactly.
    assert obs_main(["compare", "tiering", "--dir", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "tiering: OK" in out
    # A synthetic 15% cycle regression in the newest entry fails a 10%
    # gate and passes a 20% one.
    path = tmp_path / "BENCH_tiering.json"
    document = json.loads(path.read_text())
    for row in document["trajectory"][-1]["rows"].values():
        row["tiered_cycles"] = int(row["tiered_cycles"] * 1.15)
    path.write_text(json.dumps(document))
    assert obs_main(["compare", "tiering", "--dir", str(tmp_path)]) == 1
    assert "REGRESSED" in capsys.readouterr().out
    assert obs_main(["compare", "tiering", "--dir", str(tmp_path),
                     "--max-regression", "20"]) == 0


def test_compare_without_trajectories_errors(tmp_path, capsys):
    assert obs_main(["compare", "--dir", str(tmp_path)]) == 2
    assert "no trajectory files" in capsys.readouterr().err


def test_compare_missing_trajectory_is_one_line_error(tmp_path, capsys):
    """A named benchmark with no BENCH_<name>.json must fail with one
    actionable line (and with --run, before wasting time collecting a
    candidate), never a traceback."""
    assert obs_main(["compare", "stitchqueue",
                     "--dir", str(tmp_path)]) == 2
    err = capsys.readouterr().err
    assert "no trajectory file" in err
    assert "repro.obs record stitchqueue" in err
    assert obs_main(["compare", "--run", "stitchqueue",
                     "--dir", str(tmp_path)]) == 2
    err = capsys.readouterr().err
    assert "no trajectory file" in err
    assert "collecting" not in err  # failed fast, before collection


def test_compare_empty_trajectory_is_one_line_error(tmp_path, capsys):
    (tmp_path / "BENCH_stitchqueue.json").write_text(
        '{"schema": 1, "trajectory": []}\n')
    assert obs_main(["compare", "stitchqueue",
                     "--dir", str(tmp_path)]) == 2
    err = capsys.readouterr().err
    assert "trajectory is empty" in err
    assert "repro.obs record stitchqueue" in err


def test_record_and_compare_stitchqueue(tmp_path, capsys):
    """The stitchqueue collector records the async cells plus the hang
    gate, and an identical deterministic rerun gates clean."""
    assert obs_main(["record", "stitchqueue", "--dir",
                     str(tmp_path)]) == 0
    document = json.loads(
        (tmp_path / "BENCH_stitchqueue.json").read_text())
    rows = document["trajectory"][-1]["rows"]
    assert "hang gate" in rows
    assert any("async" in name for name in rows)
    assert obs_main(["compare", "--run", "stitchqueue", "--dir",
                     str(tmp_path)]) == 0
    assert "stitchqueue: OK" in capsys.readouterr().out


def test_main_cli_metrics_out(tmp_path, source_file):
    metrics_path = tmp_path / "metrics.json"
    proc = subprocess.run(
        [sys.executable, "-m", "repro", source_file,
         "--metrics-out", str(metrics_path)],
        capture_output=True, text=True, timeout=120)
    assert proc.returncode == 0, proc.stderr
    assert "wrote metrics" in proc.stderr
    snap = json.loads(metrics_path.read_text())
    assert snap["vm.runs"]["value"] == 1
    assert "region.entries" in snap


def test_bench_breakeven_flag(tmp_path):
    trace_path = tmp_path / "bench.json"
    proc = subprocess.run(
        [sys.executable, "-m", "repro.bench", "--only", "calculator",
         "--breakeven", "--trace", str(trace_path)],
        capture_output=True, text=True, timeout=600)
    assert proc.returncode == 0, proc.stderr
    assert "break-even, live per region" in proc.stdout
    assert "calc:1" in proc.stdout
    assert trace_path.exists()
