"""CLI tests for the observability surface.

Covers ``python -m repro.obs`` (report / trace / profile / validate),
the ``--trace``/``--metrics`` flags on ``python -m repro``, and the
``--breakeven`` flag on ``python -m repro.bench``.  The report golden
check runs in-process (subprocess startup would dominate) against the
same workload pinned in tests/golden_breakeven.json.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.obs.__main__ import main as obs_main

GOLDEN_PATH = Path(__file__).parent / "golden_breakeven.json"

PROGRAM = """
int f(int c, int v) {
    dynamicRegion (c) {
        return c * 6 + v;
    }
}
int main() {
    int t = 0; int i;
    for (i = 0; i < 4; i++) t += f(7, i);
    return t;
}
"""


@pytest.fixture()
def source_file(tmp_path):
    path = tmp_path / "prog.c"
    path.write_text(PROGRAM)
    return str(path)


def test_report_matches_golden(tmp_path, capsys):
    json_path = tmp_path / "rows.json"
    code = obs_main(["report", "--only", "sparse",
                     "--json", str(json_path)])
    assert code == 0
    out = capsys.readouterr().out
    # The table's header and the region row are present.
    assert "breakeven" in out
    assert "spmv:1" in out
    golden = json.loads(GOLDEN_PATH.read_text())
    written = json.loads(json_path.read_text())
    # The bench-scale sparse workload (24x24) differs from the golden's
    # test-scale one (12x12); both must at least report the region.
    assert any("spmv:1" == row["region"]
               for rows in written.values() for row in rows)
    assert golden["rows"][0]["region"] == "spmv:1"


def test_trace_subcommand_writes_valid_chrome(tmp_path, source_file,
                                              capsys):
    out_path = tmp_path / "trace.json"
    code = obs_main(["trace", source_file, "--out", str(out_path)])
    assert code == 0
    document = json.loads(out_path.read_text())
    assert isinstance(document["traceEvents"], list)
    assert document["traceEvents"], "empty trace"
    assert obs_main(["validate", str(out_path)]) == 0
    assert "OK" in capsys.readouterr().out


def test_trace_subcommand_jsonl_and_metrics(tmp_path, source_file,
                                            capsys):
    out_path = tmp_path / "trace.jsonl"
    code = obs_main(["trace", source_file, "--out", str(out_path),
                     "--format", "jsonl", "--metrics"])
    assert code == 0
    lines = [json.loads(line)
             for line in out_path.read_text().splitlines() if line]
    assert any(event["name"] == "stitch.region" for event in lines)
    out = capsys.readouterr().out
    assert "cache.hits" in out
    assert "vm.runs" in out


def test_profile_subcommand(source_file, capsys):
    code = obs_main(["profile", source_file])
    assert code == 0
    out = capsys.readouterr().out
    assert "simulated-cycle profile" in out
    assert "stitched" in out
    assert "f:1" in out
    assert "breakeven" in out  # dynamic mode adds the break-even table


def test_validate_rejects_garbage(tmp_path, capsys):
    bad = tmp_path / "bad.json"
    bad.write_text('{"traceEvents": [{"nope": 1}]}')
    assert obs_main(["validate", str(bad)]) == 1
    missing = tmp_path / "missing.json"
    assert obs_main(["validate", str(missing)]) == 2


def test_main_cli_trace_flag(tmp_path, source_file):
    trace_path = tmp_path / "cli.json"
    proc = subprocess.run(
        [sys.executable, "-m", "repro", source_file,
         "--trace", str(trace_path), "--metrics"],
        capture_output=True, text=True, timeout=120)
    assert proc.returncode == 0, proc.stderr
    assert "=> 174" in proc.stdout
    assert "vm.runs" in proc.stdout
    assert "wrote trace" in proc.stderr
    document = json.loads(trace_path.read_text())
    assert document["traceEvents"]


def test_bench_breakeven_flag(tmp_path):
    trace_path = tmp_path / "bench.json"
    proc = subprocess.run(
        [sys.executable, "-m", "repro.bench", "--only", "calculator",
         "--breakeven", "--trace", str(trace_path)],
        capture_output=True, text=True, timeout=600)
    assert proc.returncode == 0, proc.stderr
    assert "break-even, live per region" in proc.stdout
    assert "calc:1" in proc.stdout
    assert trace_path.exists()
