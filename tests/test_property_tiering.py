"""Property-based tests for adaptive tiering.

Two properties the tiering design leans on:

* **Order-independence** (without speculation): a key's promotion
  state, counter, and predicted break-even depend only on the
  *multiset* of region entries, never on their order.  Threshold mode
  compares a pure count; breakeven's measured cold cost is a pure
  function of the key (fallback code is deterministic per key), so
  its decisions are order-free too.  Speculation deliberately breaks
  this -- marks depend on which sibling happens to be hot when a
  promotion lands -- which is why it is opt-in and excluded here.
* **Conservation**: every simulated cycle is attributed to exactly
  one owner -- ``sum(cycles_by_owner) == cycles`` -- whatever the
  policy decides, and every region entry lands in exactly one of
  {cache hit, stitch, fallback, cold}.

The key sequence is packed into one integer argument (2 bits per key)
so a single compiled program serves every example -- hypothesis only
pays for VM runs, not compiles.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro import compile_program

#: main(packed, n) replays n keys (base-4 digits of ``packed``, least
#: significant first) through one keyed region.
SOURCE = """
int region(int k, int v) {
    int t = v;
    dynamicRegion key(k) (k) {
        int r = t * 3 + k * 5;
        return r;
    }
}

int main(int packed, int n) {
    int t = 0;
    int i;
    int p = packed;
    for (i = 0; i < n; i++) {
        t = t + region(p % 4, i);
        p = p / 4;
    }
    return t;
}
"""

PROGRAM = compile_program(SOURCE, mode="dynamic")

#: No-speculation policies only: order-independence is a documented
#: non-property once speculative marks are in play.
POLICIES = st.sampled_from([
    "threshold:1", "threshold:2", "threshold:3",
    "breakeven", "breakeven:4", "breakeven:64,speedup=1.2",
])

KEY_SEQUENCES = st.lists(st.integers(min_value=0, max_value=3),
                         min_size=1, max_size=12)


def pack(keys):
    packed = 0
    for key in reversed(keys):
        packed = packed * 4 + key
    return packed


def run(keys, tier=None):
    return PROGRAM.run("main", [pack(keys), len(keys)], tier=tier)


def tier_state(result):
    """The per-key adaptive state a run ends in."""
    stats = result.tier_stats.get(("region", 1), {})
    return {
        "promoted": sorted(stats.get("promoted_keys", [])),
        "counters": stats.get("counters", {}),
        "predicted": stats.get("predicted_breakeven_by_key", {}),
        "cold_by_key": sorted((c.key, c.count)
                              for c in result.cold_entries),
    }


@settings(max_examples=40, deadline=None)
@given(KEY_SEQUENCES, st.randoms(use_true_random=False), POLICIES)
def test_promotion_state_is_order_independent(keys, rng, tier):
    """Same entry multiset, any order: identical promotion decisions,
    counters, predictions, and per-key cold-entry profiles."""
    shuffled = list(keys)
    rng.shuffle(shuffled)
    assert tier_state(run(keys, tier)) == tier_state(run(shuffled, tier))
    # A canonical (sorted) replay agrees too.
    assert tier_state(run(keys, tier)) == tier_state(run(sorted(keys),
                                                         tier))


@settings(max_examples=40, deadline=None)
@given(KEY_SEQUENCES, POLICIES)
def test_cycles_conserved_and_entries_partitioned(keys, tier):
    """Every cycle has exactly one owner and every region entry lands
    in exactly one service class -- and the adaptive run computes the
    same value as the eager run."""
    eager = run(keys)
    result = run(keys, tier)
    assert result.value == eager.value
    assert sum(result.cycles_by_owner.values()) == result.cycles
    assert sum(eager.cycles_by_owner.values()) == eager.cycles
    stats = result.cache_stats
    assert sum(result.region_entries.values()) \
        == stats.hits + len(result.stitch_reports) \
        + len(result.fallbacks) + len(result.cold_entries)
    # Tier bookkeeping cost is visible, attributed, and adaptive-only.
    if result.cold_entries or result.stitch_reports:
        assert result.cycles_by_owner.get("tier:region:1", 0) > 0
    assert "tier:region:1" not in eager.cycles_by_owner
