"""The shipped examples must run clean (deliverable smoke tests)."""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")

EXAMPLES = [
    ("quickstart.py", ["asymptotic speedup", "breakeven after"]),
    ("interpreter_specialization.py",
     ["cycles per interpretation", "register actions promoted"]),
    ("matrix_kernels.py", ["strength reduction", "unrolling"]),
    ("event_dispatch.py", ["stitches: 2", "dispatch cycles"]),
    ("pattern_matcher.py", ["matches:", "compiled pattern"]),
]


@pytest.mark.parametrize("script,expected", EXAMPLES,
                         ids=[name for name, _ in EXAMPLES])
def test_example_runs(script, expected):
    path = os.path.join(EXAMPLES_DIR, script)
    proc = subprocess.run([sys.executable, path], capture_output=True,
                          text=True, timeout=600)
    assert proc.returncode == 0, proc.stderr
    for marker in expected:
        assert marker in proc.stdout, (
            "%s output missing %r" % (script, marker))
