"""Type checker unit tests."""

import pytest

from repro.frontend.errors import AnnotationError, TypeError_
from repro.frontend.parser import parse
from repro.frontend.typecheck import check
from repro.frontend.types import FLOAT, INT, PointerType


def check_src(source):
    return check(parse(source))


def check_ok(body, header="int f(int x, float g, int *p)"):
    return check_src("%s { %s }" % (header, body))


def check_fails(body, header="int f(int x, float g, int *p)"):
    with pytest.raises(TypeError_):
        check_ok(body, header)


# -- basics -------------------------------------------------------------------


def test_simple_function():
    checked = check_src("int f(int a) { return a + 1; }")
    assert "f" in checked.functions
    assert checked.functions["f"].ret_type == INT


def test_undeclared_variable():
    check_fails("return y;")


def test_use_after_declaration():
    check_ok("int y = x; return y;")


def test_duplicate_local():
    check_fails("int y; int y; return 0;")


def test_shadowing_renames():
    checked = check_src("""
        int f(int x) {
            int y = x;
            { int y = 2; x = y; }
            return y;
        }
    """)
    names = set(checked.functions["f"].locals)
    assert "y" in names and "y$1" in names


def test_duplicate_function():
    with pytest.raises(TypeError_):
        check_src("int f() { return 0; } int f() { return 1; }")


def test_cannot_redefine_builtin():
    with pytest.raises(TypeError_):
        check_src("int alloc(int n) { return n; }")


def test_unknown_function_call():
    check_fails("return nosuch(1);")


def test_wrong_arity():
    check_fails("return imax(1);")


def test_global_scope():
    check_src("int g; int f() { return g; }")


def test_duplicate_global():
    with pytest.raises(TypeError_):
        check_src("int g; float g;")


def test_global_init_must_be_literal():
    with pytest.raises(TypeError_):
        check_src("int g = 1 + 2;")


# -- expressions ---------------------------------------------------------------


def test_arithmetic_types():
    check_ok("return x + 2;")
    check_ok("float h = g * 2.0; return 0;")


def test_int_to_float_implicit():
    check_ok("float h = x; return 0;")


def test_float_to_int_requires_cast():
    check_fails("int y = g; return y;")


def test_float_to_int_cast_ok():
    check_ok("int y = (int) g; return y;")


def test_pointer_arithmetic():
    check_ok("int *q = p + 2; return *q;")


def test_pointer_minus_pointer():
    check_ok("return p - p;")


def test_pointer_plus_pointer_rejected():
    check_fails("int *q = p + p; return 0;")


def test_deref_non_pointer():
    check_fails("return *x;")


def test_deref_void_pointer():
    check_fails("return *alloc(4);")


def test_modulo_requires_ints():
    check_fails("return (int)(g % 2.0);")


def test_shift_requires_ints():
    check_fails("float h = g << 1; return 0;")


def test_address_of_rvalue():
    check_fails("int *q = &(x + 1); return 0;")


def test_address_of_marks_addr_taken():
    checked = check_src("int f(int x) { int *p = &x; return *p; }")
    assert "x" in checked.functions["f"].addr_taken


def test_struct_field_access():
    check_src("""
        struct Point { int x; int y; };
        int f(Point *p) { return p->x + p->y; }
    """)


def test_unknown_field():
    with pytest.raises(TypeError_):
        check_src("""
            struct Point { int x; };
            int f(Point *p) { return p->z; }
        """)


def test_dot_on_pointer_rejected():
    with pytest.raises(TypeError_):
        check_src("""
            struct Point { int x; };
            int f(Point *p) { return p.x; }
        """)


def test_arrow_on_struct_rejected():
    with pytest.raises(TypeError_):
        check_src("""
            struct Point { int x; };
            int f(Point p) { return p->x; }
        """)


def test_array_indexing():
    check_ok("int a[4]; a[0] = 1; return a[x];")


def test_index_by_float_rejected():
    check_fails("int a[4]; return a[g];")


def test_condition_must_be_scalar():
    with pytest.raises(TypeError_):
        check_src("""
            struct S { int x; };
            int f(S s) { if (s) return 1; return 0; }
        """)


def test_ternary_common_type():
    check_ok("float h = x ? 1.0 : 2; return 0;")


def test_assignment_to_rvalue():
    check_fails("x + 1 = 2;")


def test_return_type_mismatch():
    with pytest.raises(TypeError_):
        check_src("int *f(int x) { return 1.5; }")


def test_void_return_with_value():
    with pytest.raises(TypeError_):
        check_src("void f() { return 1; }")


def test_nonvoid_return_without_value():
    with pytest.raises(TypeError_):
        check_src("int f() { return; }")


def test_goto_undefined_label():
    with pytest.raises(TypeError_):
        check_src("int f() { goto nowhere; return 0; }")


def test_duplicate_label():
    with pytest.raises(TypeError_):
        check_src("int f() { a: ; a: ; return 0; }")


def test_break_outside_loop():
    check_fails("break;")


def test_continue_outside_loop():
    check_fails("continue;")


# -- annotations -----------------------------------------------------------------


def test_region_constants_resolved():
    checked = check_src("""
        int f(int c) {
            dynamicRegion (c) { return c; }
        }
    """)
    assert checked.functions["f"].has_region


def test_region_unknown_constant():
    with pytest.raises(TypeError_):
        check_src("int f() { dynamicRegion (zzz) { } return 0; }")


def test_region_constant_must_be_local():
    with pytest.raises(AnnotationError):
        check_src("int g; int f() { dynamicRegion (g) { } return 0; }")


def test_unrolled_outside_region():
    with pytest.raises(AnnotationError):
        check_src("""
            int f(int n) {
                int i; int t = 0;
                unrolled for (i = 0; i < n; i++) t += i;
                return t;
            }
        """)


def test_nested_region_rejected():
    with pytest.raises(AnnotationError):
        check_src("""
            int f(int c) {
                dynamicRegion (c) {
                    dynamicRegion (c) { }
                }
                return 0;
            }
        """)


def test_region_inside_loop_rejected():
    with pytest.raises(AnnotationError):
        check_src("""
            int f(int c) {
                while (c) {
                    dynamicRegion (c) { }
                }
                return 0;
            }
        """)
