"""RVM virtual-machine unit tests (hand-assembled code)."""

import pytest

from repro.machine.isa import (
    ARG_BASE, CPOOL, FREG_BASE, MInstr, RA, RV, SP, ZERO, fits_imm, reg_name,
)
from repro.machine.vm import VM, VMError


def run_instrs(instrs, args=None, vm=None):
    vm = vm or VM()
    entry = vm.install_code(instrs)
    return vm, vm.run(entry, args or [])


def test_lda_immediate():
    vm, (result, _) = run_instrs([
        MInstr("lda", rd=RV, ra=ZERO, imm=42),
        MInstr("ret"),
    ])
    assert result == 42


def test_ldih_builds_large_constant():
    vm, (result, _) = run_instrs([
        MInstr("lda", rd=RV, ra=ZERO, imm=0),
        MInstr("ldih", rd=RV, imm=0x1234),
        MInstr("ldih", rd=RV, imm=0x5678),
        MInstr("ret"),
    ])
    assert result == 0x12345678


def test_alu_register_and_immediate_forms():
    vm, (result, _) = run_instrs([
        MInstr("lda", rd=1, ra=ZERO, imm=10),
        MInstr("lda", rd=2, ra=ZERO, imm=3),
        MInstr("mulq", rd=3, ra=1, rb=2),    # 30
        MInstr("addq", rd=RV, ra=3, imm=7),  # 37
        MInstr("ret"),
    ])
    assert result == 37


def test_memory_roundtrip():
    vm, (result, _) = run_instrs([
        MInstr("lda", rd=1, ra=ZERO, imm=99),
        MInstr("stq", rb=1, ra=ZERO, imm=0x2000),
        MInstr("ldq", rd=RV, ra=ZERO, imm=0x2000),
        MInstr("ret"),
    ])
    assert result == 99


def test_branch_taken_and_not_taken():
    # if (arg != 0) return 1 else return 2
    instrs = [
        MInstr("bne", ra=ARG_BASE, label="yes"),
        MInstr("lda", rd=RV, ra=ZERO, imm=2),
        MInstr("ret"),
        MInstr("lda", rd=RV, ra=ZERO, imm=1),
        MInstr("ret"),
    ]
    vm = VM()
    base = vm.install_code(instrs)
    instrs[0].target = base + 3
    assert vm.run(base, [(ARG_BASE, 5)])[0] == 1
    vm2 = VM()
    base2 = vm2.install_code([i.copy() for i in instrs])
    vm2.code[base2].target = base2 + 3
    assert vm2.run(base2, [(ARG_BASE, 0)])[0] == 2


def test_jsr_and_ret():
    # callee: return arg * 2
    vm = VM()
    callee = vm.install_code([
        MInstr("addq", rd=RV, ra=ARG_BASE, rb=ARG_BASE),
        MInstr("ret"),
    ])
    caller = vm.install_code([
        MInstr("mov", rd=9, ra=RA),  # save the return address
        MInstr("lda", rd=ARG_BASE, ra=ZERO, imm=21),
        MInstr("jsr", label="callee"),
        MInstr("mov", rd=RA, ra=9),
        MInstr("ret"),
    ])
    vm.code[caller + 2].target = callee
    assert vm.run(caller)[0] == 42


def test_indirect_jump():
    vm = VM()
    target = vm.install_code([
        MInstr("lda", rd=RV, ra=ZERO, imm=7),
        MInstr("ret"),
    ])
    entry = vm.install_code([
        MInstr("lda", rd=1, ra=ZERO, imm=target),
        MInstr("jmp", ra=1),
    ])
    assert vm.run(entry)[0] == 7


def test_float_ops():
    vm = VM()
    vm.memory[0x2000] = 2.5
    entry = vm.install_code([
        MInstr("ldt", rd=FREG_BASE + 1, ra=ZERO, imm=0x2000),
        MInstr("addt", rd=FREG_BASE + 0, ra=FREG_BASE + 1,
               rb=FREG_BASE + 1),
        MInstr("ret"),
    ])
    _, fval = vm.run(entry)
    assert fval == 5.0


def test_conversions():
    vm, (result, fval) = run_instrs([
        MInstr("lda", rd=1, ra=ZERO, imm=3),
        MInstr("cvtqt", rd=FREG_BASE, ra=1),
        MInstr("cvttq", rd=RV, ra=FREG_BASE),
        MInstr("ret"),
    ])
    assert result == 3
    assert fval == 3.0


def test_float_return_coerces_int_value():
    # cvtqt always produces a Python float, but fmov (and preloaded
    # arguments) can leave an int in f0; the run result must still be
    # the float value, not 0.0.
    vm, (_, fval) = run_instrs([
        MInstr("lda", rd=1, ra=ZERO, imm=4),
        MInstr("fmov", rd=FREG_BASE, ra=1),
        MInstr("ret"),
    ])
    assert fval == 4.0
    assert isinstance(fval, float)


def test_float_return_from_cvtqt():
    vm, (_, fval) = run_instrs([
        MInstr("lda", rd=1, ra=ZERO, imm=-7),
        MInstr("cvtqt", rd=FREG_BASE, ra=1),
        MInstr("ret"),
    ])
    assert fval == -7.0
    assert isinstance(fval, float)


def test_float_return_from_preloaded_register():
    vm = VM()
    entry = vm.install_code([MInstr("ret")])
    _, fval = vm.run(entry, [(FREG_BASE, 9)])  # int preload into f0
    assert fval == 9.0
    assert isinstance(fval, float)


def test_zero_register_reads_zero():
    vm, (result, _) = run_instrs([
        MInstr("lda", rd=ZERO, ra=ZERO, imm=55),  # write ignored
        MInstr("addq", rd=RV, ra=ZERO, imm=1),
        MInstr("ret"),
    ])
    assert result == 1


def test_division_by_zero_traps():
    with pytest.raises(VMError):
        run_instrs([
            MInstr("lda", rd=1, ra=ZERO, imm=1),
            MInstr("divq", rd=RV, ra=1, imm=0),
            MInstr("ret"),
        ])


def test_wild_load_faults():
    with pytest.raises(VMError):
        run_instrs([
            MInstr("lda", rd=1, ra=ZERO, imm=-5),
            MInstr("ldq", rd=RV, ra=1, imm=0),
            MInstr("ret"),
        ])


def test_cycle_budget_enforced():
    vm = VM(max_cycles=100)
    entry = vm.install_code([
        MInstr("br", label="loop"),
    ])
    vm.code[entry].target = entry
    with pytest.raises(VMError):
        vm.run(entry)


def test_cycle_accounting_by_owner():
    instrs = [
        MInstr("lda", rd=1, ra=ZERO, imm=1, owner="a"),   # 1 cycle
        MInstr("ldq", rd=2, ra=ZERO, imm=0x2000, owner="b"),  # 3 cycles
        MInstr("mulq", rd=RV, ra=1, rb=2, owner="b"),     # 12 cycles
        MInstr("ret", owner="a"),                          # 2 cycles
    ]
    vm, _ = run_instrs(instrs)
    assert vm.cycles_by_owner["a"] == 3
    assert vm.cycles_by_owner["b"] == 15
    assert vm.instrs_by_owner["a"] == 2
    assert vm.cycles == 18


def test_charge_synthetic_cycles():
    vm = VM()
    vm.charge("stitcher:f:1", 500)
    assert vm.cycles == 500
    assert vm.cycles_by_owner["stitcher:f:1"] == 500


def test_reset_for_rerun_restores_pristine_state():
    vm = VM()
    entry = vm.install_code([
        MInstr("lda", rd=1, ra=ZERO, imm=99),
        MInstr("stq", rb=1, ra=ZERO, imm=0x2000),     # low-memory store
        MInstr("lda", rd=ARG_BASE, ra=ZERO, imm=4),
        MInstr("call_rt", name="alloc"),
        MInstr("stq", rb=1, ra=RV, imm=0),            # heap store
        MInstr("lda", rd=SP, ra=SP, imm=-8),
        MInstr("stq", rb=1, ra=SP, imm=0),            # stack store
        MInstr("call_rt", name="print_int"),
        MInstr("mov", rd=RV, ra=1),
        MInstr("ret"),
    ])
    code_len = len(vm.code)
    first = vm.run(entry)
    first_cycles = vm.cycles
    first_owners = dict(vm.cycles_by_owner)
    heap_addr = VM.HEAP_BASE
    stack_addr = len(vm.memory) - 16  # sp after the frame push
    assert vm.memory[0x2000] == 99
    assert vm.memory[heap_addr] == 99
    assert vm.memory[stack_addr] == 99

    vm.reset_for_rerun(code_len)
    assert vm.cycles == 0
    assert vm.cycles_by_owner == {}
    assert vm.op_counts == {}
    assert vm.output == []
    assert vm.memory[0x2000] == 0
    assert vm.memory[heap_addr] == 0
    assert vm.memory[stack_addr] == 0
    assert all(r == 0 for r in vm.regs)
    assert vm.heap_next == VM.HEAP_BASE

    assert vm.run(entry) == first
    assert vm.cycles == first_cycles
    assert dict(vm.cycles_by_owner) == first_owners


def test_runtime_alloc():
    vm, (addr, _) = run_instrs([
        MInstr("lda", rd=ARG_BASE, ra=ZERO, imm=10),
        MInstr("call_rt", name="alloc"),
        MInstr("ret"),
    ])
    assert addr >= VM.HEAP_BASE


def test_runtime_print():
    vm, _ = run_instrs([
        MInstr("lda", rd=ARG_BASE, ra=ZERO, imm=123),
        MInstr("call_rt", name="print_int"),
        MInstr("ret"),
    ])
    assert vm.output == [123]


def test_runtime_pure_builtin():
    vm, (result, _) = run_instrs([
        MInstr("lda", rd=ARG_BASE, ra=ZERO, imm=3),
        MInstr("lda", rd=ARG_BASE + 1, ra=ZERO, imm=9),
        MInstr("call_rt", name="imax"),
        MInstr("ret"),
    ])
    assert result == 9


def test_unknown_runtime_call():
    with pytest.raises(VMError):
        run_instrs([MInstr("call_rt", name="bogus"), MInstr("ret")])


def test_unsigned_compare():
    vm, (result, _) = run_instrs([
        MInstr("lda", rd=1, ra=ZERO, imm=-1),   # huge unsigned
        MInstr("cmpult", rd=RV, ra=1, imm=5),
        MInstr("ret"),
    ])
    assert result == 0


def test_fits_imm():
    assert fits_imm(0) and fits_imm(32767) and fits_imm(-32768)
    assert not fits_imm(32768) and not fits_imm(-32769)


def test_reg_names():
    assert reg_name(ZERO) == "zero"
    assert reg_name(SP) == "sp"
    assert reg_name(RA) == "ra"
    assert reg_name(FREG_BASE + 3) == "f3"
    assert reg_name(5) == "r5"
