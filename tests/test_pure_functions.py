"""User-declared ``pure`` functions as run-time constant derivers."""

import pytest

from repro import compile_program
from repro.analysis.rtconst import analyze_region
from repro.frontend.errors import AnnotationError, ParseError
from repro.ir.ssa import base_name, to_ssa

from helpers import build, run_all_ways


def test_pure_keyword_parses():
    module = build("""
        pure int square(int x) { return x * x; }
        int main() { return square(4); }
    """)
    assert module.functions["square"]


def test_pure_only_on_functions():
    with pytest.raises(ParseError):
        build("pure int g; int main() { return 0; }")


def test_pure_call_derives_constant():
    module = build("""
        pure int square(int x) { return x * x; }
        int f(int c, int v) {
            dynamicRegion (c) {
                int d = square(c);
                return d + v;
            }
        }
    """)
    func = module.functions["f"]
    to_ssa(func)
    result = analyze_region(func, func.regions[0])
    assert "d" in {base_name(n) for n in result.const_names}


def test_impure_call_does_not_derive():
    module = build("""
        int square(int x) { return x * x; }   // not declared pure
        int f(int c, int v) {
            dynamicRegion (c) {
                int d = square(c);
                return d + v;
            }
        }
    """)
    func = module.functions["f"]
    to_ssa(func)
    result = analyze_region(func, func.regions[0])
    assert "d" not in {base_name(n) for n in result.const_names}


def test_pure_call_hoisted_to_setup_end_to_end():
    run_all_ways("""
        pure int cube(int x) { return x * x * x; }
        int f(int c, int v) {
            dynamicRegion (c) {
                int d = cube(c) + 1;
                return d * v;
            }
        }
        int main() {
            int t = 0; int i;
            for (i = 0; i < 6; i++) t += f(3, i);
            return t;
        }
    """)


def test_pure_call_executes_once_in_setup():
    source = """
    int calls;
    int observe(int x) { calls = calls + 1; return x; }
    pure int triple(int x) { return x * 3; }
    int f(int c, int v) {
        dynamicRegion (c) {
            int d = triple(c);
            return d + v;
        }
    }
    int main() {
        calls = 0;
        int t = 0; int i;
        for (i = 0; i < 10; i++) t += f(7, i);
        return t;
    }
    """
    dynamic = compile_program(source, mode="dynamic")
    result = dynamic.run()
    # triple(7)=21; sum(21+i) = 210 + 45
    assert result.value == 255
    # the call moved into set-up code: exactly one jsr to triple runs.
    setup_instrs = result.instrs_by_owner.get("setup:f:1", 0)
    assert setup_instrs > 0


def test_recursive_pure_function():
    run_all_ways("""
        pure int fib(int n) {
            if (n < 2) return n;
            return fib(n - 1) + fib(n - 2);
        }
        int f(int c, int v) {
            dynamicRegion (c) {
                int d = fib(c);
                return d * v;
            }
        }
        int main() { return f(10, 2) + f(10, 3); }
    """)


def test_pure_with_store_rejected():
    with pytest.raises(AnnotationError):
        build("""
            int g;
            pure int bad(int x) { g = x; return x; }
            int main() { return bad(1); }
        """)


def test_pure_calling_impure_rejected():
    with pytest.raises(AnnotationError):
        build("""
            int helper(int x) { return x + 1; }
            pure int bad(int x) { return helper(x); }
            int main() { return bad(1); }
        """)


def test_pure_with_division_rejected():
    with pytest.raises(AnnotationError):
        build("""
            pure int bad(int x) { return 100 / x; }
            int main() { return bad(4); }
        """)


def test_pure_calling_pure_builtin_ok():
    run_all_ways("""
        pure int clamp(int x) { return imax(0, imin(x, 100)); }
        int f(int c, int v) {
            dynamicRegion (c) {
                return clamp(c) + v;
            }
        }
        int main() { return f(250, 1) * 100 + f(250, 2); }
    """)


def test_pure_prototype_then_definition():
    module = build("""
        pure int sq(int x);
        pure int sq(int x) { return x * x; }
        int main() { return sq(5); }
    """)
    assert module.functions["sq"]
