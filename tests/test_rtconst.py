"""Run-time constants + reachability analysis tests.

Includes the paper's worked examples: the cache lookup (section 2) and
the unstructured if/switch/goto graph (section 3.1) analysed both with
``a`` and ``b`` constant and with only ``a`` constant.
"""

import pytest

from repro.analysis.rtconst import analyze_region
from repro.frontend.errors import AnnotationError
from repro.ir.ssa import base_name, to_ssa
from repro.opt.pipeline import optimize

from helpers import build


def analyze(source, func_name="f", optimize_first=True,
            use_reachability=True):
    module = build(source)
    func = module.functions[func_name]
    to_ssa(func)
    if optimize_first:
        optimize(func)
    region = func.regions[0]
    return func, analyze_region(func, region,
                                use_reachability=use_reachability)


def const_bases(result):
    return {base_name(n) for n in result.const_names}


# -- basic derivation rules ---------------------------------------------------


def test_annotated_variable_is_constant():
    _, result = analyze("""
        int f(int c, int v) {
            dynamicRegion (c) { return c + v; }
        }
    """, optimize_first=False)
    assert "c" in const_bases(result)
    assert "v" not in const_bases(result)


def test_derived_arithmetic_constant():
    _, result = analyze("""
        int f(int c, int v) {
            dynamicRegion (c) {
                int d = c * 4 + 1;
                return d + v;
            }
        }
    """, optimize_first=False)
    assert "d" in const_bases(result)


def test_division_excluded_as_trapping():
    # The paper excludes / from derivation because it might trap.
    _, result = analyze("""
        int f(int c, int v) {
            dynamicRegion (c) {
                int d = c / 2;
                return d + v;
            }
        }
    """, optimize_first=False)
    assert "d" not in const_bases(result)


def test_load_through_constant_pointer():
    _, result = analyze("""
        int f(int *c, int v) {
            dynamicRegion (c) {
                int d = *c;
                return d + v;
            }
        }
    """, optimize_first=False)
    assert "d" in const_bases(result)


def test_dynamic_load_not_constant():
    _, result = analyze("""
        int f(int *c, int v) {
            dynamicRegion (c) {
                int d = dynamic* c;
                return d + v;
            }
        }
    """, optimize_first=False)
    assert "d" not in const_bases(result)


def test_store_does_not_affect_constants():
    # Stores have no effect on the constant set (the paper's rule);
    # re-loading through a constant pointer stays "constant".
    _, result = analyze("""
        int f(int *c, int v) {
            dynamicRegion (c) {
                int before = *c;
                *c = v;
                int after = *c;
                return before + after;
            }
        }
    """, optimize_first=False)
    assert "before" in const_bases(result)
    assert "after" in const_bases(result)


def test_pure_call_derives_constant():
    _, result = analyze("""
        int f(int c, int v) {
            dynamicRegion (c) {
                int d = imax(c, 3);
                return d + v;
            }
        }
    """, optimize_first=False)
    assert "d" in const_bases(result)


def test_impure_call_not_constant():
    _, result = analyze("""
        int f(int c, int v) {
            dynamicRegion (c) {
                int *d = (int*) alloc(c);
                return (int) d + v;
            }
        }
    """, optimize_first=False)
    assert "d" not in const_bases(result)


def test_frame_address_not_constant():
    # Stitched code is shared across activations; the frame moves.
    _, result = analyze("""
        int f(int c, int v) {
            int arr[4];
            dynamicRegion (c) {
                int *p = arr;
                return p[c] + v;
            }
        }
    """, optimize_first=False)
    assert "p" not in const_bases(result)


def test_variable_chain_stays_variable():
    _, result = analyze("""
        int f(int c, int v) {
            dynamicRegion (c) {
                int m = v * c;
                int n = m + 1;
                return n;
            }
        }
    """, optimize_first=False)
    assert "m" not in const_bases(result)
    assert "n" not in const_bases(result)


# -- merges -------------------------------------------------------------------


def test_constant_merge_under_constant_branch():
    _, result = analyze("""
        int f(int c, int v) {
            dynamicRegion (c) {
                int x;
                if (c > 0) x = 1; else x = 2;
                return x + v;
            }
        }
    """)
    assert "x" in const_bases(result)
    assert len(result.const_branches) == 1


def test_nonconstant_merge_under_variable_branch():
    _, result = analyze("""
        int f(int c, int v) {
            dynamicRegion (c) {
                int x;
                if (v > 0) x = 1; else x = 2;
                return x + c;
            }
        }
    """)
    assert "x" not in const_bases(result)
    assert len(result.const_branches) == 0


def test_identical_values_constant_even_at_variable_merge():
    # The non-idempotent phi rule: a phi at a non-constant merge is
    # still constant when every predecessor delivers the *same*
    # reaching definition.  Built directly in IR because the optimizer
    # simplifies such phis away before the analysis sees them.
    from repro.ir.cfg import DynamicRegionInfo, Function
    from repro.ir.instructions import (
        Assign, BinOp, CondBr, Jump, Phi, Return,
    )
    from repro.ir.values import IntConst, Temp

    func = Function("f", [Temp("arg_c"), Temp("arg_v")])
    func.temp_types.update({"arg_c": "int", "arg_v": "int",
                            "x.3": "int", "d.1": "int", "t.1": "int"})
    entry = func.new_block("entry")
    then = func.new_block("then")
    other = func.new_block("else")
    join = func.new_block("join")
    entry.append(Assign(Temp("d.1"), Temp("arg_c")))
    entry.append(CondBr(Temp("arg_v"), then.name, other.name))
    then.append(Jump(join.name))
    other.append(Jump(join.name))
    join.instrs.append(Phi(Temp("x.3"), {then.name: Temp("d.1"),
                                         other.name: Temp("d.1")}))
    join.append(BinOp(Temp("t.1"), "add", Temp("x.3"), Temp("arg_v")))
    join.append(Return(Temp("t.1")))
    region = DynamicRegionInfo(
        region_id=1, const_vars=["arg_c"], key_vars=[],
        entry=entry.name, exit=join.name,
        blocks={entry.name, then.name, other.name, join.name},
        const_temps=[Temp("arg_c")], key_temps=[])
    func.regions.append(region)
    result = analyze_region(func, region)
    assert "x.3" in result.const_names  # same def on both edges
    assert "t.1" not in result.const_names  # mixes in arg_v


# -- the paper's unstructured example ---------------------------------------------

UNSTRUCTURED = """
int f(int a, int b, int v) {
    dynamicRegion (%s) {
        int x = 0;
        if (a) {
            x = 1;
        } else {
            switch (b) {
                case 1: x = 2;           // falls through to case 2
                case 2: x = x + 3; break;
                case 3: x = 40; goto L;
                default: x = 8;
            }
            x = x + 100;
        }
        x = x + 1000;
    L:
        return x + v;
    }
}
"""


def test_unstructured_both_constant():
    _, result = analyze(UNSTRUCTURED % "a, b")
    # Every merge is constant: x survives the fall-through merge, the
    # switch join, the if/else join and the goto target.
    assert "x" in const_bases(result)
    x_versions = {n for n in result.const_names if base_name(n) == "x"}
    assert len(x_versions) >= 4
    assert len(result.const_branches) == 2  # the if and the switch


def test_unstructured_only_a_constant():
    func, result = analyze(UNSTRUCTURED % "a")
    # With b variable, the switch merges are not constant, so the x
    # reaching L is not constant; only the early versions are.
    assert len(result.const_branches) == 1
    ret_block = [b for b in func.blocks.values()
                 if b.terminator is not None
                 and "return" in repr(b.terminator)]
    # x value flowing into the return is no longer constant:
    final_x = [n for n in result.const_names
               if base_name(n) == "x"]
    all_x = [n for n in func.temp_types if base_name(n) == "x"]
    assert len(final_x) < len(all_x)


def test_reachability_ablation():
    # Without the reachability analysis, even the structured if/else
    # constant merge is lost (only unrolled headers stay constant).
    _, with_reach = analyze(UNSTRUCTURED % "a, b", use_reachability=True)
    _, without = analyze(UNSTRUCTURED % "a, b", use_reachability=False)
    assert "x" in const_bases(with_reach)
    with_x = {n for n in with_reach.const_names if base_name(n) == "x"}
    without_x = {n for n in without.const_names if base_name(n) == "x"}
    assert without_x < with_x


# -- unrolled loops ------------------------------------------------------------------


def test_unrolled_induction_variable_constant():
    _, result = analyze("""
        int f(int n, int *data) {
            int t = 0;
            dynamicRegion (n) {
                int i;
                unrolled for (i = 0; i < n; i++) {
                    t += data dynamic[ i ];
                }
                return t;
            }
        }
    """)
    assert "i" in const_bases(result)
    assert "t" not in const_bases(result)


def test_non_unrolled_induction_variable_not_constant():
    _, result = analyze("""
        int f(int n, int *data) {
            int t = 0;
            dynamicRegion (n) {
                int i;
                for (i = 0; i < n; i++) {
                    t += data dynamic[ i ];
                }
                return t;
            }
        }
    """)
    assert "i" not in const_bases(result)


def test_unrolled_loop_with_variable_bound_rejected():
    with pytest.raises(AnnotationError):
        analyze("""
            int f(int c, int v) {
                int t = 0;
                dynamicRegion (c) {
                    int i;
                    unrolled for (i = 0; i < v; i++) t += i;
                    return t + c;
                }
            }
        """)


def test_pointer_chasing_unrolled_loop():
    # The paper's linked-list example: p advances through constant
    # next pointers; the termination test p != NULL is constant.
    _, result = analyze("""
        struct Node { int payload; Node *next; };
        int f(Node *lst) {
            int t = 0;
            dynamicRegion (lst) {
                Node *p;
                unrolled for (p = lst; p != 0; p = p->next) {
                    t += p dynamic-> payload;
                }
                return t;
            }
        }
    """)
    assert "p" in const_bases(result)


def test_requires_ssa():
    module = build("""
        int f(int c) {
            dynamicRegion (c) { return c; }
        }
    """)
    func = module.functions["f"]
    with pytest.raises(ValueError):
        analyze_region(func, func.regions[0])
