"""Code-generator unit tests: constant materialization, switch
lowering, prologue/epilogue shape, float pools, the asm printer."""

from repro import compile_program
from repro.codegen.asmprinter import (
    format_function, format_instr, format_region, format_template_block,
)
from repro.codegen.lower import DataLayout, FunctionLowerer, _Emitter
from repro.ir.ssa import from_ssa, to_ssa
from repro.machine.isa import MInstr, RA, SP, ZERO
from repro.machine.vm import VM

from helpers import build, interp_run


def lower_main(source):
    module = build(source)
    func = module.functions["main"]
    to_ssa(func)
    from_ssa(func)
    layout = DataLayout()
    layout.add_module_globals(module)
    return FunctionLowerer(func, layout).lower()


# -- constant materialization -----------------------------------------------


def materialize(value):
    layout = DataLayout()
    module = build("int main() { return 0; }")
    func = module.functions["main"]
    to_ssa(func)
    from_ssa(func)
    lowerer = FunctionLowerer(func, layout)
    emitter = _Emitter("test")
    lowerer._materialize_int(emitter, 1, value)
    emitter.emit(MInstr("mov", rd=0, ra=1))
    emitter.emit(MInstr("ret"))
    vm = VM(memory_words=1 << 16)
    entry = vm.install_code(emitter.instrs)
    result, _ = vm.run(entry)
    return result, len(emitter.instrs) - 2


def test_materialize_small_constants_single_instr():
    for value in (0, 1, -1, 32767, -32768):
        result, count = materialize(value)
        assert result == value
        assert count == 1


def test_materialize_large_constants():
    for value in (32768, 65536, 123456789, -123456789,
                  (1 << 62) + 12345, -(1 << 62) - 9):
        result, count = materialize(value)
        assert result == value, value
        assert count <= 5


def test_materialize_boundary_values():
    for value in ((1 << 63) - 1, -(1 << 63)):
        result, _ = materialize(value)
        assert result == value


# -- switch lowering ------------------------------------------------------------


def count_ops(compiled, op):
    return sum(1 for i in compiled.code if i.op == op)


def test_dense_switch_uses_jump_table():
    compiled = lower_main("""
        int main(int x) {
            switch (x) {
                case 0: return 10;
                case 1: return 11;
                case 2: return 12;
                case 3: return 13;
                default: return 99;
            }
        }
    """)
    assert count_ops(compiled, "jtab") == 1


def test_sparse_switch_uses_compare_chain():
    compiled = lower_main("""
        int main(int x) {
            switch (x) {
                case 0: return 10;
                case 1000: return 11;
                case 70000: return 12;
                default: return 99;
            }
        }
    """)
    assert count_ops(compiled, "jtab") == 0
    assert count_ops(compiled, "cmpeq") >= 3


def test_tiny_switch_uses_compare_chain():
    compiled = lower_main("""
        int main(int x) {
            switch (x) { case 5: return 1; default: return 0; }
        }
    """)
    assert count_ops(compiled, "jtab") == 0


def test_jump_table_switch_correct():
    source = """
    int classify(int x) {
        switch (x) {
            case 0: return 100;
            case 1: return 101;
            case 2: return 102;
            case 4: return 104;    // gap: 3 falls to default
            default: return 999;
        }
    }
    int main(int x) { return classify(x); }
    """
    program = compile_program(source, mode="static")
    for x, want in [(0, 100), (1, 101), (2, 102), (3, 999), (4, 104),
                    (-1, 999), (50, 999)]:
        assert program.run(args=[x]).value == want


# -- prologue / epilogue ------------------------------------------------------------


def test_prologue_allocates_and_saves():
    compiled = lower_main("""
        int helper(int x) { return x; }
        int main(int a) {
            int b = helper(a) + a;
            return b * 2;
        }
    """)
    first = compiled.code[0]
    assert first.op == "lda" and first.rd == SP and first.imm < 0
    # RA saved somewhere in the prologue
    assert any(i.op == "stq" and i.rb == RA for i in compiled.code[:6])
    # epilogue restores SP symmetrically
    epilogue = compiled.labels["$epilogue"]
    tail = compiled.code[epilogue:]
    assert any(i.op == "lda" and i.rd == SP and i.imm == -first.imm
               for i in tail)
    assert tail[-1].op == "ret"


def test_saved_registers_restored():
    compiled = lower_main("int main(int a) { return a + 1; }")
    saves = [(i.op, i.rb, i.imm) for i in compiled.code
             if i.op in ("stq", "stt") and i.ra == SP]
    epilogue = compiled.labels["$epilogue"]
    restores = [(i.op.replace("ld", "st"), i.rd, i.imm)
                for i in compiled.code[epilogue:]
                if i.op in ("ldq", "ldt") and i.ra == SP]
    assert sorted(saves) == sorted(restores)


# -- data layout -----------------------------------------------------------------------


def test_layout_assigns_disjoint_addresses():
    module = build("""
        int a; int b[10]; float c;
        int main() { return 0; }
    """)
    layout = DataLayout()
    layout.add_module_globals(module)
    a = layout.addr_of("a")
    b = layout.addr_of("b")
    c = layout.addr_of("c")
    assert len({a, b, c}) == 3
    assert b + 10 <= max(a, c) + 1 or b > max(a, c) - 10  # no overlap
    spans = sorted([(a, 1), (b, 10), (c, 1)])
    for (start1, size1), (start2, _) in zip(spans, spans[1:]):
        assert start1 + size1 <= start2


def test_float_pool_deduplicates():
    layout = DataLayout()
    first = layout.float_const_addr(3.25)
    second = layout.float_const_addr(3.25)
    third = layout.float_const_addr(1.5)
    assert first == second != third


def test_float_literals_work_end_to_end():
    source = """
    int main() {
        float a = 0.125;
        float b = 1048576.5;
        print_float(a + b);
        return 0;
    }
    """
    expected, expected_out = interp_run(source)
    program = compile_program(source, mode="static")
    result = program.run()
    assert result.output == expected_out


# -- asm printer -------------------------------------------------------------------------


def test_format_instr_styles():
    assert format_instr(MInstr("ldq", rd=3, ra=SP, imm=8)) == \
        "ldq    r3, 8(sp)"
    assert format_instr(MInstr("addq", rd=1, ra=2, rb=3)) == \
        "addq   r1, r2, r3"
    assert format_instr(MInstr("addq", rd=1, ra=2, imm=7)) == \
        "addq   r1, r2, #7"
    assert format_instr(MInstr("br", label="exit")) == "br     exit"
    assert "call_rt" in format_instr(MInstr("call_rt", name="alloc"))


def test_format_function_has_labels_and_offsets():
    compiled = lower_main("int main() { return 7; }")
    text = format_function(compiled)
    assert "main:" in text
    assert "$epilogue:" in text
    assert "ret" in text


def test_format_region_shows_directives():
    source = """
    int f(int c, int v) {
        dynamicRegion (c) {
            int d = c * 3;
            if (d > 10) return v;
            return v * 2;
        }
    }
    int main() { return f(5, 2); }
    """
    program = compile_program(source, mode="dynamic")
    text = format_region(program.region_codes()[0])
    assert "CONST_BRANCH" in text
    assert "region 1 of f" in text
    assert "top-level table" in text


def test_more_than_six_parameters_rejected():
    import pytest
    from repro import CompileError, compile_program

    source = """
    int many(int a, int b, int c, int d, int e, int f, int g) {
        return a + g;
    }
    int main() { return many(1, 2, 3, 4, 5, 6, 7); }
    """
    with pytest.raises(CompileError):
        compile_program(source, mode="static")


def test_six_parameters_ok():
    from repro import compile_program

    source = """
    int six(int a, int b, int c, int d, int e, int f) {
        return a + b + c + d + e + f;
    }
    int main() { return six(1, 2, 3, 4, 5, 6); }
    """
    assert compile_program(source, mode="static").run().value == 21
