"""Register allocator tests."""

from repro.codegen.regalloc import allocate
from repro.ir.ssa import from_ssa, to_ssa
from repro.machine.isa import FLOAT_ALLOCATABLE, INT_ALLOCATABLE
from repro import compile_program

from helpers import build, interp_run


def prepare(source, func="main"):
    module = build(source)
    f = module.functions[func]
    to_ssa(f)
    from_ssa(f)
    return f


BUSY = """
int main(int a, int b) {
    int c = a + b;
    int d = a - b;
    int e = c * d;
    int f = c + d + e;
    int g = e * f - a;
    int h = g + c;
    return h + d + e + f + g;
}
"""


def test_every_temp_gets_a_location():
    func = prepare(BUSY)
    alloc = allocate(func)
    used = set()
    for block in func.blocks.values():
        for instr in block.all_instrs():
            for value in instr.uses():
                if hasattr(value, "name") and value.name in func.temp_types:
                    used.add(value.name)
            dst = instr.defs()
            if dst is not None:
                used.add(dst.name)
    for name in used:
        assert name in alloc.locations, "no location for %s" % name


def test_registers_come_from_the_pool():
    func = prepare(BUSY)
    alloc = allocate(func)
    valid = set(INT_ALLOCATABLE) | set(FLOAT_ALLOCATABLE)
    for loc in alloc.locations.values():
        if not loc.spilled:
            assert loc.reg in valid


def test_float_temps_get_float_registers():
    func = prepare("""
        int main() {
            float a = 1.5; float b = 2.5;
            float c = a * b + a;
            return (int) c;
        }
    """)
    alloc = allocate(func)
    for name, loc in alloc.locations.items():
        if loc.spilled:
            continue
        if func.temp_types.get(name) == "float":
            assert loc.reg in FLOAT_ALLOCATABLE
        else:
            assert loc.reg in INT_ALLOCATABLE


def test_no_overlapping_live_ranges_share_registers():
    """Simultaneously live temps must not share a register.

    Checked indirectly but strongly: a tiny register pool forces heavy
    reuse, and the program's result must still be correct end to end.
    """
    source = BUSY.replace("int main(int a, int b)", "int main(int a, int b)")
    expected, _ = interp_run(source, args=[9, 4])
    program = compile_program(source, mode="static")
    assert program.run(args=[9, 4]).value == expected


def test_spilling_with_tiny_pool():
    func = prepare(BUSY)
    alloc = allocate(func, int_pool=[1, 2, 3])
    assert alloc.num_spill_slots > 0
    assert all(loc.spilled or loc.reg in (1, 2, 3)
               for loc in alloc.locations.values()
               if func.temp_types.get("x", "int") == "int")


def test_spill_slots_are_dense():
    func = prepare(BUSY)
    alloc = allocate(func, int_pool=[1, 2])
    slots = sorted(loc.spill_slot for loc in alloc.locations.values()
                   if loc.spilled)
    assert slots == list(range(len(slots)))


def test_used_registers_reported():
    func = prepare(BUSY)
    alloc = allocate(func)
    for loc in alloc.locations.values():
        if not loc.spilled:
            assert loc.reg in alloc.used_registers


def test_block_order_starts_at_entry():
    func = prepare(BUSY)
    alloc = allocate(func)
    assert alloc.block_order[0] == func.entry
    assert set(alloc.block_order) == set(func.blocks)


def test_spilled_program_still_correct():
    # Deep expression with many simultaneously-live values: with the
    # real pool this may spill; either way results must match.
    source = """
    int main() {
        int v[26]; int i;
        for (i = 0; i < 26; i++) v[i] = i * i + 1;
        int a0=v[0]; int a1=v[1]; int a2=v[2]; int a3=v[3]; int a4=v[4];
        int a5=v[5]; int a6=v[6]; int a7=v[7]; int a8=v[8]; int a9=v[9];
        int b0=v[10]; int b1=v[11]; int b2=v[12]; int b3=v[13];
        int b4=v[14]; int b5=v[15]; int b6=v[16]; int b7=v[17];
        int b8=v[18]; int b9=v[19]; int c0=v[20]; int c1=v[21];
        int c2=v[22]; int c3=v[23]; int c4=v[24]; int c5=v[25];
        return a0+a1*a2+a3*a4+a5*a6+a7*a8+a9*b0+b1*b2+b3*b4
             + b5*b6+b7*b8+b9*c0+c1*c2+c3*c4+c5
             + (a0+b0+c0)*(a1+b1+c1);
    }
    """
    expected, _ = interp_run(source)
    program = compile_program(source, mode="static")
    assert program.run().value == expected
