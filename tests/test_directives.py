"""Flat directive-stream (paper Table 1 / Figure 1) tests."""

import re

from repro import compile_program
from repro.dynamic.directives import directive_listing, format_directives

CACHE = """
struct SetStructure { int tag; };
struct Line { SetStructure **sets; };
struct Cache { int blockSize; int numLines; Line **lines; int associativity; };
int cacheLookup(uint addr, Cache *cache) {
    dynamicRegion (cache) {
        uint blockSize = (uint)cache->blockSize;
        uint numLines = (uint)cache->numLines;
        uint tag = addr / (blockSize * numLines);
        uint line = (addr / blockSize) % numLines;
        SetStructure **setArray = cache->lines[line]->sets;
        int assoc = cache->associativity;
        int set;
        unrolled for (set = 0; set < assoc; set++) {
            if ((uint)setArray[set] dynamic-> tag == tag) return 1;
        }
        return 0;
    }
}
int main() { return 0; }
"""


def listing_for(source, func=None):
    program = compile_program(source, mode="dynamic")
    (region,) = program.region_codes()
    return directive_listing(region)


def kinds(lines):
    return [re.match(r"[A-Z_]+", line).group(0) for line in lines]


def test_starts_and_ends():
    lines = listing_for(CACHE)
    assert lines[0].startswith("START(")
    assert lines[-1].startswith("END(")


def test_cache_example_directive_kinds():
    # The same directive kinds as Figure 1's listing.
    present = set(kinds(listing_for(CACHE)))
    assert {"START", "END", "HOLE", "CONST_BRANCH", "ENTER_LOOP",
            "EXIT_LOOP", "RESTART_LOOP", "BRANCH", "LABEL"} <= present


def test_cache_example_hole_count():
    # 4 top-level geometry holes + the per-iteration set-index hole.
    lines = listing_for(CACHE)
    holes = [l for l in lines if l.startswith("HOLE(")]
    assert len(holes) == 5
    assert sum(1 for h in holes if ":" in h) == 1  # iteration-scoped


def test_loop_directives_reference_table_slots():
    lines = listing_for(CACHE)
    enter = next(l for l in lines if l.startswith("ENTER_LOOP"))
    assert re.search(r"ENTER_LOOP\(L\d+, \d+\)", enter)
    restart = next(l for l in lines if l.startswith("RESTART_LOOP"))
    assert re.search(r"RESTART_LOOP\(L\d+, \d+\)", restart)
    const_branch = next(l for l in lines if l.startswith("CONST_BRANCH"))
    assert "1:0" in const_branch  # loop 1, record slot 0 (the predicate)


def test_no_loop_no_loop_directives():
    source = """
    int f(int c, int v) {
        dynamicRegion (c) { return c * 3 + v; }
    }
    int main() { return f(1, 2); }
    """
    present = set(kinds(listing_for(source)))
    assert "ENTER_LOOP" not in present
    assert "RESTART_LOOP" not in present
    assert "HOLE" in present


def test_format_directives_header():
    program = compile_program(CACHE, mode="dynamic")
    (region,) = program.region_codes()
    text = format_directives(region)
    assert text.startswith("; stitcher directives for region 1 of "
                           "cacheLookup")


def test_listing_is_deterministic():
    assert listing_for(CACHE) == listing_for(CACHE)
