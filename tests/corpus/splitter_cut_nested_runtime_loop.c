// minimized reproducer: setup-cut scoring inside an unrolled loop (seed 17)
// args: 9 1
// features: unrolled, if_var, plain_loop_nested
// divergence: dynamic leg raised AnnotationError "set-up code for region 1
// contains a loop not marked 'unrolled'" while interp/static ran fine.
// Cause: _choose_cut judged acyclicity with unrolled back edges included,
// so every block inside an unrolled body looked cyclic and the tie-break
// let set-up code follow a nested run-time loop's body instead of its
// exit.  Fixed by scoring reachability modulo unrolled latch->header
// edges (splitter._reachable_forward).

int f(int c, int n, int v) {
    int t = 0;
    dynamicRegion (c) {
        int i;
        unrolled for (i = 0; i < c; i++) {
            if (v > 3) {
                int j;
                for (j = 0; j < n; j++) { t = t + j; }
            } else {
                t = t + i;
            }
        }
        return t + v;
    }
}
int main(int x) { return f(3, 4, x); }
