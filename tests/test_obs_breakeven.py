"""Break-even economics (repro.obs.breakeven): arithmetic + golden.

Two layers of defense:

* the derived quantities (speedup, overhead, break-even run count,
  cycles per stitched instruction) are checked against hand-computed
  values on a synthetic row, so the arithmetic itself is pinned
  independently of the compiler;
* a full ``break_even_workload`` over ``sparse_matvec_small`` (the
  paper's matrix benchmark at test scale) is compared field-for-field
  with the committed ``tests/golden_breakeven.json``, so any
  accounting drift in the pipeline shows up as a diff.

Regenerate the golden (only on an *intentional* cost/accounting
change) with::

    PYTHONPATH=src python tests/test_obs_breakeven.py --regen
"""

from __future__ import annotations

import json
import math
import sys
from pathlib import Path

from repro.bench.workloads import sparse_matvec_workload
from repro.obs.breakeven import (
    BreakEvenRow, break_even_source, break_even_workload,
)
from repro.runtime.engine import compile_program

GOLDEN_PATH = Path(__file__).parent / "golden_breakeven.json"


def small_workload():
    return sparse_matvec_workload(size=12, per_row=3)


def test_derived_quantities_hand_computed():
    row = BreakEvenRow(
        func_name="f", region_id=1,
        executions=100, stitches=2, cache_hits=98,
        static_cycles=50_000,       # 500 / execution
        stitched_cycles=19_000,     # + dispatch: 200 / execution
        dispatch_cycles=1_000,
        setup_cycles=4_000,
        stitcher_cycles=26_000,     # overhead 30_000
        instrs_stitched=600,
    )
    assert row.static_per_exec == 500.0
    assert row.dynamic_per_exec == 200.0
    assert row.saved_per_exec == 300.0
    assert row.speedup == 2.5
    assert row.overhead_cycles == 30_000
    # 30_000 overhead / 300 saved per run -> pays off at run 100.
    assert row.breakeven_runs == 100
    assert row.cycles_per_stitched_instr == 50.0


def test_breakeven_rounds_up_and_handles_never():
    row = BreakEvenRow("f", 1, executions=10, stitches=1, cache_hits=9,
                       static_cycles=1000, stitched_cycles=899,
                       dispatch_cycles=0, setup_cycles=50,
                       stitcher_cycles=51, instrs_stitched=10)
    # saved = 100.0 - 89.9 = 10.1/exec; 101 / 10.1 = 10.0 -> ceil 10
    assert row.breakeven_runs == math.ceil(
        101 / (row.static_per_exec - row.dynamic_per_exec))

    slower = BreakEvenRow("f", 1, executions=10, stitches=1, cache_hits=9,
                          static_cycles=1000, stitched_cycles=2000,
                          dispatch_cycles=0, setup_cycles=1,
                          stitcher_cycles=1, instrs_stitched=1)
    assert slower.saved_per_exec < 0
    assert slower.breakeven_runs is None  # never pays off


def test_to_dict_is_json_round_trippable():
    row = BreakEvenRow("f", 2, 5, 1, 4, 100, 40, 10, 7, 13, 25)
    data = json.loads(json.dumps(row.to_dict()))
    assert data["region"] == "f:2"
    assert data["executions"] == 5
    assert data["overhead_cycles"] == 20
    assert data["cache_hits"] == 4


def test_golden_sparse_matvec_small():
    workload = small_workload()
    rows = break_even_workload(workload)
    golden = json.loads(GOLDEN_PATH.read_text())
    assert golden["config"] == workload.config
    assert len(rows) == len(golden["rows"])
    for row, want in zip(rows, golden["rows"]):
        got = row.to_dict()
        for field_name, want_value in want.items():
            assert got[field_name] == want_value, (
                "%s.%s: got %r, golden %r"
                % (want["region"], field_name, got[field_name],
                   want_value))


def test_rows_consistent_with_run_results():
    """The row's raw fields must restate the engine's own accounting."""
    workload = small_workload()
    static = compile_program(workload.source, mode="static").run()
    dynamic = compile_program(workload.source, mode="dynamic").run()
    (row,) = break_even_workload(workload)
    key = (row.func_name, row.region_id)
    suffix = "%s:%d" % key
    assert row.executions == dynamic.region_entries[key]
    assert row.stitches == len(dynamic.stitch_reports)
    assert row.cache_hits == len(dynamic.cache_hits)
    assert row.executions == row.stitches + row.cache_hits
    assert row.static_cycles == \
        static.cycles_by_owner["region:" + suffix]
    assert row.stitched_cycles == \
        dynamic.cycles_by_owner["stitched:" + suffix]
    assert row.dispatch_cycles == \
        dynamic.cycles_by_owner["dispatch:" + suffix]
    assert row.setup_cycles == dynamic.cycles_by_owner["setup:" + suffix]
    assert row.stitcher_cycles == \
        dynamic.cycles_by_owner["stitcher:" + suffix]
    assert row.instrs_stitched == sum(
        r.instrs_emitted for r in dynamic.stitch_reports)


def test_break_even_source_checks_agreement():
    source = """
    int f(int n) {
        int total = 0;
        dynamicRegion (n) {
            int i;
            unrolled for (i = 0; i < n; i++) total += i;
        }
        return total;
    }
    int main() { int j; int s = 0;
        for (j = 0; j < 8; j++) s += f(5);
        return s; }
    """
    rows = break_even_source(source)
    (row,) = rows
    assert row.executions == 8
    assert row.stitches == 1
    assert row.cache_hits == 7


def _regen():
    workload = small_workload()
    rows = break_even_workload(workload)
    out = {"workload": workload.name, "config": workload.config,
           "rows": [row.to_dict() for row in rows]}
    with open(GOLDEN_PATH, "w") as handle:
        json.dump(out, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print("wrote %s" % GOLDEN_PATH)


if __name__ == "__main__":
    if "--regen" in sys.argv:
        _regen()
    else:
        print(__doc__)
