"""Measurement-harness and reporting tests (Table 2 math)."""

import math

import pytest

from repro.bench.harness import BenchmarkMeasurement, measure
from repro.bench.reporting import format_table2, format_table3, table3_dict
from repro.bench.workloads import Workload, scalar_matrix_workload


def make_row(static=1000, dynamic=400, dispatch=100, setup=50,
             stitcher=5000, executions=10, instrs=20):
    workload = Workload(name="demo", config="cfg", source="",
                        region_func="f", executions=executions,
                        unit="widgets", units_per_execution=2.0)
    return BenchmarkMeasurement(
        workload=workload,
        executions=executions,
        static_cycles=static,
        dynamic_stitched_cycles=dynamic,
        dynamic_dispatch_cycles=dispatch,
        setup_cycles=setup,
        stitcher_cycles=stitcher,
        instrs_stitched=instrs,
        stitches=1,
        optimizations={"constant_folding": True},
    )


def test_per_execution_math():
    row = make_row()
    assert row.static_per_execution == 100.0
    assert row.dynamic_per_execution == 50.0   # (400+100)/10
    assert row.speedup == 2.0


def test_overhead_is_setup_plus_stitcher():
    row = make_row()
    assert row.overhead == 5050


def test_breakeven_formula():
    row = make_row()
    # gain 50/exec, overhead 5050 -> 101 executions
    assert row.breakeven_executions == math.ceil(5050 / 50) == 101
    assert row.breakeven_paper_units == 202.0  # 2 widgets/execution


def test_breakeven_never_when_dynamic_loses():
    row = make_row(static=400, dynamic=400, dispatch=100)
    assert row.speedup < 1
    assert row.breakeven_executions is None
    assert row.breakeven_paper_units is None


def test_cycles_per_stitched_instr():
    row = make_row()
    assert row.cycles_per_stitched_instr == 5050 / 20


def test_measure_catches_result_mismatch():
    workload = scalar_matrix_workload(rows=3, cols=3, scalars=2)
    workload.expected = -999  # sabotage
    with pytest.raises(AssertionError):
        measure(workload)


def test_measure_returns_consistent_row():
    workload = scalar_matrix_workload(rows=4, cols=4, scalars=3)
    row = measure(workload)
    assert row.executions == 3
    assert row.stitches == 3         # one per key
    assert row.static_cycles > 0
    assert row.dynamic_stitched_cycles > 0
    assert row.setup_cycles > 0
    assert row.stitcher_cycles > 0
    assert row.instrs_stitched > 0
    assert row.static_result is not None
    assert row.dynamic_result is not None


def test_measure_is_deterministic():
    workload = scalar_matrix_workload(rows=4, cols=4, scalars=3)
    a = measure(workload)
    b = measure(workload)
    assert a.static_cycles == b.static_cycles
    assert a.dynamic_stitched_cycles == b.dynamic_stitched_cycles
    assert a.stitcher_cycles == b.stitcher_cycles


def test_format_table2_contains_rows():
    rows = [make_row()]
    text = format_table2(rows)
    assert "demo" in text
    assert "2.00x" in text
    assert "202 widgets" in text


def test_format_table2_never_row():
    rows = [make_row(static=400, dynamic=400, dispatch=100)]
    assert "never" in format_table2(rows)


def test_format_table3_one_row_per_benchmark():
    rows = [make_row(), make_row()]
    text = format_table3(rows)
    assert text.count("demo") == 1
    assert "yes" in text


def test_table3_dict():
    rows = [make_row()]
    matrix = table3_dict(rows)
    assert matrix["demo"]["constant_folding"]
