"""Declarative health rules over metric values -> structured reports.

A rule is one line of text::

    [fail:|warn:] METRIC [rate | / METRIC] OP THRESHOLD

* ``METRIC OP X`` -- compare the metric's value (counter/gauge value,
  histogram count; a metric that never fired reads as 0).
* ``METRIC rate OP X`` -- the value per *kilocycle* of simulated time
  (needs the run's cycle count; 0 cycles -> rate 0).
* ``A / B OP X`` -- ratio of two metric values (B == 0 -> ratio 0,
  so "no denominator yet" never fires a rule).
* ``OP`` is one of ``>`` ``>=`` ``<`` ``<=`` ``==`` ``!=``.
* The optional severity prefix defaults to ``fail``.

Rules evaluate against a flat ``{metric name: number}`` mapping --
either :func:`flatten_snapshot` over the live registry, or
:func:`values_from_result` over a :class:`RunResult` (which is how the
fuzzer health-checks iterations without enabling global metrics).

The result is a :class:`HealthReport`: per-rule values and verdicts
plus an overall status (``ok`` / ``warn`` / ``fail``), consumed by
``python -m repro.obs health``, the fuzzer's silent-degradation flags,
and CI.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

Number = float

_OPS = {
    ">": operator.gt,
    ">=": operator.ge,
    "<": operator.lt,
    "<=": operator.le,
    "==": operator.eq,
    "!=": operator.ne,
}

SEVERITIES = ("warn", "fail")


class HealthRuleError(ValueError):
    """Malformed rule text."""


@dataclass(frozen=True)
class HealthRule:
    """One parsed rule (see module docstring for the grammar)."""

    metric: str
    op: str
    threshold: float
    mode: str = "value"            # "value" | "rate" | "ratio"
    denominator: Optional[str] = None
    severity: str = "fail"

    def describe(self) -> str:
        if self.mode == "rate":
            expr = "%s rate" % self.metric
        elif self.mode == "ratio":
            expr = "%s / %s" % (self.metric, self.denominator)
        else:
            expr = self.metric
        return "%s: %s %s %g" % (self.severity, expr, self.op,
                                 self.threshold)


def parse_rule(text: str) -> HealthRule:
    """Parse one rule line (comments/blank lines are the caller's
    problem -- see :func:`parse_rules`)."""
    severity = "fail"
    body = text.strip()
    for prefix in SEVERITIES:
        if body.startswith(prefix + ":"):
            severity = prefix
            body = body[len(prefix) + 1:].strip()
            break
    tokens = body.split()
    if len(tokens) < 3:
        raise HealthRuleError("rule %r: expected METRIC OP VALUE" % text)
    op = tokens[-2]
    if op not in _OPS:
        raise HealthRuleError("rule %r: bad operator %r" % (text, op))
    try:
        threshold = float(tokens[-1])
    except ValueError:
        raise HealthRuleError("rule %r: bad threshold %r"
                              % (text, tokens[-1]))
    head = tokens[:-2]
    if len(head) == 1:
        return HealthRule(head[0], op, threshold, severity=severity)
    if len(head) == 2 and head[1] == "rate":
        return HealthRule(head[0], op, threshold, mode="rate",
                          severity=severity)
    if len(head) == 3 and head[1] == "/":
        return HealthRule(head[0], op, threshold, mode="ratio",
                          denominator=head[2], severity=severity)
    raise HealthRuleError("rule %r: bad expression %r"
                          % (text, " ".join(head)))


def parse_rules(text: str) -> List[HealthRule]:
    """Parse a rule file: one rule per line, ``#`` comments and blank
    lines ignored."""
    rules = []
    for line in text.splitlines():
        line = line.split("#", 1)[0].strip()
        if line:
            rules.append(parse_rule(line))
    return rules


#: Default rule set: red flags (correctness-adjacent degradation) and
#: yellow flags (economic anomalies worth a look).
DEFAULT_RULES = tuple(parse_rules("""
fail: cache.checksum_failures > 0
fail: breaker.trips rate > 0.05
warn: fallback.count / region.entries > 0.1
warn: tier.demotions > 0
warn: fault.injected > 0
"""))


@dataclass
class RuleResult:
    rule: HealthRule
    value: float
    fired: bool

    def to_dict(self) -> Dict[str, object]:
        return {"rule": self.rule.describe(), "metric": self.rule.metric,
                "mode": self.rule.mode, "severity": self.rule.severity,
                "value": self.value, "threshold": self.rule.threshold,
                "op": self.rule.op, "fired": self.fired}


@dataclass
class HealthReport:
    """Outcome of evaluating a rule set against one run."""

    results: List[RuleResult] = field(default_factory=list)
    cycles: Optional[int] = None

    @property
    def fired(self) -> List[RuleResult]:
        return [r for r in self.results if r.fired]

    @property
    def status(self) -> str:
        worst = "ok"
        for result in self.fired:
            if result.rule.severity == "fail":
                return "fail"
            worst = "warn"
        return worst

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def to_dict(self) -> Dict[str, object]:
        return {"status": self.status, "cycles": self.cycles,
                "fired": len(self.fired),
                "rules": [r.to_dict() for r in self.results]}


def flatten_snapshot(snap: Dict[str, Dict[str, object]]
                     ) -> Dict[str, Number]:
    """Registry snapshot -> flat name->number mapping (counter/gauge
    value; histogram count)."""
    values: Dict[str, Number] = {}
    for name, data in snap.items():
        if data["type"] == "histogram":
            values[name] = data["count"]
        else:
            values[name] = data["value"]
    return values


def values_from_result(result) -> Dict[str, Number]:
    """Pseudo-metric values for a :class:`RunResult`, matching the
    registry metric names so one rule set serves both sources."""
    values: Dict[str, Number] = {
        "vm.cycles": result.cycles,
        "region.entries": sum(result.region_entries.values()),
        "cache.hits": len(result.cache_hits),
        "fallback.count": len(result.fallbacks),
        "fault.injected": sum(result.fault_counts.values()),
        "breaker.trips": sum(s.get("trips", 0)
                             for s in result.breaker_stats.values()),
        "tier.promotions": sum(s.get("promotions", 0)
                               for s in result.tier_stats.values()),
        "tier.demotions": sum(s.get("demotions", 0)
                              for s in result.tier_stats.values()),
        "tier.cold": len(result.cold_entries),
    }
    stats = result.cache_stats
    if stats is not None:
        values["cache.misses"] = stats.misses
        values["cache.evictions"] = stats.evictions
        values["cache.checksum_failures"] = stats.checksum_failures
        values["cache.restitches"] = stats.restitches
    return values


def evaluate(values: Dict[str, Number],
             rules: Sequence[HealthRule] = DEFAULT_RULES,
             cycles: Optional[int] = None) -> HealthReport:
    """Evaluate ``rules`` against flat metric ``values``."""
    if cycles is None:
        raw = values.get("vm.cycles")
        cycles = int(raw) if raw else None
    report = HealthReport(cycles=cycles)
    for rule in rules:
        value = float(values.get(rule.metric, 0))
        if rule.mode == "rate":
            value = 1000.0 * value / cycles if cycles else 0.0
        elif rule.mode == "ratio":
            den = float(values.get(rule.denominator, 0))
            value = value / den if den else 0.0
        fired = _OPS[rule.op](value, rule.threshold)
        report.results.append(RuleResult(rule, value, fired))
    return report


def evaluate_result(result,
                    rules: Sequence[HealthRule] = DEFAULT_RULES
                    ) -> HealthReport:
    """Evaluate rules directly against a :class:`RunResult`."""
    return evaluate(values_from_result(result), rules,
                    cycles=result.cycles)


def format_report(report: HealthReport) -> str:
    """Human-readable rendering, one rule per line plus a verdict."""
    lines = ["health: %s (%d/%d rules fired%s)"
             % (report.status.upper(), len(report.fired),
                len(report.results),
                ", %d cycles" % report.cycles if report.cycles else "")]
    for result in report.results:
        marker = "!!" if result.fired else "ok"
        lines.append("  [%s] %-45s value=%g"
                     % (marker, result.rule.describe(), result.value))
    return "\n".join(lines)
