"""Deterministic time-series sampling of the metrics registry.

A :class:`TimeSeriesSampler` snapshots every registered instrument
(parents and labeled children) into fixed-capacity ring buffers, on
*logical* clocks only -- every N region entries and/or every M
simulated cycles, never host wall-clock -- so two runs of the same
program produce bit-identical series and goldens/fuzz replays stay
reproducible.

Hook sites: ``_RegionRuntime.lookup`` calls :func:`on_entry` through
the module-level ``_current`` global (one global load + one ``is
None`` branch while no sampler is installed, mirroring the tracer),
and ``Program.run`` forces a final sample so short runs still record a
point.

Each sample point is ``(entries, cycles, value)`` where ``entries`` is
the sampler's region-entry clock and ``cycles`` the VM's simulated
cycle counter at the sample instant.  From the raw series the sampler
derives rates and ratios between consecutive samples: cache hit ratio,
promotion rate, fallback ratio, evictions per kilocycle, and the
stitch queue's mean entries-to-land latency.

When a tracer is installed each sample additionally emits Perfetto
counter tracks (``ph: "C"``, category ``telemetry``) into the Chrome
trace stream, so series render next to spans in ui.perfetto.dev.

Observer-effect contract: sampling reads VM state (the live cycle
counter) but never writes it; a sampled run produces bit-identical
simulated observables (tests/test_obs_parity.py).
"""

from __future__ import annotations

from collections import deque
from contextlib import contextmanager
from typing import Dict, List, Optional, Tuple

from . import metrics as obs_metrics
from . import trace as obs_trace
from .metrics import Histogram, LabelKey, format_labels

#: Default logical-clock period: one sample every 64 region entries.
DEFAULT_EVERY_ENTRIES = 64

#: Default ring-buffer capacity (samples kept per series).
DEFAULT_CAPACITY = 256

SeriesKey = Tuple[str, LabelKey]

#: Derived series definitions: name -> (numerator metric, denominator
#: metric or None for cycle-based rates, scale).  Ratios divide deltas
#: of two counters; ``evictions_per_kcycle`` divides by the cycle
#: delta instead.
_RATIOS = (
    ("cache.hit_ratio", "cache.hits", "cache.misses"),
)
_PER_ENTRY_RATES = (
    ("tier.promotion_rate", "tier.promotions"),
    ("fallback.ratio", "fallback.count"),
)
_PER_KCYCLE_RATES = (
    ("cache.evictions_per_kcycle", "cache.evictions"),
)
#: Quotients of two counter deltas: mean value per event inside the
#: window.  ``stitchq.entries_to_land`` divides the summed queue
#: latency (in region entries) by the jobs landed, so a climbing curve
#: means stitches are waiting longer behind the drain clock.
_QUOTIENTS = (
    ("stitchq.entries_to_land", "stitchq.latency_entries",
     "stitchq.landed"),
)


class TimeSeriesSampler:
    """Ring-buffered sampler over a :class:`MetricsRegistry`.

    ``every_entries`` / ``every_cycles`` are the logical-clock periods
    (either may be None to disable that clock; both set means
    whichever fires first).  ``capacity`` bounds each series ring.
    """

    def __init__(self,
                 every_entries: Optional[int] = DEFAULT_EVERY_ENTRIES,
                 every_cycles: Optional[int] = None,
                 capacity: int = DEFAULT_CAPACITY,
                 registry: Optional[obs_metrics.MetricsRegistry] = None):
        if every_entries is None and every_cycles is None:
            raise ValueError("sampler needs at least one logical clock")
        if capacity < 2:
            raise ValueError("capacity must be >= 2 (deltas need 2 points)")
        self.every_entries = every_entries
        self.every_cycles = every_cycles
        self.capacity = capacity
        self.registry = registry if registry is not None \
            else obs_metrics.registry
        self.entries = 0          # region-entry logical clock
        self.samples = 0          # total samples taken
        self.last_cycles = 0      # cycle clock at the latest sample
        self._last_entries = 0
        self._last_sample_cycles = 0
        self._series: Dict[SeriesKey, Dict[str, object]] = {}

    # -- hot path ----------------------------------------------------------

    def on_entry(self, vm) -> None:
        """Called from the region-entry hook; samples when a logical
        clock period has elapsed."""
        self.entries += 1
        if (self.every_entries is not None
                and self.entries - self._last_entries >= self.every_entries):
            self.sample(vm.cycles)
            return
        if self.every_cycles is not None:
            cycles = vm.cycles
            if cycles - self._last_sample_cycles >= self.every_cycles:
                self.sample(cycles)

    # -- sampling ----------------------------------------------------------

    def _bucket(self, name: str, labelset: LabelKey,
                kind: str) -> "deque":
        key = (name, labelset)
        entry = self._series.get(key)
        if entry is None:
            entry = {"kind": kind,
                     "points": deque(maxlen=self.capacity)}
            self._series[key] = entry
        return entry["points"]  # type: ignore[return-value]

    def sample(self, cycles: int) -> None:
        """Record one point per live series at logical time
        ``(self.entries, cycles)``."""
        self._last_entries = self.entries
        self._last_sample_cycles = cycles
        self.last_cycles = cycles
        self.samples += 1
        point_clock = (self.entries, cycles)
        tracer = obs_trace._current
        for inst in self.registry.instruments():
            self._sample_instrument(inst, point_clock, tracer)
            if inst._children:
                for key in sorted(inst._children):
                    self._sample_instrument(inst._children[key],
                                            point_clock, tracer)

    def _sample_instrument(self, inst, clock: Tuple[int, int],
                           tracer) -> None:
        entries, cycles = clock
        if isinstance(inst, Histogram):
            self._bucket(inst.name, inst.labelset,
                         "histogram_count").append(
                (entries, cycles, inst.count))
            return
        value = inst.value
        self._bucket(inst.name, inst.labelset, inst.kind).append(
            (entries, cycles, value))
        if tracer is not None:
            tracer.counter(inst.name + format_labels(inst.labelset),
                           value=value)

    # -- reading -----------------------------------------------------------

    def series(self) -> List[Dict[str, object]]:
        """All raw series, deterministically ordered, points oldest
        first."""
        out = []
        for (name, labelset) in sorted(self._series):
            entry = self._series[(name, labelset)]
            out.append({
                "name": name,
                "labels": dict(labelset),
                "kind": entry["kind"],
                "points": [list(p) for p in entry["points"]],
            })
        return out

    def _points(self, name: str) -> Dict[int, Tuple[int, float]]:
        """Entry-clock -> (cycles, value) for the unlabeled series of
        ``name`` (empty when never sampled)."""
        entry = self._series.get((name, ()))
        if entry is None:
            return {}
        return {e: (c, v) for (e, c, v) in entry["points"]}

    def _clocks(self) -> List[Tuple[int, int]]:
        clocks = set()
        for entry in self._series.values():
            for (e, c, _v) in entry["points"]:
                clocks.add((e, c))
        return sorted(clocks)

    def derived(self) -> List[Dict[str, object]]:
        """Rates/ratios between consecutive samples.

        A series absent at some clock counts as 0 there (counters are
        born at zero); a window with a zero denominator contributes no
        point.
        """
        clocks = self._clocks()
        out = []

        def value_at(points: Dict[int, Tuple[int, float]],
                     entry_clock: int) -> float:
            got = points.get(entry_clock)
            return got[1] if got is not None else 0

        def windows():
            for (e0, c0), (e1, c1) in zip(clocks, clocks[1:]):
                yield e0, e1, c0, c1

        def emit(name: str, points: List[List[float]]) -> None:
            if points:
                out.append({"name": name, "labels": {},
                            "kind": "derived", "points": points})

        for name, num, den in _RATIOS:
            np, dp = self._points(num), self._points(den)
            pts = []
            for e0, e1, _c0, c1 in windows():
                dn = value_at(np, e1) - value_at(np, e0)
                dd = value_at(dp, e1) - value_at(dp, e0)
                if dn + dd > 0:
                    pts.append([e1, c1, dn / (dn + dd)])
            emit(name, pts)

        entries_points = self._points("region.entries")
        for name, num in _PER_ENTRY_RATES:
            np = self._points(num)
            pts = []
            for e0, e1, _c0, c1 in windows():
                de = value_at(entries_points, e1) \
                    - value_at(entries_points, e0)
                if de > 0:
                    dn = value_at(np, e1) - value_at(np, e0)
                    pts.append([e1, c1, dn / de])
            emit(name, pts)

        for name, num, den in _QUOTIENTS:
            np, dp = self._points(num), self._points(den)
            pts = []
            for e0, e1, _c0, c1 in windows():
                dd = value_at(dp, e1) - value_at(dp, e0)
                if dd > 0:
                    dn = value_at(np, e1) - value_at(np, e0)
                    pts.append([e1, c1, dn / dd])
            emit(name, pts)

        for name, num in _PER_KCYCLE_RATES:
            np = self._points(num)
            pts = []
            for e0, e1, c0, c1 in windows():
                dc = c1 - c0
                if dc > 0:
                    dn = value_at(np, e1) - value_at(np, e0)
                    pts.append([e1, c1, 1000.0 * dn / dc])
            emit(name, pts)

        return out

    def to_json(self) -> Dict[str, object]:
        """The full sampler state as a JSON-serializable document."""
        return {
            "schema": 1,
            "clock": {"entries": self.entries,
                      "cycles": self.last_cycles},
            "samples": self.samples,
            "every_entries": self.every_entries,
            "every_cycles": self.every_cycles,
            "capacity": self.capacity,
            "series": self.series(),
            "derived": self.derived(),
        }


# -- process-wide installation ---------------------------------------------

#: The installed sampler, or None (the common case).  The region-entry
#: hook reads this module attribute directly, mirroring the tracer's
#: one-global-load disabled path.
_current: Optional[TimeSeriesSampler] = None


def current() -> Optional[TimeSeriesSampler]:
    return _current


def install(sampler: Optional[TimeSeriesSampler]) -> None:
    global _current
    _current = sampler


@contextmanager
def sampling(sampler: TimeSeriesSampler):
    """Install ``sampler`` for the duration of the block."""
    previous = _current
    install(sampler)
    try:
        yield sampler
    finally:
        install(previous)
