"""Observability CLI: break-even reports, traces, profiles, telemetry.

Usage::

    python -m repro.obs report                     # Table 2, live, per region
    python -m repro.obs report --only calculator --json rows.json
    python -m repro.obs trace --workload calculator --out trace.json
    python -m repro.obs trace program.c --format jsonl --out trace.jsonl
    python -m repro.obs profile --workload "sparse"
    python -m repro.obs validate trace.json        # schema check (CI)
    python -m repro.obs export --workload calculator \\
        --openmetrics metrics.prom --series series.json
    python -m repro.obs health --workload calculator --faults all:0.1
    python -m repro.obs record cachepressure tiering
    python -m repro.obs compare --run cachepressure
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from . import export as export_mod
from . import health as health_mod
from . import history as history_mod
from . import metrics, timeseries, trace
from .breakeven import break_even_workload, rows_from_results
from .profiler import format_profile, profile_result


def _selected_workloads(only: Optional[List[str]], scale: float,
                        seed: Optional[int]):
    from ..bench.workloads import all_workloads
    selected = []
    for workload in all_workloads(scale=scale, seed=seed):
        if only and not any(sel.lower() in workload.name.lower()
                            for sel in only):
            continue
        selected.append(workload)
    return selected


def _cmd_report(args) -> int:
    from ..bench.reporting import format_breakeven
    workloads = _selected_workloads(args.only, args.scale, args.seed)
    if not workloads:
        print("no workload matches %r" % (args.only,), file=sys.stderr)
        return 1
    sections = []
    json_out = {}
    for workload in workloads:
        print("measuring %-30s %s ..."
              % (workload.name, workload.config), file=sys.stderr)
        try:
            rows = break_even_workload(workload,
                                       max_cycles=args.max_cycles)
        except Exception as exc:  # keep going; report the failure
            print("%-30s FAILED: %s: %s"
                  % (workload.name, type(exc).__name__, exc),
                  file=sys.stderr)
            continue
        title = "%s (%s)" % (workload.name, workload.config)
        sections.append(title + "\n" + format_breakeven(rows))
        json_out[workload.name] = [row.to_dict() for row in rows]
    if not sections:
        print("nothing measured", file=sys.stderr)
        return 1
    print()
    print("\n\n".join(sections))
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(json_out, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print("\nwrote %s" % args.json, file=sys.stderr)
    return 0


def _compile_and_run(args):
    """(program, result) for either --workload NAME or a source file."""
    from ..runtime.engine import compile_program
    if args.workload:
        selected = _selected_workloads([args.workload], 1.0, None)
        if not selected:
            raise SystemExit("no workload matches %r" % args.workload)
        workload = selected[0]
        print("workload: %s (%s)" % (workload.name, workload.config),
              file=sys.stderr)
        source = workload.source
        run_args: List[int] = []
    else:
        if not args.source:
            raise SystemExit("give a MiniC source file or --workload NAME")
        with open(args.source) as handle:
            source = handle.read()
        run_args = args.args
    fault_plan = None
    if getattr(args, "faults", None):
        from ..faults.plan import FaultPlan
        fault_plan = FaultPlan.parse(args.faults)
    program = compile_program(source, mode=args.mode,
                              fault_plan=fault_plan,
                              tier=getattr(args, "tier", None))
    result = program.run(args=run_args, max_cycles=args.max_cycles)
    return program, result


def _make_sampler(args) -> timeseries.TimeSeriesSampler:
    return timeseries.TimeSeriesSampler(
        every_entries=args.sample_entries,
        every_cycles=args.sample_cycles,
        capacity=args.sample_capacity)


def _cmd_trace(args) -> int:
    tracer = trace.Tracer()
    metrics.registry.enable()
    try:
        with trace.tracing(tracer):
            _, result = _compile_and_run(args)
    finally:
        metrics.registry.disable()
    out = args.out or "trace.json"
    if args.format == "jsonl":
        tracer.write_jsonl(out)
    else:
        tracer.write_chrome(out)
    errors = trace.validate_events(tracer.events)
    print("ran: value=%s cycles=%d; %d events (%d dropped) -> %s"
          % (result.value, result.cycles, len(tracer.events),
             tracer.dropped, out))
    if errors:
        for error in errors[:20]:
            print("schema error: %s" % error, file=sys.stderr)
        return 1
    if args.metrics:
        print()
        print(metrics.format_snapshot(metrics.registry.snapshot()))
    return 0


def _cmd_profile(args) -> int:
    _, result = _compile_and_run(args)
    print(format_profile(profile_result(result)))
    if getattr(result, "region_entries", None):
        rows = []
        if args.mode == "dynamic":
            # Per-entry economics need the static baseline too.
            from ..runtime.engine import compile_program
            if args.workload:
                source = _selected_workloads(
                    [args.workload], 1.0, None)[0].source
            else:
                with open(args.source) as handle:
                    source = handle.read()
            static = compile_program(source, mode="static")
            static_result = static.run(args=args.args if args.source
                                       else [],
                                       max_cycles=args.max_cycles)
            rows = rows_from_results(static_result, result)
        if rows:
            from ..bench.reporting import format_breakeven
            print()
            print(format_breakeven(rows))
    return 0


def _cmd_validate(args) -> int:
    try:
        events = trace.load_trace(args.trace_file)
    except (OSError, ValueError) as exc:
        print("cannot load %s: %s" % (args.trace_file, exc),
              file=sys.stderr)
        return 2
    errors = trace.validate_events(events)
    if errors:
        print("%s: INVALID (%d errors)" % (args.trace_file, len(errors)))
        for error in errors[:40]:
            print("  " + error)
        return 1
    print("%s: OK (%d events)" % (args.trace_file, len(events)))
    return 0


def _cmd_export(args) -> int:
    """Run with metrics + sampling on; write OpenMetrics text and/or
    the JSON series dump (and optionally the Chrome trace with the
    Perfetto counter tracks riding in it)."""
    tracer = trace.Tracer() if args.trace else None
    sampler = _make_sampler(args)
    metrics.registry.reset()
    metrics.registry.enable()
    try:
        with timeseries.sampling(sampler):
            if tracer is not None:
                with trace.tracing(tracer):
                    _, result = _compile_and_run(args)
            else:
                _, result = _compile_and_run(args)
    finally:
        metrics.registry.disable()
    snap = metrics.registry.snapshot()
    print("ran: value=%s cycles=%d; %d samples over %d entries"
          % (result.value, result.cycles, sampler.samples,
             sampler.entries))
    exclude = tuple(args.exclude or ())
    if args.openmetrics:
        export_mod.write_openmetrics(args.openmetrics, snap,
                                     exclude=exclude)
        print("wrote %s" % args.openmetrics)
    if args.series:
        export_mod.write_series_json(args.series, sampler, snapshot=snap)
        print("wrote %s" % args.series)
    if tracer is not None:
        tracer.write_chrome(args.trace)
        print("wrote %s (%d events)" % (args.trace, len(tracer.events)))
    if not (args.openmetrics or args.series or args.trace):
        sys.stdout.write(export_mod.to_openmetrics(snap, exclude=exclude))
    return 0


def _cmd_health(args) -> int:
    """Run a program/workload (optionally under faults or a tiering
    policy), evaluate the health rules, and print the report."""
    if args.rules:
        with open(args.rules) as handle:
            rules = health_mod.parse_rules(handle.read())
        if not rules:
            print("no rules in %s" % args.rules, file=sys.stderr)
            return 2
    else:
        rules = list(health_mod.DEFAULT_RULES)
    tracer = trace.Tracer() if args.trace else None
    sampler = _make_sampler(args)
    metrics.registry.reset()
    metrics.registry.enable()
    try:
        with timeseries.sampling(sampler):
            if tracer is not None:
                with trace.tracing(tracer):
                    _, result = _compile_and_run(args)
            else:
                _, result = _compile_and_run(args)
    finally:
        metrics.registry.disable()
    values = health_mod.flatten_snapshot(metrics.registry.snapshot())
    report = health_mod.evaluate(values, rules, cycles=result.cycles)
    if tracer is not None:
        tracer.write_chrome(args.trace)
        print("wrote %s (%d events)" % (args.trace, len(tracer.events)),
              file=sys.stderr)
    if args.json:
        document = report.to_dict()
        document["value"] = result.value
        with open(args.json, "w") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print("wrote %s" % args.json, file=sys.stderr)
    print(health_mod.format_report(report))
    if args.expect_firing and not report.fired:
        print("expected at least one firing rule, got none",
              file=sys.stderr)
        return 1
    if args.strict and not report.ok:
        return 1
    return 0


def _cmd_record(args) -> int:
    directory = Path(args.dir) if args.dir else None
    for benchmark in args.benchmarks:
        print("recording %s ..." % benchmark, file=sys.stderr)
        try:
            path = history_mod.record(benchmark, directory=directory,
                                      quick=not args.full, note=args.note)
        except history_mod.HistoryError as exc:
            print("error: %s" % exc, file=sys.stderr)
            return 2
        entries = len(history_mod.load_trajectory(path))
        print("%s: %d trajectory entries -> %s"
              % (benchmark, entries, path))
    return 0


def _cmd_compare(args) -> int:
    directory = Path(args.dir) if args.dir else None
    benchmarks = args.benchmarks
    if not benchmarks:
        base = directory if directory is not None \
            else history_mod.default_dir()
        benchmarks = [b for b in history_mod.BENCHMARKS
                      if (Path(base) / ("BENCH_%s.json" % b)).exists()]
        if not benchmarks:
            print("no trajectory files under %s -- run "
                  "`python -m repro.obs record` first" % base,
                  file=sys.stderr)
            return 2
    failed = False
    documents = {}
    for benchmark in benchmarks:
        candidate = None
        if args.run:
            try:
                # Fail fast on a missing/empty trajectory before
                # spending time collecting a fresh candidate.
                history_mod.require_trajectory(benchmark, directory)
            except history_mod.HistoryError as exc:
                print("error: %s" % exc, file=sys.stderr)
                return 2
            print("collecting %s ..." % benchmark, file=sys.stderr)
            candidate = history_mod.collect(benchmark,
                                            quick=not args.full)
        try:
            comparison = history_mod.compare(
                benchmark, directory=directory, candidate_rows=candidate,
                window=args.window, max_regression=args.max_regression,
                include_host=args.include_host)
        except history_mod.HistoryError as exc:
            print("error: %s" % exc, file=sys.stderr)
            return 2
        documents[benchmark] = comparison.to_dict()
        print(history_mod.format_comparison(comparison))
        failed = failed or not comparison.ok
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(documents, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print("wrote %s" % args.json, file=sys.stderr)
    return 1 if failed else 0


def _add_run_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("source", nargs="?", default=None,
                        help="MiniC source file (or use --workload)")
    parser.add_argument("--workload", default=None,
                        help="bench workload name (substring match)")
    parser.add_argument("--mode", choices=["dynamic", "static"],
                        default="dynamic")
    parser.add_argument("--args", nargs="*", type=int, default=[],
                        help="integer arguments for main()")
    parser.add_argument("--max-cycles", type=int, default=4_000_000_000)
    parser.add_argument("--faults", default=None,
                        help="fault-plan spec (SITE:PROB|all:PROB[@SEED])")
    parser.add_argument("--tier", default=None,
                        help="tiering policy spec (e.g. breakeven, "
                             "threshold:3)")


def _add_sampler_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--sample-entries", type=int,
                        default=timeseries.DEFAULT_EVERY_ENTRIES,
                        help="sample every N region entries")
    parser.add_argument("--sample-cycles", type=int, default=None,
                        help="also sample every M simulated cycles")
    parser.add_argument("--sample-capacity", type=int,
                        default=timeseries.DEFAULT_CAPACITY,
                        help="ring-buffer capacity per series")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Observability over the compile->stitch->execute "
                    "pipeline: break-even reports, traces, profiles.")
    sub = parser.add_subparsers(dest="command", required=True)

    report = sub.add_parser(
        "report", help="per-region break-even table over the bench "
                       "workloads (the paper's Table 2, live)")
    report.add_argument("--only", nargs="*", default=None,
                        help="workload-name filter (substring match)")
    report.add_argument("--scale", type=float, default=1.0)
    report.add_argument("--seed", type=int, default=None)
    report.add_argument("--json", default=None,
                        help="also write rows as JSON to this path")
    report.add_argument("--max-cycles", type=int, default=4_000_000_000)
    report.set_defaults(func=_cmd_report)

    trace_cmd = sub.add_parser(
        "trace", help="run a program or workload with tracing on and "
                      "dump the event trace")
    _add_run_arguments(trace_cmd)
    trace_cmd.add_argument("--out", default=None,
                           help="output path (default trace.json)")
    trace_cmd.add_argument("--format", choices=["chrome", "jsonl"],
                           default="chrome")
    trace_cmd.add_argument("--metrics", action="store_true",
                           help="also print the metrics snapshot")
    trace_cmd.set_defaults(func=_cmd_trace)

    profile = sub.add_parser(
        "profile", help="run and print the per-owner/per-region "
                        "simulated-cycle profile")
    _add_run_arguments(profile)
    profile.set_defaults(func=_cmd_profile)

    validate = sub.add_parser(
        "validate", help="schema-check a trace file (chrome or jsonl)")
    validate.add_argument("trace_file")
    validate.set_defaults(func=_cmd_validate)

    export_cmd = sub.add_parser(
        "export", help="run with metrics + sampling and export "
                       "OpenMetrics text / JSON series / a counter-"
                       "track trace")
    _add_run_arguments(export_cmd)
    _add_sampler_arguments(export_cmd)
    export_cmd.add_argument("--openmetrics", default=None,
                            help="write OpenMetrics exposition here")
    export_cmd.add_argument("--series", default=None,
                            help="write the JSON series dump here")
    export_cmd.add_argument("--trace", default=None,
                            help="write a Chrome trace (with Perfetto "
                                 "counter tracks) here")
    export_cmd.add_argument("--exclude", nargs="*", default=None,
                            help="metric names to omit (e.g. the "
                                 "nondeterministic stitch.host_seconds)")
    export_cmd.set_defaults(func=_cmd_export)

    health = sub.add_parser(
        "health", help="run and evaluate declarative health rules "
                       "into a structured report")
    _add_run_arguments(health)
    _add_sampler_arguments(health)
    health.add_argument("--rules", default=None,
                        help="rule file (one rule per line; default: "
                             "the built-in rule set)")
    health.add_argument("--json", default=None,
                        help="also write the HealthReport as JSON")
    health.add_argument("--trace", default=None,
                        help="also write a Chrome trace of the run")
    health.add_argument("--strict", action="store_true",
                        help="exit 1 unless the report is fully green")
    health.add_argument("--expect-firing", action="store_true",
                        help="exit 1 unless at least one rule fired "
                             "(CI chaos smoke)")
    health.set_defaults(func=_cmd_health)

    record = sub.add_parser(
        "record", help="run benchmarks and append entries to their "
                       "BENCH_<name>.json trajectories")
    record.add_argument("benchmarks", nargs="+",
                        choices=list(history_mod.BENCHMARKS))
    record.add_argument("--full", action="store_true",
                        help="full workload set (hostperf) instead of "
                             "the quick pair")
    record.add_argument("--note", default="",
                        help="free-form note stored in the entry")
    record.add_argument("--dir", default=None,
                        help="trajectory directory (default: repo root)")
    record.set_defaults(func=_cmd_record)

    compare = sub.add_parser(
        "compare", help="gate the latest (or a freshly collected) "
                        "entry against best-of-last-N")
    compare.add_argument("benchmarks", nargs="*",
                         help="benchmarks to compare (default: all "
                              "with trajectory files)")
    compare.add_argument("--run", action="store_true",
                         help="collect a fresh candidate instead of "
                              "using the last committed entry")
    compare.add_argument("--full", action="store_true")
    compare.add_argument("--window", type=int,
                         default=history_mod.DEFAULT_WINDOW)
    compare.add_argument("--max-regression", type=float,
                         default=history_mod.DEFAULT_MAX_REGRESSION,
                         help="fail when a gated metric is more than "
                              "this %% worse than the window best")
    compare.add_argument("--include-host", action="store_true",
                         help="also gate host wall-clock metrics "
                              "(same-machine comparisons only)")
    compare.add_argument("--json", default=None)
    compare.add_argument("--dir", default=None)
    compare.set_defaults(func=_cmd_compare)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
