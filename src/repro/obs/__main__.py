"""Observability CLI: break-even reports, traces, profiles.

Usage::

    python -m repro.obs report                     # Table 2, live, per region
    python -m repro.obs report --only calculator --json rows.json
    python -m repro.obs trace --workload calculator --out trace.json
    python -m repro.obs trace program.c --format jsonl --out trace.jsonl
    python -m repro.obs profile --workload "sparse"
    python -m repro.obs validate trace.json        # schema check (CI)
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from . import metrics, trace
from .breakeven import break_even_workload, rows_from_results
from .profiler import format_profile, profile_result


def _selected_workloads(only: Optional[List[str]], scale: float,
                        seed: Optional[int]):
    from ..bench.workloads import all_workloads
    selected = []
    for workload in all_workloads(scale=scale, seed=seed):
        if only and not any(sel.lower() in workload.name.lower()
                            for sel in only):
            continue
        selected.append(workload)
    return selected


def _cmd_report(args) -> int:
    from ..bench.reporting import format_breakeven
    workloads = _selected_workloads(args.only, args.scale, args.seed)
    if not workloads:
        print("no workload matches %r" % (args.only,), file=sys.stderr)
        return 1
    sections = []
    json_out = {}
    for workload in workloads:
        print("measuring %-30s %s ..."
              % (workload.name, workload.config), file=sys.stderr)
        try:
            rows = break_even_workload(workload,
                                       max_cycles=args.max_cycles)
        except Exception as exc:  # keep going; report the failure
            print("%-30s FAILED: %s: %s"
                  % (workload.name, type(exc).__name__, exc),
                  file=sys.stderr)
            continue
        title = "%s (%s)" % (workload.name, workload.config)
        sections.append(title + "\n" + format_breakeven(rows))
        json_out[workload.name] = [row.to_dict() for row in rows]
    if not sections:
        print("nothing measured", file=sys.stderr)
        return 1
    print()
    print("\n\n".join(sections))
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(json_out, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print("\nwrote %s" % args.json, file=sys.stderr)
    return 0


def _compile_and_run(args):
    """(program, result) for either --workload NAME or a source file."""
    from ..runtime.engine import compile_program
    if args.workload:
        selected = _selected_workloads([args.workload], 1.0, None)
        if not selected:
            raise SystemExit("no workload matches %r" % args.workload)
        workload = selected[0]
        print("workload: %s (%s)" % (workload.name, workload.config),
              file=sys.stderr)
        source = workload.source
        run_args: List[int] = []
    else:
        if not args.source:
            raise SystemExit("give a MiniC source file or --workload NAME")
        with open(args.source) as handle:
            source = handle.read()
        run_args = args.args
    program = compile_program(source, mode=args.mode)
    result = program.run(args=run_args, max_cycles=args.max_cycles)
    return program, result


def _cmd_trace(args) -> int:
    tracer = trace.Tracer()
    metrics.registry.enable()
    try:
        with trace.tracing(tracer):
            _, result = _compile_and_run(args)
    finally:
        metrics.registry.disable()
    out = args.out or "trace.json"
    if args.format == "jsonl":
        tracer.write_jsonl(out)
    else:
        tracer.write_chrome(out)
    errors = trace.validate_events(tracer.events)
    print("ran: value=%s cycles=%d; %d events (%d dropped) -> %s"
          % (result.value, result.cycles, len(tracer.events),
             tracer.dropped, out))
    if errors:
        for error in errors[:20]:
            print("schema error: %s" % error, file=sys.stderr)
        return 1
    if args.metrics:
        print()
        print(metrics.format_snapshot(metrics.registry.snapshot()))
    return 0


def _cmd_profile(args) -> int:
    _, result = _compile_and_run(args)
    print(format_profile(profile_result(result)))
    if getattr(result, "region_entries", None):
        rows = []
        if args.mode == "dynamic":
            # Per-entry economics need the static baseline too.
            from ..runtime.engine import compile_program
            if args.workload:
                source = _selected_workloads(
                    [args.workload], 1.0, None)[0].source
            else:
                with open(args.source) as handle:
                    source = handle.read()
            static = compile_program(source, mode="static")
            static_result = static.run(args=args.args if args.source
                                       else [],
                                       max_cycles=args.max_cycles)
            rows = rows_from_results(static_result, result)
        if rows:
            from ..bench.reporting import format_breakeven
            print()
            print(format_breakeven(rows))
    return 0


def _cmd_validate(args) -> int:
    try:
        events = trace.load_trace(args.trace_file)
    except (OSError, ValueError) as exc:
        print("cannot load %s: %s" % (args.trace_file, exc),
              file=sys.stderr)
        return 2
    errors = trace.validate_events(events)
    if errors:
        print("%s: INVALID (%d errors)" % (args.trace_file, len(errors)))
        for error in errors[:40]:
            print("  " + error)
        return 1
    print("%s: OK (%d events)" % (args.trace_file, len(events)))
    return 0


def _add_run_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("source", nargs="?", default=None,
                        help="MiniC source file (or use --workload)")
    parser.add_argument("--workload", default=None,
                        help="bench workload name (substring match)")
    parser.add_argument("--mode", choices=["dynamic", "static"],
                        default="dynamic")
    parser.add_argument("--args", nargs="*", type=int, default=[],
                        help="integer arguments for main()")
    parser.add_argument("--max-cycles", type=int, default=4_000_000_000)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Observability over the compile->stitch->execute "
                    "pipeline: break-even reports, traces, profiles.")
    sub = parser.add_subparsers(dest="command", required=True)

    report = sub.add_parser(
        "report", help="per-region break-even table over the bench "
                       "workloads (the paper's Table 2, live)")
    report.add_argument("--only", nargs="*", default=None,
                        help="workload-name filter (substring match)")
    report.add_argument("--scale", type=float, default=1.0)
    report.add_argument("--seed", type=int, default=None)
    report.add_argument("--json", default=None,
                        help="also write rows as JSON to this path")
    report.add_argument("--max-cycles", type=int, default=4_000_000_000)
    report.set_defaults(func=_cmd_report)

    trace_cmd = sub.add_parser(
        "trace", help="run a program or workload with tracing on and "
                      "dump the event trace")
    _add_run_arguments(trace_cmd)
    trace_cmd.add_argument("--out", default=None,
                           help="output path (default trace.json)")
    trace_cmd.add_argument("--format", choices=["chrome", "jsonl"],
                           default="chrome")
    trace_cmd.add_argument("--metrics", action="store_true",
                           help="also print the metrics snapshot")
    trace_cmd.set_defaults(func=_cmd_trace)

    profile = sub.add_parser(
        "profile", help="run and print the per-owner/per-region "
                        "simulated-cycle profile")
    _add_run_arguments(profile)
    profile.set_defaults(func=_cmd_profile)

    validate = sub.add_parser(
        "validate", help="schema-check a trace file (chrome or jsonl)")
    validate.add_argument("trace_file")
    validate.set_defaults(func=_cmd_validate)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
