"""Process-wide metrics registry: counters, gauges, histograms.

Zero-dependency, inspired by the Prometheus client model but built for
a simulator: instruments are cheap Python objects registered by name in
a process-wide :data:`registry`, and *every* mutating operation first
checks one plain attribute (``registry._enabled``), so the disabled
path costs a single attribute load and branch -- no dict lookups, no
allocation.  The registry ships disabled; ``repro.obs.enable_metrics``
(or ``MetricsRegistry.enable``) turns collection on.

Instrument naming convention: dot-separated, lowercase,
``<component>.<thing>[.<detail>]`` -- e.g. ``stitch.instrs_emitted``,
``cache.hits``, ``opt.fold.rewrites``.  The full inventory of metric
names emitted by the pipeline hooks lives in docs/OBSERVABILITY.md.

Labels: every instrument can be split into child series with
``labels(region=..., tier=..., policy=..., owner=...)``.  A label set
is frozen at creation (sorted ``(key, str(value))`` pairs); calling
``labels()`` with no arguments returns the parent itself, so the
unlabeled API is the empty label set.  Counter and histogram children
aggregate into their parent (the parent stays the total across all
label sets, which keeps every pre-label consumer working); gauge
children are independent (summing last-set values is meaningless).

Observer-effect contract: metrics (like tracing) live entirely on the
host side.  Enabling or disabling them never changes simulated cycles,
stitch reports, or any other VM observable -- the parity tests enforce
this bit-for-bit.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

Number = Union[int, float]

LabelKey = Tuple[Tuple[str, str], ...]

#: Default histogram bucket upper bounds.  Powers of 4 cover cycle-ish
#: magnitudes from single instructions to whole-region stitches; the
#: leading 0 is an underflow bucket so zero/negative observations don't
#: masquerade as single-cycle ones.
DEFAULT_BUCKETS = (0, 1, 4, 16, 64, 256, 1024, 4096, 16384, 65536, 262144)


class MetricError(Exception):
    """Instrument re-registered with a different type, or bad buckets."""


def _label_key(kv: Dict[str, object]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in kv.items()))


def format_labels(labelset: LabelKey) -> str:
    """``{k="v",...}`` rendering (empty string for the empty set)."""
    if not labelset:
        return ""
    return "{%s}" % ",".join('%s="%s"' % (k, v) for k, v in labelset)


class _LabeledMixin:
    """Shared child-series bookkeeping.

    Children live only on the parent (the instrument registered by
    name); a child's ``labelset`` is its frozen identity and its
    ``_parent`` points back.  ``labels()`` on a child is an error --
    nesting would silently split a series.
    """

    __slots__ = ()

    def labels(self, **kv):
        if not kv:
            return self
        if self._parent is not None:
            raise MetricError(
                "metric %s%s: labels() on a labeled child"
                % (self.name, format_labels(self.labelset)))
        key = _label_key(kv)
        children = self._children
        if children is None:
            children = self._children = {}
        child = children.get(key)
        if child is None:
            child = self._make_child(key)
            children[key] = child
        return child

    def _series_snapshots(self) -> Optional[List[Dict[str, object]]]:
        if not self._children:
            return None
        out = []
        for key in sorted(self._children):
            child = self._children[key]
            data = child.snapshot()
            data["labels"] = dict(key)
            out.append(data)
        return out

    def _reset_children(self) -> None:
        if self._children:
            for child in self._children.values():
                child.reset()


class Counter(_LabeledMixin):
    """Monotonically increasing count.  ``inc`` is a no-op while the
    owning registry is disabled."""

    __slots__ = ("name", "help", "_registry", "value", "labelset",
                 "_parent", "_children")

    kind = "counter"

    def __init__(self, registry: "MetricsRegistry", name: str,
                 help: str = "", labelset: LabelKey = (),
                 parent: Optional["Counter"] = None):
        self._registry = registry
        self.name = name
        self.help = help
        self.value = 0
        self.labelset = labelset
        self._parent = parent
        self._children: Optional[Dict[LabelKey, "Counter"]] = None

    def _make_child(self, key: LabelKey) -> "Counter":
        return Counter(self._registry, self.name, help=self.help,
                       labelset=key, parent=self)

    def inc(self, amount: Number = 1) -> None:
        if not self._registry._enabled:
            return
        if amount < 0:
            raise MetricError("counter %s cannot decrease" % self.name)
        self.value += amount
        parent = self._parent
        if parent is not None:
            parent.value += amount

    def snapshot(self) -> Dict[str, object]:
        data: Dict[str, object] = {"type": "counter", "value": self.value}
        series = self._series_snapshots()
        if series is not None:
            data["series"] = series
        return data

    def reset(self) -> None:
        self.value = 0
        self._reset_children()


class Gauge(_LabeledMixin):
    """A value that can go up and down (e.g. code-cache population).

    Gauge children are independent of the parent: the parent keeps
    whatever was last ``set``/``add``-ed on it directly.
    """

    __slots__ = ("name", "help", "_registry", "value", "labelset",
                 "_parent", "_children")

    kind = "gauge"

    def __init__(self, registry: "MetricsRegistry", name: str,
                 help: str = "", labelset: LabelKey = (),
                 parent: Optional["Gauge"] = None):
        self._registry = registry
        self.name = name
        self.help = help
        self.value = 0
        self.labelset = labelset
        self._parent = parent
        self._children: Optional[Dict[LabelKey, "Gauge"]] = None

    def _make_child(self, key: LabelKey) -> "Gauge":
        return Gauge(self._registry, self.name, help=self.help,
                     labelset=key, parent=self)

    def set(self, value: Number) -> None:
        if not self._registry._enabled:
            return
        self.value = value

    def add(self, amount: Number) -> None:
        if not self._registry._enabled:
            return
        self.value += amount

    def snapshot(self) -> Dict[str, object]:
        data: Dict[str, object] = {"type": "gauge", "value": self.value}
        series = self._series_snapshots()
        if series is not None:
            data["series"] = series
        return data

    def reset(self) -> None:
        self.value = 0
        self._reset_children()


class Histogram(_LabeledMixin):
    """Distribution summary: count / sum / min / max plus cumulative
    bucket counts (``le`` upper bounds, +Inf implicit).  Labeled
    children aggregate into the parent, so the parent remains the
    all-series distribution."""

    __slots__ = ("name", "help", "_registry", "buckets", "bucket_counts",
                 "count", "sum", "min", "max", "labelset", "_parent",
                 "_children")

    kind = "histogram"

    def __init__(self, registry: "MetricsRegistry", name: str,
                 help: str = "",
                 buckets: Sequence[Number] = DEFAULT_BUCKETS,
                 labelset: LabelKey = (),
                 parent: Optional["Histogram"] = None):
        bounds = tuple(buckets)
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise MetricError(
                "histogram %s buckets must be strictly increasing" % name)
        self._registry = registry
        self.name = name
        self.help = help
        self.buckets = bounds
        self.bucket_counts = [0] * (len(bounds) + 1)  # trailing +Inf
        self.count = 0
        self.sum = 0
        self.min: Optional[Number] = None
        self.max: Optional[Number] = None
        self.labelset = labelset
        self._parent = parent
        self._children: Optional[Dict[LabelKey, "Histogram"]] = None

    def _make_child(self, key: LabelKey) -> "Histogram":
        return Histogram(self._registry, self.name, help=self.help,
                         buckets=self.buckets, labelset=key, parent=self)

    def _record(self, value: Number) -> None:
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.bucket_counts[i] += 1
                return
        self.bucket_counts[-1] += 1

    def observe(self, value: Number) -> None:
        if not self._registry._enabled:
            return
        self._record(value)
        parent = self._parent
        if parent is not None:
            parent._record(value)

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def snapshot(self) -> Dict[str, object]:
        data: Dict[str, object] = {
            "type": "histogram",
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "buckets": {("le_%g" % b): c for b, c in
                        zip(self.buckets, self.bucket_counts)},
            "inf": self.bucket_counts[-1],
        }
        series = self._series_snapshots()
        if series is not None:
            data["series"] = series
        return data

    def reset(self) -> None:
        self.count = 0
        self.sum = 0
        self.min = None
        self.max = None
        self.bucket_counts = [0] * (len(self.buckets) + 1)
        self._reset_children()


Instrument = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """Names -> instruments; disabled (free) until :meth:`enable`.

    Instruments are created on first request and returned on every
    subsequent one; requesting an existing name as a different kind is
    an error (it would silently split a metric).  Creation works while
    disabled -- call sites can cache instruments at import time -- and
    updates start flowing the moment the registry is enabled.
    """

    def __init__(self) -> None:
        self._enabled = False
        self._instruments: Dict[str, Instrument] = {}

    # -- lifecycle ---------------------------------------------------------

    @property
    def enabled(self) -> bool:
        return self._enabled

    def enable(self) -> None:
        self._enabled = True

    def disable(self) -> None:
        self._enabled = False

    def reset(self) -> None:
        """Zero every instrument, labeled children included
        (registration is kept)."""
        for instrument in self._instruments.values():
            instrument.reset()

    def clear(self) -> None:
        """Drop every instrument (tests)."""
        self._instruments.clear()

    # -- instrument accessors ----------------------------------------------

    def _get(self, name: str, kind: type, **kwargs) -> Instrument:
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = kind(self, name, **kwargs)
            self._instruments[name] = instrument
        elif not isinstance(instrument, kind):
            raise MetricError(
                "metric %r already registered as %s, not %s"
                % (name, instrument.kind, kind.kind))
        return instrument

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get(name, Counter, help=help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get(name, Gauge, help=help)

    def histogram(self, name: str, help: str = "",
                  buckets: Sequence[Number] = DEFAULT_BUCKETS) -> Histogram:
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = Histogram(self, name, help=help, buckets=buckets)
            self._instruments[name] = instrument
        elif not isinstance(instrument, Histogram):
            raise MetricError(
                "metric %r already registered as %s, not histogram"
                % (name, instrument.kind))
        return instrument

    # -- reporting ---------------------------------------------------------

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Point-in-time values of every registered instrument."""
        return {name: inst.snapshot()
                for name, inst in sorted(self._instruments.items())}

    def instruments(self) -> List[Instrument]:
        """Every parent instrument, name-sorted (samplers iterate this)."""
        return [self._instruments[name] for name in sorted(self._instruments)]

    def names(self) -> List[str]:
        return sorted(self._instruments)


def _format_series_labels(labels: Dict[str, str]) -> str:
    return format_labels(tuple(sorted(labels.items())))


def format_snapshot(snap: Dict[str, Dict[str, object]]) -> str:
    """Human-readable one-line-per-metric rendering of a snapshot.

    Deterministic: metric names sort lexicographically and labeled
    series sort by their (already-sorted) label pairs under the parent
    total.
    """
    lines = []

    def emit(name: str, data: Dict[str, object]) -> None:
        if data["type"] == "histogram":
            lines.append(
                "%-40s count=%d sum=%s min=%s max=%s"
                % (name, data["count"], data["sum"], data["min"],
                   data["max"]))
        else:
            lines.append("%-40s %s" % (name, data["value"]))

    for name, data in sorted(snap.items()):
        emit(name, data)
        for series in data.get("series", ()):
            emit(name + _format_series_labels(series["labels"]), series)
    return "\n".join(lines)


#: The process-wide registry every pipeline hook reports into.
registry = MetricsRegistry()
