"""Process-wide metrics registry: counters, gauges, histograms.

Zero-dependency, inspired by the Prometheus client model but built for
a simulator: instruments are cheap Python objects registered by name in
a process-wide :data:`registry`, and *every* mutating operation first
checks one plain attribute (``registry._enabled``), so the disabled
path costs a single attribute load and branch -- no dict lookups, no
allocation.  The registry ships disabled; ``repro.obs.enable_metrics``
(or ``MetricsRegistry.enable``) turns collection on.

Instrument naming convention: dot-separated, lowercase,
``<component>.<thing>[.<detail>]`` -- e.g. ``stitch.instrs_emitted``,
``cache.hits``, ``opt.fold.rewrites``.  The full inventory of metric
names emitted by the pipeline hooks lives in docs/OBSERVABILITY.md.

Observer-effect contract: metrics (like tracing) live entirely on the
host side.  Enabling or disabling them never changes simulated cycles,
stitch reports, or any other VM observable -- the parity tests enforce
this bit-for-bit.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

Number = Union[int, float]

#: Default histogram bucket upper bounds (powers of 4 cover cycle-ish
#: magnitudes from single instructions to whole-region stitches).
DEFAULT_BUCKETS = (1, 4, 16, 64, 256, 1024, 4096, 16384, 65536, 262144)


class MetricError(Exception):
    """Instrument re-registered with a different type, or bad buckets."""


class Counter:
    """Monotonically increasing count.  ``inc`` is a no-op while the
    owning registry is disabled."""

    __slots__ = ("name", "help", "_registry", "value")

    kind = "counter"

    def __init__(self, registry: "MetricsRegistry", name: str,
                 help: str = ""):
        self._registry = registry
        self.name = name
        self.help = help
        self.value = 0

    def inc(self, amount: Number = 1) -> None:
        if not self._registry._enabled:
            return
        if amount < 0:
            raise MetricError("counter %s cannot decrease" % self.name)
        self.value += amount

    def snapshot(self) -> Dict[str, Number]:
        return {"type": "counter", "value": self.value}

    def reset(self) -> None:
        self.value = 0


class Gauge:
    """A value that can go up and down (e.g. code-cache population)."""

    __slots__ = ("name", "help", "_registry", "value")

    kind = "gauge"

    def __init__(self, registry: "MetricsRegistry", name: str,
                 help: str = ""):
        self._registry = registry
        self.name = name
        self.help = help
        self.value = 0

    def set(self, value: Number) -> None:
        if not self._registry._enabled:
            return
        self.value = value

    def add(self, amount: Number) -> None:
        if not self._registry._enabled:
            return
        self.value += amount

    def snapshot(self) -> Dict[str, Number]:
        return {"type": "gauge", "value": self.value}

    def reset(self) -> None:
        self.value = 0


class Histogram:
    """Distribution summary: count / sum / min / max plus cumulative
    bucket counts (``le`` upper bounds, +Inf implicit)."""

    __slots__ = ("name", "help", "_registry", "buckets", "bucket_counts",
                 "count", "sum", "min", "max")

    kind = "histogram"

    def __init__(self, registry: "MetricsRegistry", name: str,
                 help: str = "",
                 buckets: Sequence[Number] = DEFAULT_BUCKETS):
        bounds = tuple(buckets)
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise MetricError(
                "histogram %s buckets must be strictly increasing" % name)
        self._registry = registry
        self.name = name
        self.help = help
        self.buckets = bounds
        self.bucket_counts = [0] * (len(bounds) + 1)  # trailing +Inf
        self.count = 0
        self.sum = 0
        self.min: Optional[Number] = None
        self.max: Optional[Number] = None

    def observe(self, value: Number) -> None:
        if not self._registry._enabled:
            return
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.bucket_counts[i] += 1
                return
        self.bucket_counts[-1] += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def snapshot(self) -> Dict[str, object]:
        return {
            "type": "histogram",
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "buckets": {("le_%g" % b): c for b, c in
                        zip(self.buckets, self.bucket_counts)},
            "inf": self.bucket_counts[-1],
        }

    def reset(self) -> None:
        self.count = 0
        self.sum = 0
        self.min = None
        self.max = None
        self.bucket_counts = [0] * (len(self.buckets) + 1)


Instrument = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """Names -> instruments; disabled (free) until :meth:`enable`.

    Instruments are created on first request and returned on every
    subsequent one; requesting an existing name as a different kind is
    an error (it would silently split a metric).  Creation works while
    disabled -- call sites can cache instruments at import time -- and
    updates start flowing the moment the registry is enabled.
    """

    def __init__(self) -> None:
        self._enabled = False
        self._instruments: Dict[str, Instrument] = {}

    # -- lifecycle ---------------------------------------------------------

    @property
    def enabled(self) -> bool:
        return self._enabled

    def enable(self) -> None:
        self._enabled = True

    def disable(self) -> None:
        self._enabled = False

    def reset(self) -> None:
        """Zero every instrument (registration is kept)."""
        for instrument in self._instruments.values():
            instrument.reset()

    def clear(self) -> None:
        """Drop every instrument (tests)."""
        self._instruments.clear()

    # -- instrument accessors ----------------------------------------------

    def _get(self, name: str, kind: type, **kwargs) -> Instrument:
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = kind(self, name, **kwargs)
            self._instruments[name] = instrument
        elif not isinstance(instrument, kind):
            raise MetricError(
                "metric %r already registered as %s, not %s"
                % (name, instrument.kind, kind.kind))
        return instrument

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get(name, Counter, help=help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get(name, Gauge, help=help)

    def histogram(self, name: str, help: str = "",
                  buckets: Sequence[Number] = DEFAULT_BUCKETS) -> Histogram:
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = Histogram(self, name, help=help, buckets=buckets)
            self._instruments[name] = instrument
        elif not isinstance(instrument, Histogram):
            raise MetricError(
                "metric %r already registered as %s, not histogram"
                % (name, instrument.kind))
        return instrument

    # -- reporting ---------------------------------------------------------

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Point-in-time values of every registered instrument."""
        return {name: inst.snapshot()
                for name, inst in sorted(self._instruments.items())}

    def names(self) -> List[str]:
        return sorted(self._instruments)


def format_snapshot(snap: Dict[str, Dict[str, object]]) -> str:
    """Human-readable one-line-per-metric rendering of a snapshot."""
    lines = []
    for name, data in sorted(snap.items()):
        if data["type"] == "histogram":
            lines.append(
                "%-40s count=%d sum=%s min=%s max=%s"
                % (name, data["count"], data["sum"], data["min"],
                   data["max"]))
        else:
            lines.append("%-40s %s" % (name, data["value"]))
    return "\n".join(lines)


#: The process-wide registry every pipeline hook reports into.
registry = MetricsRegistry()
