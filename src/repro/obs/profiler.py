"""VM profiler: per-owner / per-region simulated-cycle profiles.

The RVM's predecoded threaded dispatch keeps its accounting in
per-owner counter cells (see :mod:`repro.machine.vm`); this module
turns those cells -- via :meth:`VM.owner_snapshot` or an already
returned :class:`~repro.runtime.engine.RunResult` -- into structured
profiles: cycles and instruction counts grouped by owner *kind*
(function body, region set-up, stitched code, stitcher, dispatch glue,
static-mode region body) and aggregated per dynamic region.

Owner-tag grammar (assigned by the lowerer, the loader and the
stitcher)::

    fn:<function>                 ordinary function body
    setup:<function>:<region>     region set-up code (fills the table)
    dispatch:<function>:<region>  cache lookup / enter glue
    template:<function>:<region>  in-image templates (never executed)
    stitched:<function>:<region>  dynamically generated region code
    stitcher:<function>:<region>  the dynamic compiler's own work
    fallback:<function>:<region>  static fallback tier (degraded entries)
    region:<function>:<region>    region body in static (baseline) mode

Everything here is read-only over completed accounting: profiling a
run does not perturb it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

#: Owner-kind display order for profile reports.
KIND_ORDER = ["fn", "setup", "dispatch", "stitched", "stitcher",
              "fallback", "region", "template", "other"]

RegionKey = Tuple[str, int]


def parse_owner(owner: str) -> Tuple[str, Optional[RegionKey]]:
    """``"stitched:spmv:1"`` -> ``("stitched", ("spmv", 1))``."""
    parts = owner.split(":")
    if len(parts) == 3 and parts[0] in ("setup", "dispatch", "stitched",
                                        "stitcher", "fallback", "region",
                                        "template"):
        try:
            return parts[0], (parts[1], int(parts[2]))
        except ValueError:
            return "other", None
    if len(parts) == 2 and parts[0] == "fn":
        return "fn", None
    return "other", None


@dataclass
class RegionProfile:
    """Simulated-cycle breakdown of one dynamic region."""

    func_name: str
    region_id: int
    #: owner kind -> (cycles, instrs).
    by_kind: Dict[str, Tuple[int, int]] = field(default_factory=dict)
    #: region entries (cache lookups) observed by the runtime, if known.
    entries: Optional[int] = None

    def cycles(self, kind: str) -> int:
        return self.by_kind.get(kind, (0, 0))[0]

    @property
    def total_cycles(self) -> int:
        return sum(c for c, _ in self.by_kind.values())

    @property
    def per_entry_cycles(self) -> Optional[float]:
        """Steady-state cost per entry: stitched + dispatch cycles
        divided by entry count (None when entries are unknown)."""
        if not self.entries:
            return None
        return (self.cycles("stitched") + self.cycles("dispatch")) \
            / self.entries


@dataclass
class Profile:
    """A whole run's owner-cell accounting, structured."""

    #: owner tag -> (cycles, instrs), verbatim from the counter cells.
    owners: Dict[str, Tuple[int, int]]
    #: owner kind -> (cycles, instrs) totals.
    by_kind: Dict[str, Tuple[int, int]]
    regions: Dict[RegionKey, RegionProfile]
    op_counts: Dict[str, int] = field(default_factory=dict)
    total_cycles: int = 0

    def top_ops(self, n: int = 10) -> List[Tuple[str, int]]:
        return sorted(self.op_counts.items(), key=lambda kv: -kv[1])[:n]


def profile_owner_cells(
        owners_cycles: Mapping[str, int],
        owners_instrs: Mapping[str, int],
        op_counts: Optional[Mapping[str, int]] = None,
        region_entries: Optional[Mapping[RegionKey, int]] = None,
) -> Profile:
    """Build a :class:`Profile` from raw owner-cell snapshots."""
    owners: Dict[str, Tuple[int, int]] = {}
    for owner in set(owners_cycles) | set(owners_instrs):
        owners[owner] = (owners_cycles.get(owner, 0),
                         owners_instrs.get(owner, 0))
    by_kind: Dict[str, Tuple[int, int]] = {}
    regions: Dict[RegionKey, RegionProfile] = {}
    for owner, (cycles, instrs) in owners.items():
        kind, region_key = parse_owner(owner)
        kc, ki = by_kind.get(kind, (0, 0))
        by_kind[kind] = (kc + cycles, ki + instrs)
        if region_key is not None:
            region = regions.get(region_key)
            if region is None:
                region = regions[region_key] = RegionProfile(
                    region_key[0], region_key[1])
            rc, ri = region.by_kind.get(kind, (0, 0))
            region.by_kind[kind] = (rc + cycles, ri + instrs)
    if region_entries:
        for key, count in region_entries.items():
            region = regions.get(key)
            if region is None:
                region = regions[key] = RegionProfile(key[0], key[1])
            region.entries = count
    return Profile(
        owners=owners,
        by_kind=by_kind,
        regions=regions,
        op_counts=dict(op_counts or {}),
        total_cycles=sum(c for c, _ in owners.values()),
    )


def profile_result(result) -> Profile:
    """Profile a :class:`~repro.runtime.engine.RunResult`."""
    return profile_owner_cells(
        result.cycles_by_owner, result.instrs_by_owner,
        op_counts=result.op_counts,
        region_entries=getattr(result, "region_entries", None))


def profile_vm(vm) -> Profile:
    """Profile a VM in place, straight from its live counter cells."""
    cycles, instrs = vm.owner_snapshot()
    return profile_owner_cells(cycles, instrs, op_counts=vm.op_counts)


def format_profile(profile: Profile, top_owners: int = 12) -> str:
    """Text rendering: kind totals, region table, hottest owners."""
    lines = ["simulated-cycle profile (total %d cycles)"
             % profile.total_cycles,
             "", "%-12s %14s %12s %7s" % ("kind", "cycles", "instrs",
                                          "share")]
    total = max(1, profile.total_cycles)
    for kind in KIND_ORDER:
        if kind not in profile.by_kind:
            continue
        cycles, instrs = profile.by_kind[kind]
        lines.append("%-12s %14d %12d %6.1f%%"
                     % (kind, cycles, instrs, 100.0 * cycles / total))
    if profile.regions:
        lines.append("")
        lines.append("%-24s %9s %12s %10s %10s %10s %12s"
                     % ("region", "entries", "stitched", "dispatch",
                        "setup", "stitcher", "cyc/entry"))
        for key in sorted(profile.regions):
            region = profile.regions[key]
            per_entry = region.per_entry_cycles
            lines.append(
                "%-24s %9s %12d %10d %10d %10d %12s"
                % ("%s:%d" % key,
                   region.entries if region.entries is not None else "-",
                   region.cycles("stitched"), region.cycles("dispatch"),
                   region.cycles("setup"), region.cycles("stitcher"),
                   "%.1f" % per_entry if per_entry is not None else "-"))
    hot = sorted(profile.owners.items(), key=lambda kv: -kv[1][0])
    lines.append("")
    lines.append("hottest owners:")
    for owner, (cycles, instrs) in hot[:top_owners]:
        lines.append("  %-32s %12d cycles %10d instrs"
                     % (owner, cycles, instrs))
    return "\n".join(lines)
