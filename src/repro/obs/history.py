"""The perf-trajectory flight recorder: record + compare benchmarks.

Each supported benchmark (``hostperf``, ``cachepressure``,
``tiering``, ``stitchqueue``) appends timestamped entries to a
``BENCH_<name>.json``
trajectory file (for hostperf, the existing ``BENCH_hostperf.json``
gains a ``"trajectory"`` key next to its baseline/current snapshots).
An entry is ``{"recorded_at", "meta", "rows"}`` where ``rows`` maps a
stable row name (workload or sweep cell) to its measured metrics.

``compare`` gates a candidate entry -- either freshly collected
(``--run``) or the latest committed one -- against the *best* value
of each gated metric over the previous ``window`` entries
(best-of-last-5 by default), failing when the candidate regresses by
more than ``max_regression`` percent.

Gated metrics are simulated-cycle observables by default: they are
bit-deterministic, so the gate holds exactly on any machine.  Host
wall-clock metrics (``*_s`` seconds) are recorded in every entry but
only gated when ``include_host`` is set, since comparing seconds
across different machines is noise, not signal.

CLI surface: ``python -m repro.obs record|compare`` (see
``repro.obs.__main__``).
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

#: Benchmark name -> gated metrics as (metric, direction, is_host):
#: direction "lower" means smaller is better.  Non-gated row metrics
#: still ride along in every entry for inspection.
GATES: Dict[str, Tuple[Tuple[str, str, bool], ...]] = {
    "hostperf": (
        ("simulated_cycles", "lower", False),
        ("steady_run_s", "lower", True),
        ("first_run_s", "lower", True),
        ("compile_s", "lower", True),
    ),
    "cachepressure": (
        ("restitch_cycles", "lower", False),
        ("hit_rate", "higher", False),
        ("evictions", "lower", False),
    ),
    "tiering": (
        ("tiered_cycles", "lower", False),
        ("eager_cycles", "lower", False),
        ("tiered_stitches", "lower", False),
    ),
    "stitchqueue": (
        ("async_cycles", "lower", False),
        ("latency_median", "lower", False),
        ("shed", "lower", False),
        ("completed_cycles", "lower", False),
    ),
}

BENCHMARKS = tuple(sorted(GATES))

DEFAULT_WINDOW = 5
DEFAULT_MAX_REGRESSION = 10.0


class HistoryError(Exception):
    """Unknown benchmark, missing trajectory, or malformed file."""


# -- trajectory files ------------------------------------------------------

def default_dir() -> Path:
    """Where ``BENCH_<name>.json`` files live: $REPRO_BENCH_DIR, else
    the repo root (the directory holding pyproject.toml above this
    file), else the current directory."""
    env = os.environ.get("REPRO_BENCH_DIR")
    if env:
        return Path(env)
    here = Path(__file__).resolve()
    for parent in here.parents:
        if (parent / "pyproject.toml").exists():
            return parent
    return Path.cwd()


def trajectory_path(benchmark: str,
                    directory: Optional[Path] = None) -> Path:
    if benchmark not in GATES:
        raise HistoryError("unknown benchmark %r (know: %s)"
                           % (benchmark, ", ".join(BENCHMARKS)))
    base = directory if directory is not None else default_dir()
    return Path(base) / ("BENCH_%s.json" % benchmark)


def load_document(path: Path) -> Dict[str, object]:
    if not Path(path).exists():
        return {"schema": 1}
    try:
        document = json.loads(Path(path).read_text())
    except ValueError as exc:
        raise HistoryError("%s: not JSON (%s)" % (path, exc))
    if not isinstance(document, dict):
        raise HistoryError("%s: top level must be an object" % path)
    return document


def load_trajectory(path: Path) -> List[Dict[str, object]]:
    trajectory = load_document(path).get("trajectory", [])
    if not isinstance(trajectory, list):
        raise HistoryError("%s: trajectory must be an array" % path)
    return trajectory


def append_entry(path: Path, entry: Dict[str, object]) -> None:
    """Append one trajectory entry, preserving any sibling keys the
    file already carries (e.g. hostperf's baseline/current)."""
    document = load_document(path)
    trajectory = document.setdefault("trajectory", [])
    if not isinstance(trajectory, list):
        raise HistoryError("%s: trajectory must be an array" % path)
    trajectory.append(entry)
    Path(path).write_text(
        json.dumps(document, indent=2, sort_keys=True) + "\n")


def make_entry(rows: Dict[str, Dict[str, object]],
               note: str = "") -> Dict[str, object]:
    entry: Dict[str, object] = {
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "rows": rows,
    }
    if note:
        entry["note"] = note
    return entry


# -- collectors ------------------------------------------------------------

def _collect_hostperf(quick: bool = True,
                      steady_runs: int = 3) -> Dict[str, Dict[str, object]]:
    """Compile/first/steady host seconds + simulated cycles for the
    Table 2 workloads (the quick pair by default).

    Every workload is measured under both execution backends: the
    historical row name carries the default ``rvm`` numbers (keeping
    the trajectory comparable across entries that predate the backend
    seam) and a ``<name>@pycode`` sibling row tracks the
    closure-composition backend.  ``simulated_cycles`` is gated on
    both, so a backend that drifts from the bit-identical contract
    trips the flight recorder, not just the test suite."""
    from ..bench.workloads import (
        calculator_workload, sparse_matvec_workload, scalar_matrix_workload,
        event_dispatcher_workload, record_sorter_workload,
    )
    from ..runtime.engine import compile_program

    workloads: List[Tuple[str, Callable]] = [
        ("calculator", calculator_workload),
        ("sparse_matvec_small",
         lambda: sparse_matvec_workload(size=12, per_row=3)),
    ]
    if not quick:
        workloads += [
            ("scalar_matrix", scalar_matrix_workload),
            ("sparse_matvec_large",
             lambda: sparse_matvec_workload(size=24, per_row=5)),
            ("event_dispatcher", event_dispatcher_workload),
            ("record_sorter_1key",
             lambda: record_sorter_workload(keys=[(0, 0)])),
            ("record_sorter_2key",
             lambda: record_sorter_workload(keys=[(2, 1), (0, 2)])),
        ]

    rows: Dict[str, Dict[str, object]] = {}
    for name, builder in workloads:
        workload = builder()
        for backend in ("rvm", "pycode"):
            t0 = time.perf_counter()
            program = compile_program(workload.source, mode="dynamic",
                                      backend=backend)
            compile_s = time.perf_counter() - t0
            t0 = time.perf_counter()
            first = program.run()
            first_run_s = time.perf_counter() - t0
            steady = []
            for _ in range(max(1, steady_runs)):
                t0 = time.perf_counter()
                program.run()
                steady.append(time.perf_counter() - t0)
            key = name if backend == "rvm" else "%s@%s" % (name, backend)
            rows[key] = {
                "compile_s": round(compile_s, 6),
                "first_run_s": round(first_run_s, 6),
                "steady_run_s": round(min(steady), 6),
                "simulated_cycles": first.cycles,
            }
    return rows


#: (executions, cardinality, policy, capacity) cache-pressure cells --
#: bounded caches under enough key pressure to force evictions.
_PRESSURE_CELLS = (
    (200, 8, "lru", 4),
    (200, 16, "lru", 4),
    (200, 8, "lru", 2),
    (200, 8, "cost-aware", 4),
)


def _collect_cachepressure(**_kw) -> Dict[str, Dict[str, object]]:
    from ..bench.cachepressure import (
        DEFAULT_SEED, compile_pressure_program, run_cell,
    )
    from ..codecache import CacheConfig

    program = compile_pressure_program()
    rows: Dict[str, Dict[str, object]] = {}
    for executions, cardinality, policy, capacity in _PRESSURE_CELLS:
        config = CacheConfig(policy=policy, max_entries=capacity)
        cell = run_cell(program, executions, cardinality, config,
                        seed=DEFAULT_SEED)
        name = "n=%d card=%d %s cap=%d" % (executions, cardinality,
                                           policy, capacity)
        rows[name] = {
            "hit_rate": round(float(cell["hit_rate"]), 6),
            "stitches": cell["stitches"],
            "restitches": cell["restitches"],
            "restitch_cycles": cell["restitch_cycles"],
            "evictions": cell["evictions"],
            "compactions": cell["compactions"],
        }
    return rows


#: (executions, cardinality, seed) tiering cells, mirroring
#: benchmarks/bench_tiering.py.
_TIERING_CELLS = (
    (120, 8, None),
    (160, 12, None),
    (120, 8, 23),
)


def _collect_tiering(tier_spec: str = "breakeven",
                     **_kw) -> Dict[str, Dict[str, object]]:
    from ..bench.cachepressure import DEFAULT_SEED, compile_pressure_program

    program = compile_pressure_program()
    rows: Dict[str, Dict[str, object]] = {}
    for executions, cardinality, seed in _TIERING_CELLS:
        seed = DEFAULT_SEED if seed is None else seed
        args = [executions, cardinality, seed]
        eager = program.run("main", list(args))
        tiered = program.run("main", list(args), tier=tier_spec)
        if tiered.value != eager.value:
            raise AssertionError(
                "tiered run changed the result: %r != %r (cell %r)"
                % (tiered.value, eager.value, args))
        name = "n=%d card=%d seed=%d" % (executions, cardinality, seed)
        rows[name] = {
            "eager_cycles": eager.cycles,
            "tiered_cycles": tiered.cycles,
            "eager_stitches": len(eager.stitch_reports),
            "tiered_stitches": len(tiered.stitch_reports),
            "cold_entries": len(tiered.cold_entries),
            "promotions": sum(s["promotions"]
                              for s in tiered.tier_stats.values()),
        }
    return rows


def _collect_stitchqueue(**_kw) -> Dict[str, Dict[str, object]]:
    """The async-stitching cells plus the hang gate, straight from
    :mod:`repro.bench.stitchqueue` (the same measurement core the
    ``benchmarks/bench_stitchqueue.py`` CI gate runs).  The hang gate
    must pass before anything is recorded: a trajectory entry from a
    wedged or silently-degraded run would poison the baseline pool."""
    from ..bench.stitchqueue import check_hang, hang_gate, measure

    rows: Dict[str, Dict[str, object]] = {}
    for cell in measure():
        name = str(cell.pop("cell"))
        rows[name] = cell
    hang = hang_gate()
    problems = check_hang(hang)
    if problems:
        raise AssertionError("stitch-queue hang gate failed: "
                             + "; ".join(problems))
    rows["hang gate"] = {
        "completed_cycles": hang["completed_cycles"],
        "hung": hang["hung"],
        "expired": hang["expired"],
        "breaker_trips": hang["breaker_trips"],
    }
    return rows


_COLLECTORS: Dict[str, Callable[..., Dict[str, Dict[str, object]]]] = {
    "hostperf": _collect_hostperf,
    "cachepressure": _collect_cachepressure,
    "tiering": _collect_tiering,
    "stitchqueue": _collect_stitchqueue,
}


def collect(benchmark: str, quick: bool = True) -> Dict[str, Dict[str, object]]:
    """Run ``benchmark`` once and return its trajectory rows."""
    if benchmark not in _COLLECTORS:
        raise HistoryError("unknown benchmark %r (know: %s)"
                           % (benchmark, ", ".join(BENCHMARKS)))
    return _COLLECTORS[benchmark](quick=quick)


def record(benchmark: str, directory: Optional[Path] = None,
           quick: bool = True, note: str = "") -> Path:
    """Collect one entry and append it to the trajectory file."""
    rows = collect(benchmark, quick=quick)
    path = trajectory_path(benchmark, directory)
    append_entry(path, make_entry(rows, note=note))
    return path


# -- comparison ------------------------------------------------------------

@dataclass
class MetricDelta:
    row: str
    metric: str
    direction: str
    host: bool
    best: float
    candidate: float
    delta_pct: float          # positive == worse
    gated: bool
    regressed: bool

    def to_dict(self) -> Dict[str, object]:
        return {"row": self.row, "metric": self.metric,
                "direction": self.direction, "host": self.host,
                "best": self.best, "candidate": self.candidate,
                "delta_pct": round(self.delta_pct, 3),
                "gated": self.gated, "regressed": self.regressed}


@dataclass
class Comparison:
    benchmark: str
    window: int
    max_regression: float
    baseline_entries: int
    deltas: List[MetricDelta] = field(default_factory=list)
    note: str = ""

    @property
    def regressions(self) -> List[MetricDelta]:
        return [d for d in self.deltas if d.regressed]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def to_dict(self) -> Dict[str, object]:
        return {"benchmark": self.benchmark, "window": self.window,
                "max_regression_pct": self.max_regression,
                "baseline_entries": self.baseline_entries,
                "ok": self.ok, "note": self.note,
                "deltas": [d.to_dict() for d in self.deltas]}


def require_trajectory(benchmark: str,
                       directory: Optional[Path] = None) -> Path:
    """The benchmark's trajectory path, or a one-line
    :class:`HistoryError` telling the user how to create it when the
    file is missing or holds no entries yet."""
    path = trajectory_path(benchmark, directory)
    if not Path(path).exists():
        raise HistoryError(
            "%s: no trajectory file -- record a baseline first with "
            "`python -m repro.obs record %s`" % (path, benchmark))
    if not load_trajectory(path):
        raise HistoryError(
            "%s: trajectory is empty -- record a baseline first with "
            "`python -m repro.obs record %s`" % (path, benchmark))
    return path


def compare(benchmark: str,
            directory: Optional[Path] = None,
            candidate_rows: Optional[Dict[str, Dict[str, object]]] = None,
            window: int = DEFAULT_WINDOW,
            max_regression: float = DEFAULT_MAX_REGRESSION,
            include_host: bool = False) -> Comparison:
    """Gate a candidate against best-of-last-``window`` entries.

    Without ``candidate_rows`` the latest committed entry is the
    candidate and the entries before it are the baseline pool; with
    fresh rows (``record --run``-style), every committed entry is
    eligible baseline.
    """
    path = require_trajectory(benchmark, directory)
    trajectory = load_trajectory(path)
    if candidate_rows is None:
        candidate_rows = trajectory[-1].get("rows", {})
        pool = trajectory[:-1]
    else:
        pool = trajectory
    pool = pool[-window:]

    result = Comparison(benchmark=benchmark, window=window,
                        max_regression=max_regression,
                        baseline_entries=len(pool))
    if not pool:
        result.note = ("no baseline entries yet (trajectory has %d "
                       "entries); nothing to gate" % len(trajectory))
        return result

    for metric, direction, host in GATES[benchmark]:
        gated = not host or include_host
        for row_name in sorted(candidate_rows):
            row = candidate_rows[row_name]
            if metric not in row:
                continue
            baseline_values = [
                float(entry["rows"][row_name][metric])
                for entry in pool
                if row_name in entry.get("rows", {})
                and metric in entry["rows"][row_name]]
            if not baseline_values:
                continue
            best = (min(baseline_values) if direction == "lower"
                    else max(baseline_values))
            candidate = float(row[metric])
            if best == 0:
                delta_pct = 0.0 if candidate == 0 else float("inf")
            elif direction == "lower":
                delta_pct = (candidate - best) / best * 100.0
            else:
                delta_pct = (best - candidate) / best * 100.0
            regressed = gated and delta_pct > max_regression
            result.deltas.append(MetricDelta(
                row=row_name, metric=metric, direction=direction,
                host=host, best=best, candidate=candidate,
                delta_pct=delta_pct, gated=gated, regressed=regressed))
    return result


def format_comparison(comparison: Comparison) -> str:
    lines = ["%s: %s (gate %.1f%%, best-of-last-%d, %d baseline entries)"
             % (comparison.benchmark,
                "OK" if comparison.ok else "REGRESSED",
                comparison.max_regression, comparison.window,
                comparison.baseline_entries)]
    if comparison.note:
        lines.append("  " + comparison.note)
    for delta in comparison.deltas:
        marker = "!!" if delta.regressed else \
            ("--" if not delta.gated else "ok")
        lines.append(
            "  [%s] %-28s %-18s best=%-12g now=%-12g %+.2f%%"
            % (marker, delta.row, delta.metric, delta.best,
               delta.candidate, delta.delta_pct))
    return "\n".join(lines)
