"""Break-even reporting: the paper's Table 2, live, per region.

Section 5 of "Fast, Effective Dynamic Compilation" evaluates the
system with three numbers per benchmark: the *asymptotic speedup* of
dynamically compiled code over statically compiled code, the one-time
*dynamic compilation overhead* (set-up code + stitcher, also expressed
in cycles per stitched instruction), and the *break-even point* -- how
many executions of the region it takes for the saved cycles to repay
the overhead.  This module computes exactly those numbers for **every
dynamic region of any program**, from a pair of instrumented runs:

* the *static* run charges each region body to ``region:<f>:<r>``;
* the *dynamic* run splits the same work into ``stitched:<f>:<r>``
  (generated-code executions), ``dispatch:<f>:<r>`` (cache lookup and
  entry glue), ``setup:<f>:<r>`` (table-filling set-up code) and
  ``stitcher:<f>:<r>`` (the dynamic compiler itself);
* the region runtime counts real region entries and code-cache
  hits/misses, so per-execution figures divide by what actually ran
  (not by a workload's declared execution count).

Terminology mapping to the paper (docs/OBSERVABILITY.md has the full
table): ``overhead == setup + stitcher`` ("set-up & stitcher"
columns), ``speedup == static_per_exec / dynamic_per_exec``
("asymptotic speedup"), ``breakeven_runs == ceil(overhead /
(static_per_exec - dynamic_per_exec))`` ("breakeven point"),
``cycles_per_stitched_instr == overhead / instrs_stitched``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

Number = float

RegionKey = Tuple[str, int]


@dataclass
class BreakEvenRow:
    """Break-even economics of one dynamic region."""

    func_name: str
    region_id: int
    #: Region entries observed in the dynamic run (cache hits + misses).
    executions: int
    #: Stitches performed (== cache misses).
    stitches: int
    #: Code-cache hits (reused previously stitched code).
    cache_hits: int
    #: Static-baseline cycles spent in the region body, whole run.
    static_cycles: int
    #: Dynamic-run cycles in stitched code, whole run.
    stitched_cycles: int
    #: Dynamic-run cycles in lookup/enter glue, whole run.
    dispatch_cycles: int
    #: One-time set-up code cycles (table filling).
    setup_cycles: int
    #: One-time stitcher (dynamic compiler) cycles.
    stitcher_cycles: int
    #: Total instructions emitted by stitches of this region.
    instrs_stitched: int
    #: Region entries the tiering policy served cold (0 for eager runs).
    cold_entries: int = 0
    #: The tier controller's predicted break-even entry count (the
    #: smallest prediction across the region's keys), when the dynamic
    #: run was adaptive and a prediction was made; None otherwise.
    #: Comparing it with the measured :attr:`breakeven_runs` is the
    #: report's predicted-vs-actual amortization check.
    predicted_breakeven: Optional[int] = None

    # -- derived (the paper's Section 5 quantities) -----------------------

    @property
    def static_per_exec(self) -> float:
        return self.static_cycles / max(1, self.executions)

    @property
    def dynamic_per_exec(self) -> float:
        return (self.stitched_cycles + self.dispatch_cycles) \
            / max(1, self.executions)

    @property
    def saved_per_exec(self) -> float:
        """Cycles saved each time the stitched code runs instead of the
        static code (negative when dynamic is slower)."""
        return self.static_per_exec - self.dynamic_per_exec

    @property
    def speedup(self) -> float:
        if self.dynamic_per_exec == 0:
            return float("inf")
        return self.static_per_exec / self.dynamic_per_exec

    @property
    def overhead_cycles(self) -> int:
        """One-time dynamic-compilation cost: set-up + stitcher."""
        return self.setup_cycles + self.stitcher_cycles

    @property
    def breakeven_runs(self) -> Optional[int]:
        """Executions at which dynamic compilation has paid for itself,
        or None when it never does."""
        saved = self.saved_per_exec
        if saved <= 0:
            return None
        return math.ceil(self.overhead_cycles / saved)

    @property
    def cycles_per_stitched_instr(self) -> float:
        return self.overhead_cycles / max(1, self.instrs_stitched)

    def to_dict(self) -> Dict[str, object]:
        """JSON-stable rendering (raw fields + derived metrics).

        Tiering fields are emitted only for adaptive runs, so eager
        reports stay bit-identical to the pre-tiering goldens.
        """
        breakeven = self.breakeven_runs
        out = self._base_dict(breakeven)
        if self.predicted_breakeven is not None or self.cold_entries:
            out["cold_entries"] = self.cold_entries
            out["predicted_breakeven"] = self.predicted_breakeven
        return out

    def _base_dict(self, breakeven) -> Dict[str, object]:
        return {
            "region": "%s:%d" % (self.func_name, self.region_id),
            "executions": self.executions,
            "stitches": self.stitches,
            "cache_hits": self.cache_hits,
            "static_cycles": self.static_cycles,
            "stitched_cycles": self.stitched_cycles,
            "dispatch_cycles": self.dispatch_cycles,
            "setup_cycles": self.setup_cycles,
            "stitcher_cycles": self.stitcher_cycles,
            "instrs_stitched": self.instrs_stitched,
            "overhead_cycles": self.overhead_cycles,
            "static_per_exec": round(self.static_per_exec, 4),
            "dynamic_per_exec": round(self.dynamic_per_exec, 4),
            "saved_per_exec": round(self.saved_per_exec, 4),
            "speedup": round(self.speedup, 4),
            "breakeven_runs": breakeven,
            "cycles_per_stitched_instr": round(
                self.cycles_per_stitched_instr, 4),
        }


def rows_from_results(static_result, dynamic_result) -> List[BreakEvenRow]:
    """Per-region break-even rows from one static + one dynamic run of
    the same program on the same inputs."""
    entries: Dict[RegionKey, int] = dict(
        getattr(dynamic_result, "region_entries", {}) or {})
    # Regions can also be discovered from stitch reports (defensive:
    # a region stitched but never counted would still get a row).
    keys = set(entries)
    for report in dynamic_result.stitch_reports:
        keys.add((report.func_name, report.region_id))
    rows: List[BreakEvenRow] = []
    hits = getattr(dynamic_result, "cache_hits", []) or []
    tier_stats = getattr(dynamic_result, "tier_stats", {}) or {}
    colds = getattr(dynamic_result, "cold_entries", []) or []
    for func_name, region_id in sorted(keys):
        key = (func_name, region_id)
        suffix = "%s:%d" % key
        dyn = dynamic_result.cycles_by_owner
        reports = [r for r in dynamic_result.stitch_reports
                   if (r.func_name, r.region_id) == key]
        region_tier = tier_stats.get(key, {})
        rows.append(BreakEvenRow(
            func_name=func_name,
            region_id=region_id,
            executions=entries.get(key, 0),
            stitches=len(reports),
            cache_hits=sum(1 for h in hits
                           if (h.func_name, h.region_id) == key),
            static_cycles=static_result.cycles_by_owner.get(
                "region:" + suffix, 0),
            stitched_cycles=dyn.get("stitched:" + suffix, 0),
            dispatch_cycles=dyn.get("dispatch:" + suffix, 0),
            setup_cycles=dyn.get("setup:" + suffix, 0),
            stitcher_cycles=dyn.get("stitcher:" + suffix, 0),
            instrs_stitched=sum(r.instrs_emitted for r in reports),
            cold_entries=sum(1 for c in colds
                             if (c.func_name, c.region_id) == key),
            predicted_breakeven=region_tier.get("predicted_breakeven"),
        ))
    return rows


def break_even_source(source: str, args: Optional[List[int]] = None,
                      max_cycles: int = 4_000_000_000,
                      **compile_kwargs) -> List[BreakEvenRow]:
    """Compile ``source`` both ways, run both, report per region.

    ``compile_kwargs`` pass through to
    :func:`repro.runtime.engine.compile_program` (opt_options,
    stitcher_costs, use_reachability, ...).
    """
    from ..runtime.engine import compile_program
    static_program = compile_program(source, mode="static",
                                     **compile_kwargs)
    dynamic_program = compile_program(source, mode="dynamic",
                                      **compile_kwargs)
    static_result = static_program.run(args=args, max_cycles=max_cycles)
    dynamic_result = dynamic_program.run(args=args, max_cycles=max_cycles)
    if static_result.value != dynamic_result.value:
        raise AssertionError(
            "break-even run diverged: static %r != dynamic %r"
            % (static_result.value, dynamic_result.value))
    return rows_from_results(static_result, dynamic_result)


def break_even_workload(workload,
                        max_cycles: int = 4_000_000_000,
                        **compile_kwargs) -> List[BreakEvenRow]:
    """Break-even rows for a bench :class:`Workload` (sanity-checks the
    expected result when the workload declares one)."""
    from ..runtime.engine import compile_program
    static_program = compile_program(workload.source, mode="static",
                                     **compile_kwargs)
    dynamic_program = compile_program(workload.source, mode="dynamic",
                                      **compile_kwargs)
    static_result = static_program.run(max_cycles=max_cycles)
    dynamic_result = dynamic_program.run(max_cycles=max_cycles)
    for leg, result in (("static", static_result),
                        ("dynamic", dynamic_result)):
        if workload.expected is not None \
                and result.value != workload.expected:
            raise AssertionError(
                "%s: %s result %d != expected %d"
                % (workload.name, leg, result.value, workload.expected))
    return rows_from_results(static_result, dynamic_result)
