"""Exporters for metrics snapshots and sampled time series.

Three output formats:

* **OpenMetrics / Prometheus text exposition** -- ``to_openmetrics``
  renders a registry snapshot as the standard scrape format (``# TYPE``
  / ``# HELP`` comment lines, ``_total`` counter samples, cumulative
  ``le`` histogram buckets, ``# EOF`` terminator).  Instrument names
  are sanitized (``.`` and ``-`` become ``_``); labeled children
  become labeled series, and for counters the unlabeled remainder
  (parent total minus the labeled children) is emitted only when
  nonzero so totals stay additive.
* **JSON series dump** -- ``series_document`` wraps a
  :class:`~repro.obs.timeseries.TimeSeriesSampler`'s rings, derived
  rates and an optional final snapshot into one JSON document.
* **Perfetto counter tracks** ride in the Chrome trace stream itself
  (``Tracer.counter`` / the sampler) -- no separate writer needed.

A small :func:`parse_openmetrics` parser backs the golden test and lets
scripts round-trip the exposition without a Prometheus dependency.

Everything here is deterministic: names and label sets sort
lexicographically, and nondeterministic instruments (host timings) can
be excluded by name.
"""

from __future__ import annotations

import json
import re
from typing import Dict, List, Optional, Sequence, Tuple

_NAME_SANITIZE = re.compile(r"[^a-zA-Z0-9_:]")


def sanitize_name(name: str) -> str:
    """A metric name in OpenMetrics' ``[a-zA-Z0-9_:]`` alphabet."""
    return _NAME_SANITIZE.sub("_", name)


def _escape_label(value: str) -> str:
    return (value.replace("\\", "\\\\")
                 .replace('"', '\\"')
                 .replace("\n", "\\n"))


def _render_labels(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    return "{%s}" % ",".join(
        '%s="%s"' % (sanitize_name(k), _escape_label(str(v)))
        for k, v in sorted(labels.items()))


def _fmt(value) -> str:
    if value is None:
        return "0"
    if isinstance(value, bool):
        return str(int(value))
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def _histogram_lines(name: str, data: Dict[str, object],
                     labels: Dict[str, str]) -> List[str]:
    lines = []
    cumulative = 0
    for le_key, count in data["buckets"].items():  # insertion == bound order
        bound = le_key[len("le_"):]
        cumulative += count
        bucket_labels = dict(labels)
        bucket_labels["le"] = bound
        lines.append("%s_bucket%s %d"
                     % (name, _render_labels(bucket_labels), cumulative))
    inf_labels = dict(labels)
    inf_labels["le"] = "+Inf"
    lines.append("%s_bucket%s %d"
                 % (name, _render_labels(inf_labels), data["count"]))
    lines.append("%s_sum%s %s" % (name, _render_labels(labels),
                                  _fmt(data["sum"])))
    lines.append("%s_count%s %d" % (name, _render_labels(labels),
                                    data["count"]))
    return lines


def to_openmetrics(snap: Dict[str, Dict[str, object]],
                   exclude: Sequence[str] = ()) -> str:
    """Render a registry snapshot as OpenMetrics text exposition."""
    skip = frozenset(exclude)
    lines: List[str] = []
    for raw_name in sorted(snap):
        if raw_name in skip:
            continue
        data = snap[raw_name]
        name = sanitize_name(raw_name)
        kind = data["type"]
        lines.append("# TYPE %s %s" % (name, kind))
        series = data.get("series")
        if kind == "counter":
            sample_name = name + "_total"
            if series:
                labeled_total = 0
                for child in series:
                    labeled_total += child["value"]
                    lines.append("%s%s %s"
                                 % (sample_name,
                                    _render_labels(child["labels"]),
                                    _fmt(child["value"])))
                remainder = data["value"] - labeled_total
                if remainder:
                    lines.append("%s %s" % (sample_name, _fmt(remainder)))
            else:
                lines.append("%s %s" % (sample_name, _fmt(data["value"])))
        elif kind == "gauge":
            lines.append("%s %s" % (name, _fmt(data["value"])))
            if series:
                for child in series:
                    lines.append("%s%s %s"
                                 % (name, _render_labels(child["labels"]),
                                    _fmt(child["value"])))
        else:  # histogram
            if series:
                for child in series:
                    lines.extend(_histogram_lines(name, child,
                                                  child["labels"]))
            else:
                lines.extend(_histogram_lines(name, data, {}))
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def write_openmetrics(path: str, snap: Dict[str, Dict[str, object]],
                      exclude: Sequence[str] = ()) -> None:
    with open(path, "w") as handle:
        handle.write(to_openmetrics(snap, exclude=exclude))


# -- parsing (golden test / script round-trips) ----------------------------

_SAMPLE_RE = re.compile(
    r'^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)'
    r'(?:\{(?P<labels>[^}]*)\})?'
    r'\s+(?P<value>\S+)$')
_LABEL_RE = re.compile(r'(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)='
                       r'"(?P<value>(?:\\.|[^"\\])*)"')


def parse_openmetrics(text: str) -> Dict[str, object]:
    """Parse OpenMetrics exposition text.

    Returns ``{"types": {name: type}, "samples": [(name, labels,
    value), ...]}``; raises :class:`ValueError` on malformed lines or
    a missing ``# EOF`` terminator.
    """
    types: Dict[str, str] = {}
    samples: List[Tuple[str, Dict[str, str], float]] = []
    saw_eof = False
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        if saw_eof:
            raise ValueError("line %d: content after # EOF" % lineno)
        if line.startswith("#"):
            parts = line.split(None, 3)
            if parts[:2] == ["#", "EOF"]:
                saw_eof = True
            elif len(parts) >= 4 and parts[1] == "TYPE":
                types[parts[2]] = parts[3]
            elif len(parts) >= 3 and parts[1] == "HELP":
                pass
            else:
                raise ValueError("line %d: bad comment %r" % (lineno, line))
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError("line %d: bad sample %r" % (lineno, line))
        labels: Dict[str, str] = {}
        raw = match.group("labels")
        if raw:
            consumed = 0
            for pair in _LABEL_RE.finditer(raw):
                labels[pair.group("key")] = (
                    pair.group("value").replace('\\"', '"')
                                       .replace("\\n", "\n")
                                       .replace("\\\\", "\\"))
                consumed += 1
            if consumed != len(raw.split(",")):
                raise ValueError("line %d: bad labels %r" % (lineno, raw))
        try:
            value = float(match.group("value"))
        except ValueError:
            raise ValueError("line %d: bad value %r"
                             % (lineno, match.group("value")))
        samples.append((match.group("name"), labels, value))
    if not saw_eof:
        raise ValueError("missing # EOF terminator")
    return {"types": types, "samples": samples}


# -- JSON series dump ------------------------------------------------------

def series_document(sampler,
                    snapshot: Optional[Dict[str, object]] = None
                    ) -> Dict[str, object]:
    """The sampler's rings + derived rates (+ an optional final
    registry snapshot) as one JSON-serializable document."""
    document = sampler.to_json()
    if snapshot is not None:
        document["snapshot"] = snapshot
    return document


def write_series_json(path: str, sampler,
                      snapshot: Optional[Dict[str, object]] = None) -> None:
    with open(path, "w") as handle:
        json.dump(series_document(sampler, snapshot), handle, indent=1,
                  sort_keys=True)
        handle.write("\n")
