"""Structured event tracing for the compile -> stitch -> execute pipeline.

The tracer records *events* -- complete spans (``ph: "X"``, with host
wall-clock duration), instants (``ph: "i"``) and counter samples
(``ph: "C"``, Perfetto counter tracks emitted by the time-series
sampler) -- in the Chrome trace-event format, so a dump loads
directly into Perfetto
(ui.perfetto.dev), chrome://tracing or speedscope.  Two serializations:

* **JSONL** -- one event object per line (stream-friendly; what the
  fuzzer dumps next to reproducers);
* **Chrome JSON** -- ``{"traceEvents": [...]}`` (what Perfetto loads).

Event schema (validated by :func:`validate_events`):

========  ======================================================
field     meaning
========  ======================================================
``name``  event name, dot-separated (``stitch.region``, ``opt.pass``)
``cat``   category: ``frontend`` | ``opt`` | ``analysis`` |
          ``split`` | ``codegen`` | ``stitch`` | ``runtime`` |
          ``vm`` | ``bench`` | ``telemetry``
``ph``    ``"X"`` (complete span), ``"i"`` (instant) or ``"C"``
          (counter sample; ``args`` values must be numbers)
``ts``    microseconds since the tracer was created (host clock)
``dur``   span duration in microseconds (``X`` only, >= 0)
``pid``   always 0 (one simulated process)
``tid``   always 0
``args``  event payload (JSON-serializable dict)
``s``     instant scope, always ``"t"`` (``i`` only)
========  ======================================================

Timestamps are host wall-clock; *simulated* cycle figures ride in
``args`` where a stage knows them.  Tracing never touches the VM's
cycle accounting: a traced run and an untraced run produce bit-identical
simulated observables (enforced by tests/test_obs_parity.py).

Installation is process-wide and explicitly opt-in::

    tracer = Tracer()
    with tracing(tracer):
        program = compile_program(src)
        program.run()
    tracer.write_chrome("trace.json")

Hook sites throughout the pipeline call the module-level :func:`span`
and :func:`instant` helpers, which are no-ops (one global load, one
``is None`` branch) while no tracer is installed.
"""

from __future__ import annotations

import json
import time
from collections import deque
from contextlib import contextmanager
from typing import Dict, Iterable, List, Optional

VALID_CATEGORIES = frozenset([
    "frontend", "opt", "analysis", "split", "codegen", "stitch",
    "runtime", "vm", "bench", "fuzz", "faults", "robustness",
    "telemetry",
])

VALID_PHASES = frozenset(["X", "i", "C"])


class Tracer:
    """An event buffer with span/instant recording.

    ``max_events`` bounds memory; with ``ring=True`` old events are
    discarded to keep the newest (the fuzzer's "last N events before
    the divergence" mode), otherwise new events are dropped once full
    and counted in :attr:`dropped`.
    """

    def __init__(self, max_events: int = 1_000_000, ring: bool = False):
        self.ring = ring
        self.max_events = max_events
        if ring:
            self.events: "deque[dict]" = deque(maxlen=max_events)
        else:
            self.events = []  # type: ignore[assignment]
        self.dropped = 0
        self._t0 = time.perf_counter()

    # -- recording ---------------------------------------------------------

    def _now_us(self) -> float:
        return (time.perf_counter() - self._t0) * 1e6

    def _append(self, event: dict) -> None:
        if not self.ring and len(self.events) >= self.max_events:
            self.dropped += 1
            return
        self.events.append(event)

    def instant(self, name: str, cat: str, **args) -> None:
        self._append({"name": name, "cat": cat, "ph": "i",
                      "ts": self._now_us(), "pid": 0, "tid": 0,
                      "s": "t", "args": args})

    def counter(self, name: str, cat: str = "telemetry", **values) -> None:
        """Record a Perfetto counter sample; each kwarg becomes one
        track under the counter's name."""
        self._append({"name": name, "cat": cat, "ph": "C",
                      "ts": self._now_us(), "pid": 0, "tid": 0,
                      "args": values})

    @contextmanager
    def span(self, name: str, cat: str, **args):
        """Record a complete ("X") event around the body.

        Yields the ``args`` dict -- the body may add result fields
        (counts, deltas) and they land in the recorded event.
        """
        start = self._now_us()
        try:
            yield args
        finally:
            self._append({"name": name, "cat": cat, "ph": "X",
                          "ts": start, "dur": self._now_us() - start,
                          "pid": 0, "tid": 0, "args": args})

    def clear(self) -> None:
        self.events.clear()
        self.dropped = 0

    # -- reading -----------------------------------------------------------

    def tail(self, n: Optional[int] = None) -> List[dict]:
        """The last ``n`` events (all, if ``n`` is None), oldest first."""
        events = list(self.events)
        return events if n is None else events[-n:]

    def by_name(self, name: str) -> List[dict]:
        return [e for e in self.events if e["name"] == name]

    # -- serialization -----------------------------------------------------

    def to_chrome(self) -> dict:
        return {"traceEvents": list(self.events),
                "displayTimeUnit": "ms"}

    def write_chrome(self, path: str) -> None:
        with open(path, "w") as handle:
            json.dump(self.to_chrome(), handle)
            handle.write("\n")

    def write_jsonl(self, path: str) -> None:
        with open(path, "w") as handle:
            for event in self.events:
                handle.write(json.dumps(event) + "\n")

    def dumps_jsonl(self) -> str:
        return "".join(json.dumps(event) + "\n" for event in self.events)


def dumps_event(event: dict) -> str:
    """One event as a JSONL line (no trailing newline)."""
    return json.dumps(event)


# -- process-wide installation ---------------------------------------------

#: The installed tracer, or None (tracing disabled -- the common case).
#: Hook sites read this module attribute directly; keeping it a plain
#: global makes the disabled check one LOAD_GLOBAL + POP_JUMP.
_current: Optional[Tracer] = None


def current() -> Optional[Tracer]:
    return _current


def install(tracer: Optional[Tracer]) -> None:
    global _current
    _current = tracer


@contextmanager
def tracing(tracer: Tracer):
    """Install ``tracer`` for the duration of the block."""
    previous = _current
    install(tracer)
    try:
        yield tracer
    finally:
        install(previous)


class _NullSpan:
    """Shared do-nothing context manager for the disabled path."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, *exc):
        return False


_NULL_SPAN = _NullSpan()


def span(name: str, cat: str, **args):
    """A span on the installed tracer, or a shared null context."""
    tracer = _current
    if tracer is None:
        return _NULL_SPAN
    return tracer.span(name, cat, **args)


def instant(name: str, cat: str, **args) -> None:
    tracer = _current
    if tracer is not None:
        tracer.instant(name, cat, **args)


# -- validation (tests + `python -m repro.obs validate`) -------------------

def validate_events(events: Iterable[dict]) -> List[str]:
    """Schema errors in ``events`` (empty list == valid)."""
    errors: List[str] = []
    for i, event in enumerate(events):
        where = "event %d" % i
        if not isinstance(event, dict):
            errors.append("%s: not an object" % where)
            continue
        name = event.get("name")
        if not isinstance(name, str) or not name:
            errors.append("%s: missing/empty name" % where)
        else:
            where = "event %d (%s)" % (i, name)
        cat = event.get("cat")
        if not isinstance(cat, str) or cat not in VALID_CATEGORIES:
            errors.append("%s: bad category %r" % (where, cat))
        phase = event.get("ph")
        if phase not in VALID_PHASES:
            errors.append("%s: bad phase %r" % (where, phase))
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            errors.append("%s: bad ts %r" % (where, ts))
        if phase == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                errors.append("%s: bad dur %r" % (where, dur))
        if phase == "i" and event.get("s") not in ("t", "p", "g"):
            errors.append("%s: instant missing scope" % where)
        if phase == "C":
            values = event.get("args")
            if isinstance(values, dict):
                for key, value in values.items():
                    if not isinstance(value, (int, float)) \
                            or isinstance(value, bool):
                        errors.append(
                            "%s: counter arg %r not a number (%r)"
                            % (where, key, value))
        for field in ("pid", "tid"):
            if not isinstance(event.get(field), int):
                errors.append("%s: bad %s" % (where, field))
        args = event.get("args")
        if not isinstance(args, dict):
            errors.append("%s: args must be an object" % where)
        else:
            try:
                json.dumps(args)
            except (TypeError, ValueError) as exc:
                errors.append("%s: args not JSON-serializable (%s)"
                              % (where, exc))
    return errors


def validate_chrome(obj: object) -> List[str]:
    """Validate a loaded Chrome trace-event JSON document."""
    if not isinstance(obj, dict):
        return ["top level must be an object"]
    events = obj.get("traceEvents")
    if not isinstance(events, list):
        return ["missing traceEvents array"]
    return validate_events(events)


def load_trace(path: str) -> List[dict]:
    """Load events from either serialization (sniffed by content):
    a Chrome document parses whole as one object with ``traceEvents``;
    anything else is treated as JSONL, one event per line."""
    with open(path) as handle:
        text = handle.read()
    try:
        document = json.loads(text)
    except ValueError:
        document = None
    if isinstance(document, dict):
        events = document.get("traceEvents")
        if isinstance(events, list):
            return events
        if "ph" in document:  # a one-line JSONL file
            return [document]
        raise ValueError("no traceEvents array in %s" % path)
    if document is not None:  # a single JSONL event, or a bare list
        return document if isinstance(document, list) else [document]
    return [json.loads(line) for line in text.splitlines() if line.strip()]
