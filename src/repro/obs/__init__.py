"""Observability for the dynamic-compilation pipeline.

Three layers, all zero-dependency and all disabled (free) by default:

* :mod:`repro.obs.metrics` -- a process-wide registry of counters,
  gauges and histograms with a no-op fast path while disabled;
* :mod:`repro.obs.trace` -- a structured event tracer (spans +
  instants) emitting JSONL and Chrome trace-event JSON, loadable in
  Perfetto / speedscope, with hook sites across frontend, optimizer,
  analyses, splitter, codegen, stitcher and the region runtime;
* :mod:`repro.obs.timeseries` -- a deterministic sampler snapshotting
  every instrument into fixed-capacity ring buffers on logical clocks
  (region entries / simulated cycles), deriving rates and ratios;
* :mod:`repro.obs.export` -- OpenMetrics text exposition, JSON series
  dumps, and Perfetto counter tracks in the Chrome trace stream;
* :mod:`repro.obs.health` -- declarative rules over metric values
  producing a structured :class:`HealthReport`;
* :mod:`repro.obs.history` -- the perf-trajectory flight recorder
  (``BENCH_<name>.json`` entries + best-of-last-N regression gates);
* :mod:`repro.obs.profiler` / :mod:`repro.obs.breakeven` -- post-run
  views over the VM's per-owner counter cells: simulated-cycle
  profiles and the paper's Table 2 break-even economics per region.

CLI: ``python -m repro.obs report`` (break-even tables over the bench
workloads), ``python -m repro.obs trace`` (run a program or workload
with tracing and dump the trace), ``python -m repro.obs validate``
(schema-check a trace file -- what CI's trace-smoke job runs),
``python -m repro.obs export`` (OpenMetrics / JSON series dumps),
``python -m repro.obs health`` (rule evaluation over a run), and
``python -m repro.obs record`` / ``compare`` (perf trajectory).

Contract: enabling any of it never changes simulated observables
(cycles, stitch reports, output); tests/test_obs_parity.py pins this.

This module re-exports only the hook-side surface (metrics registry,
tracer install/span helpers) so that importing it from the hot paths
cannot create an import cycle with the runtime engine; the reporting
layers (:mod:`~repro.obs.breakeven`, :mod:`~repro.obs.profiler`)
import the engine and must be imported directly.
"""

import sys
from contextlib import contextmanager

from .metrics import MetricsRegistry, format_snapshot, registry
from .timeseries import TimeSeriesSampler, sampling
from .trace import (
    Tracer, current, install, instant, span, tracing, validate_events,
)


def enable_metrics() -> None:
    """Turn on the process-wide metrics registry."""
    registry.enable()


def disable_metrics() -> None:
    registry.disable()


@contextmanager
def observing(trace_path=None, metrics=False, out=None):
    """Turn on tracing and/or metrics for the duration of the block.

    A one-stop front door for scripts and the example programs: when
    ``trace_path`` is given, a Chrome trace of everything inside the
    block is written there at exit; when ``metrics`` is true, the
    registry snapshot is printed (to ``out``, default stderr) at exit.
    With neither, this is a no-op context.
    """
    out = out if out is not None else sys.stderr
    tracer = Tracer() if trace_path else None
    if tracer is not None:
        install(tracer)
    if metrics:
        registry.enable()
    try:
        yield tracer
    finally:
        if tracer is not None:
            install(None)
            tracer.write_chrome(trace_path)
            print("wrote trace: %s (%d events, %d dropped)"
                  % (trace_path, len(tracer.events), tracer.dropped),
                  file=out)
        if metrics:
            print(format_snapshot(registry.snapshot()), file=out)
            registry.disable()


__all__ = [
    "MetricsRegistry",
    "TimeSeriesSampler",
    "Tracer",
    "current",
    "disable_metrics",
    "enable_metrics",
    "format_snapshot",
    "install",
    "instant",
    "observing",
    "registry",
    "sampling",
    "span",
    "tracing",
    "validate_events",
]
