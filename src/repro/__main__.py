"""Command-line driver: compile and run MiniC programs.

Usage::

    python -m repro program.c                       # dynamic mode
    python -m repro program.c --mode static
    python -m repro program.c --args 3 7            # main(3, 7)
    python -m repro program.c --stats               # cycle breakdown
    python -m repro program.c --dump-ir             # optimized IR
    python -m repro program.c --dump-asm            # generated code
    python -m repro program.c --dump-templates      # region templates
    python -m repro program.c --register-actions
    python -m repro program.c --fused-stitcher
    python -m repro program.c --faults all:0.1       # chaos run
    python -m repro program.c --tier breakeven       # adaptive tiering
    python -m repro program.c --stitch-mode async    # queued stitching
"""

from __future__ import annotations

import argparse
import sys
from typing import List

from . import FUSED_STITCHER, CompileError, compile_program
from .machine.vm import VMError


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Compile and run a MiniC program on the RVM "
                    "(reproduction of 'Fast, Effective Dynamic "
                    "Compilation', PLDI 1996).")
    parser.add_argument("source", help="MiniC source file")
    parser.add_argument("--mode", choices=["dynamic", "static"],
                        default="dynamic",
                        help="dynamic = the paper's system; static = "
                             "baseline with annotations ignored")
    parser.add_argument("--backend", default=None, metavar="NAME",
                        help="execution backend: rvm (default, the "
                             "bit-exact oracle) or pycode (closure-"
                             "composition host execution); simulated "
                             "results are identical, host speed is not")
    parser.add_argument("--entry", default="main",
                        help="function to run (default: main)")
    parser.add_argument("--args", nargs="*", type=int, default=[],
                        help="integer arguments for the entry function")
    parser.add_argument("--register-actions", action="store_true",
                        help="enable the section 5 register-actions "
                             "extension")
    parser.add_argument("--fused-stitcher", action="store_true",
                        help="use the fused (cheap) stitcher cost model")
    parser.add_argument("--cache-policy",
                        choices=["unbounded", "lru", "cost-aware"],
                        default="unbounded",
                        help="code-cache eviction policy (default: "
                             "unbounded, nothing ever evicted)")
    parser.add_argument("--cache-entries", type=int, default=None,
                        metavar="N",
                        help="cap the code cache at N live stitched "
                             "entries (requires a non-unbounded policy)")
    parser.add_argument("--cache-words", type=int, default=None,
                        metavar="W",
                        help="cap the code cache at W live code words")
    parser.add_argument("--no-reachability", action="store_true",
                        help="disable the reachability analysis "
                             "(ablation)")
    parser.add_argument("--faults", metavar="SPEC", default=None,
                        help="inject deterministic stitch/cache faults "
                             "(SITE:PROB[,SITE:PROB...] or all:PROB, "
                             "optionally @SEED; e.g. all:0.1@7) -- "
                             "failed stitches degrade to the static "
                             "fallback tier")
    parser.add_argument("--tier", metavar="SPEC", default="eager",
                        help="adaptive tiering policy: eager (default, "
                             "stitch on first entry), threshold:N "
                             "(promote a region key at its Nth entry), "
                             "or breakeven[:HORIZON] (promote when the "
                             "measured profile predicts the stitch "
                             "amortizes); options spec=K, versions=V, "
                             "speedup=F (see docs/TIERING.md)")
    parser.add_argument("--stitch-mode", metavar="SPEC", default="sync",
                        help="stitch scheduling: sync (default, stitch "
                             "inline at region entry -- bit-identical "
                             "to every committed golden) or "
                             "async[:depth=N,drain=N,batch=N,"
                             "deadline=C,retries=N,backoff=N,jitter=J,"
                             "seed=S] -- queue stitch jobs and drain "
                             "them on deterministic logical-clock "
                             "ticks while entries run from the "
                             "fallback tier (see docs/ROBUSTNESS.md)")
    parser.add_argument("--stats", action="store_true",
                        help="print the per-component cycle breakdown "
                             "and stitch reports")
    parser.add_argument("--dump-ir", action="store_true",
                        help="print the optimized IR before code "
                             "generation")
    parser.add_argument("--dump-asm", action="store_true",
                        help="print the generated RVM code")
    parser.add_argument("--dump-templates", action="store_true",
                        help="print region templates with directives")
    parser.add_argument("--dump-directives", action="store_true",
                        help="print the paper-style flat directive "
                             "stream (Table 1) per region")
    parser.add_argument("--trace", metavar="PATH", default=None,
                        help="record a Chrome trace of compile + run "
                             "to PATH (load in Perfetto)")
    parser.add_argument("--metrics", action="store_true",
                        help="print the obs metrics snapshot after the "
                             "run")
    parser.add_argument("--metrics-out", metavar="PATH", default=None,
                        help="write the final metrics snapshot as JSON "
                             "to PATH (implies metric collection)")
    parser.add_argument("--max-cycles", type=int, default=4_000_000_000)
    return parser


def main(argv: List[str] = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        with open(args.source) as handle:
            source = handle.read()
    except OSError as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 2

    from .obs import metrics as obs_metrics
    from .obs import trace as obs_trace
    tracer = obs_trace.Tracer() if args.trace else None
    if tracer is not None:
        obs_trace.install(tracer)
    if args.metrics or args.metrics_out:
        obs_metrics.registry.enable()
    try:
        return _run(args, source)
    finally:
        if tracer is not None:
            obs_trace.install(None)
            tracer.write_chrome(args.trace)
            print("wrote trace: %s (%d events, %d dropped)"
                  % (args.trace, len(tracer.events), tracer.dropped),
                  file=sys.stderr)
        if args.metrics or args.metrics_out:
            snap = obs_metrics.registry.snapshot()
            if args.metrics:
                print()
                print(obs_metrics.format_snapshot(snap))
            if args.metrics_out:
                import json
                with open(args.metrics_out, "w") as handle:
                    json.dump(snap, handle, indent=2, sort_keys=True)
                    handle.write("\n")
                print("wrote metrics: %s" % args.metrics_out,
                      file=sys.stderr)
            obs_metrics.registry.disable()


def _run(args, source: str) -> int:

    if args.dump_ir:
        from .frontend.parser import parse
        from .frontend.typecheck import check
        from .ir.builder import build_module
        from .ir.printer import format_module
        from .ir.ssa import to_ssa
        from .opt.pipeline import optimize
        try:
            module = build_module(check(parse(source)))
        except CompileError as exc:
            print("compile error: %s" % exc, file=sys.stderr)
            return 1
        for func in module.functions.values():
            to_ssa(func)
            optimize(func)
        print(format_module(module))
        print()

    from .codecache import CacheConfig
    from .faults import FaultPlan
    cache_config = CacheConfig(policy=args.cache_policy,
                               max_entries=args.cache_entries,
                               max_words=args.cache_words)
    try:
        fault_plan = FaultPlan.parse(args.faults)
    except ValueError as exc:
        print("error: --faults %s" % exc, file=sys.stderr)
        return 2
    from .runtime.tiering import TierPolicy
    try:
        tier = TierPolicy.parse(args.tier)
    except ValueError as exc:
        print("error: --tier %s" % exc, file=sys.stderr)
        return 2
    from .runtime.stitchqueue import StitchQueueConfig
    try:
        stitch = StitchQueueConfig.parse(args.stitch_mode)
    except ValueError as exc:
        print("error: --stitch-mode %s" % exc, file=sys.stderr)
        return 2
    from .backends import get_backend
    try:
        backend = get_backend(args.backend)
    except ValueError as exc:
        print("error: --backend %s" % exc, file=sys.stderr)
        return 2
    try:
        program = compile_program(
            source,
            mode=args.mode,
            use_reachability=not args.no_reachability,
            stitcher_costs=FUSED_STITCHER if args.fused_stitcher else None,
            register_actions=args.register_actions,
            cache_config=cache_config,
            fault_plan=fault_plan,
            tier=tier,
            stitch=stitch,
            backend=backend,
        )
    except CompileError as exc:
        print("compile error: %s" % exc, file=sys.stderr)
        return 1

    if args.dump_asm:
        from .codegen.asmprinter import format_function
        for function in program.compiled.values():
            print(format_function(function))
            print()
    if args.dump_templates:
        from .codegen.asmprinter import format_region
        for region in program.region_codes():
            print(format_region(region))
            print()
    if args.dump_directives:
        from .dynamic.directives import format_directives
        for region in program.region_codes():
            print(format_directives(region))
            print()

    try:
        result = program.run(args.entry, args.args,
                             max_cycles=args.max_cycles)
    except VMError as exc:
        print("run-time error: %s" % exc, file=sys.stderr)
        return 1

    for value in result.output:
        print(value)
    print("=> %s  (%d cycles, %s backend)"
          % (result.value, result.cycles, result.backend))

    stats = result.cache_stats
    if stats is not None and stats.bounded:
        print("cache[%s]: %d hits, %d misses, %d evictions, "
              "%d compactions, %d invalidations, %d re-stitches, "
              "%d live entries (%d words)"
              % (stats.policy, stats.hits, stats.misses, stats.evictions,
                 stats.compactions, stats.invalidations, stats.restitches,
                 stats.live_entries, stats.live_code_words))

    if result.tier_stats:
        cold = len(result.cold_entries)
        promotions = sum(s["promotions"]
                         for s in result.tier_stats.values())
        speculative = sum(s["speculative_promotions"]
                          for s in result.tier_stats.values())
        demotions = sum(s["demotions"]
                        for s in result.tier_stats.values())
        print("tier[%s]: %d cold entries, %d promotions "
              "(%d speculative), %d demotions"
              % (tier.describe(), cold, promotions, speculative,
                 demotions))
        for key, snap in sorted(result.tier_stats.items()):
            predicted = snap.get("predicted_breakeven")
            print("  %s:%d: %d keys, %d promoted, %d cold%s"
                  % (key[0], key[1], snap["keys"], snap["keys_promoted"],
                     snap["cold_entries"],
                     (", predicted breakeven %d" % predicted)
                     if predicted is not None else ""))

    qs = result.queue_stats
    if qs is not None:
        print("stitchq[%s]: %d enqueued, %d landed, %d shed "
              "(%d dropped), %d expired, %d cancelled, %d retries, "
              "%d pending, max depth %d, %d drains"
              % (qs.config, qs.enqueued, qs.landed, qs.shed,
                 qs.dropped, qs.expired, qs.total_cancelled, qs.retries,
                 qs.pending, qs.max_depth, qs.drains))
        if qs.land_latencies:
            lats = sorted(qs.land_latencies)
            print("  entries-to-land: min %d, median %d, max %d"
                  % (lats[0], lats[len(lats) // 2], lats[-1]))
        for reason, count in sorted(qs.cancelled.items()):
            print("  cancelled[%s]: %d" % (reason, count))

    if result.fallbacks or result.fault_counts:
        by_reason = {}
        for event in result.fallbacks:
            by_reason[event.reason] = by_reason.get(event.reason, 0) + 1
        detail = ", ".join("%d %s" % (count, reason)
                           for reason, count in sorted(by_reason.items()))
        print("degraded: %d fallback entries (%s); faults injected: %s"
              % (len(result.fallbacks), detail or "none",
                 ", ".join("%s x%d" % (site, count) for site, count
                           in sorted(result.fault_counts.items()))
                 or "none"))
        for key, snap in sorted(result.breaker_stats.items()):
            print("breaker %s:%d: %d trips, %d resets, cooldown %d"
                  % (key[0], key[1], snap["trips"], snap["resets"],
                     snap["cooldown"]))

    if args.stats:
        print()
        print("instruction mix (top 10):")
        for op in sorted(result.op_counts,
                         key=lambda o: -result.op_counts[o])[:10]:
            print("  %-10s %10d" % (op, result.op_counts[op]))
        print()
        print("cycles by component:")
        for owner in sorted(result.cycles_by_owner,
                            key=lambda o: -result.cycles_by_owner[o]):
            print("  %-32s %12d cycles %10d instrs"
                  % (owner, result.cycles_by_owner[owner],
                     result.instrs_by_owner.get(owner, 0)))
        for report in result.stitch_reports:
            print()
            print("stitch %s region %d key=%s:"
                  % (report.func_name, report.region_id, report.key))
            print("  %d instrs emitted, %d holes, %d directives, "
                  "%d cycles" % (report.instrs_emitted,
                                 report.holes_patched,
                                 report.directives, report.cycles))
            if report.peepholes:
                print("  peepholes: %s" % report.peepholes)
            if report.reg_actions:
                print("  register actions: %s" % report.reg_actions)
            applied = [k for k, v in
                       report.optimizations_applied().items() if v]
            print("  optimizations: %s" % ", ".join(applied))
    return 0


if __name__ == "__main__":
    sys.exit(main())
