"""The RVM virtual machine: executes RVM code with cycle accounting.

The VM is the reproduction's stand-in for the paper's DEC Alpha 21064
and its hardware cycle counters: every executed instruction is charged
its cost-model cycles, attributed to the *owner* tag of the code it
belongs to (function body, region set-up code, stitched region code...),
which is what the measurement harness reads to reproduce Table 2.

Runtime services (``call_rt``) cover allocation, printing, the pure
math builtins, and the two dynamic-compilation hooks
(``region_lookup`` / ``region_stitch``) that the runtime engine
installs handlers for.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple, Union

from ..ir.semantics import EvalTrap, eval_binop
from ..ir.values import wrap_int
from .costs import op_cost
from .isa import (
    ALU_OPS, ARG_BASE, FALU_OPS, FREG_BASE, FRV, MInstr, RA, RV, SP, ZERO,
)

Number = Union[int, float]


class VMError(Exception):
    """Machine fault: wild address, bad opcode, cycle budget exceeded..."""


#: Pure builtin signatures: name -> (arg kinds, result kind).
_PURE_SIGS: Dict[str, Tuple[str, str]] = {
    "imax": ("ii", "i"), "imin": ("ii", "i"), "iabs": ("i", "i"),
    "fsqrt": ("f", "f"), "fsin": ("f", "f"), "fcos": ("f", "f"),
    "fexp": ("f", "f"), "flog": ("f", "f"), "fpow": ("ff", "f"),
    "fabs": ("f", "f"), "ffloor": ("f", "f"),
    "fmax": ("ff", "f"), "fmin": ("ff", "f"),
}

_RETURN_SENTINEL = -2


class VM:
    """A complete machine: code memory, data memory, registers."""

    HEAP_BASE = 0x40000

    def __init__(self, memory_words: int = 1 << 22,
                 max_cycles: int = 4_000_000_000):
        self.memory: List[Number] = [0] * memory_words
        self.code: List[MInstr] = []
        self.regs: List[Number] = [0] * 64
        self.cycles = 0
        self.max_cycles = max_cycles
        self.cycles_by_owner: Dict[str, int] = {}
        self.instrs_by_owner: Dict[str, int] = {}
        #: executed-instruction histogram by opcode (cost-model input).
        self.op_counts: Dict[str, int] = {}
        self.output: List[Number] = []
        self.heap_next = self.HEAP_BASE
        #: name -> handler(vm, instr) -> int result for r0.
        self.rt_handlers: Dict[str, Callable[["VM", MInstr], int]] = {}
        self._steps = 0

    # -- code & memory -----------------------------------------------------

    def install_code(self, instrs: List[MInstr]) -> int:
        """Append resolved code; returns its base address."""
        base = len(self.code)
        for instr in instrs:
            instr.cost = op_cost(instr.op, instr.name or "")
            self.code.append(instr)
        return base

    def alloc(self, words: int) -> int:
        addr = self.heap_next
        self.heap_next += max(1, words)
        if self.heap_next >= len(self.memory) - (1 << 16):
            raise VMError("heap exhausted")
        return addr

    def load(self, addr: int) -> Number:
        if not 0 <= addr < len(self.memory):
            raise VMError("load from wild address %#x" % addr)
        return self.memory[addr]

    def store(self, addr: int, value: Number) -> None:
        if not 0 <= addr < len(self.memory):
            raise VMError("store to wild address %#x" % addr)
        self.memory[addr] = value

    def charge(self, owner: str, cycles: int, instrs: int = 0) -> None:
        """Attribute synthetic work (e.g. the stitcher's) to ``owner``."""
        self.cycles += cycles
        self.cycles_by_owner[owner] = \
            self.cycles_by_owner.get(owner, 0) + cycles
        if instrs:
            self.instrs_by_owner[owner] = \
                self.instrs_by_owner.get(owner, 0) + instrs

    # -- execution ------------------------------------------------------------

    def run(self, entry: int, int_args: Optional[List[Tuple[int, Number]]] = None
            ) -> Tuple[int, float]:
        """Execute from ``entry`` until the top-level return.

        ``int_args`` is a list of (register, value) pairs to preload
        (argument passing).  Returns ``(r0, f0)``.
        """
        regs = self.regs
        memory = self.memory
        code = self.code
        for reg, value in int_args or []:
            regs[reg] = value
        regs[SP] = len(memory) - 8
        regs[RA] = _RETURN_SENTINEL
        regs[ZERO] = 0
        pc = entry
        cycles_by_owner = self.cycles_by_owner
        instrs_by_owner = self.instrs_by_owner
        op_counts = self.op_counts
        alu = ALU_OPS
        falu = FALU_OPS
        while pc != _RETURN_SENTINEL:
            if not 0 <= pc < len(code):
                raise VMError("pc out of range: %d" % pc)
            instr = code[pc]
            op = instr.op
            self.cycles += instr.cost
            owner = instr.owner
            cycles_by_owner[owner] = \
                cycles_by_owner.get(owner, 0) + instr.cost
            instrs_by_owner[owner] = instrs_by_owner.get(owner, 0) + 1
            op_counts[op] = op_counts.get(op, 0) + 1
            if self.cycles > self.max_cycles:
                raise VMError("cycle budget exceeded")
            pc += 1
            if op == "ldq" or op == "ldt":
                addr = int(regs[instr.ra]) + instr.imm
                if not 0 <= addr < len(memory):
                    raise VMError("load from wild address %#x at pc %d"
                                  % (addr, pc - 1))
                regs[instr.rd] = memory[addr]
            elif op == "stq" or op == "stt":
                addr = int(regs[instr.ra]) + instr.imm
                if not 0 <= addr < len(memory):
                    raise VMError("store to wild address %#x at pc %d"
                                  % (addr, pc - 1))
                memory[addr] = regs[instr.rb]
            elif op == "lda":
                regs[instr.rd] = wrap_int(int(regs[instr.ra]) + instr.imm)
            elif op == "ldih":
                regs[instr.rd] = wrap_int(
                    (int(regs[instr.rd]) << 16) | (instr.imm & 0xFFFF))
            elif op in alu:
                rhs = regs[instr.rb] if instr.rb is not None else instr.imm
                try:
                    regs[instr.rd] = eval_binop(alu[op], int(regs[instr.ra]),
                                                int(rhs))
                except EvalTrap as trap:
                    raise VMError("arithmetic trap at pc %d: %s"
                                  % (pc - 1, trap))
            elif op == "mov" or op == "fmov":
                regs[instr.rd] = regs[instr.ra]
            elif op == "br":
                pc = instr.target
            elif op == "beq":
                if regs[instr.ra] == 0:
                    pc = instr.target
            elif op == "bne":
                if regs[instr.ra] != 0:
                    pc = instr.target
            elif op == "jtab":
                targets, default = instr.extra  # resolved by the loader
                index = int(regs[instr.ra]) - instr.imm
                if 0 <= index < len(targets):
                    pc = targets[index]
                else:
                    pc = default
            elif op in falu:
                try:
                    regs[instr.rd] = eval_binop(
                        falu[op], float(regs[instr.ra]),
                        float(regs[instr.rb]))
                except EvalTrap as trap:
                    raise VMError("float trap at pc %d: %s" % (pc - 1, trap))
            elif op == "negq":
                regs[instr.rd] = wrap_int(-int(regs[instr.ra]))
            elif op == "ornot":
                regs[instr.rd] = wrap_int(~int(regs[instr.ra]))
            elif op == "fneg":
                regs[instr.rd] = -float(regs[instr.ra])
            elif op == "cvtqt":
                regs[instr.rd] = float(int(regs[instr.ra]))
            elif op == "cvttq":
                regs[instr.rd] = wrap_int(int(float(regs[instr.ra])))
            elif op == "jsr":
                regs[RA] = pc
                pc = instr.target
            elif op == "ret":
                pc = int(regs[RA])
            elif op == "jmp":
                pc = int(regs[instr.ra])
            elif op == "call_rt":
                self._call_rt(instr)
            elif op == "halt":
                break
            elif op == "nop":
                pass
            else:
                raise VMError("unknown opcode %r at pc %d" % (op, pc - 1))
            regs[ZERO] = 0
        int_result = int(regs[RV])
        float_result = float(regs[FRV]) if isinstance(regs[FRV], float) else 0.0
        return int_result, float_result

    def _call_rt(self, instr: MInstr) -> None:
        name = instr.name or ""
        regs = self.regs
        farg_base = FREG_BASE + ARG_BASE  # float arg i lives in f16+i
        if name == "alloc":
            regs[RV] = self.alloc(int(regs[ARG_BASE]))
        elif name == "print_int":
            self.output.append(int(regs[ARG_BASE]))
        elif name == "print_float":
            self.output.append(float(regs[farg_base]))
        elif name in _PURE_SIGS:
            from ..ir.semantics import PURE_BUILTINS
            kinds, result = _PURE_SIGS[name]
            args = []
            for position, kind in enumerate(kinds):
                if kind == "i":
                    args.append(int(regs[ARG_BASE + position]))
                else:
                    args.append(float(regs[farg_base + position]))
            value = PURE_BUILTINS[name](*args)
            if result == "i":
                regs[RV] = wrap_int(int(value))
            else:
                regs[FRV] = float(value)
        elif name in self.rt_handlers:
            regs[RV] = self.rt_handlers[name](self, instr)
        else:
            raise VMError("unknown runtime call %r" % name)
