"""The RVM virtual machine: executes RVM code with cycle accounting.

The VM is the reproduction's stand-in for the paper's DEC Alpha 21064
and its hardware cycle counters: every executed instruction is charged
its cost-model cycles, attributed to the *owner* tag of the code it
belongs to (function body, region set-up code, stitched region code...),
which is what the measurement harness reads to reproduce Table 2.

Execution fast path
-------------------

Instructions are *predecoded* when installed: :meth:`VM.install_code`
resolves each :class:`MInstr` into a specialized closure with its
operands, cycle cost, owner counters and opcode counter pre-bound
(immediate and register ALU forms get distinct handlers), stored in a
``handlers`` list parallel to ``code``.  The interpreter loop is then
threaded dispatch -- ``pc = handlers[pc](pc)`` -- instead of an
opcode-comparison chain with four accounting dict lookups per
instruction.  Branch targets (``instr.target`` / ``instr.extra``) are
still read at execution time because the loader and the stitcher
resolve labels *after* installing code.

Accounting is kept in per-owner and per-opcode counter cells (plain
lists, mutated in place by the handlers); ``cycles``,
``cycles_by_owner``, ``instrs_by_owner`` and ``op_counts`` are
reconstructed from the cells on access, bit-identical to what the
per-instruction dict updates used to produce.  The simulated cost
model is therefore completely independent of the host-side speed of
the dispatch implementation.

Runtime services (``call_rt``) cover allocation, printing, the pure
math builtins, and the two dynamic-compilation hooks
(``region_lookup`` / ``region_stitch``) that the runtime engine
installs handlers for.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple, Union

from ..backends.rvm import RVMBackend, predecode as _predecode
from ..errors import ArenaExhausted, VMError  # noqa: F401  (re-exported)
from ..ir.values import wrap_int
from .costs import op_cost
from .isa import (
    ARG_BASE, FREG_BASE, FRV, MInstr, RA, RETURN_SENTINEL, RV, SP, ZERO,
)

Number = Union[int, float]


#: Pure builtin signatures: name -> (arg kinds, result kind).
_PURE_SIGS: Dict[str, Tuple[str, str]] = {
    "imax": ("ii", "i"), "imin": ("ii", "i"), "iabs": ("i", "i"),
    "fsqrt": ("f", "f"), "fsin": ("f", "f"), "fcos": ("f", "f"),
    "fexp": ("f", "f"), "flog": ("f", "f"), "fpow": ("ff", "f"),
    "fabs": ("f", "f"), "ffloor": ("f", "f"),
    "fmax": ("ff", "f"), "fmin": ("ff", "f"),
}

_RETURN_SENTINEL = RETURN_SENTINEL

#: One predecoded instruction: takes its own pc, returns the next pc.
Handler = Callable[[int], int]

#: The dispatch loops ``VM.run`` delegates to (a bare VM without an
#: engine on top always executes rvm semantics; backend overlays only
#: change *which handlers* the threaded loop finds installed).
_RVM = RVMBackend()

_ZERO_PAGE = [0] * 256


class VM:
    """A complete machine: code memory, data memory, registers."""

    HEAP_BASE = 0x40000

    def __init__(self, memory_words: int = 1 << 22,
                 max_cycles: int = 4_000_000_000):
        self.memory: List[Number] = [0] * memory_words
        self.code: List[MInstr] = []
        #: predecoded handlers, parallel to ``code``.
        self.handlers: List[Handler] = []
        self.regs: List[Number] = [0] * 64
        # Accounting lives in single-element list cells so predecoded
        # handlers can mutate them without attribute lookups; the
        # public counters are reconstructed by the properties below.
        self._cyc = [0]
        self._maxc = [max_cycles]
        #: owner -> [cycles, instrs, charged?] (charged? marks owners
        #: touched by charge() so zero-cycle charges still surface).
        self._owner_cells: Dict[str, List] = {}
        #: opcode -> [executed count].
        self._op_cells: Dict[str, List[int]] = {}
        self.output: List[Number] = []
        self._heap = [self.HEAP_BASE]
        #: name -> handler(vm, instr) -> int result for r0.
        self.rt_handlers: Dict[str, Callable[["VM", MInstr], int]] = {}
        # Dirty-state tracking so a VM can be reset for re-runs without
        # rebuilding the (multi-megaword) memory list: min/max store
        # address below the heap, the low-water mark of the stack
        # pointer, and 256-word pages of stores that fall between the
        # heap frontier and the stack (out-of-bounds writes).
        self._dirty_low = [memory_words, -1]
        self._min_sp = [memory_words - 8]
        self._stray_pages: set = set()

    # -- accounting views --------------------------------------------------

    @property
    def cycles(self) -> int:
        return self._cyc[0]

    @property
    def max_cycles(self) -> int:
        return self._maxc[0]

    @max_cycles.setter
    def max_cycles(self, value: int) -> None:
        self._maxc[0] = value

    @property
    def heap_next(self) -> int:
        return self._heap[0]

    @heap_next.setter
    def heap_next(self, value: int) -> None:
        self._heap[0] = value

    @property
    def cycles_by_owner(self) -> Dict[str, int]:
        return {owner: cell[0] for owner, cell in self._owner_cells.items()
                if cell[1] or cell[2]}

    @property
    def instrs_by_owner(self) -> Dict[str, int]:
        return {owner: cell[1] for owner, cell in self._owner_cells.items()
                if cell[1]}

    @property
    def op_counts(self) -> Dict[str, int]:
        """Executed-instruction histogram by opcode (cost-model input)."""
        return {op: cell[0] for op, cell in self._op_cells.items()
                if cell[0]}

    def owner_snapshot(self) -> Tuple[Dict[str, int], Dict[str, int]]:
        """``(cycles_by_owner, instrs_by_owner)`` copied out of the live
        counter cells, for profilers (see :mod:`repro.obs.profiler`).
        Reading never perturbs the accounting."""
        return self.cycles_by_owner, self.instrs_by_owner

    def _owner_cell(self, owner: str) -> List:
        cell = self._owner_cells.get(owner)
        if cell is None:
            cell = self._owner_cells[owner] = [0, 0, False]
        return cell

    def _op_cell(self, op: str) -> List[int]:
        cell = self._op_cells.get(op)
        if cell is None:
            cell = self._op_cells[op] = [0]
        return cell

    # -- code & memory -----------------------------------------------------

    def install_code(self, instrs: List[MInstr]) -> int:
        """Append resolved code (predecoding it); returns its base."""
        base = len(self.code)
        code = self.code
        handlers = self.handlers
        for instr in instrs:
            instr.cost = op_cost(instr.op, instr.name or "")
            code.append(instr)
            handlers.append(_predecode(self, instr))
        return base

    def write_code(self, base: int, instrs: List[MInstr]) -> None:
        """Overwrite existing code slots (predecoding), for the code
        cache's free-list reuse of evicted regions' words.  The range
        must already be installed."""
        if base < 0 or base + len(instrs) > len(self.code):
            raise VMError("write_code outside installed code: %d+%d"
                          % (base, len(instrs)))
        code = self.code
        handlers = self.handlers
        for i, instr in enumerate(instrs):
            instr.cost = op_cost(instr.op, instr.name or "")
            code[base + i] = instr
            handlers[base + i] = _predecode(self, instr)

    def move_code(self, src: int, dst: int, words: int) -> None:
        """Relocate installed code to a lower address (compaction).

        Handlers move with their instructions -- they never bind their
        own pc, and branch handlers read ``instr.target`` at execution
        time, so the mover only has to re-point the caller-supplied
        relocations (``CachedEntry.place``), not re-predecode.
        The ascending copy is safe because ``dst < src``.
        """
        if not 0 <= dst < src or src + words > len(self.code):
            raise VMError("bad code move %d->%d (%d words)"
                          % (src, dst, words))
        code = self.code
        handlers = self.handlers
        for i in range(words):
            code[dst + i] = code[src + i]
            handlers[dst + i] = handlers[src + i]

    def fill_freed(self, base: int, words: int) -> None:
        """Fill released code words with trapping filler: executing a
        stale pc in an evicted region faults like any unknown opcode
        instead of silently running another entry's code."""
        if base < 0 or base + words > len(self.code):
            raise VMError("fill_freed outside installed code: %d+%d"
                          % (base, words))
        code = self.code
        handlers = self.handlers
        for i in range(words):
            filler = MInstr("freed", owner="codecache")
            filler.cost = op_cost("freed", "")
            code[base + i] = filler
            handlers[base + i] = _predecode(self, filler)

    def alloc(self, words: int) -> int:
        addr = self._heap[0]
        limit = len(self.memory) - (1 << 16)
        self._heap[0] = addr + max(1, words)
        if self._heap[0] >= limit:
            raise ArenaExhausted("heap exhausted", requested=max(1, words),
                                 free=max(0, limit - addr))
        return addr

    def load(self, addr: int) -> Number:
        if not 0 <= addr < len(self.memory):
            raise VMError("load from wild address %#x" % addr)
        return self.memory[addr]

    def store(self, addr: int, value: Number) -> None:
        if not 0 <= addr < len(self.memory):
            raise VMError("store to wild address %#x" % addr)
        self.memory[addr] = value
        self._note_store(addr)

    def _note_store(self, addr: int) -> None:
        """Track a store for reset_for_rerun (mirrors the handlers)."""
        if addr >= self.HEAP_BASE:
            if addr >= self._heap[0] and addr < self._min_sp[0]:
                self._stray_pages.add(addr >> 8)
        else:
            low = self._dirty_low
            if addr < low[0]:
                low[0] = addr
            if addr > low[1]:
                low[1] = addr

    def charge(self, owner: str, cycles: int, instrs: int = 0) -> None:
        """Attribute synthetic work (e.g. the stitcher's) to ``owner``."""
        cell = self._owner_cell(owner)
        self._cyc[0] += cycles
        cell[0] += cycles
        cell[2] = True
        if instrs:
            cell[1] += instrs

    # -- re-run support ----------------------------------------------------

    def reset_for_rerun(self, code_len: int) -> None:
        """Restore pristine post-install state without rebuilding memory.

        Truncates run-time-installed code (stitched regions) back to
        ``code_len``, zeroes registers and accounting, and zeroes
        exactly the memory previous runs touched: the heap up to its
        high-water mark, the stack below its low-water mark, tracked
        low-memory stores, and any stray out-of-range store pages.
        The caller re-applies its initial data image afterwards.
        """
        del self.code[code_len:]
        del self.handlers[code_len:]
        regs = self.regs
        for i in range(64):
            regs[i] = 0
        self._cyc[0] = 0
        for cell in self._owner_cells.values():
            cell[0] = 0
            cell[1] = 0
            cell[2] = False
        for op_cell in self._op_cells.values():
            op_cell[0] = 0
        self.output = []
        memory = self.memory
        words = len(memory)
        low = self._dirty_low
        if low[1] >= low[0]:
            memory[low[0]:low[1] + 1] = [0] * (low[1] + 1 - low[0])
            low[0] = words
            low[1] = -1
        heap_top = self._heap[0]
        if heap_top > self.HEAP_BASE:
            memory[self.HEAP_BASE:heap_top] = \
                [0] * (heap_top - self.HEAP_BASE)
        self._heap[0] = self.HEAP_BASE
        stack_low = self._min_sp[0]
        if stack_low < words:
            memory[stack_low:] = [0] * (words - stack_low)
            self._min_sp[0] = words - 8
        for page in self._stray_pages:
            start = page << 8
            memory[start:start + 256] = _ZERO_PAGE
        self._stray_pages.clear()

    # -- execution ------------------------------------------------------------

    def run(self, entry: int,
            int_args: Optional[List[Tuple[int, Number]]] = None,
            dispatch: str = "threaded") -> Tuple[int, float]:
        """Execute from ``entry`` until the top-level return.

        ``int_args`` is a list of (register, value) pairs to preload
        (argument passing).  Returns ``(r0, f0)``.

        ``dispatch`` selects the execution engine: ``"threaded"`` runs
        the predecoded handlers (the fast path,
        :meth:`~repro.backends.rvm.RVMBackend.run_threaded`),
        ``"naive"`` runs the retained instruction-at-a-time decode loop
        (:meth:`~repro.backends.rvm.RVMBackend.run_naive`).  The two
        are required to be equivalent -- same results, same traps, and
        bit-identical cycle/owner/opcode accounting -- which the
        differential tests check; the simulated cost model must never
        depend on the host-side speed of the dispatch implementation.
        """
        regs = self.regs
        for reg, value in int_args or []:
            regs[reg] = value
        regs[SP] = len(self.memory) - 8
        regs[RA] = _RETURN_SENTINEL
        regs[ZERO] = 0
        pc = entry
        if pc != _RETURN_SENTINEL and not 0 <= pc < len(self.handlers):
            raise VMError("pc out of range: %d" % pc)
        if dispatch == "naive":
            return _RVM.run_naive(self, pc)
        if dispatch != "threaded":
            raise ValueError("unknown dispatch %r" % dispatch)
        return _RVM.run_threaded(self, pc)

    def _call_rt(self, instr: MInstr) -> None:
        name = instr.name or ""
        regs = self.regs
        farg_base = FREG_BASE + ARG_BASE  # float arg i lives in f16+i
        if name == "alloc":
            regs[RV] = self.alloc(int(regs[ARG_BASE]))
        elif name == "print_int":
            self.output.append(int(regs[ARG_BASE]))
        elif name == "print_float":
            self.output.append(float(regs[farg_base]))
        elif name in _PURE_SIGS:
            from ..ir.semantics import PURE_BUILTINS
            kinds, result = _PURE_SIGS[name]
            args = []
            for position, kind in enumerate(kinds):
                if kind == "i":
                    args.append(int(regs[ARG_BASE + position]))
                else:
                    args.append(float(regs[farg_base + position]))
            value = PURE_BUILTINS[name](*args)
            if result == "i":
                regs[RV] = wrap_int(int(value))
            else:
                regs[FRV] = float(value)
        elif name in self.rt_handlers:
            regs[RV] = self.rt_handlers[name](self, instr)
        else:
            raise VMError("unknown runtime call %r" % name)
