"""RVM: the reproduction's RISC instruction set.

A 64-bit load/store architecture modelled on the DEC Alpha 21064 the
paper evaluated on: 32 integer registers (r31 reads as zero), 32
floating-point registers, 16-bit immediates, explicit compare
instructions producing 0/1, and conditional branches that test a
register against zero.

Deviations from the real Alpha, chosen for simulator simplicity and
documented in DESIGN.md: memory is word-addressed (one address = one
64-bit cell); ALU immediates are 16-bit rather than 8-bit; integer
divide exists as an (expensive) instruction instead of a software
routine; ``call_rt`` invokes runtime services (allocation, I/O, the
stitcher) directly.

Register conventions::

    r0        integer return value
    r1-r15    allocatable (callee saved)
    r16-r21   integer argument registers (volatile)
    r22-r25   allocatable (callee saved)
    r26       return address (ra)
    r27       linearized constants-table base inside stitched code
    r28       assembler scratch (immediate materialization, spills)
    r29       reserved
    r30       stack pointer (sp)
    r31       always zero
    f0        float return value; f16-f21 float args
    f1-f15, f22-f27  allocatable floats

Float registers are numbered 32..63 internally (``FREG_BASE + n``).
"""

from __future__ import annotations

from typing import Dict, List, Optional

FREG_BASE = 32

ZERO = 31
SP = 30
RA = 26
CPOOL = 27
SCRATCH = 28
SCRATCH2 = 29
RV = 0
FRV = FREG_BASE + 0
ARG_BASE = 16
NUM_ARG_REGS = 6

INT_ALLOCATABLE = list(range(1, 16)) + list(range(22, 26))
FLOAT_ALLOCATABLE = [FREG_BASE + n for n in
                     list(range(1, 16)) + list(range(22, 28))]

IMM_MIN = -(1 << 15)
IMM_MAX = (1 << 15) - 1

#: The "return to host" pc: ``VM.run`` seeds ``RA`` with it, and a
#: ``ret``/``jmp``/``halt`` reaching it ends execution.  Shared by the
#: execution backends (:mod:`repro.backends`) and the VM itself.
RETURN_SENTINEL = -2


def fits_imm(value: int) -> bool:
    """Does ``value`` fit the 16-bit signed immediate field?"""
    return IMM_MIN <= value <= IMM_MAX


def is_float_reg(reg: int) -> bool:
    return reg >= FREG_BASE


def reg_name(reg: Optional[int]) -> str:
    if reg is None:
        return "_"
    if reg == ZERO:
        return "zero"
    if reg == SP:
        return "sp"
    if reg == RA:
        return "ra"
    if reg >= FREG_BASE:
        return "f%d" % (reg - FREG_BASE)
    return "r%d" % reg


#: Integer ALU opcodes (register or immediate second operand), mapping
#: to the shared IR semantics in :mod:`repro.ir.semantics`.
ALU_OPS: Dict[str, str] = {
    "addq": "add", "subq": "sub", "mulq": "mul",
    "divq": "div", "udivq": "udiv", "remq": "mod", "uremq": "umod",
    "and": "and", "bis": "or", "xor": "xor",
    "sll": "shl", "srl": "lshr", "sra": "ashr",
    "cmpeq": "eq", "cmpne": "ne",
    "cmplt": "lt", "cmple": "le",
    "cmpult": "ult", "cmpule": "ule",
}

#: Floating-point ALU opcodes.
FALU_OPS: Dict[str, str] = {
    "addt": "fadd", "subt": "fsub", "mult": "fmul", "divt": "fdiv",
    "cmpteq": "feq", "cmptne": "fne", "cmptlt": "flt", "cmptle": "fle",
}

#: Opcodes that write an integer/float destination register (``rd``).
#: The VM's predecoder uses this to special-case writes to the
#: architecturally-zero register and to the stack pointer.
RD_WRITING_OPS = frozenset(
    list(ALU_OPS) + list(FALU_OPS) + [
        "lda", "ldih", "ldq", "ldt", "mov", "fmov",
        "negq", "fneg", "ornot", "cvtqt", "cvttq",
    ]
)

#: All opcodes, for validation.
OPCODES = frozenset(
    list(ALU_OPS) + list(FALU_OPS) + [
        "lda",        # rd = ra + imm
        "ldih",       # rd = (rd << 16) | (imm & 0xffff): constant building
        "ldq", "stq",  # integer load/store: mem[ra + imm]
        "ldt", "stt",  # float load/store
        "mov", "fmov",  # register moves
        "negq", "fneg", "ornot",  # ornot rd, zero, rb = bitwise not
        "cvtqt",      # int reg -> float reg
        "cvttq",      # float reg -> int reg (truncate)
        "br",         # unconditional pc-relative branch
        "beq", "bne",  # branch if (ra == 0) / (ra != 0)
        "jtab",       # jump table: index = ra - imm; labels in .extra
        "jmp",        # indirect jump through ra
        "jsr",        # call (label); pushes pc+1 into RA
        "ret",        # jump through RA
        "call_rt",    # runtime service call (name in .name)
        "halt",
        "nop",
    ]
)


class MInstr:
    """One machine instruction.

    ``rb is None`` selects the immediate form for ALU operations.
    ``label`` is a symbolic branch/call target; the loader (or the
    stitcher, for template copies) resolves it into ``target``, an
    absolute code address.  ``owner`` attributes executed cycles to a
    component (``"fn:NAME"``, ``"setup:R"``, ``"stitched:R"``...).
    """

    __slots__ = ("op", "rd", "ra", "rb", "imm", "label", "name", "extra",
                 "owner", "target", "cost")

    def __init__(self, op: str, rd: Optional[int] = None,
                 ra: Optional[int] = None, rb: Optional[int] = None,
                 imm: int = 0, label: Optional[str] = None,
                 name: Optional[str] = None, extra: object = None,
                 owner: str = ""):
        self.op = op
        self.rd = rd
        self.ra = ra
        self.rb = rb
        self.imm = imm
        self.label = label
        self.name = name
        self.extra = extra
        self.owner = owner
        self.target: int = -1
        self.cost: int = 1  # filled in when code is installed

    def copy(self) -> "MInstr":
        # The stitcher clones template instructions on every stitch;
        # bypassing __init__ roughly halves the cost of a copy.
        clone = MInstr.__new__(MInstr)
        clone.op = self.op
        clone.rd = self.rd
        clone.ra = self.ra
        clone.rb = self.rb
        clone.imm = self.imm
        clone.label = self.label
        clone.name = self.name
        clone.extra = self.extra
        clone.owner = self.owner
        clone.target = self.target
        clone.cost = self.cost
        return clone

    def __repr__(self) -> str:
        parts: List[str] = [self.op]
        regs = [reg_name(r) for r in (self.rd, self.ra, self.rb)
                if r is not None]
        if regs:
            parts.append(", ".join(regs))
        if self.op in ("lda", "ldq", "stq", "ldt", "stt") or (
                self.rb is None and self.op in ALU_OPS):
            parts.append("#%d" % self.imm)
        if self.label is not None:
            parts.append("-> %s" % self.label)
        if self.name is not None:
            parts.append("[%s]" % self.name)
        return " ".join(parts)
