"""The RVM substrate: ISA, cost model, virtual machine, loader."""

from .costs import FUSED_STITCHER, OP_CYCLES, StitcherCosts, op_cost
from .isa import MInstr, reg_name
from .loader import load_program
from .vm import VM, VMError

__all__ = [
    "FUSED_STITCHER", "MInstr", "OP_CYCLES", "StitcherCosts", "VM",
    "VMError", "load_program", "op_cost", "reg_name",
]
