"""Cycle cost model for the RVM.

Latencies are flavoured after the DEC Alpha 21064 (the paper's
evaluation machine): single-cycle integer ALU, multi-cycle loads,
expensive multiplies, very expensive divides (the 21064 had no integer
divide instruction; compilers called a software routine) and moderate
floating-point latency.  The *relative* costs are what matters for
reproducing the paper's Table 2 shape -- they are exactly the costs the
stitcher's value-based peepholes trade against (divide vs. shift,
multiply vs. shift/add chains, loads vs. immediates).

Stitcher costs model the paper's directive-interpreting dynamic
compiler, whose overhead the paper measures in the hundreds of cycles
*per stitched instruction* (Table 2 discussion: the separation of
set-up code, directives and the stitcher makes dynamic compilation
expensive; fusing them is future work).  The ablation benchmark
exercises the cheaper fused mode.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

#: Per-opcode execution cost in cycles.
OP_CYCLES: Dict[str, int] = {
    "lda": 1, "ldih": 1, "mov": 1, "fmov": 1, "nop": 1,
    "ldq": 3, "ldt": 3,
    "stq": 1, "stt": 1,
    "addq": 1, "subq": 1, "and": 1, "bis": 1, "xor": 1,
    "sll": 1, "srl": 1, "sra": 1, "negq": 1, "ornot": 1,
    "cmpeq": 1, "cmpne": 1, "cmplt": 1, "cmple": 1,
    "cmpult": 1, "cmpule": 1,
    "mulq": 12,
    "divq": 50, "udivq": 50, "remq": 50, "uremq": 50,
    "addt": 6, "subt": 6, "mult": 6,
    "divt": 32,
    "cmpteq": 6, "cmptne": 6, "cmptlt": 6, "cmptle": 6,
    "cvtqt": 6, "cvttq": 6, "fneg": 6,
    "br": 1, "beq": 1, "bne": 1,
    "jtab": 6,  # bounds check + table load + indirect jump
    "jmp": 2, "jsr": 2, "ret": 2,
    "halt": 0,
}

#: Costs of runtime services (``call_rt``), excluding the work the
#: service itself models (the stitcher adds its own charge).
RT_CYCLES: Dict[str, int] = {
    "alloc": 24,
    "print_int": 40,
    "print_float": 40,
    "region_lookup": 18,   # hash the keys, probe the code cache
    "region_stitch": 60,   # call overhead; stitch work charged separately
    # pure math builtins: library-call flavoured
    "imax": 8, "imin": 8, "iabs": 6,
    "fsqrt": 30, "fsin": 60, "fcos": 60, "fexp": 60, "flog": 60,
    "fpow": 90, "fabs": 6, "ffloor": 10, "fmax": 8, "fmin": 8,
}


@dataclass
class StitcherCosts:
    """Cost model for the dynamic compiler itself.

    The paper's stitcher interprets a directive stream, copies template
    instructions and patches holes; its measured overhead (Table 2) is
    hundreds of cycles per stitched instruction.  These knobs let the
    ablation bench reproduce the paper's "merging set-up with stitching
    would drastically reduce cost" observation by shrinking the
    directive-interpretation terms.
    """

    #: Interpreting one directive (START/HOLE/ENTER_LOOP/...).
    per_directive: int = 240
    #: Copying one template instruction into the code buffer.
    per_instr_copied: int = 60
    #: Patching one hole (table load, range check, field insert).
    per_hole: int = 100
    #: Resolving one branch target in copied code.
    per_branch_fixup: int = 70
    #: Appending one value to the linearized large-constants table.
    per_pool_entry: int = 80
    #: Following one iteration-record link while unrolling.
    per_loop_record: int = 110
    #: One-time region set-up (code-cache insertion, buffer allocation).
    per_region: int = 800
    #: Per peephole rewrite attempt that fires.
    per_peephole: int = 60
    #: Value-based peephole optimizations on/off (ablation knob).
    enable_peepholes: bool = True

    def scaled(self, factor: float) -> "StitcherCosts":
        """A proportionally cheaper/dearer stitcher (ablations)."""
        return StitcherCosts(
            per_directive=int(self.per_directive * factor),
            per_instr_copied=int(self.per_instr_copied * factor),
            per_hole=int(self.per_hole * factor),
            per_branch_fixup=int(self.per_branch_fixup * factor),
            per_pool_entry=int(self.per_pool_entry * factor),
            per_loop_record=int(self.per_loop_record * factor),
            per_region=int(self.per_region * factor),
            per_peephole=int(self.per_peephole * factor),
            enable_peepholes=self.enable_peepholes,
        )


#: Fused-stitcher cost model: the paper's proposed future optimization
#: where set-up code directly emits instructions, skipping directive
#: interpretation and the intermediate table.
FUSED_STITCHER = StitcherCosts(
    per_directive=8,
    per_instr_copied=10,
    per_hole=8,
    per_branch_fixup=12,
    per_pool_entry=14,
    per_loop_record=10,
    per_region=150,
    per_peephole=30,
)


#: Fallback cost for unknown runtime services.
RT_DEFAULT_CYCLES = 20

# Bound-method lookups hoisted out of op_cost: it runs once per
# installed instruction, which includes every stitched instruction of
# every dynamic-region compile.
_RT_GET = RT_CYCLES.get
_OP_GET = OP_CYCLES.get


def op_cost(op: str, rt_name: str = "") -> int:
    if op == "call_rt":
        return _RT_GET(rt_name, RT_DEFAULT_CYCLES)
    return _OP_GET(op, 1)
