"""Loading compiled functions into a VM and resolving symbols."""

from __future__ import annotations

from typing import Dict

from ..codegen.objects import CompiledFunction
from .vm import VM, VMError


def load_program(vm: VM, compiled: Dict[str, CompiledFunction]) -> None:
    """Install every function's code and resolve branch/call targets."""
    for function in compiled.values():
        function.base = vm.install_code(function.code)
    resolve_program(compiled)


def resolve_program(compiled: Dict[str, CompiledFunction]) -> None:
    """Resolve branch/call targets against installed function bases.

    Intra-function labels resolve against the function's own label
    table; ``func:NAME`` labels (calls) resolve to the entry of the
    named function.  Resolution is idempotent, so a program whose
    functions keep their bases (a cached VM being re-used) can skip
    it entirely.
    """
    for function in compiled.values():
        for instr in function.code:
            if instr.op == "jtab" and isinstance(instr.extra, tuple) \
                    and instr.extra and instr.extra[0] == "labels":
                _, table, default = instr.extra
                instr.extra = (
                    [function.base + function.labels[label]
                     for label in table],
                    function.base + function.labels[default],
                )
                continue
            if instr.label is None:
                continue
            if instr.label.startswith("func:"):
                callee = instr.label[5:]
                target = compiled.get(callee)
                if target is None:
                    raise VMError("call to unknown function %s" % callee)
                instr.target = target.base
            else:
                if instr.label not in function.labels:
                    raise VMError("unresolved label %s in %s"
                                  % (instr.label, function.name))
                instr.target = function.base + function.labels[instr.label]
