"""The paper's benchmarks (Table 2 rows) and the measurement harness."""

from .harness import BenchmarkMeasurement, measure
from .reporting import format_table2, format_table3, table3_dict
from .workloads import (
    Workload, all_workloads, calculator_workload,
    event_dispatcher_workload, record_sorter_workload,
    scalar_matrix_workload, sparse_matvec_workload,
)

__all__ = [
    "BenchmarkMeasurement", "Workload", "all_workloads",
    "calculator_workload", "event_dispatcher_workload",
    "format_table2", "format_table3", "measure",
    "record_sorter_workload", "scalar_matrix_workload",
    "sparse_matvec_workload", "table3_dict",
]
