"""The paper's five benchmarks (Table 2), as MiniC workload builders.

Each builder returns a :class:`Workload`: MiniC source whose ``main``
executes one benchmark configuration, plus the metadata the measurement
harness needs (which function/region to attribute, how many region
executions ``main`` performs, and how our execution unit maps to the
paper's breakeven unit).

Scaling: the paper ran on a DEC Alpha 21064; our substrate is a Python
VM executing ~1M instructions/second, so default problem sizes are
scaled down from the paper's (the builders take the paper's sizes as
parameters -- pass ``paper_scale=True`` for the original sizes if you
can wait).  Scaling changes absolute cycle counts, not the comparisons:
speedups are per-region-execution ratios.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass
class Workload:
    """One benchmark configuration, ready to compile and measure."""

    name: str
    config: str
    source: str
    #: (function, region id) whose cycles reproduce the Table 2 row.
    region_func: str
    region_id: int = 1
    #: Region executions performed by one run of main().
    executions: int = 1
    #: Paper's breakeven unit ("interpretations", "records"...) and how
    #: many of those units one region execution corresponds to.
    unit: str = "executions"
    units_per_execution: float = 1.0
    #: Expected result of main() (sanity check), if known.
    expected: Optional[int] = None
    notes: str = ""


# ---------------------------------------------------------------------------
# 1. Reverse-polish stack-based desk calculator
# ---------------------------------------------------------------------------

#: RPN opcodes.
_PUSH_CONST, _PUSH_X, _PUSH_Y, _ADD, _SUB, _MUL = range(6)


def compile_rpn(expression_ops: List[Tuple[int, int]]) -> str:
    """Render an RPN program as MiniC array-initialization statements."""
    lines = []
    for i, (op, arg) in enumerate(expression_ops):
        lines.append("    prog[%d] = %d;" % (2 * i, op))
        lines.append("    prog[%d] = %d;" % (2 * i + 1, arg))
    return "\n".join(lines)


#: The paper's calculator expression:
#: x*y - 3*y^2 - x^2 + (x+5)*(y-x) + x + y - 1
PAPER_EXPRESSION: List[Tuple[int, int]] = [
    (_PUSH_X, 0), (_PUSH_Y, 0), (_MUL, 0),            # x*y
    (_PUSH_CONST, 3), (_PUSH_Y, 0), (_PUSH_Y, 0), (_MUL, 0), (_MUL, 0),
    (_SUB, 0),                                        # - 3*y*y
    (_PUSH_X, 0), (_PUSH_X, 0), (_MUL, 0), (_SUB, 0),  # - x*x
    (_PUSH_X, 0), (_PUSH_CONST, 5), (_ADD, 0),
    (_PUSH_Y, 0), (_PUSH_X, 0), (_SUB, 0), (_MUL, 0), (_ADD, 0),
    (_PUSH_X, 0), (_ADD, 0),                          # + x
    (_PUSH_Y, 0), (_ADD, 0),                          # + y
    (_PUSH_CONST, 1), (_SUB, 0),                      # - 1
]


def rpn_reference(ops: List[Tuple[int, int]], x: int, y: int) -> int:
    stack: List[int] = []
    for op, arg in ops:
        if op == _PUSH_CONST:
            stack.append(arg)
        elif op == _PUSH_X:
            stack.append(x)
        elif op == _PUSH_Y:
            stack.append(y)
        elif op == _ADD:
            b, a = stack.pop(), stack.pop()
            stack.append(a + b)
        elif op == _SUB:
            b, a = stack.pop(), stack.pop()
            stack.append(a - b)
        elif op == _MUL:
            b, a = stack.pop(), stack.pop()
            stack.append(a * b)
    return stack[-1]


_CALCULATOR_TEMPLATE = """
int calc(int *prog, int n, int x, int y) {
    int stack[32];
    dynamicRegion (prog, n) {
        int sp = 0;
        int pc;
        unrolled for (pc = 0; pc < n; pc++) {
            int op = prog[pc * 2];
            int arg = prog[pc * 2 + 1];
            switch (op) {
                case 0: stack[sp] = arg; sp = sp + 1; break;
                case 1: stack[sp] = x; sp = sp + 1; break;
                case 2: stack[sp] = y; sp = sp + 1; break;
                case 3: sp = sp - 1;
                        stack[sp - 1] = stack[sp - 1] + stack[sp]; break;
                case 4: sp = sp - 1;
                        stack[sp - 1] = stack[sp - 1] - stack[sp]; break;
                case 5: sp = sp - 1;
                        stack[sp - 1] = stack[sp - 1] * stack[sp]; break;
            }
        }
        return stack[sp - 1];
    }
}

int main() {
    int prog[%(prog_words)d];
%(prog_init)s
    int total = 0;
    int x; int y;
    for (x = 0; x < %(xs)d; x++) {
        for (y = 0; y < %(ys)d; y++) {
            total += calc(prog, %(n)d, x - 2, y + 1);
        }
    }
    return total;
}
"""


def calculator_workload(xs: int = 12, ys: int = 12,
                        ops: Optional[List[Tuple[int, int]]] = None
                        ) -> Workload:
    """The paper's row 1: interpret one arithmetic expression over many
    (x, y) inputs; the RPN program is the run-time constant."""
    ops = ops if ops is not None else PAPER_EXPRESSION
    expected = sum(rpn_reference(ops, x - 2, y + 1)
                   for x in range(xs) for y in range(ys))
    source = _CALCULATOR_TEMPLATE % {
        "prog_words": 2 * len(ops),
        "prog_init": compile_rpn(ops),
        "n": len(ops),
        "xs": xs,
        "ys": ys,
    }
    return Workload(
        name="calculator",
        config="%d-op expression, %d interpretations" % (len(ops), xs * ys),
        source=source,
        region_func="calc",
        executions=xs * ys,
        unit="interpretations",
        expected=expected,
        notes="paper: speedup 1.7, breakeven 916 interpretations",
    )


# ---------------------------------------------------------------------------
# 2. Scalar-matrix multiply (adapted from `C / EHK96)
# ---------------------------------------------------------------------------

_SCALAR_MATRIX_TEMPLATE = """
int smul(int *m, int *out, int n, int s) {
    dynamicRegion key(s) (s, n) {
        int i;
        for (i = 0; i < n; i++) {
            out dynamic[ i ] = m dynamic[ i ] * s;
        }
    }
    return 0;
}

int main() {
    int n = %(n)d;
    int *m = (int*) alloc(n);
    int *out = (int*) alloc(n);
    int i;
    for (i = 0; i < n; i++) m[i] = i %% 17 - 8;
    int check = 0;
    int s;
    for (s = 1; s <= %(scalars)d; s++) {
        smul(m, out, n, s);
        check += out[s %% n];
    }
    return check;
}
"""


def scalar_matrix_workload(rows: int = 20, cols: int = 40,
                           scalars: int = 24) -> Workload:
    """Row 2: multiply a matrix by each scalar 1..N; the scalar is a
    keyed run-time constant, so each scalar gets its own stitched
    multiply kernel (multiplications strength-reduced per value)."""
    n = rows * cols
    m = [(i % 17) - 8 for i in range(n)]
    check = 0
    for s in range(1, scalars + 1):
        out = [v * s for v in m]
        check += out[s % n]
    source = _SCALAR_MATRIX_TEMPLATE % {"n": n, "scalars": scalars}
    return Workload(
        name="scalar-matrix multiply",
        config="%dx%d matrix, scalars 1..%d" % (rows, cols, scalars),
        source=source,
        region_func="smul",
        executions=scalars,
        unit="element multiplications",
        units_per_execution=float(n),
        expected=check,
        notes="paper: 100x800, scalars 1..100, speedup 1.6, "
              "breakeven 31392 multiplications",
    )


# ---------------------------------------------------------------------------
# 3. Sparse matrix-vector multiply
# ---------------------------------------------------------------------------


def make_sparse_matrix(size: int, per_row: int,
                       seed: int = 1996) -> Tuple[List[int], List[int],
                                                  List[int]]:
    """CSR structure: row pointers, column indices, values."""
    rng = random.Random(seed)
    rowptr = [0]
    colidx: List[int] = []
    values: List[int] = []
    for _ in range(size):
        cols = sorted(rng.sample(range(size), per_row))
        for col in cols:
            colidx.append(col)
            values.append(rng.choice([1, 2, 3, 4, 5, 7, 8, 12, 16, -3]))
        rowptr.append(len(colidx))
    return rowptr, colidx, values


_SPARSE_TEMPLATE = """
int spmv(int *rowptr, int *colidx, float *vals, int nrows, float *x,
         float *y) {
    dynamicRegion (rowptr, colidx, vals, nrows) {
        int r;
        unrolled for (r = 0; r < nrows; r++) {
            float t = 0.0;
            int lo = rowptr[r];
            int hi = rowptr[r + 1];
            int k;
            unrolled for (k = lo; k < hi; k++) {
                t = t + vals[k] * x dynamic[ colidx[k] ];
            }
            y dynamic[ r ] = t;
        }
    }
    return 0;
}

%(data_init)s

int main() {
    int n = %(n)d;
    float *x = (float*) alloc(n);
    float *y = (float*) alloc(n);
    int i;
    int check = 0;
    int rep;
    for (rep = 0; rep < %(reps)d; rep++) {
        for (i = 0; i < n; i++) x[i] = (float)((i + rep) %% 9 - 4);
        spmv(rowptr, colidx, vals, n, x, y);
        check += (int) y[rep %% n];
    }
    return check;
}
"""


def _array_global(name: str, values: List[int]) -> str:
    lines = ["int %s[%d];" % (name, len(values))]
    return "\n".join(lines)


def _array_init(name: str, values: List[int]) -> str:
    return "\n".join(
        "    %s[%d] = %d;" % (name, i, v) for i, v in enumerate(values))


def sparse_matvec_workload(size: int = 24, per_row: int = 5,
                           reps: int = 6, seed: int = 1996) -> Workload:
    """Rows 3-4: y = A*x with the sparse matrix (structure and values)
    run-time constant; both loops fully unrolled, indices and values
    become immediates / linearized-table constants."""
    rowptr, colidx, values = make_sparse_matrix(size, per_row, seed)
    # reference (float values are small integers: arithmetic is exact)
    check = 0
    for rep in range(reps):
        x = [float(((i + rep) % 9) - 4) for i in range(size)]
        y = []
        for r in range(size):
            acc = 0.0
            for k in range(rowptr[r], rowptr[r + 1]):
                acc += float(values[k]) * x[colidx[k]]
            y.append(acc)
        check += int(y[rep % size])
    float_init = "\n".join(
        "    vals[%d] = %d.0;" % (i, v) for i, v in enumerate(values))
    data_decls = "\n".join([
        _array_global("rowptr", rowptr),
        _array_global("colidx", colidx),
        "float vals[%d];" % len(values),
        "void initData() {",
        _array_init("rowptr", rowptr),
        _array_init("colidx", colidx),
        float_init,
        "}",
    ])
    source = _SPARSE_TEMPLATE % {
        "data_init": data_decls,
        "n": size,
        "reps": reps,
    }
    source = source.replace("int main() {",
                            "int main() {\n    initData();")
    return Workload(
        name="sparse matrix-vector multiply",
        config="%dx%d matrix, %d elements/row" % (size, size, per_row),
        source=source,
        region_func="spmv",
        executions=reps,
        unit="matrix multiplications",
        expected=check,
        notes="paper: 200x200 (10/row) speedup 1.8; 96x96 (5/row) "
              "speedup 1.5",
    )


# ---------------------------------------------------------------------------
# 4. Event dispatcher (extensible OS kernel, SPIN-style)
# ---------------------------------------------------------------------------

#: guard kinds: equality, threshold, mask-test, wildcard.
_GUARD_EQ, _GUARD_GT, _GUARD_MASK, _GUARD_ANY = range(4)


def make_guards(count: int, seed: int = 7) -> List[Tuple[int, int, int]]:
    rng = random.Random(seed)
    guards = []
    for i in range(count):
        kind = rng.choice([_GUARD_EQ, _GUARD_GT, _GUARD_MASK, _GUARD_ANY])
        arg = rng.randrange(1, 16)
        handler = 1 << i
        guards.append((kind, arg, handler))
    return guards


_DISPATCH_TEMPLATE = """
int dispatch(int *guards, int nguards, int *event) {
    int result = 0;
    dynamicRegion (guards, nguards) {
        int i;
        unrolled for (i = 0; i < nguards; i++) {
            int kind = guards[i * 3];
            int arg = guards[i * 3 + 1];
            int handler = guards[i * 3 + 2];
            int match = 0;
            switch (kind) {
                case 0: match = event dynamic[ 0 ] == arg; break;
                case 1: match = event dynamic[ 1 ] > arg; break;
                case 2: match = (event dynamic[ 2 ] & arg) != 0; break;
                default: match = 1;
            }
            if (match) result = result + handler;
        }
    }
    return result;
}

int guards[%(guard_words)d];
void initGuards() {
%(guard_init)s
}

int main() {
    initGuards();
    int event[3];
    int total = 0;
    int e;
    for (e = 0; e < %(events)d; e++) {
        event[0] = e %% 16;
        event[1] = (e * 7) %% 16;
        event[2] = (e * 13) %% 16;
        total += dispatch(guards, %(nguards)d, event);
    }
    return total;
}
"""


def event_dispatcher_workload(nguards: int = 10, events: int = 150,
                              seed: int = 7) -> Workload:
    """Row 5: dispatch events against a run-time constant list of guard
    predicates; the guard loop is unrolled and each guard's type switch
    is resolved at stitch time."""
    guards = make_guards(nguards, seed)
    total = 0
    for e in range(events):
        event = [e % 16, (e * 7) % 16, (e * 13) % 16]
        for kind, arg, handler in guards:
            if kind == _GUARD_EQ:
                match = event[0] == arg
            elif kind == _GUARD_GT:
                match = event[1] > arg
            elif kind == _GUARD_MASK:
                match = (event[2] & arg) != 0
            else:
                match = True
            if match:
                total += handler
    flat = [value for guard in guards for value in guard]
    source = _DISPATCH_TEMPLATE % {
        "guard_words": len(flat),
        "guard_init": _array_init("guards", flat),
        "nguards": nguards,
        "events": events,
    }
    return Workload(
        name="event dispatcher",
        config="%d guards, %d events" % (nguards, events),
        source=source,
        region_func="dispatch",
        executions=events,
        unit="event dispatches",
        expected=total,
        notes="paper: 10 guards, speedup 1.4, breakeven 722 dispatches",
    )


# ---------------------------------------------------------------------------
# 5. QuickSort record sorter
# ---------------------------------------------------------------------------


def make_records(count: int, fields: int = 4,
                 seed: int = 42) -> List[List[int]]:
    rng = random.Random(seed)
    return [[rng.randrange(-25, 25) for _ in range(fields)]
            for _ in range(count)]


_SORTER_TEMPLATE = """
int nCompares;

// key kinds: 0 = ascending, 1 = descending, 2 = ascending by magnitude
int compare(int *recA, int *recB, int *keys, int nkeys) {
    nCompares = nCompares + 1;
    dynamicRegion (keys, nkeys) {
        int i;
        unrolled for (i = 0; i < nkeys; i++) {
            int off = keys[i * 2];
            int kind = keys[i * 2 + 1];
            int a = recA dynamic[ off ];
            int b = recB dynamic[ off ];
            switch (kind) {
                case 0:
                    if (a < b) return 0 - 1;
                    if (a > b) return 1;
                    break;
                case 1:
                    if (a > b) return 0 - 1;
                    if (a < b) return 1;
                    break;
                default:
                    a = iabs(a);
                    b = iabs(b);
                    if (a < b) return 0 - 1;
                    if (a > b) return 1;
            }
        }
        return 0;
    }
}

void quicksort(int **recs, int lo, int hi, int *keys, int nkeys) {
    if (lo >= hi) return;
    int *pivot = recs[(lo + hi) / 2];
    int i = lo;
    int j = hi;
    while (i <= j) {
        while (compare(recs[i], pivot, keys, nkeys) < 0) i++;
        while (compare(recs[j], pivot, keys, nkeys) > 0) j--;
        if (i <= j) {
            int *t = recs[i];
            recs[i] = recs[j];
            recs[j] = t;
            i++;
            j--;
        }
    }
    quicksort(recs, lo, j, keys, nkeys);
    quicksort(recs, i, hi, keys, nkeys);
}

int records[%(record_words)d];
void initRecords() {
%(record_init)s
}

int main() {
    initRecords();
    int n = %(count)d;
    int **recs = (int**) alloc(n);
    int i;
    for (i = 0; i < n; i++) recs[i] = records + i * %(fields)d;
    int keys[%(key_words)d];
%(key_init)s
    nCompares = 0;
    quicksort(recs, 0, n - 1, keys, %(nkeys)d);
    // Checksum the sorted order.  Uses |field0| so that records tied on
    // the full key (which quicksort may order either way) contribute
    // identically.
    int check = 0;
    for (i = 0; i < n; i++)
        check = (check * 3 + iabs(recs[i][0])) %% 1000003;
    print_int(nCompares);
    return check;
}
"""


def record_sorter_workload(count: int = 80,
                           keys: Optional[List[Tuple[int, int]]] = None,
                           fields: int = 4, seed: int = 42) -> Workload:
    """Rows 6-7: quicksort with a comparison routine specialized to the
    run-time constant key descriptors.

    A key is ``(field offset, kind)`` with kind 0 = ascending, 1 =
    descending, 2 = ascending by magnitude -- the paper's "keys, each
    of a different type", whose type dispatch the stitcher resolves.

    A final ascending key on field 0 is appended when absent, making
    the order total on the checksummed field (quicksort is unstable, so
    the checksum must not depend on how full-key ties land).
    """
    keys = list(keys) if keys is not None else [(0, 0)]
    if all(offset != 0 for offset, _ in keys):
        keys.append((0, 0))
    records = make_records(count, fields, seed)

    def key_value(record, off, kind):
        return abs(record[off]) if kind == 2 else record[off]

    def cmp_records(a, b):
        for off, kind in keys:
            va = key_value(a, off, kind)
            vb = key_value(b, off, kind)
            direction = -1 if kind == 1 else 1
            if va < vb:
                return -direction
            if va > vb:
                return direction
        return 0

    import functools
    ordered = sorted(records, key=functools.cmp_to_key(cmp_records))
    check = 0
    for record in ordered:
        check = (check * 3 + abs(record[0])) % 1000003
    flat_records = [v for record in records for v in record]
    flat_keys = [v for key in keys for v in key]
    source = _SORTER_TEMPLATE % {
        "record_words": len(flat_records),
        "record_init": _array_init("records", flat_records),
        "count": count,
        "fields": fields,
        "key_words": len(flat_keys),
        "key_init": "\n".join("    keys[%d] = %d;" % (i, v)
                              for i, v in enumerate(flat_keys)),
        "nkeys": len(keys),
    }
    return Workload(
        name="record sorter",
        config="%d records, %d key%s" % (count, len(keys),
                                         "s" if len(keys) != 1 else ""),
        source=source,
        region_func="compare",
        executions=-1,  # compare count is data dependent; read at run time
        unit="records",
        units_per_execution=0.0,  # filled by the harness from nCompares
        expected=check,
        notes="paper: 1000/2000 records, speedup 1.2, breakeven "
              "3050/4760 records",
    )


#: The five paper benchmarks in Table 2 row order (with the paper's two
#: configurations where it reports two).
def all_workloads(scale: float = 1.0,
                  seed: Optional[int] = None) -> List[Workload]:
    """The full Table 2/3 suite.

    With ``seed=None`` every stochastic workload keeps its historical
    fixed seed (1996/7/42 -- pinned by ``golden_accounting.json``).
    With a seed, all per-workload seeds derive from one
    ``random.Random(seed)`` stream, so the entire suite's input data
    is reproducible from that single number.
    """
    def scaled(value: int, minimum: int = 2) -> int:
        return max(minimum, int(value * scale))

    if seed is None:
        seeds: Dict[str, int] = {}
    else:
        rng = random.Random(seed)
        seeds = {name: rng.randrange(1 << 30)
                 for name in ("matvec_a", "matvec_b", "guards",
                              "records_a", "records_b")}

    def pick(name: str, default: int) -> int:
        return seeds.get(name, default)

    return [
        calculator_workload(xs=scaled(12), ys=scaled(12)),
        scalar_matrix_workload(rows=scaled(20), cols=scaled(40),
                               scalars=scaled(24)),
        sparse_matvec_workload(size=scaled(24), per_row=5,
                               reps=scaled(6),
                               seed=pick("matvec_a", 1996)),
        sparse_matvec_workload(size=scaled(12), per_row=3,
                               reps=scaled(6),
                               seed=pick("matvec_b", 1996)),
        event_dispatcher_workload(nguards=10, events=scaled(150),
                                  seed=pick("guards", 7)),
        record_sorter_workload(count=scaled(80), keys=[(0, 0)],
                               seed=pick("records_a", 42)),
        record_sorter_workload(count=scaled(80), keys=[(2, 1), (0, 2)],
                               seed=pick("records_b", 42)),
    ]
