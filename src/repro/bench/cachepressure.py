"""The cache-pressure benchmark: key cardinality vs cache capacity.

The paper's workloads never stress the code cache -- each region sees
a handful of keys and every version stays resident.  This workload
does the opposite: a keyed region whose stitched size *varies by key*
(the key bounds an unrolled loop) is driven by a pseudo-random key
sequence drawn from a configurable cardinality, under a bounded cache.
Sweeping cardinality against capacity exposes the cache-policy
economics the paper leaves implicit: the hit rate you give up and the
re-stitch cycles you pay for every entry of capacity you take away.

Variable entry sizes also make the free list fragment (a small freed
block cannot hold a big re-stitch), which is what drives the
compaction pass -- the CI smoke job uses this workload at a tiny
capacity to prove evictions and at least one compaction happen and
that results stay bit-identical to the unbounded run.

Run standalone::

    python -m repro.bench.cachepressure
    python -m repro.bench.cachepressure --policy lru --capacity 2 \\
        --executions 120 --cardinality 8 --trace pressure.json
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Optional

from ..codecache import CacheConfig
from ..errors import ArenaExhausted
from ..obs import trace as obs_trace
from ..runtime.engine import Program, compile_program

#: The key bounds an unrolled loop, so versions differ in size --
#: small keys stitch small entries, large keys big ones.  The key
#: sequence is skewed (half the entries go to two hot keys, half are
#: uniform over the full cardinality): a pure cyclic sequence is LRU's
#: pathological worst case (0% hits at any capacity below the
#: cardinality), which would flatten the sweep's hit-rate gradient.
#: The generator's PRNG state starts at ``seed`` so sweeps (and the
#: tiering bench) can draw deterministic, *distinct* key streams;
#: :data:`DEFAULT_SEED` reproduces the historical stream exactly.
SOURCE = """
int region(int k, int v) {
    int t = v;
    dynamicRegion key(k) (k) {
        int i;
        unrolled for (i = 0; i < k + 2; i++) t += i * k + 1;
        return t;
    }
}

int main(int n, int card, int seed) {
    int r = seed;
    int k = 0;
    int t = 0;
    int i;
    for (i = 0; i < n; i++) {
        r = (r * 29 + 13) % 64;
        if (r < 32) {
            k = r % 2 + card - 2;
        } else {
            k = r % card;
        }
        t = t + region(k, i);
    }
    return t;
}
"""

#: The historical hardcoded PRNG start (``int r = 7``).
DEFAULT_SEED = 7


def compile_pressure_program() -> Program:
    return compile_program(SOURCE, mode="dynamic")


def run_cell(program: Program, executions: int, cardinality: int,
             config: CacheConfig, seed: int = DEFAULT_SEED,
             tier=None) -> Dict[str, object]:
    """One sweep cell: run the key sequence under one cache config
    (and optionally one tiering policy)."""
    result = program.run("main", [executions, cardinality, seed],
                         cache=config, tier=tier)
    stats = result.cache_stats
    seen: set = set()
    restitch_cycles = 0
    for report in result.stitch_reports:
        if report.key in seen:
            restitch_cycles += report.cycles
        seen.add(report.key)
    entries = stats.hits + stats.misses
    return {
        "policy": config.describe(),
        "cardinality": cardinality,
        "capacity": config.max_entries,
        "value": result.value,
        "entries": entries,
        "hit_rate": stats.hits / entries if entries else 0.0,
        "stitches": len(result.stitch_reports),
        "restitches": stats.restitches,
        "restitch_cycles": restitch_cycles,
        "evictions": stats.evictions,
        "compactions": stats.compactions,
        "live_entries": stats.live_entries,
        "live_code_words": stats.live_code_words,
    }


def sweep(executions: int = 200,
          cardinalities: tuple = (4, 8, 16),
          capacities: tuple = (None, 8, 4, 2),
          policy: str = "lru",
          program: Optional[Program] = None,
          seed: int = DEFAULT_SEED) -> List[Dict[str, object]]:
    """The full sweep; ``None`` capacity means the unbounded baseline.
    Every bounded cell is checked bit-identical to its baseline.
    ``seed`` starts the skewed-key generator (default: the historical
    stream)."""
    program = program or compile_pressure_program()
    rows: List[Dict[str, object]] = []
    baselines: Dict[int, object] = {}
    for cardinality in cardinalities:
        for capacity in capacities:
            config = (CacheConfig() if capacity is None
                      else CacheConfig(policy=policy,
                                       max_entries=capacity))
            row = run_cell(program, executions, cardinality, config,
                           seed=seed)
            if capacity is None:
                baselines[cardinality] = row["value"]
            elif row["value"] != baselines.get(cardinality):
                raise AssertionError(
                    "cache pressure cell card=%d cap=%s changed the "
                    "result: %r != %r" % (cardinality, capacity,
                                          row["value"],
                                          baselines.get(cardinality)))
            rows.append(row)
    return rows


def format_sweep(rows: List[Dict[str, object]]) -> str:
    """The report printed after Table 3."""
    lines = [
        "Cache pressure: hit rate / re-stitch cycles vs capacity "
        "(keyed region, variable-size versions)",
        "",
        "%-10s %-18s %9s %9s %9s %12s %7s %9s"
        % ("keys", "cache", "entries", "hit rate", "stitches",
           "restitch cyc", "evicted", "compacted"),
    ]
    for row in rows:
        lines.append(
            "%-10d %-18s %9d %8.1f%% %9d %12d %7d %9d"
            % (row["cardinality"], row["policy"], row["entries"],
               100.0 * row["hit_rate"], row["stitches"],
               row["restitch_cycles"], row["evictions"],
               row["compactions"]))
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.cachepressure",
        description="Cache-pressure workload: keyed region under a "
                    "bounded code cache (the CI eviction/compaction "
                    "smoke).")
    parser.add_argument("--executions", type=int, default=120)
    parser.add_argument("--cardinality", type=int, default=8)
    parser.add_argument("--policy", default="lru",
                        choices=["lru", "cost-aware"])
    parser.add_argument("--capacity", type=int, default=2,
                        help="max live entries (default 2)")
    parser.add_argument("--words", type=int, default=None,
                        help="max live code words (optional)")
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED,
                        help="skewed-key generator seed (default %d, "
                             "the historical stream)" % DEFAULT_SEED)
    parser.add_argument("--sweep", action="store_true",
                        help="run the full cardinality x capacity sweep "
                             "instead of one cell")
    parser.add_argument("--trace", metavar="PATH", default=None,
                        help="write a Chrome trace (cache.evict / "
                             "cache.compact instants included)")
    parser.add_argument("--require-evictions", action="store_true",
                        help="exit non-zero unless the run evicted and "
                             "compacted at least once (CI smoke gate)")
    args = parser.parse_args(argv)

    tracer = obs_trace.Tracer() if args.trace else None
    if tracer is not None:
        obs_trace.install(tracer)
    try:
        program = compile_pressure_program()
        if args.sweep:
            rows = sweep(executions=args.executions, policy=args.policy,
                         program=program, seed=args.seed)
            print(format_sweep(rows))
            evictions = sum(int(r["evictions"]) for r in rows)
            compactions = sum(int(r["compactions"]) for r in rows)
        else:
            baseline = run_cell(program, args.executions,
                                args.cardinality, CacheConfig(),
                                seed=args.seed)
            cell = run_cell(program, args.executions, args.cardinality,
                            CacheConfig(policy=args.policy,
                                        max_entries=args.capacity,
                                        max_words=args.words),
                            seed=args.seed)
            if cell["value"] != baseline["value"]:
                print("FAIL: bounded run changed the program result: "
                      "%r != %r" % (cell["value"], baseline["value"]),
                      file=sys.stderr)
                return 1
            print(format_sweep([baseline, cell]))
            print()
            print("result %r identical to the unbounded baseline"
                  % cell["value"])
            evictions = int(cell["evictions"])
            compactions = int(cell["compactions"])
    except ArenaExhausted as exc:
        # A capacity/workload combination that outgrows the arena is a
        # configuration problem, not a crash: report what was asked for
        # and what was left, then fail the run cleanly.
        print("FAIL: code arena exhausted under this workload: %s" % exc,
              file=sys.stderr)
        print("      (shrink --executions/--cardinality or raise the "
              "capacity)", file=sys.stderr)
        return 1
    finally:
        if tracer is not None:
            obs_trace.install(None)
            tracer.write_chrome(args.trace)
            print("wrote trace: %s (%d events)"
                  % (args.trace, len(tracer.events)), file=sys.stderr)
    if args.require_evictions and (evictions == 0 or compactions == 0):
        print("FAIL: expected eviction+compaction pressure, got "
              "%d evictions, %d compactions" % (evictions, compactions),
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
