"""Regenerate the paper's tables from the command line.

Usage::

    python -m repro.bench                  # Table 2 + Table 3, default scale
    python -m repro.bench --scale 2.0      # larger problem sizes
    python -m repro.bench --fused          # fused-stitcher cost model
    python -m repro.bench --register-actions   # add the section 5 line
    python -m repro.bench --only calculator "record sorter"
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List

from ..machine.costs import FUSED_STITCHER
from ..obs import metrics as obs_metrics
from ..obs import trace as obs_trace
from ..runtime.engine import compile_program
from .harness import measure
from .reporting import format_breakeven, format_table2, format_table3
from .workloads import all_workloads, calculator_workload


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Reproduce Table 2 / Table 3 of 'Fast, Effective "
                    "Dynamic Compilation' (PLDI 1996).")
    parser.add_argument("--scale", type=float, default=1.0,
                        help="problem-size multiplier (default 1.0; the "
                             "paper's sizes are roughly 5-25x)")
    parser.add_argument("--fused", action="store_true",
                        help="use the fused-stitcher cost model")
    parser.add_argument("--backend", default=None, metavar="NAME",
                        help="execution backend for the measured runs "
                             "(rvm or pycode; simulated cycles are "
                             "identical either way)")
    parser.add_argument("--no-reachability", action="store_true",
                        help="disable the reachability analysis")
    parser.add_argument("--register-actions", action="store_true",
                        help="also measure the calculator with register "
                             "actions (the paper's 1.7 -> 4.1 result)")
    parser.add_argument("--only", nargs="*", default=None,
                        help="benchmark-name filter (substring match)")
    parser.add_argument("--seed", type=int, default=None,
                        help="derive every workload's input data from "
                             "this one seed (default: the historical "
                             "fixed per-workload seeds)")
    parser.add_argument("--trace", metavar="PATH", default=None,
                        help="record a Chrome trace of the measured "
                             "runs to PATH (load in Perfetto)")
    parser.add_argument("--metrics", action="store_true",
                        help="print the obs metrics snapshot after "
                             "measuring")
    parser.add_argument("--metrics-out", metavar="PATH", default=None,
                        help="write the final metrics snapshot as JSON "
                             "to PATH (implies metric collection)")
    parser.add_argument("--breakeven", action="store_true",
                        help="also print the live per-region break-even "
                             "table (python -m repro.obs report)")
    parser.add_argument("--no-cache-pressure", action="store_true",
                        help="skip the cache-pressure sweep that "
                             "follows Table 3")
    args = parser.parse_args(argv)

    from ..backends import get_backend
    try:
        backend_name = get_backend(args.backend).name
    except ValueError as exc:
        print("error: --backend %s" % exc, file=sys.stderr)
        return 2

    tracer = obs_trace.Tracer() if args.trace else None
    if tracer is not None:
        obs_trace.install(tracer)
    if args.metrics or args.metrics_out:
        obs_metrics.registry.enable()

    costs = FUSED_STITCHER if args.fused else None
    rows = []
    breakeven_sections = []
    try:
        for workload in all_workloads(scale=args.scale, seed=args.seed):
            if args.only and not any(sel.lower() in workload.name.lower()
                                     for sel in args.only):
                continue
            started = time.time()
            try:
                with obs_trace.span("bench.workload", "bench",
                                    workload=workload.name):
                    row = measure(workload, stitcher_costs=costs,
                                  use_reachability=not args.no_reachability,
                                  backend=args.backend)
            except Exception as exc:  # keep going; report the failure
                print("%-30s %-30s FAILED: %s: %s"
                      % (workload.name, workload.config,
                         type(exc).__name__, exc), file=sys.stderr)
                continue
            rows.append(row)
            if args.breakeven:
                from ..obs.breakeven import break_even_workload
                breakeven_sections.append(
                    "%s (%s)\n%s"
                    % (workload.name, workload.config,
                       format_breakeven(break_even_workload(
                           workload, stitcher_costs=costs,
                           use_reachability=not args.no_reachability))))
            print("measured %-30s %-32s (%.1fs, %s backend)"
                  % (workload.name, workload.config,
                     time.time() - started, backend_name),
                  file=sys.stderr)
    finally:
        if tracer is not None:
            obs_trace.install(None)
            tracer.write_chrome(args.trace)
            print("wrote trace: %s (%d events, %d dropped)"
                  % (args.trace, len(tracer.events), tracer.dropped),
                  file=sys.stderr)

    if not rows:
        print("nothing measured", file=sys.stderr)
        return 1
    print()
    print(format_table2(rows))
    print()
    print(format_table3(rows))

    if not args.no_cache_pressure and not args.only:
        from .cachepressure import (
            DEFAULT_SEED, compile_pressure_program, format_sweep, sweep,
        )
        started = time.time()
        pressure_seed = DEFAULT_SEED if args.seed is None else args.seed
        pressure_rows = sweep(executions=max(1, int(120 * args.scale)),
                              program=compile_pressure_program(),
                              seed=pressure_seed)
        print()
        print(format_sweep(pressure_rows))
        print("measured %-30s %-32s (%.1fs)"
              % ("cache pressure", "keyed region, lru sweep",
                 time.time() - started),
              file=sys.stderr)

    if breakeven_sections:
        print()
        print("break-even, live per region (Section 5):")
        print()
        print("\n\n".join(breakeven_sections))
    if args.metrics or args.metrics_out:
        snap = obs_metrics.registry.snapshot()
        if args.metrics:
            print()
            print(obs_metrics.format_snapshot(snap))
        if args.metrics_out:
            import json
            with open(args.metrics_out, "w") as handle:
                json.dump(snap, handle, indent=2, sort_keys=True)
                handle.write("\n")
            print("wrote metrics: %s" % args.metrics_out,
                  file=sys.stderr)
        obs_metrics.registry.disable()

    if args.register_actions:
        workload = calculator_workload()
        plain = measure(workload, stitcher_costs=costs,
                        backend=args.backend)
        program = compile_program(workload.source, mode="dynamic",
                                  stitcher_costs=costs,
                                  register_actions=True,
                                  backend=args.backend)
        result = program.run()
        breakdown = result.region_cycles("calc", 1, "dynamic")
        per_exec = (breakdown["stitched"] + breakdown["dispatch"]) \
            / workload.executions
        print()
        print("register actions (calculator): %.2fx -> %.2fx "
              "[paper: 1.7 -> 4.1]"
              % (plain.speedup, plain.static_per_execution / per_exec))
    return 0


if __name__ == "__main__":
    sys.exit(main())
