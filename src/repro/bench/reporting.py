"""Formatting benchmark measurements as the paper's tables."""

from __future__ import annotations

from typing import Dict, List

from .harness import BenchmarkMeasurement

#: Table 3 column order (the paper's headings).
TABLE3_COLUMNS = [
    ("constant_folding", "ConstFold"),
    ("static_branch_elimination", "BranchElim"),
    ("load_elimination", "LoadElim"),
    ("dead_code_elimination", "DeadCode"),
    ("complete_loop_unrolling", "Unroll"),
    ("strength_reduction", "StrengthRed"),
]


def format_table2(rows: List[BenchmarkMeasurement]) -> str:
    """Render measurements in the shape of the paper's Table 2."""
    header = (
        "%-28s %-30s %9s %12s %22s %12s %10s"
        % ("Benchmark", "Configuration", "Speedup", "Breakeven",
           "Overhead(setup/stitch)", "Cyc/Instr", "Stitched")
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        breakeven = row.breakeven_executions
        breakeven_str = ("%d %s" % (round(row.breakeven_paper_units),
                                    row.workload.unit)
                         if breakeven is not None else "never")
        lines.append(
            "%-28s %-30s %8.2fx %12s %10d / %9d %11.0f %10d"
            % (
                row.workload.name[:28],
                row.workload.config[:30],
                row.speedup,
                breakeven_str[:12],
                row.setup_cycles,
                row.stitcher_cycles,
                row.cycles_per_stitched_instr,
                row.instrs_stitched,
            )
        )
        lines.append(
            "%-28s %-30s   (static %.0f vs dynamic %.0f cycles/execution)"
            % ("", "", row.static_per_execution, row.dynamic_per_execution)
        )
    return "\n".join(lines)


def format_table3(rows: List[BenchmarkMeasurement]) -> str:
    """Render the optimizations-applied matrix (paper's Table 3)."""
    header = "%-34s" % "Benchmark" + "".join(
        " %-12s" % title for _, title in TABLE3_COLUMNS)
    lines = [header, "-" * len(header)]
    seen = set()
    for row in rows:
        name = row.workload.name
        if name in seen:
            continue  # one Table 3 row per benchmark, like the paper
        seen.add(name)
        cells = "".join(
            " %-12s" % ("yes" if row.optimizations.get(key) else "-")
            for key, _ in TABLE3_COLUMNS)
        lines.append("%-34s%s" % (name[:34], cells))
    return "\n".join(lines)


def table3_dict(rows: List[BenchmarkMeasurement]) -> Dict[str, Dict[str, bool]]:
    result: Dict[str, Dict[str, bool]] = {}
    for row in rows:
        result.setdefault(row.workload.name, row.optimizations)
    return result


def format_breakeven(rows) -> str:
    """Render per-region break-even rows (:mod:`repro.obs.breakeven`)
    as the paper's Table 2, one line per dynamic region.

    When any row carries tiering data (an adaptive dynamic run), two
    extra columns compare the tier controller's *predicted* break-even
    point against the measured one, plus the cold-entry count -- the
    predicted-vs-actual amortization check.  Eager reports render
    exactly as before.
    """
    tiered = any(getattr(row, "predicted_breakeven", None) is not None
                 or getattr(row, "cold_entries", 0) for row in rows)
    header = ("%-22s %8s %8s %8s %9s %9s %9s %10s %9s"
              % ("region", "execs", "stitches", "hits", "stat/ex",
                 "dyn/ex", "speedup", "overhead", "breakeven"))
    if tiered:
        header += " %9s %6s" % ("predicted", "cold")
    lines = [header, "-" * len(header)]
    for row in rows:
        breakeven = row.breakeven_runs
        line = (
            "%-22s %8d %8d %8d %9.1f %9.1f %8.2fx %10d %9s"
            % ("%s:%d" % (row.func_name, row.region_id),
               row.executions, row.stitches, row.cache_hits,
               row.static_per_exec, row.dynamic_per_exec, row.speedup,
               row.overhead_cycles,
               str(breakeven) if breakeven is not None else "never"))
        if tiered:
            predicted = getattr(row, "predicted_breakeven", None)
            line += " %9s %6d" % (
                str(predicted) if predicted is not None else "-",
                getattr(row, "cold_entries", 0))
        lines.append(line)
        lines.append(
            "%-22s %8s %8s %8s   (%d instrs stitched, %.1f overhead "
            "cycles/instr)"
            % ("", "", "", "", row.instrs_stitched,
               row.cycles_per_stitched_instr))
    return "\n".join(lines)
