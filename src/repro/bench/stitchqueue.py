"""Stitch-queue measurement core: the async storm and the hang gate.

Shared by ``benchmarks/bench_stitchqueue.py`` (the CI gate script)
and the flight recorder's ``stitchqueue`` collector
(:mod:`repro.obs.history`), so the trajectory file and the gate
script measure exactly the same cells.

Everything here is bit-deterministic simulated cycles -- the async
queue drains on logical clocks (region entries / simulated cycles),
so two runs of a cell produce identical numbers on any machine.
"""

from __future__ import annotations

from typing import Dict, List

from ..faults import FaultPlan
from ..runtime.engine import compile_program
from .cachepressure import DEFAULT_SEED, compile_pressure_program

#: (executions, cardinality, seed, stitch spec) cells: the same skewed
#: key streams the cache/tiering benches use, under queue configs that
#: exercise the drain cadence and (at depth 2) the shed path.
CELLS = [
    (120, 8, DEFAULT_SEED, "async"),
    (120, 8, DEFAULT_SEED, "async:drain=2,depth=2"),
    (160, 12, DEFAULT_SEED, "async:drain=8,batch=2"),
]

#: Two independent keyed regions: the hang gate scopes
#: ``stitch.hang`` to ``rega`` and demands ``regb`` keeps landing.
TWO_REGION_SOURCE = """
int rega(int k, int v) {
    int t = v;
    dynamicRegion key(k) (k) { int r = t * 3 + k * 5; return r; }
}

int regb(int k, int v) {
    int t = v;
    dynamicRegion key(k) (k) { int r = t * 7 + k * 2; return r; }
}

int main(int n) {
    int t = 0;
    int i;
    for (i = 0; i < n; i++) {
        t = t + rega(i % 3, i) + regb(i % 4, i);
    }
    return t;
}
"""


def measure() -> List[Dict[str, object]]:
    """The latency-economics cells: async vs sync on one compiled
    program, bit-identical results enforced."""
    program = compile_pressure_program()
    rows: List[Dict[str, object]] = []
    for executions, cardinality, seed, spec in CELLS:
        args = [executions, cardinality, seed]
        sync = program.run("main", list(args))
        run = program.run("main", list(args), stitch=spec)
        if run.value != sync.value:
            raise AssertionError(
                "async run changed the result: %r != %r (cell %r %s)"
                % (run.value, sync.value, args, spec))
        qs = run.queue_stats
        assert qs is not None, "async run recorded no queue stats"
        lats = sorted(qs.land_latencies)
        delta_pct = (run.cycles - sync.cycles) / sync.cycles * 100.0
        rows.append({
            "cell": "n=%d card=%d seed=%d %s"
                    % (executions, cardinality, seed, spec),
            "sync_cycles": sync.cycles,
            "async_cycles": run.cycles,
            "delta_pct": round(delta_pct, 3),
            "enqueued": qs.enqueued,
            "landed": qs.landed,
            "shed": qs.shed,
            "shed_rate": round(qs.shed / qs.enqueued, 6)
                         if qs.enqueued else 0.0,
            "expired": qs.expired,
            "cancelled": qs.total_cancelled,
            "queued_entries": len(run.queued_entries),
            "latency_min": lats[0] if lats else 0,
            "latency_median": lats[len(lats) // 2] if lats else 0,
            "latency_max": lats[-1] if lats else 0,
        })
    return rows


def hang_gate(deadline: int = 5_000,
              executions: int = 60) -> Dict[str, object]:
    """Chaos cell: every ``rega`` stitch hangs; the run must complete
    with the correct value while ``regb`` still lands.

    The deadline is tuned against the drain cadence: long enough for
    healthy ``regb`` jobs to land (batch=2 promotes two jobs per
    drain), short enough that hung ``rega`` jobs expire well inside
    the run so the watchdog and breaker observably fire."""
    program = compile_program(TWO_REGION_SOURCE, mode="dynamic")
    baseline = program.run("main", [executions])
    run = program.run(
        "main", [executions],
        fault_plan=FaultPlan.parse("stitch.hang[rega]:1.0"),
        stitch="async:drain=2,batch=2,deadline=%d" % deadline)
    qs = run.queue_stats
    assert qs is not None
    landed_funcs = sorted({r.func_name for r in run.stitch_reports})
    breaker_trips = sum(s["trips"]
                        for s in run.breaker_stats.values())
    return {
        "value_ok": run.value == baseline.value,
        "completed_cycles": run.cycles,
        "hung": qs.hung,
        "expired": qs.expired,
        "cancelled": qs.total_cancelled,
        "pending": qs.pending,
        "breaker_trips": breaker_trips,
        "landed_funcs": landed_funcs,
        "hang_faults": run.fault_counts.get("stitch.hang", 0),
    }


def check_hang(row: Dict[str, object]) -> List[str]:
    """The hang gate's failure conditions (empty = pass)."""
    failures = []
    if not row["value_ok"]:
        failures.append("hung region changed the program result")
    if row["hang_faults"] == 0 or row["hung"] != row["hang_faults"]:
        failures.append("expected every rega stitch to hang (faults=%s "
                        "hung=%s)" % (row["hang_faults"], row["hung"]))
    if row["expired"] == 0:
        failures.append("watchdog never expired a hung job")
    if row["breaker_trips"] == 0:
        failures.append("breaker never tripped on the hung region")
    if "regb" not in row["landed_funcs"]:
        failures.append("healthy region regb landed no stitches")
    if "rega" in row["landed_funcs"]:
        failures.append("hung region rega landed a stitch")
    return failures
