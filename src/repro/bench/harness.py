"""Measurement harness reproducing the paper's Table 2 metrics.

For one workload, the harness compiles the program twice (static
baseline and dynamic), runs both on the VM, and derives:

* *asymptotic speedup* -- static region cycles per execution divided by
  dynamic region cycles per execution (stitched code + dispatch);
* *dynamic compilation overhead* -- one-time set-up code cycles and
  stitcher cycles (the paper's "set-up & stitcher" column);
* *breakeven point* -- the smallest number of executions at which the
  dynamic version's total cost undercuts the static version's, i.e.
  ``ceil(overhead / (static_per_exec - dynamic_per_exec))``;
* *cycles per stitched instruction* and the stitched instruction count;
* the Table 3 row: which dynamic optimizations were applied.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..machine.costs import StitcherCosts
from ..opt.pipeline import OptOptions
from ..runtime.engine import Program, RunResult, compile_program
from .workloads import Workload


@dataclass
class BenchmarkMeasurement:
    """One Table 2 row (plus its Table 3 row)."""

    workload: Workload
    executions: int
    static_cycles: int
    dynamic_stitched_cycles: int
    dynamic_dispatch_cycles: int
    setup_cycles: int
    stitcher_cycles: int
    instrs_stitched: int
    stitches: int
    optimizations: Dict[str, bool] = field(default_factory=dict)
    static_result: Optional[RunResult] = None
    dynamic_result: Optional[RunResult] = None

    # -- derived metrics --------------------------------------------------

    @property
    def static_per_execution(self) -> float:
        return self.static_cycles / max(1, self.executions)

    @property
    def dynamic_per_execution(self) -> float:
        return (self.dynamic_stitched_cycles + self.dynamic_dispatch_cycles) \
            / max(1, self.executions)

    @property
    def speedup(self) -> float:
        if self.dynamic_per_execution == 0:
            return float("inf")
        return self.static_per_execution / self.dynamic_per_execution

    @property
    def overhead(self) -> int:
        """One-time dynamic compilation cost (set-up + stitcher)."""
        return self.setup_cycles + self.stitcher_cycles

    @property
    def breakeven_executions(self) -> Optional[int]:
        """Executions needed before dynamic compilation pays off, or
        None when the dynamic version never wins."""
        gain = self.static_per_execution - self.dynamic_per_execution
        if gain <= 0:
            return None
        return math.ceil(self.overhead / gain)

    @property
    def breakeven_paper_units(self) -> Optional[float]:
        b = self.breakeven_executions
        if b is None:
            return None
        return b * self.workload.units_per_execution

    @property
    def cycles_per_stitched_instr(self) -> float:
        return self.overhead / max(1, self.instrs_stitched)


def measure(workload: Workload,
            opt_options: Optional[OptOptions] = None,
            stitcher_costs: Optional[StitcherCosts] = None,
            use_reachability: bool = True,
            max_cycles: int = 4_000_000_000,
            backend: Optional[str] = None) -> BenchmarkMeasurement:
    """Compile and run ``workload`` in both modes; returns the row.

    ``backend`` picks the execution backend for both runs.  The
    measured quantities are simulated cycles, which the backend seam
    guarantees are backend-invariant -- the knob exists so the bench
    can double as a backend cross-check (and to measure host time
    under either backend)."""
    static_program = compile_program(workload.source, mode="static",
                                     opt_options=opt_options,
                                     backend=backend)
    dynamic_program = compile_program(workload.source, mode="dynamic",
                                      opt_options=opt_options,
                                      use_reachability=use_reachability,
                                      stitcher_costs=stitcher_costs,
                                      backend=backend)
    static_result = static_program.run(max_cycles=max_cycles)
    dynamic_result = dynamic_program.run(max_cycles=max_cycles)
    if static_result.value != dynamic_result.value:
        raise AssertionError(
            "%s: static result %d != dynamic result %d"
            % (workload.name, static_result.value, dynamic_result.value))
    if workload.expected is not None and \
            static_result.value != workload.expected:
        raise AssertionError(
            "%s: result %d != expected %d"
            % (workload.name, static_result.value, workload.expected))

    executions = workload.executions
    if executions < 0:
        # Data-dependent execution count printed by the program
        # (e.g. the sorter's comparison counter).
        executions = int(dynamic_result.output[0])
        if workload.unit == "records" and executions:
            # convert "comparisons" to the paper's "records" unit
            records = int(workload.config.split()[0])
            workload.units_per_execution = records / executions

    func = workload.region_func
    rid = workload.region_id
    static_region = static_result.region_cycles(func, rid, "static")
    dynamic_region = dynamic_result.region_cycles(func, rid, "dynamic")

    optimizations: Dict[str, bool] = {
        "constant_folding": False,
        "static_branch_elimination": False,
        "load_elimination": False,
        "dead_code_elimination": False,
        "complete_loop_unrolling": False,
        "strength_reduction": False,
    }
    instrs_stitched = 0
    for report in dynamic_result.stitch_reports:
        if report.func_name != func or report.region_id != rid:
            continue
        instrs_stitched += report.instrs_emitted
        for key, value in report.optimizations_applied().items():
            optimizations[key] = optimizations.get(key, False) or value
    # Load elimination is a static property: constant loads moved into
    # set-up code, leaving the template without them.
    for plan in dynamic_program.plans:
        if plan.func_name == func and plan.region_id == rid:
            from ..ir.instructions import Load
            ir_func = None  # plans keep only names; check compiled setup
            optimizations["load_elimination"] = \
                _setup_has_loads(dynamic_program, plan)

    return BenchmarkMeasurement(
        workload=workload,
        executions=executions,
        static_cycles=static_region.get("region", 0),
        dynamic_stitched_cycles=dynamic_region.get("stitched", 0),
        dynamic_dispatch_cycles=dynamic_region.get("dispatch", 0),
        setup_cycles=dynamic_region.get("setup", 0),
        stitcher_cycles=dynamic_region.get("stitcher", 0),
        instrs_stitched=instrs_stitched,
        stitches=len([r for r in dynamic_result.stitch_reports
                      if r.func_name == func and r.region_id == rid]),
        optimizations=optimizations,
        static_result=static_result,
        dynamic_result=dynamic_result,
    )


def _setup_has_loads(program: Program, plan) -> bool:
    """Did constant loads move to set-up code (paper's load
    elimination)?  Checked on the compiled set-up blocks."""
    compiled = program.compiled.get(plan.func_name)
    if compiled is None:
        return False
    owner = "setup:%s:%d" % (plan.func_name, plan.region_id)
    return any(instr.owner == owner and instr.op in ("ldq", "ldt")
               for instr in compiled.code)
