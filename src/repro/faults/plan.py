"""Deterministic fault injection: the seeded :class:`FaultPlan`.

A plan maps *fault sites* -- named points in the dynamic-compilation
pipeline -- to firing probabilities.  Each site consults the plan
(:meth:`FaultPlan.should_fire`) at the moment the real failure could
occur; when the draw fires, the site raises the same *typed* error a
genuine failure would raise, tagged ``injected = True`` (see
:func:`repro.errors.mark_injected`).  The engine's graceful-degradation
tier catches it and transfers the region to fallback execution, and the
differential oracle proves that (a) execution still matches the
interpreter bit-for-bit and (b) every injected fault is matched by an
observed fallback or checksum retry.

Determinism: the plan owns one seeded ``random.Random``; a draw is
consumed only at sites with a configured non-zero probability, in
execution order, so a given (program, seed, spec) triple always
injects the same faults.  A plan is single-run state -- the oracle
builds a fresh plan per run.

Fault-site catalog (see ``docs/ROBUSTNESS.md``):

====================  ====================================================
``stitch.table``      run-time-constants table / loop-record read
``stitch.hole``       hole patching inside the stitcher
``arena.pool``        constant-pool arena allocation at install
``arena.code``        code arena placement at install
``cache.compact``     the compaction pass
``cache.checksum``    cached-entry checksum verification on a hit
``tier.flip``         an adaptive tiering promotion decision
====================  ====================================================

All sites except ``cache.checksum`` and ``tier.flip`` raise;
``cache.checksum`` instead makes the verification *report a
mismatch*, exercising the invalidate-and-restitch recovery path, and
``tier.flip`` *inverts* a tiering promotion decision (promote what
would stay cold, or vice versa) -- an economically wrong but
semantically neutral perturbation that the oracle uses to prove
tiered execution is correct under any promotion schedule.
``tier.flip`` is consulted only by adaptive runs (``--tier`` other
than eager), so configuring it never perturbs eager fault schedules.
"""

from __future__ import annotations

import random
from typing import Dict, Optional

from ..obs import trace as obs_trace
from ..obs.metrics import registry as obs_metrics

#: Every site a plan may configure, in pipeline order.
FAULT_SITES = (
    "stitch.table",
    "stitch.hole",
    "arena.pool",
    "arena.code",
    "cache.compact",
    "cache.checksum",
    "tier.flip",
)


class FaultPlan:
    """Seeded, probabilistic fault schedule over the named sites."""

    def __init__(self, probabilities: Dict[str, float], seed: int = 0,
                 limit: Optional[int] = None):
        for site, prob in probabilities.items():
            if site not in FAULT_SITES:
                raise ValueError("unknown fault site %r (have: %s)"
                                 % (site, ", ".join(FAULT_SITES)))
            if not 0.0 <= prob <= 1.0:
                raise ValueError("fault probability for %s out of "
                                 "[0, 1]: %r" % (site, prob))
        self.probabilities = dict(probabilities)
        self.seed = seed
        #: stop injecting after this many total faults (None: no cap).
        self.limit = limit
        self._rng = random.Random(seed)
        #: site -> faults actually injected.
        self.counts: Dict[str, int] = {}

    # -- construction ------------------------------------------------------

    @classmethod
    def parse(cls, spec: Optional[str], seed: int = 0,
              limit: Optional[int] = None) -> Optional["FaultPlan"]:
        """``"all:P"`` or ``"site:p,site:p"``, optionally ``"...@SEED"``.

        ``None``, ``""`` and ``"off"`` mean no plan (returns None).
        """
        if spec is None:
            return None
        spec = spec.strip()
        if not spec or spec == "off":
            return None
        if "@" in spec:
            spec, _, seed_text = spec.rpartition("@")
            try:
                seed = int(seed_text)
            except ValueError:
                raise ValueError("bad fault-plan seed %r" % seed_text)
        probabilities: Dict[str, float] = {}
        for clause in spec.split(","):
            clause = clause.strip()
            if not clause:
                continue
            site, sep, prob_text = clause.partition(":")
            if not sep:
                raise ValueError("bad fault clause %r (want SITE:PROB)"
                                 % clause)
            try:
                prob = float(prob_text)
            except ValueError:
                raise ValueError("bad fault probability %r in %r"
                                 % (prob_text, clause))
            if site == "all":
                for name in FAULT_SITES:
                    probabilities[name] = prob
            else:
                probabilities[site] = prob
        return cls(probabilities, seed=seed, limit=limit)

    def describe(self) -> str:
        if set(self.probabilities) == set(FAULT_SITES) and \
                len(set(self.probabilities.values())) == 1:
            text = "all:%g" % next(iter(self.probabilities.values()))
        else:
            text = ",".join("%s:%g" % (site, self.probabilities[site])
                            for site in FAULT_SITES
                            if site in self.probabilities)
        return "%s@%d" % (text, self.seed)

    # -- the one runtime question ------------------------------------------

    @property
    def total_injected(self) -> int:
        return sum(self.counts.values())

    def should_fire(self, site: str) -> bool:
        """Consult the plan at ``site``; count and report a firing.

        Sites with no configured (or zero) probability consume no
        randomness, so adding instrumentation to new sites never
        perturbs existing seeded schedules.
        """
        prob = self.probabilities.get(site)
        if not prob:
            return False
        if self.limit is not None and self.total_injected >= self.limit:
            return False
        if self._rng.random() >= prob:
            return False
        self.counts[site] = self.counts.get(site, 0) + 1
        if obs_metrics._enabled:
            obs_metrics.counter("fault.injected").labels(site=site).inc()
            obs_metrics.counter("fault.injected.%s" % site).inc()
        if obs_trace._current is not None:
            obs_trace.instant("fault.inject", "faults", site=site,
                              nth=self.total_injected)
        return True
