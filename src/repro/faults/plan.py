"""Deterministic fault injection: the seeded :class:`FaultPlan`.

A plan maps *fault sites* -- named points in the dynamic-compilation
pipeline -- to firing probabilities.  Each site consults the plan
(:meth:`FaultPlan.should_fire`) at the moment the real failure could
occur; when the draw fires, the site raises the same *typed* error a
genuine failure would raise, tagged ``injected = True`` (see
:func:`repro.errors.mark_injected`).  The engine's graceful-degradation
tier catches it and transfers the region to fallback execution, and the
differential oracle proves that (a) execution still matches the
interpreter bit-for-bit and (b) every injected fault is matched by an
observed fallback or checksum retry.

Determinism: the plan owns one seeded ``random.Random``; a draw is
consumed only at sites with a configured non-zero probability, in
execution order, so a given (program, seed, spec) triple always
injects the same faults.  A plan is single-run state -- the oracle
builds a fresh plan per run.

Fault-site catalog (see ``docs/ROBUSTNESS.md``):

====================  ====================================================
``stitch.table``      run-time-constants table / loop-record read
``stitch.hole``       hole patching inside the stitcher
``arena.pool``        constant-pool arena allocation at install
``arena.code``        code arena placement at install
``cache.compact``     the compaction pass
``cache.checksum``    cached-entry checksum verification on a hit
``tier.flip``         an adaptive tiering promotion decision
``queue.drop``        an async stitch-queue enqueue (job silently lost)
``stitch.hang``       an async stitch job's landing (job wedges)
====================  ====================================================

All sites except ``cache.checksum``, ``tier.flip``, ``queue.drop``
and ``stitch.hang`` raise; ``cache.checksum`` instead makes the
verification *report a mismatch*, exercising the
invalidate-and-restitch recovery path, and ``tier.flip`` *inverts* a
tiering promotion decision (promote what would stay cold, or vice
versa) -- an economically wrong but semantically neutral perturbation
that the oracle uses to prove tiered execution is correct under any
promotion schedule.  ``tier.flip`` is consulted only by adaptive runs
(``--tier`` other than eager), and the two queue sites only by async
runs (``--stitch-mode async``) -- ``queue.drop`` eats an enqueue (an
injected shed) and ``stitch.hang`` wedges a ready job until the
watchdog's deadline clears it -- so configuring them never perturbs
other runs' seeded fault schedules.

A clause may scope a site to one region with bracket syntax --
``stitch.hang[region]:1.0`` (every region of function ``region``) or
``stitch.hang[region.1]:1.0`` (just region 1) -- which is how the
chaos gate hangs a single region's compilation while proving its
siblings still land stitches.  Scope matching is deterministic and
consumes no randomness when the region does not match.
"""

from __future__ import annotations

import random
from typing import Dict, Optional

from ..obs import trace as obs_trace
from ..obs.metrics import registry as obs_metrics

#: Every site a plan may configure, in pipeline order.
FAULT_SITES = (
    "stitch.table",
    "stitch.hole",
    "arena.pool",
    "arena.code",
    "cache.compact",
    "cache.checksum",
    "tier.flip",
    "queue.drop",
    "stitch.hang",
)

#: Sites that recover without raising a typed error (no injected
#: fallback event): checksum reports a mismatch, tier.flip inverts a
#: decision, queue.drop sheds a job, stitch.hang wedges one.  The
#: oracle's fault accounting excludes them from the raised set.
NON_RAISING_SITES = frozenset(
    ("cache.checksum", "tier.flip", "queue.drop", "stitch.hang"))


class FaultPlan:
    """Seeded, probabilistic fault schedule over the named sites."""

    def __init__(self, probabilities: Dict[str, float], seed: int = 0,
                 limit: Optional[int] = None,
                 scopes: Optional[Dict[str, str]] = None):
        for site, prob in probabilities.items():
            if site not in FAULT_SITES:
                raise ValueError("unknown fault site %r (have: %s)"
                                 % (site, ", ".join(FAULT_SITES)))
            if not 0.0 <= prob <= 1.0:
                raise ValueError("fault probability for %s out of "
                                 "[0, 1]: %r" % (site, prob))
        self.probabilities = dict(probabilities)
        #: site -> region scope ("func" or "func.id"); a scoped site
        #: only fires at sites consulted for a matching region.
        self.scopes = dict(scopes or {})
        for site in self.scopes:
            if site not in self.probabilities:
                raise ValueError("scope for unconfigured site %r" % site)
        self.seed = seed
        #: stop injecting after this many total faults (None: no cap).
        self.limit = limit
        self._rng = random.Random(seed)
        #: site -> faults actually injected.
        self.counts: Dict[str, int] = {}

    # -- construction ------------------------------------------------------

    @classmethod
    def parse(cls, spec: Optional[str], seed: int = 0,
              limit: Optional[int] = None) -> Optional["FaultPlan"]:
        """``"all:P"`` or ``"site:p,site:p"``, optionally ``"...@SEED"``;
        a site may carry a region scope, ``"site[func.id]:p"``.

        ``None``, ``""`` and ``"off"`` mean no plan (returns None).
        ``all`` expands over :data:`FAULT_SITES`, so newly added sites
        are covered without touching any caller.
        """
        if spec is None:
            return None
        spec = spec.strip()
        if not spec or spec == "off":
            return None
        if "@" in spec:
            spec, _, seed_text = spec.rpartition("@")
            try:
                seed = int(seed_text)
            except ValueError:
                raise ValueError("bad fault-plan seed %r" % seed_text)
        probabilities: Dict[str, float] = {}
        scopes: Dict[str, str] = {}
        for clause in spec.split(","):
            clause = clause.strip()
            if not clause:
                continue
            site, sep, prob_text = clause.partition(":")
            if not sep:
                raise ValueError("bad fault clause %r (want SITE:PROB)"
                                 % clause)
            scope = None
            if site.endswith("]") and "[" in site:
                site, _, scope_text = site[:-1].partition("[")
                scope = scope_text.strip()
                if not scope:
                    raise ValueError("empty region scope in %r" % clause)
            try:
                prob = float(prob_text)
            except ValueError:
                raise ValueError("bad fault probability %r in %r"
                                 % (prob_text, clause))
            if site == "all":
                if scope is not None:
                    raise ValueError("'all' cannot carry a region scope")
                for name in FAULT_SITES:
                    probabilities[name] = prob
            else:
                probabilities[site] = prob
                if scope is not None:
                    scopes[site] = scope
                else:
                    scopes.pop(site, None)
        return cls(probabilities, seed=seed, limit=limit, scopes=scopes)

    def describe(self) -> str:
        """A spec string that parses back to this plan (site order,
        scopes and seed included) -- parity with
        :meth:`repro.runtime.tiering.TierPolicy.describe`."""
        if set(self.probabilities) == set(FAULT_SITES) and \
                len(set(self.probabilities.values())) == 1 and \
                not self.scopes:
            text = "all:%g" % next(iter(self.probabilities.values()))
        else:
            clauses = []
            for site in FAULT_SITES:
                if site not in self.probabilities:
                    continue
                scope = self.scopes.get(site)
                name = "%s[%s]" % (site, scope) if scope else site
                clauses.append("%s:%g" % (name, self.probabilities[site]))
            text = ",".join(clauses)
        return "%s@%d" % (text, self.seed)

    def _scope_matches(self, site: str, region) -> bool:
        scope = self.scopes.get(site)
        if scope is None:
            return True
        if region is None:
            return False
        func, region_id = region
        if "." in scope:
            func_part, _, id_part = scope.rpartition(".")
            return func == func_part and str(region_id) == id_part
        return func == scope

    # -- the one runtime question ------------------------------------------

    @property
    def total_injected(self) -> int:
        return sum(self.counts.values())

    def should_fire(self, site: str, region=None) -> bool:
        """Consult the plan at ``site``; count and report a firing.

        Sites with no configured (or zero) probability consume no
        randomness, so adding instrumentation to new sites never
        perturbs existing seeded schedules.  A scoped site likewise
        consumes none when ``region`` -- a ``(func, region_id)`` pair
        -- does not match its scope.
        """
        prob = self.probabilities.get(site)
        if not prob:
            return False
        if not self._scope_matches(site, region):
            return False
        if self.limit is not None and self.total_injected >= self.limit:
            return False
        if self._rng.random() >= prob:
            return False
        self.counts[site] = self.counts.get(site, 0) + 1
        if obs_metrics._enabled:
            obs_metrics.counter("fault.injected").labels(site=site).inc()
            obs_metrics.counter("fault.injected.%s" % site).inc()
        if obs_trace._current is not None:
            obs_trace.instant("fault.inject", "faults", site=site,
                              nth=self.total_injected)
        return True
