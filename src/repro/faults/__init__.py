"""Deterministic fault injection for the graceful-degradation tier.

See :mod:`repro.faults.plan` for the site catalog and semantics, and
``docs/ROBUSTNESS.md`` for the degradation ladder the injected faults
exercise.
"""

from .plan import FAULT_SITES, NON_RAISING_SITES, FaultPlan

__all__ = ["FAULT_SITES", "NON_RAISING_SITES", "FaultPlan"]
