"""Block-level liveness analysis for (non-SSA) IR temps.

Backward dataflow producing live-in/live-out sets per block; feeds the
linear-scan register allocator's interval construction.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from ..ir.cfg import Function
from ..ir.instructions import Phi
from ..ir.values import Temp


def block_use_def(func: Function) -> Dict[str, Tuple[Set[str], Set[str]]]:
    """Per block: (upward-exposed uses, defs)."""
    result: Dict[str, Tuple[Set[str], Set[str]]] = {}
    for name, block in func.blocks.items():
        uses: Set[str] = set()
        defs: Set[str] = set()
        for instr in block.all_instrs():
            if isinstance(instr, Phi):
                raise ValueError(
                    "liveness expects phi-free IR (run from_ssa first)")
            for value in instr.uses():
                if isinstance(value, Temp) and value.name not in defs:
                    uses.add(value.name)
            dst = instr.defs()
            if dst is not None:
                defs.add(dst.name)
        result[name] = (uses, defs)
    return result


def liveness(func: Function) -> Tuple[Dict[str, Set[str]], Dict[str, Set[str]]]:
    """Returns (live_in, live_out) per block."""
    use_def = block_use_def(func)
    live_in: Dict[str, Set[str]] = {name: set() for name in func.blocks}
    live_out: Dict[str, Set[str]] = {name: set() for name in func.blocks}
    order: List[str] = func.rpo()
    changed = True
    while changed:
        changed = False
        for name in reversed(order):
            block = func.blocks[name]
            out: Set[str] = set()
            for succ in block.successors():
                out |= live_in[succ]
            uses, defs = use_def[name]
            new_in = uses | (out - defs)
            if out != live_out[name] or new_in != live_in[name]:
                live_out[name] = out
                live_in[name] = new_in
                changed = True
    return live_in, live_out
