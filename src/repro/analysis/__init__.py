"""The paper's dataflow analyses: run-time constants + reachability."""

from .conditions import Condition, FALSE, TRUE, exclusive
from .liveness import liveness
from .rtconst import RegionAnalysis, analyze_region

__all__ = [
    "Condition", "FALSE", "RegionAnalysis", "TRUE", "analyze_region",
    "exclusive", "liveness",
]
