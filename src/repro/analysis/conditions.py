"""Reachability conditions: disjunctions of conjunctions of branch outcomes.

The paper (section 3.1 / appendix A.2) represents the condition under
which a program point executes as a set of sets of *branch conditions*
``B -> S`` ("run-time constant branch B takes successor S").  The outer
set is a disjunction, each inner set a conjunction.  ``{{}}`` (one empty
conjunction) is *true*; ``{}`` (no disjuncts) is *false* / unreachable.

Two conditions are mutually exclusive when every pair of disjuncts
contains contradictory atoms -- the test that lets a control-flow merge
use the idempotent phi rule even in unstructured graphs.

The worst-case size of a condition is exponential in the number of
constant branches (the paper notes sizes stay small in practice); a
disjunct-count cap widens oversized conditions to *true*, which is safe
(it only makes merges look non-exclusive, i.e. more conservative).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Tuple

from ..obs.metrics import registry as obs_metrics

#: One atom: the run-time-constant branch terminating block ``block``
#: goes to successor ``succ``.
Atom = Tuple[str, str]

#: A conjunction of atoms.
Conjunct = FrozenSet[Atom]

#: Maximum number of disjuncts before widening to TRUE.
MAX_DISJUNCTS = 64


@dataclass(frozen=True)
class Condition:
    """An immutable reachability condition in disjunctive normal form."""

    disjuncts: FrozenSet[Conjunct]

    def is_true(self) -> bool:
        return frozenset() in self.disjuncts

    def is_false(self) -> bool:
        return not self.disjuncts

    def __repr__(self) -> str:
        if self.is_false():
            return "false"
        parts = []
        for conj in sorted(self.disjuncts, key=sorted):
            if not conj:
                return "true"
            parts.append(
                "(" + " & ".join("%s->%s" % atom for atom in sorted(conj)) + ")"
            )
        return " | ".join(parts)


TRUE = Condition(frozenset([frozenset()]))
FALSE = Condition(frozenset())


def _conjunct_consistent(conj: Iterable[Atom]) -> bool:
    """False if the conjunct asserts two different outcomes for a branch."""
    seen: Dict[str, str] = {}
    for block, succ in conj:
        if block in seen and seen[block] != succ:
            return False
        seen[block] = succ
    return True


def and_atom(cond: Condition, atom: Atom) -> Condition:
    """``cond AND (B -> S)``: add the atom to every disjunct."""
    result = set()
    for conj in cond.disjuncts:
        extended = conj | {atom}
        if _conjunct_consistent(extended):
            result.add(frozenset(extended))
    return Condition(frozenset(result))


def or_(a: Condition, b: Condition, branch_arity: Dict[str, int]) -> Condition:
    """``a OR b`` with the paper's merge simplifications.

    ``branch_arity`` maps a constant branch's block name to its number
    of distinct successors, enabling the reduction
    ``{{A->s1,cs}, ..., {A->sn,cs}, ds} -> {{cs}, ds}`` when the
    outcomes s1..sn cover every successor of A.
    """
    return simplify(Condition(a.disjuncts | b.disjuncts), branch_arity)


def simplify(cond: Condition, branch_arity: Dict[str, int]) -> Condition:
    """Apply absorption and full-cover reduction until a fixpoint."""
    if obs_metrics._enabled:
        obs_metrics.counter("conditions.simplify_calls").inc()
        obs_metrics.histogram("conditions.disjuncts").observe(
            len(cond.disjuncts))
    disjuncts = set(cond.disjuncts)
    changed = True
    while changed:
        changed = False
        # Absorption: a disjunct subsumed by a weaker (subset) one is gone.
        for conj in sorted(disjuncts, key=len):
            for other in disjuncts:
                if other is not conj and other < conj:
                    disjuncts.discard(conj)
                    changed = True
                    break
            if changed:
                break
        if changed:
            continue
        # Full-cover: if for some branch B every successor outcome occurs
        # with the same residue cs, the B atoms cancel out.
        by_residue: Dict[Tuple[Conjunct, str], set] = {}
        for conj in disjuncts:
            for atom in conj:
                block, succ = atom
                residue = conj - {atom}
                by_residue.setdefault((residue, block), set()).add(succ)
        for (residue, block), succs in by_residue.items():
            arity = branch_arity.get(block)
            if arity is not None and len(succs) >= arity:
                for succ in succs:
                    disjuncts.discard(residue | {(block, succ)})
                disjuncts.add(residue)
                changed = True
                break
    if len(disjuncts) > MAX_DISJUNCTS:
        return TRUE
    return Condition(frozenset(disjuncts))


def exclusive(a: Condition, b: Condition) -> bool:
    """True if ``a`` and ``b`` cannot hold simultaneously.

    Checked syntactically, as in the paper: every pair of disjuncts must
    contain contradictory atoms.  FALSE is exclusive with anything.
    """
    if obs_metrics._enabled:
        obs_metrics.counter("conditions.exclusive_checks").inc()
    if a.is_false() or b.is_false():
        return True
    for conj_a in a.disjuncts:
        for conj_b in b.disjuncts:
            if _conjunct_consistent(conj_a | conj_b):
                return False
    return True


def pairwise_exclusive(conditions: Iterable[Condition]) -> bool:
    """True if every pair of the given conditions is mutually exclusive."""
    items = list(conditions)
    for i, first in enumerate(items):
        for second in items[i + 1:]:
            if not exclusive(first, second):
                return False
    return True


def drop_branch(cond: Condition, block: str,
                branch_arity: Dict[str, int]) -> Condition:
    """Remove all atoms mentioning ``block`` (used when a branch loses
    its run-time-constant status during the combined fixpoint)."""
    disjuncts = set()
    for conj in cond.disjuncts:
        disjuncts.add(frozenset(a for a in conj if a[0] != block))
    return simplify(Condition(frozenset(disjuncts)), branch_arity)
