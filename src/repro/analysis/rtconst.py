"""Run-time constants analysis + reachability analysis, combined.

This is the pair of interconnected forward dataflow analyses at the
heart of the paper (section 3.1, appendix A): over the SSA-form body of
a dynamic region,

* the *run-time constants* analysis computes which SSA values are
  invariant across executions of the region, seeded by the programmer's
  annotations; and
* the *reachability* analysis computes, for each block, the condition
  (in terms of constant-branch outcomes) under which it executes,
  letting merges whose incoming conditions are mutually exclusive use
  the idempotent phi rule -- the key to handling unstructured control
  flow.

The two are mutually dependent (reachability needs to know which
branches are constant; constant merges need reachability), so they run
in an interleaved fixpoint, as the paper does following Click & Cooper.
The constants analysis is *optimistic* (greatest fixpoint): everything
defined in the region starts constant and facts are withdrawn until the
rules of appendix A.1 hold.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..frontend.errors import AnnotationError
from ..ir.builder import FrameAddr
from ..ir.cfg import DynamicRegionInfo, Function
from ..ir.instructions import (
    Assign, BinOp, Call, CondBr, Instr, Load, Phi, Store, Switch, UnOp,
    is_speculatable,
)
from ..ir.values import FloatConst, GlobalAddr, IntConst, Temp, Value
from ..obs import trace as obs_trace
from .conditions import (
    Condition, FALSE, TRUE, and_atom, or_, pairwise_exclusive,
)


@dataclass
class RegionAnalysis:
    """Result of analysing one dynamic region."""

    region: DynamicRegionInfo
    #: SSA names that are run-time constants.
    const_names: Set[str] = field(default_factory=set)
    #: Reachability condition at each region block's entry.
    reach_in: Dict[str, Condition] = field(default_factory=dict)
    #: Condition along each intra-region edge ``(pred, succ)``.
    edge_conditions: Dict[Tuple[str, str], Condition] = field(
        default_factory=dict)
    #: Blocks whose merges may use the idempotent phi rule.
    const_merges: Set[str] = field(default_factory=set)
    #: Blocks terminated by a branch/switch on a run-time constant.
    const_branches: Set[str] = field(default_factory=set)

    def is_const(self, value: Value) -> bool:
        """Is ``value`` a run-time constant (literals included)?"""
        if isinstance(value, (IntConst, FloatConst, GlobalAddr)):
            return True
        if isinstance(value, Temp):
            return value.name in self.const_names
        return False


def analyze_region(func: Function, region: DynamicRegionInfo,
                   use_reachability: bool = True) -> RegionAnalysis:
    """Run the combined analyses over ``region`` of SSA-form ``func``.

    ``use_reachability=False`` disables the reachability analysis
    (every multi-predecessor merge outside unrolled-loop headers is
    treated as non-constant), which exists for the ablation study of
    how much the paper's second analysis buys.

    Raises :class:`AnnotationError` if an ``unrolled`` loop's
    termination branch is not governed by a run-time constant.
    """
    if region.const_temps is None:
        raise ValueError("region analysis requires SSA form "
                         "(const_temps not recorded)")
    with obs_trace.span("analysis.rtconst", "analysis",
                        region="%s:%d" % (func.name, region.region_id),
                        reachability=use_reachability) as span:
        result = _analyze_region(func, region, use_reachability)
        if span is not None:
            span["const_names"] = len(result.const_names)
            span["const_merges"] = len(result.const_merges)
            span["const_branches"] = len(result.const_branches)
    return result


def _analyze_region(func: Function, region: DynamicRegionInfo,
                    use_reachability: bool) -> RegionAnalysis:
    blocks = [name for name in func.blocks if name in region.blocks]
    block_set = set(blocks)
    result = RegionAnalysis(region)

    # Optimistic initialization: every region-defined name is constant.
    annotated: Set[str] = set()
    for value in region.const_temps:
        if isinstance(value, Temp):
            annotated.add(value.name)
    defs: Dict[str, Instr] = {}
    def_block: Dict[str, str] = {}
    for name in blocks:
        for instr in func.blocks[name].all_instrs():
            dst = instr.defs()
            if dst is not None:
                defs[dst.name] = instr
                def_block[dst.name] = name
    consts: Set[str] = annotated | set(defs)

    unrolled_headers = {loop.header for loop in region.unrolled_loops}
    preds = func.predecessors()

    def is_const(value: Value) -> bool:
        if isinstance(value, (IntConst, FloatConst, GlobalAddr)):
            return True
        if isinstance(value, Temp):
            return value.name in consts
        return False

    def const_branch_blocks() -> Set[str]:
        found: Set[str] = set()
        for name in blocks:
            term = func.blocks[name].terminator
            if isinstance(term, (CondBr, Switch)):
                predicate = term.cond if isinstance(term, CondBr) else term.value
                if len(set(term.successors())) > 1 and is_const(predicate):
                    found.add(name)
        return found

    while True:
        branch_blocks = const_branch_blocks()
        if use_reachability:
            reach_in, edge_conditions = _reachability(
                func, region, blocks, block_set, branch_blocks)
        else:
            reach_in = {name: TRUE for name in blocks}
            edge_conditions = {}

        const_merges = _find_const_merges(
            func, blocks, preds, block_set, edge_conditions,
            unrolled_headers, use_reachability)

        changed = _narrow_constants(
            func, blocks, consts, annotated, const_merges)

        if const_branch_blocks() == branch_blocks and not changed:
            result.const_names = consts
            result.reach_in = reach_in
            result.edge_conditions = edge_conditions
            result.const_merges = const_merges
            result.const_branches = branch_blocks
            break

    _check_unrolled_loops(func, region, result)
    return result


def _reachability(
    func: Function,
    region: DynamicRegionInfo,
    blocks: List[str],
    block_set: Set[str],
    branch_blocks: Set[str],
) -> Tuple[Dict[str, Condition], Dict[Tuple[str, str], Condition]]:
    """Forward fixpoint of the reachability conditions analysis."""
    branch_arity = {
        name: len(set(func.blocks[name].successors()))
        for name in branch_blocks
    }
    reach_in: Dict[str, Condition] = {name: FALSE for name in blocks}
    reach_in[region.entry] = TRUE
    edge_conditions: Dict[Tuple[str, str], Condition] = {}
    preds = func.predecessors()
    work = list(blocks)
    iterations = 0
    limit = 50 * max(1, len(blocks))
    while work:
        iterations += 1
        if iterations > limit:
            # Convergence safety net: widen everything to TRUE.
            for name in blocks:
                reach_in[name] = TRUE
            for name in blocks:
                for succ in func.blocks[name].successors():
                    if succ in block_set:
                        edge_conditions[(name, succ)] = TRUE
            break
        name = work.pop(0)
        block = func.blocks[name]
        cond = reach_in[name]
        for succ in set(block.successors()):
            if succ not in block_set:
                continue
            if name in branch_blocks:
                edge_cond = and_atom(cond, (name, succ))
            else:
                edge_cond = cond
            old_edge = edge_conditions.get((name, succ), FALSE)
            if edge_cond != old_edge:
                edge_conditions[(name, succ)] = or_(
                    old_edge, edge_cond, branch_arity)
            new_in = FALSE
            for pred in preds[succ]:
                new_in = or_(new_in,
                             edge_conditions.get((pred, succ), FALSE),
                             branch_arity)
            if succ == region.entry:
                new_in = TRUE
            if new_in != reach_in[succ]:
                reach_in[succ] = new_in
                if succ not in work:
                    work.append(succ)
    return reach_in, edge_conditions


def _find_const_merges(
    func: Function,
    blocks: List[str],
    preds: Dict[str, List[str]],
    block_set: Set[str],
    edge_conditions: Dict[Tuple[str, str], Condition],
    unrolled_headers: Set[str],
    use_reachability: bool,
) -> Set[str]:
    merges: Set[str] = set()
    for name in blocks:
        in_preds = [p for p in preds[name] if p in block_set]
        if name in unrolled_headers:
            # Only one predecessor of an unrolled copy is live at a time.
            merges.add(name)
            continue
        if len(in_preds) < 2:
            merges.add(name)  # trivially constant (single predecessor)
            continue
        if not use_reachability:
            continue
        conditions = [edge_conditions.get((p, name), FALSE) for p in in_preds]
        if pairwise_exclusive(conditions):
            merges.add(name)
    return merges


def _narrow_constants(
    func: Function,
    blocks: List[str],
    consts: Set[str],
    annotated: Set[str],
    const_merges: Set[str],
) -> bool:
    """Withdraw constant facts until the appendix-A rules hold.

    Returns True if anything changed.
    """

    def is_const(value: Value) -> bool:
        if isinstance(value, (IntConst, FloatConst, GlobalAddr)):
            return True
        if isinstance(value, Temp):
            return value.name in consts
        return False

    any_change = False
    changed = True
    while changed:
        changed = False
        for name in blocks:
            for instr in func.blocks[name].all_instrs():
                dst = instr.defs()
                if dst is None or dst.name not in consts \
                        or dst.name in annotated:
                    continue
                if not _def_stays_const(instr, name, is_const, const_merges):
                    consts.discard(dst.name)
                    changed = True
                    any_change = True
    return any_change


def _def_stays_const(instr: Instr, block_name: str, is_const,
                     const_merges: Set[str]) -> bool:
    if isinstance(instr, Assign):
        return is_const(instr.src)
    if isinstance(instr, BinOp):
        return (is_speculatable(instr.op) and is_const(instr.lhs)
                and is_const(instr.rhs))
    if isinstance(instr, UnOp):
        return is_speculatable(instr.op) and is_const(instr.src)
    if isinstance(instr, Load):
        return not instr.dynamic and is_const(instr.addr)
    if isinstance(instr, Call):
        return instr.pure and all(is_const(a) for a in instr.args)
    if isinstance(instr, Phi):
        if not all(is_const(v) for v in instr.args.values()):
            return False
        if block_name in const_merges:
            return True
        # Non-constant merge: the non-idempotent phi rule still allows a
        # constant result when every reaching definition is the same value.
        values = list(instr.args.values())
        return all(v == values[0] for v in values[1:])
    if isinstance(instr, FrameAddr):
        # Frame addresses vary across activations of the function.
        return False
    if isinstance(instr, Store):
        return False  # stores define nothing; defensive
    return False


def _check_unrolled_loops(func: Function, region: DynamicRegionInfo,
                          result: RegionAnalysis) -> None:
    for loop in region.unrolled_loops:
        if loop.header not in func.blocks:
            continue
        if loop.header not in result.const_branches:
            term = func.blocks[loop.header].terminator
            raise AnnotationError(
                "unrolled loop at %s: termination condition %r is not "
                "governed by a run-time constant" % (loop.header, term))
