"""Pluggable execution backends.

The engine, code cache and fallback builder talk to a single
:class:`~repro.backends.base.ExecutionBackend` instance; everything
they hand it (cached entries, fallback blocks, the static image) is
backend-neutral.  Two backends ship:

``rvm``
    The default and the semantic oracle: per-instruction predecoded
    closures plus the threaded/naive dispatch loops
    (:mod:`repro.backends.rvm`).

``pycode``
    Closure-composition overlays -- straight-line segments of
    installed code become single generated-and-compiled Python
    closures with holes bound as literals
    (:mod:`repro.backends.pycode`).

Select one with ``--backend`` on the CLIs, or programmatically via
``compile_program(..., backend="pycode")``.  :func:`get_backend`
resolves names, ``None`` (the default backend) and already-built
instances; :func:`register_backend` lets external code add more.
"""

from __future__ import annotations

from typing import Dict, List, Type, Union

from .base import ExecutionBackend
from .pycode import PycodeBackend
from .rvm import RVMBackend

DEFAULT_BACKEND = "rvm"

_REGISTRY: Dict[str, Type[ExecutionBackend]] = {
    "rvm": RVMBackend,
    "pycode": PycodeBackend,
}


def available_backends() -> List[str]:
    """Registry names, sorted, for error messages and ``--help``."""
    return sorted(_REGISTRY)


def register_backend(name: str, cls: Type[ExecutionBackend]) -> None:
    """Add (or replace) a backend class under ``name``."""
    _REGISTRY[name] = cls


def get_backend(spec: Union[str, ExecutionBackend, None]) -> ExecutionBackend:
    """Resolve ``spec`` into a fresh backend instance.

    ``None`` selects the default (``rvm``); a string is looked up in
    the registry; an instance passes through unchanged (so callers can
    share one backend across programs or inject a custom one).
    """
    if spec is None:
        spec = DEFAULT_BACKEND
    if isinstance(spec, ExecutionBackend):
        return spec
    try:
        cls = _REGISTRY[spec]
    except KeyError:
        raise ValueError(
            "unknown backend %r (available: %s)"
            % (spec, ", ".join(available_backends())))
    return cls()


__all__ = [
    "DEFAULT_BACKEND",
    "ExecutionBackend",
    "PycodeBackend",
    "RVMBackend",
    "available_backends",
    "get_backend",
    "register_backend",
]
