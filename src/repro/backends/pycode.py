"""The ``pycode`` backend: closure-composition host execution.

The rvm backend runs one Python closure per simulated instruction,
re-entering the threaded dispatch loop between every two of them.
This backend lowers each straight-line run of installed code (a
*segment*: leader pc up to and including the first control transfer or
runtime call) into **one** composed Python closure, generated as
source, compiled with :func:`compile`, and installed as an overlay in
``vm.handlers`` at the segment's leader pc.  Holes are already bound
-- the stitcher patched run-time constants into the instruction words,
so they appear in the generated source as literals; const-branches
were folded and unrolled loops flattened by the stitcher, so they
arrive here as long straight-line segments, which is exactly what this
backend is fastest at.

Execution still flows through the same threaded loop (``pc =
handlers[pc](pc)``); non-leader pcs keep their per-instruction rvm
handlers, so jumping into the middle of a segment (computed ``jmp``,
stale return address) executes instruction-at-a-time and stays
correct.  Segments may overlap -- a superhandler is just "execute
straight-line code from here", so compiling a second segment that
starts inside an existing one is always sound.

Register localization
---------------------

Within a segment the generated code keeps register values in Python
locals: the first read of a register materializes a local (with the
``int``/``float`` coercion its use demands, cached per register), every
write targets a local, and all written registers are flushed back to
``vm.regs`` immediately before the terminator -- so branch tests, the
``jsr`` link write, runtime calls and the next segment all observe
exactly the register file rvm would produce.  A per-register *kind*
(int/float/unknown) tracks what the local already is, eliding the
coercions rvm performs on every operand read; elision is sound because
the coercion of an already-coerced value is the identity.  Raw reads
(``mov``, store values) always see the uncoerced value.  The one
permitted divergence: a *fatal* trap in mid-segment (wild address,
division by zero) can leave earlier results of the same segment
unflushed -- such runs die with the same exception and message, and
the oracle compares status only.

Bit-identical accounting
------------------------

A segment charges its cycles in bulk: the generated prologue adds the
segment's total cost to the cycle counter and each owner/opcode cell
exactly once.  Totals after the segment equal the rvm backend's
per-instruction charges, and because **runtime calls terminate
segments**, every ``call_rt`` handler (region lookup/stitch, tiering
decisions, the time-series sampler, allocation, printing) observes
exactly the same mid-run cycle counts as under rvm.  The cycle budget
is prechecked against the segment total; if the segment would cross
the budget, the superhandler defers to the saved per-instruction
handler chain, which charges instruction-by-instruction and traps at
exactly the pc rvm would trap at -- the precheck runs before any
register is localized, so the deferred chain starts from pristine
state.

Relocation safety comes from pc-relativity: superhandlers compute
every internal pc as ``pc + k`` from their call argument and read
branch targets from the captured :class:`MInstr` objects at run time,
so compaction (``move_code`` copies handler slots; ``place`` re-points
the same instruction objects) moves segments without recompilation.
Eviction safety comes from the VM's own lifecycle: ``write_code`` and
``fill_freed`` re-predecode the affected slots, which removes stale
overlays; the cache then re-runs :meth:`entry_installed` for whatever
replaces them.

Host-compile cost is kept off the steady path at three levels:

* compiled factories are memoized on their generated source
  (re-stitches of the same key produce identical source);
* the static image is compiled once per VM and its overlays survive
  ``reset_for_rerun`` (only run-time handlers are truncated);
* a per-entry **plan cache** remembers, per installed image
  ``(checksum, base, words, region)``, the full overlay recipe --
  leader offsets, factories and capture offsets -- so when a fresh
  :class:`~repro.codecache.cache.CodeCache` re-stitches the same key
  to the same address on a later run, the overlays are replayed by a
  handful of closure calls with no discovery and no source generation.
  Owner/opcode cells persist across :meth:`VM.reset_for_rerun` (they
  are zeroed in place), so replayed closures keep charging the right
  counters; the cache is keyed to one VM and dropped when the engine
  builds a new one.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import VMError
from ..ir.semantics import EvalTrap, binop_impl
from ..machine.isa import ALU_OPS, FALU_OPS, MInstr, RA, RD_WRITING_OPS, SP, ZERO
from .base import ExecutionBackend

Handler = Callable[[int], int]

#: ops that end a segment (control transfers plus runtime calls --
#: the latter so rt handlers observe exact mid-run accounting).
_TERMINATORS = frozenset(
    ["br", "beq", "bne", "jtab", "jsr", "ret", "jmp", "halt", "call_rt"])

#: straight-line ops the code generator knows how to lower.
_STRAIGHT_OPS = frozenset(
    list(ALU_OPS) + list(FALU_OPS) + [
        "ldq", "ldt", "stq", "stt", "lda", "ldih", "mov", "fmov",
        "negq", "ornot", "fneg", "cvtqt", "cvttq", "nop",
    ])

#: ALU/FALU semantic names that can trap (lowered via the shared impl
#: behind a try/except); everything else is inlined as an expression.
_TRAPPING = frozenset(["div", "udiv", "mod", "umod", "fdiv"])

_MASK = "0xffffffffffffffff"
_SIGN = "0x8000000000000000"

#: generated source -> compiled factory (shared across backends: the
#: source is self-contained up to its capture arguments).
_FACTORY_CACHE: Dict[str, Callable] = {}

_EXEC_NAMESPACE = {"VMError": VMError, "EvalTrap": EvalTrap}


def _scaled_add(target: str, per: int, fix: int) -> List[str]:
    """``target += per * n + fix`` with zero terms elided."""
    if per and fix:
        return ["%s += %d * n + %d" % (target, per, fix)]
    if per:
        return ["%s += %d * n" % (target, per)]
    if fix:
        return ["%s += %d" % (target, fix)]
    return []


class _SegmentCodegen:
    """Generate the factory source + captures for one segment.

    Registers live in locals while the segment runs (see the module
    docstring).  Dataflow inside a segment is straight-line -- the only
    generated branches either raise or leave locals untouched -- so the
    per-register state here (current local, known kind, coercion
    aliases) is a sound forward analysis.
    """

    def __init__(self, vm, base_pc: int, instrs: Sequence[MInstr],
                 falls_through: bool, loop: bool = False,
                 body_instrs: Optional[Sequence[MInstr]] = None,
                 body_off: int = 0):
        self.vm = vm
        self.base_pc = base_pc
        self.instrs = instrs
        self.falls_through = falls_through
        #: loop form: the segment's terminator closes a cycle back to
        #: the leader -- either directly (self-loop) or through one
        #: straight body block (``body_instrs`` at leader-relative
        #: ``body_off``, ending in ``br`` to the leader) -- so the
        #: whole loop compiles to an in-closure ``while``.
        self.loop = loop
        self.body_instrs = body_instrs
        self.body_off = body_off
        #: loop-invariant regs whose coercion aliases may be hoisted
        #: out of the loop (filled by the first codegen pass).
        self.hoist_ok: frozenset = frozenset()
        self._reset()

    def _reset(self) -> None:
        self.body: List[str] = []
        self.setup: List[str] = []
        #: loop form only: raw register loads emitted before the loop.
        self.preload: List[str] = []
        self.captured_instrs: List[MInstr] = []
        self.capture_ks: List[int] = []
        self.captured_fns: List[Callable] = []
        self.needs: set = set()
        #: reg -> local currently holding its value (dirty or loaded).
        self.cur: Dict[int, str] = {}
        #: reg -> "int" | "float" | None (unknown) for the current local.
        self.kind: Dict[int, Optional[str]] = {}
        #: (reg, "i"|"f") -> local caching the coerced value.
        self.alias: Dict[Tuple[int, str], str] = {}
        #: written registers, in insertion order (writeback order).
        self.dirty: List[int] = []
        #: reg -> (condition expr, operand regs) for a reg last
        #: written by a comparison whose operands are still live:
        #: lets ``beq``/``bne`` branch on the condition directly
        #: (``reg != 0`` iff the condition held) instead of
        #: re-testing the stored 0/1.
        self.cmp_test: Dict[int, Tuple[str, frozenset]] = {}

    # -- capture helpers ---------------------------------------------------

    def _instr_ref(self, k: int, instr: MInstr) -> str:
        name = "i%d" % len(self.captured_instrs)
        self.captured_instrs.append(instr)
        self.capture_ks.append(k)
        self.setup.append("%s = instrs[%d]"
                          % (name, len(self.captured_instrs) - 1))
        return name

    def _fn_ref(self, fn: Callable) -> str:
        name = "f%d" % len(self.captured_fns)
        self.captured_fns.append(fn)
        self.setup.append("%s = fns[%d]"
                          % (name, len(self.captured_fns) - 1))
        return name

    # -- register locals ---------------------------------------------------

    def _materialize(self, reg: int) -> str:
        """Loop form: the body must never read ``regs[]`` (iterations
        after the first see locals, not the register file), so the
        first read of any register emits a raw preload before the
        loop."""
        name = "r%d" % reg
        self.preload.append("%s = regs[%d]" % (name, reg))
        self.cur[reg] = name
        self.kind[reg] = None
        return name

    def _coerced(self, reg: int, fn: str, suffix: str) -> str:
        cur = self.cur.get(reg)
        if cur is not None and self.kind.get(reg) == fn:
            return cur
        name = self.alias.get((reg, suffix))
        if name is None:
            name = "r%d%s" % (reg, suffix)
            if self.loop:
                if cur is None:
                    cur = self._materialize(reg)
                line = "%s = %s(%s)" % (name, fn, cur)
                # a loop-invariant register's coercion is itself
                # invariant: hoist it out of the loop.
                if reg in self.hoist_ok:
                    self.preload.append(line)
                else:
                    self.body.append(line)
            else:
                src = cur if cur is not None else "regs[%d]" % reg
                self.body.append("%s = %s(%s)" % (name, fn, src))
            self.alias[(reg, suffix)] = name
        return name

    def _iread(self, reg: int) -> str:
        """A local holding ``int(regs[reg])``-equivalent."""
        return self._coerced(reg, "int", "i")

    def _fread(self, reg: int) -> str:
        """A local holding ``float(regs[reg])``-equivalent."""
        return self._coerced(reg, "float", "f")

    def _rread(self, reg: int) -> str:
        """The raw (uncoerced) value of ``reg``."""
        cur = self.cur.get(reg)
        if cur is None and self.loop:
            return self._materialize(reg)
        return cur if cur is not None else "regs[%d]" % reg

    def _write(self, reg: int, kind: Optional[str]) -> str:
        """Target local for a write to ``reg`` (caller emits the
        assignment).  Must be called *after* the operand reads."""
        name = "r%d" % reg
        if reg not in self.dirty:
            self.dirty.append(reg)
        self.cur[reg] = name
        self.kind[reg] = kind
        self.alias.pop((reg, "i"), None)
        self.alias.pop((reg, "f"), None)
        if self.cmp_test:
            self.cmp_test.pop(reg, None)
            for r in [r for r, (_, deps) in self.cmp_test.items()
                      if reg in deps]:
                del self.cmp_test[r]
        return name

    def _note_cmp(self, instr: MInstr, cond: str) -> None:
        """Record that ``instr.rd`` now holds ``1 if cond else 0``."""
        deps = frozenset(r for r in (instr.ra, instr.rb) if r is not None)
        if instr.rd not in deps:
            self.cmp_test[instr.rd] = (cond, deps)

    def _branch_cond(self, reg: int, nonzero: bool) -> str:
        """Condition string for ``regs[reg] != 0`` (or ``== 0``),
        preferring a fused comparison over re-testing the value."""
        fused = self.cmp_test.get(reg)
        if fused is not None:
            return fused[0] if nonzero else "not (%s)" % fused[0]
        return None

    def _wrap_write(self, rd: int, expr: str) -> None:
        """``local = wrap_int(expr)`` inlined.  The in-range guard
        keeps the common case on CPython's single-digit fast path; the
        overflow arm uses the total identity ``wrap_int(x) ==
        ((x + 2**63) & (2**64-1)) - 2**63``."""
        name = self._write(rd, "int")
        self.body.append("_t = %s" % expr)
        self.body.append(
            "%s = _t if %d <= _t <= %d else ((_t + %s) & %s) - %s"
            % (name, -(2 ** 63), 2 ** 63 - 1, _SIGN, _MASK, _SIGN))

    def _emit_writeback(self) -> None:
        for reg in self.dirty:
            self.body.append("regs[%d] = %s" % (reg, self.cur[reg]))

    # -- per-instruction lowering ------------------------------------------

    def _addr(self, ra: int, imm: int) -> str:
        base = self._iread(ra)
        if imm:
            self.body.append("_a = %s + %d" % (base, imm))
            return "_a"
        return base

    def _emit(self, k: int, instr: MInstr) -> None:
        op = instr.op
        out = self.body
        rd, ra, rb, imm = instr.rd, instr.ra, instr.rb, instr.imm
        if op == "ldq" or op == "ldt":
            self.needs.add("memory")
            a = self._addr(ra, imm)
            out.append("if not 0 <= %s < memlen:" % a)
            out.append("    raise VMError(\"load from wild address %%#x"
                       " at pc %%d\" %% (%s, pc + %d))" % (a, k))
            name = self._write(rd, None)
            out.append("%s = memory[%s]" % (name, a))
        elif op == "stq" or op == "stt":
            self.needs.update(("memory", "store"))
            a = self._addr(ra, imm)
            val = self._rread(rb)
            out.append("if not 0 <= %s < memlen:" % a)
            out.append("    raise VMError(\"store to wild address %%#x"
                       " at pc %%d\" %% (%s, pc + %d))" % (a, k))
            out.append("memory[%s] = %s" % (a, val))
            out.append("if %s >= heap_base:" % a)
            out.append("    if %s >= heap[0] and %s < min_sp[0]:" % (a, a))
            out.append("        strays.add(%s >> 8)" % a)
            out.append("else:")
            out.append("    if %s < dirty_low[0]:" % a)
            out.append("        dirty_low[0] = %s" % a)
            out.append("    if %s > dirty_low[1]:" % a)
            out.append("        dirty_low[1] = %s" % a)
        elif op == "lda":
            if ra == ZERO:
                kind = "int" if isinstance(imm, int) else None
                name = self._write(rd, kind)
                out.append("%s = %r" % (name, imm))
            else:
                a = self._iread(ra)
                self._wrap_write(rd, "%s + %d" % (a, imm))
        elif op == "ldih":
            a = self._iread(rd)
            self._wrap_write(rd, "(%s << 16) | %d" % (a, imm & 0xFFFF))
        elif op in ALU_OPS:
            self._emit_alu(k, instr)
        elif op in FALU_OPS:
            self._emit_falu(k, instr)
        elif op == "mov" or op == "fmov":
            src = self._rread(ra)
            srckind = self.kind.get(ra) if ra in self.cur else None
            name = self._write(rd, srckind)
            if name != src:
                out.append("%s = %s" % (name, src))
        elif op == "negq":
            a = self._iread(ra)
            self._wrap_write(rd, "-%s" % a)
        elif op == "ornot":
            a = self._iread(ra)
            self._wrap_write(rd, "~%s" % a)
        elif op == "fneg":
            a = self._fread(ra)
            name = self._write(rd, "float")
            out.append("%s = -%s" % (name, a))
        elif op == "cvtqt":
            a = self._iread(ra)
            name = self._write(rd, "float")
            out.append("%s = float(%s)" % (name, a))
        elif op == "cvttq":
            a = self._fread(ra)
            self._wrap_write(rd, "int(%s)" % a)
        elif op == "nop":
            pass
        else:  # pragma: no cover - guarded by _STRAIGHT_OPS
            raise ValueError("uncompilable op %r" % op)
        if rd is not None and op in RD_WRITING_OPS:
            if rd == ZERO:
                name = self._write(ZERO, "int")
                out.append("%s = 0" % name)
            elif rd == SP:
                self.needs.add("min_sp")
                spv = self._iread(SP)
                out.append("if %s < min_sp[0]:" % spv)
                out.append("    min_sp[0] = %s" % spv)

    def _emit_alu(self, k: int, instr: MInstr) -> None:
        out = self.body
        sem = ALU_OPS[instr.op]
        rd = instr.rd
        a = self._iread(instr.ra)
        if instr.rb is not None:
            b = self._iread(instr.rb)
        else:
            b = "(%d)" % instr.imm
        if sem in _TRAPPING:
            # a nonzero *constant* divisor (a stitched-in hole value or
            # literal immediate) can never trap: inline the C-semantics
            # division instead of calling the shared impl via
            # try/except.  Truncation toward zero / dividend-sign
            # remainder for positive divisors; unsigned ops mask the
            # dividend and re-wrap the (possibly >= 2**63) result.
            imm = instr.imm
            if instr.rb is None and isinstance(imm, int) and imm != 0:
                if sem == "div" and imm > 0:
                    name = self._write(rd, "int")
                    out.append("%s = %s // %d if %s >= 0 else -(-%s // %d)"
                               % (name, a, imm, a, a, imm))
                    return
                if sem == "mod" and imm > 0:
                    name = self._write(rd, "int")
                    out.append("%s = %s %% %d if %s >= 0 else"
                               " -(-%s %% %d)" % (name, a, imm, a, a, imm))
                    return
                if sem == "udiv" or sem == "umod":
                    pyop = "//" if sem == "udiv" else "%"
                    self._wrap_write(rd, "(%s & %s) %s %d"
                                     % (a, _MASK, pyop,
                                        imm & 0xFFFFFFFFFFFFFFFF))
                    return
            fn = self._fn_ref(binop_impl(sem))
            name = self._write(rd, "int")
            out.append("try:")
            out.append("    %s = %s(%s, %s)" % (name, fn, a, b))
            out.append("except EvalTrap as trap:")
            out.append("    raise VMError(\"arithmetic trap at pc %%d:"
                       " %%s\" %% (pc + %d, trap))" % k)
            return
        if sem == "add":
            self._wrap_write(rd, "%s + %s" % (a, b))
        elif sem == "sub":
            self._wrap_write(rd, "%s - %s" % (a, b))
        elif sem == "mul":
            self._wrap_write(rd, "%s * %s" % (a, b))
        elif sem == "and":
            self._wrap_write(rd, "%s & %s" % (a, b))
        elif sem == "or":
            self._wrap_write(rd, "%s | %s" % (a, b))
        elif sem == "xor":
            self._wrap_write(rd, "%s ^ %s" % (a, b))
        elif sem in ("shl", "lshr", "ashr"):
            if instr.rb is None and isinstance(instr.imm, int):
                b = "%d" % (instr.imm & 63)  # fold the count mask
            else:
                b = "(%s & 63)" % b
            if sem == "shl":
                self._wrap_write(rd, "%s << %s" % (a, b))
            elif sem == "lshr":
                self._wrap_write(rd, "(%s & %s) >> %s" % (a, _MASK, b))
            else:
                self._wrap_write(rd, "%s >> %s" % (a, b))
        elif sem in ("eq", "ne", "lt", "le"):
            cmp = {"eq": "==", "ne": "!=", "lt": "<", "le": "<="}[sem]
            name = self._write(rd, "int")
            cond = "%s %s %s" % (a, cmp, b)
            out.append("%s = 1 if %s else 0" % (name, cond))
            self._note_cmp(instr, cond)
        elif sem == "ult" or sem == "ule":
            name = self._write(rd, "int")
            cond = "%s & %s %s %s & %s" % (
                a, _MASK, "<" if sem == "ult" else "<=", b, _MASK)
            out.append("%s = 1 if %s else 0" % (name, cond))
            self._note_cmp(instr, cond)
        else:  # pragma: no cover - exhaustive over ALU_OPS
            raise ValueError("unhandled ALU semantic %r" % sem)

    def _emit_falu(self, k: int, instr: MInstr) -> None:
        out = self.body
        sem = FALU_OPS[instr.op]
        rd = instr.rd
        a = self._fread(instr.ra)
        b = self._fread(instr.rb)
        if sem in _TRAPPING:
            fn = self._fn_ref(binop_impl(sem))
            name = self._write(rd, "float")
            out.append("try:")
            out.append("    %s = %s(%s, %s)" % (name, fn, a, b))
            out.append("except EvalTrap as trap:")
            out.append("    raise VMError(\"float trap at pc %%d: %%s\""
                       " %% (pc + %d, trap))" % k)
            return
        if sem in ("fadd", "fsub", "fmul"):
            pyop = {"fadd": "+", "fsub": "-", "fmul": "*"}[sem]
            name = self._write(rd, "float")
            out.append("%s = %s %s %s" % (name, a, pyop, b))
        elif sem in ("feq", "fne", "flt", "fle"):
            cmp = {"feq": "==", "fne": "!=", "flt": "<", "fle": "<="}[sem]
            name = self._write(rd, "int")
            cond = "%s %s %s" % (a, cmp, b)
            out.append("%s = 1 if %s else 0" % (name, cond))
            self._note_cmp(instr, cond)
        else:  # pragma: no cover - exhaustive over FALU_OPS
            raise ValueError("unhandled FALU semantic %r" % sem)

    def _emit_terminator(self, k: int, instr: MInstr) -> None:
        out = self.body
        op = instr.op
        if op == "call_rt":
            self.needs.add("call_rt")
            out.append("call_rt(%s)" % self._instr_ref(k, instr))
            out.append("return pc + %d" % (k + 1))
        elif op == "br":
            ref = self._instr_ref(k, instr)
            out.append("_t = %s.target" % ref)
            self._check_target(out, "")
            out.append("return _t")
        elif op == "beq" or op == "bne":
            ref = self._instr_ref(k, instr)
            cond = self._branch_cond(instr.ra, nonzero=op == "bne")
            if cond is None:
                # numeric truthiness is exactly ``!= 0``.
                cond = ("regs[%d]" if op == "bne"
                        else "not regs[%d]") % instr.ra
            out.append("if %s:" % cond)
            out.append("    _t = %s.target" % ref)
            self._check_target(out, "    ")
            out.append("    return _t")
            out.append("return pc + %d" % (k + 1))
        elif op == "jsr":
            ref = self._instr_ref(k, instr)
            out.append("regs[%d] = pc + %d" % (RA, k + 1))
            out.append("_t = %s.target" % ref)
            self._check_target(out, "")
            out.append("return _t")
        elif op == "ret":
            out.append("_t = int(regs[%d])" % RA)
            out.append("if _t < 0 and _t != -2:")
            out.append("    raise VMError(\"pc out of range: %d\" % _t)")
            out.append("return _t")
        elif op == "jmp":
            out.append("_t = int(regs[%d])" % instr.ra)
            out.append("if _t < 0 and _t != -2:")
            out.append("    raise VMError(\"pc out of range: %d\" % _t)")
            out.append("return _t")
        elif op == "jtab":
            ref = self._instr_ref(k, instr)
            out.append("_ts, _d = %s.extra" % ref)
            out.append("_ix = int(regs[%d]) - %d" % (instr.ra, instr.imm))
            out.append("_t = _ts[_ix] if 0 <= _ix < len(_ts) else _d")
            self._check_target(out, "")
            out.append("return _t")
        elif op == "halt":
            out.append("return -2")
        else:  # pragma: no cover - guarded by _TERMINATORS
            raise ValueError("unhandled terminator %r" % op)

    @staticmethod
    def _check_target(out: List[str], pad: str) -> None:
        out.append(pad + "if _t < 0:")
        out.append(pad + "    raise VMError(\"pc out of range: %d\" % _t)")

    # -- assembly ----------------------------------------------------------

    def generate(self) -> Tuple[str, tuple, Tuple[int, ...], tuple,
                                tuple, tuple]:
        """Returns ``(source, instr captures, capture offsets, fn
        captures, owner cells, opcode cells)``; capture offsets are
        segment-leader-relative, for plan-cache replay."""
        if self.loop:
            return self._generate_loop()
        vm = self.vm
        seg_cost = 0
        owner_cells: List[list] = []
        owner_totals: List[List[int]] = []  # [cost, count] per cell
        op_cells: List[list] = []
        op_totals: List[int] = []
        for instr in self.instrs:
            seg_cost += instr.cost
            ocell = vm._owner_cell(instr.owner)
            for j, cell in enumerate(owner_cells):
                if cell is ocell:
                    owner_totals[j][0] += instr.cost
                    owner_totals[j][1] += 1
                    break
            else:
                owner_cells.append(ocell)
                owner_totals.append([instr.cost, 1])
            opcell = vm._op_cell(instr.op)
            for j, cell in enumerate(op_cells):
                if cell is opcell:
                    op_totals[j] += 1
                    break
            else:
                op_cells.append(opcell)
                op_totals.append(1)
        for k, instr in enumerate(self.instrs):
            if instr.op in _TERMINATORS:
                self._emit_writeback()
                self._emit_terminator(k, instr)
            else:
                self._emit(k, instr)
        if self.falls_through:
            self._emit_writeback()
            self.body.append("return pc + %d" % len(self.instrs))

        lines = self._factory_header(owner_cells, op_cells)
        lines.append("    def seg(pc):")
        lines.append("        projected = cyc[0] + %d" % seg_cost)
        lines.append("        if projected > maxc[0]:")
        lines.append("            return origin(pc)")
        lines.append("        cyc[0] = projected")
        for j, (cost, count) in enumerate(owner_totals):
            lines.append("        oc%d[0] += %d" % (j, cost))
            lines.append("        oc%d[1] += %d" % (j, count))
        for j, count in enumerate(op_totals):
            lines.append("        opc%d[0] += %d" % (j, count))
        for line in self.body:
            lines.append("        " + line)
        lines.append("    seg._pycode_segment = True")
        lines.append("    return seg")
        source = "\n".join(lines) + "\n"
        return (source, tuple(self.captured_instrs),
                tuple(self.capture_ks), tuple(self.captured_fns),
                tuple(owner_cells), tuple(op_cells))

    def _factory_header(self, owner_cells, op_cells) -> List[str]:
        lines = ["def _factory(vm, instrs, fns, origin, ocells, opcells):"]
        lines.append("    regs = vm.regs")
        lines.append("    cyc = vm._cyc")
        lines.append("    maxc = vm._maxc")
        if "memory" in self.needs:
            lines.append("    memory = vm.memory")
            lines.append("    memlen = len(memory)")
        if "store" in self.needs:
            lines.append("    heap = vm._heap")
            lines.append("    dirty_low = vm._dirty_low")
            lines.append("    strays = vm._stray_pages")
            lines.append("    heap_base = vm.HEAP_BASE")
        if "store" in self.needs or "min_sp" in self.needs:
            lines.append("    min_sp = vm._min_sp")
        if "call_rt" in self.needs:
            lines.append("    call_rt = vm._call_rt")
        for j in range(len(owner_cells)):
            lines.append("    oc%d = ocells[%d]" % (j, j))
        for j in range(len(op_cells)):
            lines.append("    opc%d = opcells[%d]" % (j, j))
        for line in self.setup:
            lines.append("    " + line)
        return lines

    def _generate_loop(self):
        """Assemble the loop form: iterations run inside one Python
        ``while`` with registers held in locals throughout.

        Two shapes share this generator.  A *self-loop* is a single
        block whose terminator (``br``/``beq``/``bne``) targets its own
        leader.  A *fused loop* adds one straight body block: the head
        ends in a conditional branch whose one side enters the body
        (``body_off`` relative to the leader), and the body ends in
        ``br`` back to the leader -- the classic while-loop lowering.

        Accounting is kept in locals (``projected`` plus a completed-
        iteration counter ``n``) and flushed to the shared cells in
        bulk at every loop exit.  Exits are the only points where
        another party can observe the counters, because runtime calls
        terminate segments (a *fatal* mid-loop trap can observe stale
        counters and registers, but such runs die -- same contract as
        mid-segment traps in the straight-line form).  Per-block
        budget prechecks keep the trap point exact: on overrun the
        closure flushes the completed blocks, writes registers back
        and returns control to the per-instruction chain (the saved
        origin for the head; the head's own dispatch pc for the body),
        which charges instruction-by-instruction and traps exactly
        where rvm would.  Run-time guards on the captured branch
        targets re-validate the loop shape after any rebase; on
        mismatch the closure defers to the origin, which is always
        correct."""
        head = self.instrs
        body = self.body_instrs
        term = head[-1]
        vm = self.vm
        # -- per-block cell aggregation (cells shared across blocks) --
        ocells: List[list] = []
        opcells: List[list] = []

        def agg(instrs):
            cost = 0
            ot: Dict[int, List[int]] = {}
            pt: Dict[int, int] = {}
            for i in instrs:
                cost += i.cost
                c = vm._owner_cell(i.owner)
                for j, cc in enumerate(ocells):
                    if cc is c:
                        break
                else:
                    j = len(ocells)
                    ocells.append(c)
                e = ot.setdefault(j, [0, 0])
                e[0] += i.cost
                e[1] += 1
                c2 = vm._op_cell(i.op)
                for j2, cc in enumerate(opcells):
                    if cc is c2:
                        break
                else:
                    j2 = len(opcells)
                    opcells.append(c2)
                pt[j2] = pt.get(j2, 0) + 1
            return cost, ot, pt

        cost_h, oth, pth = agg(head)
        cost_b, otb, ptb = agg(body or ())
        self._loop_ocells = ocells
        self._loop_opcells = opcells

        def emit_blocks():
            """Emit head (minus terminator) and body (minus the final
            ``br``) through the register-localizing lowerer; returns
            (head lines, test value, fused condition, body lines)."""
            for k in range(len(head) - 1):
                self._emit(k, head[k])
            val = cond = None
            if term.op != "br":
                fused = self.cmp_test.get(term.ra)
                if fused is not None:
                    cond = fused[0]
                else:
                    val = self._rread(term.ra)
            head_lines = self.body
            self.body = []
            body_lines = []
            if body is not None:
                for idx in range(len(body) - 1):
                    self._emit(self.body_off + idx, body[idx])
                body_lines = self.body
                self.body = []
            return head_lines, val, cond, body_lines

        # Two codegen passes: the first discovers which registers the
        # loop writes, so the second hoists coercions of the loop-
        # invariant ones out of the loop.
        emit_blocks()
        self.hoist_ok = frozenset(
            r for r in self.cur if r not in self.dirty)
        self._reset()
        head_lines, test_val, fused_cond, body_lines = emit_blocks()

        term_ref = self._instr_ref(len(head) - 1, term)
        br_ref = None
        if body is not None:
            br_ref = self._instr_ref(self.body_off + len(body) - 1,
                                     body[-1])
        writeback = ["regs[%d] = %s" % (r, self.cur[r])
                     for r in self.dirty]

        def flush(dh: int, db: int, corr: int) -> List[str]:
            """Cell updates for ``n + dh`` head and ``n + db`` body
            executions; ``corr`` backs the unexecuted block out of
            ``projected``."""
            ls = ["cyc[0] = projected" + (" - %d" % corr if corr else "")]
            for j in range(len(ocells)):
                for slot in (0, 1):
                    per = oth.get(j, (0, 0))[slot] + otb.get(j, (0, 0))[slot]
                    fix = dh * oth.get(j, (0, 0))[slot] \
                        + db * otb.get(j, (0, 0))[slot]
                    ls.extend(_scaled_add("oc%d[%d]" % (j, slot), per, fix))
            for j in range(len(opcells)):
                per = pth.get(j, 0) + ptb.get(j, 0)
                fix = dh * pth.get(j, 0) + db * ptb.get(j, 0)
                ls.extend(_scaled_add("opc%d[0]" % j, per, fix))
            return ls

        lines = self._factory_header(ocells, opcells)
        lines.append("    def seg(pc):")
        if body is not None and term.target == self.base_pc + self.body_off:
            # body on the taken side: re-validate both edges.
            lines.append("        if %s.target != pc + %d:"
                         % (term_ref, self.body_off))
            lines.append("            return origin(pc)")
        elif body is None:
            lines.append("        if %s.target != pc:" % term_ref)
            lines.append("            return origin(pc)")
        if br_ref is not None:
            lines.append("        if %s.target != pc:" % br_ref)
            lines.append("            return origin(pc)")
        def cond_str(cmp: str) -> str:
            """Condition for ``test cmp 0`` (cmp is ``==``/``!=``),
            through the fused comparison when one is available (numeric
            truthiness is exactly ``!= 0`` otherwise)."""
            if fused_cond is not None:
                return fused_cond if cmp == "!=" \
                    else "not (%s)" % fused_cond
            return test_val if cmp == "!=" else "not %s" % test_val

        lines.append("        projected = cyc[0]")
        lines.append("        _mx = maxc[0]")
        lines.append("        n = 0")
        for line in self.preload:
            lines.append("        " + line)
        lines.append("        while True:")
        if body is None:
            lines.append("            projected += %d" % cost_h)
            lines.append("            if projected > _mx:")
            for f in flush(0, 0, cost_h):
                lines.append("                " + f)
            for w in writeback:
                lines.append("                " + w)
            lines.append("                return origin(pc)")
            for line in head_lines:
                lines.append("            " + line)
            if term.op == "br":
                # self-loop on an unconditional branch: only the
                # budget check above ever leaves the loop.
                lines.append("            n += 1")
            else:
                # conditional self-loop: taken -> next iteration.
                taken_cmp = "==" if term.op == "beq" else "!="
                lines.append("            if %s:" % cond_str(taken_cmp))
                lines.append("                n += 1")
                lines.append("                continue")
                for line in flush(1, 0, 0) + writeback \
                        + ["return pc + %d" % len(head)]:
                    lines.append("            " + line)
            lines.append("    seg._pycode_segment = True")
            lines.append("    return seg")
            return self._loop_result(lines)

        body_taken = term.target == self.base_pc + self.body_off
        taken_cmp = "==" if term.op == "beq" else "!="
        cont_cmp = taken_cmp if body_taken \
            else ("!=" if term.op == "beq" else "==")

        def emit_exit(pad: str) -> None:
            if body_taken:
                # exit is the conditional's fall-through.
                lines.append(pad + "return pc + %d" % len(head))
            else:
                # exit is the conditional's (possibly absolute) target.
                lines.append(pad + "_t = %s.target" % term_ref)
                self._check_target(lines, pad)
                lines.append(pad + "return _t")

        # One merged budget check per iteration on the fast path; the
        # slow path (taken at most once per invocation, since budgets
        # only grow toward the limit) backs the body charge out and
        # replays the exact per-block sequence so deferral points and
        # observed counters match rvm instruction-for-instruction.
        lines.append("            projected += %d" % (cost_h + cost_b))
        lines.append("            if projected > _mx:")
        lines.append("                projected -= %d" % cost_b)
        lines.append("                if projected > _mx:")
        for f in flush(0, 0, cost_h):
            lines.append("                    " + f)
        for w in writeback:
            lines.append("                    " + w)
        lines.append("                    return origin(pc)")
        for line in head_lines:
            lines.append("                " + line)
        for f in flush(1, 0, 0):
            lines.append("                " + f)
        for w in writeback:
            lines.append("                " + w)
        # head ran but the body charge would cross the budget: hand
        # the body's pc to the per-instruction chain.
        lines.append("                if %s:" % cond_str(cont_cmp))
        lines.append("                    return pc + %d" % self.body_off)
        emit_exit("                ")
        for line in head_lines:
            lines.append("            " + line)
        lines.append("            if %s:" % cond_str(cont_cmp))
        for line in body_lines:
            lines.append("                " + line)
        lines.append("                n += 1")
        lines.append("                continue")
        for f in flush(1, 0, cost_b):
            lines.append("            " + f)
        for w in writeback:
            lines.append("            " + w)
        emit_exit("            ")
        lines.append("    seg._pycode_segment = True")
        lines.append("    return seg")
        return self._loop_result(lines)

    def _loop_result(self, lines: List[str]):
        source = "\n".join(lines) + "\n"
        return (source, tuple(self.captured_instrs),
                tuple(self.capture_ks), tuple(self.captured_fns),
                tuple(self._loop_ocells), tuple(self._loop_opcells))


class PycodeBackend(ExecutionBackend):
    """Closure-composition overlays on the shared installed words."""

    name = "pycode"

    #: segments shorter than this keep their per-instruction handler
    #: (a one-instruction superhandler saves nothing).
    MIN_SEGMENT = 2

    def __init__(self):
        #: host-side stats, surfaced by the CLI summary and tests.
        self.segments_compiled = 0
        self.factory_cache_hits = 0
        self.plans_replayed = 0
        #: (checksum, base, words, func, region_id) -> overlay recipe.
        self._entry_plans: Dict[tuple, List[tuple]] = {}
        self._plan_vm = None

    # -- seam hooks --------------------------------------------------------

    def prepare_vm(self, vm, static_words: int) -> None:
        self.compile_range(vm, 0, static_words)

    def entry_installed(self, vm, entry) -> None:
        if vm is not self._plan_vm:
            self._entry_plans.clear()
            self._plan_vm = vm
        key = (entry.checksum, entry.base, entry.words,
               entry.key.func, entry.key.region_id)
        plans = self._entry_plans.get(key)
        if plans is not None:
            self._replay(vm, entry, plans)
            return
        end = entry.base + entry.words
        seg_plans = self.compile_range(vm, entry.base, end,
                                       entries=(entry.entry_pc,))
        # Continuation segments in the static image: ``ext:`` branches
        # back into the owning function and ``func:`` call targets
        # land mid-segment of the static CFG; compile ad hoc from
        # exactly those pcs (overlapping an existing static segment is
        # sound -- see the module docstring).  Static overlays persist
        # across reruns, so they need no plan-cache entry.
        for _index, kind, value in entry.relocs:
            if kind == "absolute" and 0 <= value < len(vm.code):
                self.compile_at(vm, value)
        self._entry_plans[key] = [
            (leader - entry.base, factory, ks, fns, ocells, opcells)
            for leader, factory, ks, fns, ocells, opcells in seg_plans]
        entry.artifacts[self.name] = {
            "segments": len(seg_plans),
            "leaders": sorted(p[0] - entry.base for p in seg_plans),
        }

    def _replay(self, vm, entry, plans: List[tuple]) -> None:
        """Reinstall a remembered overlay recipe: same image words at
        the same base, so the factories and segment shapes are already
        known -- only the capture objects (the freshly placed MInstr
        words) and the deferral origins change."""
        code = vm.code
        handlers = vm.handlers
        base = entry.base
        for off, factory, ks, fns, ocells, opcells in plans:
            leader = base + off
            origin = handlers[leader]
            if getattr(origin, "_pycode_segment", False):
                continue
            captured = tuple(code[leader + k] for k in ks)
            handlers[leader] = factory(vm, captured, fns, origin,
                                       ocells, opcells)
            self.plans_replayed += 1
        entry.artifacts[self.name] = {
            "segments": len(plans),
            "leaders": sorted(p[0] for p in plans),
        }

    def block_installed(self, vm, base: int, words: int,
                        entry_pc: int) -> None:
        end = base + words
        self.compile_range(vm, base, end, entries=(entry_pc,))
        code = vm.code
        for p in range(base, end):
            instr = code[p]
            if instr.op in ("br", "beq", "bne", "jsr"):
                target = instr.target
                if 0 <= target < len(code) and not base <= target < end:
                    self.compile_at(vm, target)

    # -- segment discovery & compilation -----------------------------------

    def compile_range(self, vm, start: int, end: int,
                      entries: Sequence[int] = ()) -> List[tuple]:
        """Compile every segment in ``[start, end)``; returns one plan
        tuple ``(leader, factory, capture offsets, fns, owner cells,
        opcode cells)`` per overlay installed."""
        code = vm.code
        leaders = set(pc for pc in entries if start <= pc < end)
        for p in range(start, end):
            op = code[p].op
            if op not in _TERMINATORS:
                continue
            if op in ("br", "beq", "bne", "jsr"):
                target = code[p].target
                if start <= target < end:
                    leaders.add(target)
            elif op == "jtab":
                extra = code[p].extra
                if isinstance(extra, tuple) and len(extra) == 2:
                    targets, default = extra
                    for target in list(targets) + [default]:
                        if isinstance(target, int) \
                                and start <= target < end:
                            leaders.add(target)
            if p + 1 < end:
                leaders.add(p + 1)
        if start < end:
            leaders.add(start)
        compiled: List[tuple] = []
        for leader in sorted(leaders):
            plan = self._compile_segment(vm, leader, end, leaders,
                                         start=start)
            if plan is not None:
                compiled.append(plan)
        return compiled

    def compile_at(self, vm, pc: int) -> bool:
        """Compile one ad-hoc segment starting at ``pc`` (run until
        the first terminator, whatever leaders it crosses)."""
        return self._compile_segment(
            vm, pc, len(vm.code), frozenset()) is not None

    def _find_loop_body(self, vm, leader: int, head_len: int,
                        term: MInstr, start: int, end: int):
        """For a head block ending in ``beq``/``bne``, look for one
        straight body block on either side of the conditional that
        ends in ``br`` back to the leader -- the classic while-loop
        shape.  Returns ``(body instrs, leader-relative offset)`` or
        None.  The body must lie inside ``[start, end)`` so plan-cache
        replay can re-capture its words from the entry image."""
        code = vm.code
        for b in (term.target, leader + head_len):
            if not start <= b < end or b == leader:
                continue
            instrs: List[MInstr] = []
            p = b
            closed = False
            while p < end and len(instrs) < 512:
                instr = code[p]
                op = instr.op
                if op == "br":
                    instrs.append(instr)
                    closed = instr.target == leader
                    break
                if op in _TERMINATORS or op not in _STRAIGHT_OPS:
                    break
                instrs.append(instr)
                p += 1
            if closed and len(instrs) > 1:
                return instrs, b - leader
        return None

    def _compile_segment(self, vm, leader: int, end: int,
                         leaders, start: int = 0) -> Optional[tuple]:
        handlers = vm.handlers
        if getattr(handlers[leader], "_pycode_segment", False):
            return None  # already overlaid
        code = vm.code
        instrs: List[MInstr] = []
        falls_through = True
        p = leader
        while p < end:
            if p > leader and p in leaders:
                break  # next leader starts its own segment
            instr = code[p]
            op = instr.op
            if op in _TERMINATORS:
                instrs.append(instr)
                falls_through = False
                break
            if op not in _STRAIGHT_OPS:
                return None  # freed / unknown op: stay interpretive
            instrs.append(instr)
            p += 1
        if len(instrs) < self.MIN_SEGMENT:
            return None
        # Loop shapes: a terminator branching back to the leader makes
        # a self-loop; a conditional whose one side runs one straight
        # block ending in ``br`` back to the leader makes a fused
        # while-loop.  Relocations preserve both shapes across
        # rebasing (the back edges are local relocs whose values are
        # leader-relative offsets) and the generated guards re-check
        # the captured targets at run time.
        loop = False
        body_instrs = None
        body_off = 0
        if not falls_through:
            term = instrs[-1]
            if term.op in ("br", "beq", "bne") and term.target == leader:
                loop = sum(i.cost for i in instrs) > 0
            elif term.op in ("beq", "bne"):
                found = self._find_loop_body(vm, leader, len(instrs),
                                             term, start, end)
                if found is not None:
                    body_instrs, body_off = found
                    loop = True
        gen = _SegmentCodegen(vm, leader, instrs, falls_through,
                              loop=loop, body_instrs=body_instrs,
                              body_off=body_off)
        source, captured, ks, fns, ocells, opcells = gen.generate()
        factory = _FACTORY_CACHE.get(source)
        if factory is None:
            namespace = dict(_EXEC_NAMESPACE)
            exec(compile(source, "<pycode-segment>", "exec"), namespace)
            factory = _FACTORY_CACHE[source] = namespace["_factory"]
        else:
            self.factory_cache_hits += 1
        origin = handlers[leader]
        handlers[leader] = factory(vm, captured, fns, origin,
                                   ocells, opcells)
        self.segments_compiled += 1
        return (leader, factory, ks, fns, ocells, opcells)
