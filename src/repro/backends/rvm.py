"""The ``rvm`` backend: predecoded threaded dispatch (the oracle).

This is the historical execution engine extracted out of
:mod:`repro.machine.vm` and put behind the
:class:`~repro.backends.base.ExecutionBackend` seam.  Two pieces live
here:

* :func:`predecode` -- specialize one installed :class:`MInstr` into a
  threaded handler closure.  The ~20 near-identical ``def handler(pc)``
  bodies the VM used to inline are deduplicated into a *table-driven
  builder*: every opcode contributes only its semantic body (a few
  source lines); one shared template supplies the accounting prelude
  (charge cost to the owner/opcode cells, check the cycle budget) and
  the closure scaffolding.  The factories are generated once at import
  time with :func:`exec`, so per-instruction predecode cost is a dict
  probe plus one factory call -- the same as the hand-written version.

* :class:`RVMBackend` -- the naive decode loop and the threaded
  dispatch loop as two methods of one backend class (they used to hang
  off a stringly ``dispatch=`` flag deep inside ``VM.run``).  The two
  are required to stay equivalent -- same results, same traps with the
  same messages, bit-identical cycle/owner/opcode accounting -- which
  the differential tests check.

Nothing here imports :mod:`repro.machine.vm`: the VM is always passed
in, which is what lets the VM itself delegate to this module without
an import cycle.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

from ..errors import VMError
from ..ir.semantics import EvalTrap, binop_impl  # noqa: F401 (exec ns)
from ..ir.values import wrap_int  # noqa: F401 (exec namespace)
from ..machine.isa import (
    ALU_OPS, FALU_OPS, FRV, MInstr, RA, RD_WRITING_OPS, RETURN_SENTINEL,
    RV, SP, ZERO,
)
from .base import ExecutionBackend

#: One predecoded instruction: takes its own pc, returns the next pc.
Handler = Callable[[int], int]


# ---------------------------------------------------------------------------
# The table-driven handler builder.
#
# Each entry is (setup, body): ``setup`` runs once at predecode time
# (extra per-instruction bindings beyond the standard ones), ``body``
# is the handler's semantics after the shared accounting prelude.
# Bodies end with a ``return`` of the next pc.
# ---------------------------------------------------------------------------

_FACTORY_TEMPLATE = """\
def _factory(vm, instr, cyc, maxc, ocell, opcell):
    regs = vm.regs
    memory = vm.memory
    memlen = len(memory)
    cost = instr.cost
    rd = instr.rd
    ra = instr.ra
    rb = instr.rb
    imm = instr.imm
%(setup)s
    def handler(pc):
        total = cyc[0] + cost
        cyc[0] = total
        ocell[0] += cost
        ocell[1] += 1
        opcell[0] += 1
        if total > maxc[0]:
            raise VMError("cycle budget exceeded")
%(body)s
    return handler
"""

#: spec name -> (predecode-time setup lines, handler body lines).
_HANDLER_TABLE: Dict[str, Tuple[str, str]] = {
    "load": ("", """\
addr = int(regs[ra]) + imm
if not 0 <= addr < memlen:
    raise VMError("load from wild address %#x at pc %d" % (addr, pc))
regs[rd] = memory[addr]
return pc + 1
"""),
    "store": ("""\
heap = vm._heap
min_sp = vm._min_sp
dirty_low = vm._dirty_low
strays = vm._stray_pages
heap_base = vm.HEAP_BASE
""", """\
addr = int(regs[ra]) + imm
if not 0 <= addr < memlen:
    raise VMError("store to wild address %#x at pc %d" % (addr, pc))
memory[addr] = regs[rb]
if addr >= heap_base:
    if addr >= heap[0] and addr < min_sp[0]:
        strays.add(addr >> 8)
else:
    if addr < dirty_low[0]:
        dirty_low[0] = addr
    if addr > dirty_low[1]:
        dirty_low[1] = addr
return pc + 1
"""),
    # Constant materialization: the immediate always fits.
    "lda_const": ("", """\
regs[rd] = imm
return pc + 1
"""),
    "lda_add": ("", """\
regs[rd] = wrap_int(int(regs[ra]) + imm)
return pc + 1
"""),
    "ldih": ("imm16 = imm & 0xFFFF\n", """\
regs[rd] = wrap_int((int(regs[rd]) << 16) | imm16)
return pc + 1
"""),
    "alu_rr": ("fn = binop_impl(ALU_OPS[instr.op])\n", """\
try:
    regs[rd] = fn(int(regs[ra]), int(regs[rb]))
except EvalTrap as trap:
    raise VMError("arithmetic trap at pc %d: %s" % (pc, trap))
return pc + 1
"""),
    "alu_ri": ("fn = binop_impl(ALU_OPS[instr.op])\n", """\
try:
    regs[rd] = fn(int(regs[ra]), imm)
except EvalTrap as trap:
    raise VMError("arithmetic trap at pc %d: %s" % (pc, trap))
return pc + 1
"""),
    "falu": ("fn = binop_impl(FALU_OPS[instr.op])\n", """\
try:
    regs[rd] = fn(float(regs[ra]), float(regs[rb]))
except EvalTrap as trap:
    raise VMError("float trap at pc %d: %s" % (pc, trap))
return pc + 1
"""),
    "mov": ("", """\
regs[rd] = regs[ra]
return pc + 1
"""),
    # Control flow reads ``instr.target`` / ``instr.extra`` at
    # execution time: the loader and the stitcher patch those fields
    # after installation.
    "br": ("i = instr\n", """\
target = i.target
if target < 0:
    raise VMError("pc out of range: %d" % target)
return target
"""),
    "condbr": ("""\
taken_if_zero = instr.op == "beq"
i = instr
""", """\
if (regs[ra] == 0) == taken_if_zero:
    target = i.target
    if target < 0:
        raise VMError("pc out of range: %d" % target)
    return target
return pc + 1
"""),
    "jtab": ("i = instr\n", """\
targets, default = i.extra  # resolved by the loader
index = int(regs[ra]) - imm
if 0 <= index < len(targets):
    target = targets[index]
else:
    target = default
if target < 0:
    raise VMError("pc out of range: %d" % target)
return target
"""),
    "negq": ("", """\
regs[rd] = wrap_int(-int(regs[ra]))
return pc + 1
"""),
    "ornot": ("", """\
regs[rd] = wrap_int(~int(regs[ra]))
return pc + 1
"""),
    "fneg": ("", """\
regs[rd] = -float(regs[ra])
return pc + 1
"""),
    "cvtqt": ("", """\
regs[rd] = float(int(regs[ra]))
return pc + 1
"""),
    "cvttq": ("", """\
regs[rd] = wrap_int(int(float(regs[ra])))
return pc + 1
"""),
    "jsr": ("i = instr\n", """\
regs[RA] = pc + 1
target = i.target
if target < 0:
    raise VMError("pc out of range: %d" % target)
return target
"""),
    "ret": ("", """\
target = int(regs[RA])
if target < 0 and target != RETURN_SENTINEL:
    raise VMError("pc out of range: %d" % target)
return target
"""),
    "jmp": ("", """\
target = int(regs[ra])
if target < 0 and target != RETURN_SENTINEL:
    raise VMError("pc out of range: %d" % target)
return target
"""),
    "call_rt": ("""\
call_rt = vm._call_rt
i = instr
""", """\
call_rt(i)
return pc + 1
"""),
    "halt": ("", "return RETURN_SENTINEL\n"),
    "nop": ("", "return pc + 1\n"),
    # Unknown opcodes fault at execution time (not install time),
    # after charging, exactly like the interpretive loop.
    "unknown": ("i = instr\n", """\
raise VMError("unknown opcode %r at pc %d" % (i.op, pc))
"""),
}


def _indent(block: str, spaces: int) -> str:
    pad = " " * spaces
    return "".join(pad + line + "\n" if line else "\n"
                   for line in block.splitlines())


def _build_factories() -> Dict[str, Callable]:
    namespace_base = {
        "VMError": VMError, "EvalTrap": EvalTrap,
        "binop_impl": binop_impl, "wrap_int": wrap_int,
        "ALU_OPS": ALU_OPS, "FALU_OPS": FALU_OPS,
        "RA": RA, "ZERO": ZERO, "RETURN_SENTINEL": RETURN_SENTINEL,
    }
    factories: Dict[str, Callable] = {}
    for spec, (setup, body) in _HANDLER_TABLE.items():
        source = _FACTORY_TEMPLATE % {
            "setup": _indent(setup, 4),
            "body": _indent(body, 8),
        }
        namespace = dict(namespace_base)
        exec(compile(source, "<rvm-handler:%s>" % spec, "exec"), namespace)
        factories[spec] = namespace["_factory"]
    return factories


_FACTORIES = _build_factories()

#: opcodes with a fixed spec (forms with operand-dependent variants --
#: ``lda`` and the ALU group -- are resolved in :func:`predecode`).
_SPEC_BY_OP: Dict[str, str] = {
    "ldq": "load", "ldt": "load",
    "stq": "store", "stt": "store",
    "ldih": "ldih",
    "mov": "mov", "fmov": "mov",
    "br": "br", "beq": "condbr", "bne": "condbr", "jtab": "jtab",
    "negq": "negq", "ornot": "ornot", "fneg": "fneg",
    "cvtqt": "cvtqt", "cvttq": "cvttq",
    "jsr": "jsr", "ret": "ret", "jmp": "jmp",
    "call_rt": "call_rt", "halt": "halt", "nop": "nop",
}
for _op in FALU_OPS:
    _SPEC_BY_OP[_op] = "falu"


def _wrap_rd_zero(regs, inner: Handler) -> Handler:
    """r31 reads as zero: perform the operation (traps and memory
    faults still fire) but discard the result."""
    def handler(pc: int) -> int:
        next_pc = inner(pc)
        regs[ZERO] = 0
        return next_pc
    return handler


def _wrap_rd_sp(regs, min_sp, inner: Handler) -> Handler:
    """Track the stack low-water mark for ``reset_for_rerun``."""
    def handler(pc: int) -> int:
        next_pc = inner(pc)
        value = int(regs[SP])
        if value < min_sp[0]:
            min_sp[0] = value
        return next_pc
    return handler


def predecode(vm, instr: MInstr) -> Handler:
    """Specialize one installed instruction into a threaded handler.

    Every handler charges its pre-bound cost to the pre-bound owner and
    opcode cells, checks the cycle budget, performs the operation and
    returns the next pc.
    """
    op = instr.op
    spec = _SPEC_BY_OP.get(op)
    if spec is None:
        if op == "lda":
            spec = "lda_const" if instr.ra == ZERO else "lda_add"
        elif op in ALU_OPS:
            spec = "alu_rr" if instr.rb is not None else "alu_ri"
        else:
            spec = "unknown"
    handler = _FACTORIES[spec](vm, instr, vm._cyc, vm._maxc,
                               vm._owner_cell(instr.owner),
                               vm._op_cell(op))
    rd = instr.rd
    if rd is not None and op in RD_WRITING_OPS:
        if rd == ZERO:
            handler = _wrap_rd_zero(vm.regs, handler)
        elif rd == SP:
            handler = _wrap_rd_sp(vm.regs, vm._min_sp, handler)
    return handler


class RVMBackend(ExecutionBackend):
    """Today's engine: per-instruction handlers, threaded dispatch.

    The semantic oracle every other backend is differentially checked
    against.  ``run_threaded`` and ``run_naive`` are the two dispatch
    variants (``VM.run``'s legacy ``dispatch=`` flag maps onto them).
    """

    name = "rvm"

    def predecode(self, vm, instr: MInstr) -> Handler:
        return predecode(vm, instr)

    def run_threaded(self, vm, pc: int) -> Tuple[int, float]:
        """The fast path: ``pc = handlers[pc](pc)`` until the sentinel."""
        handlers = vm.handlers
        regs = vm.regs
        try:
            while pc != RETURN_SENTINEL:
                pc = handlers[pc](pc)
        except IndexError:
            if 0 <= pc < len(handlers):
                raise  # a genuine IndexError inside a runtime service
            raise VMError("pc out of range: %d" % pc) from None
        return int(regs[RV]), float(regs[FRV])

    def run_naive(self, vm, pc: int) -> Tuple[int, float]:
        """The slow path: decode every instruction on every execution.

        This is the dispatch loop the predecoded handlers replaced.  It
        is retained deliberately, as the oracle for the fast path: each
        step charges the same pre-assigned cost to the same owner and
        opcode cells, checks the same budget, raises the same faults
        with the same messages, and applies the same architectural
        special cases (r31 discards results, SP writes update the
        stack low-water mark, stores update the dirty tracking), so
        both dispatchers must produce bit-identical accounting.
        """
        regs = vm.regs
        memory = vm.memory
        memlen = len(memory)
        cyc = vm._cyc
        maxc = vm._maxc
        code = vm.code
        min_sp = vm._min_sp
        dirty_low = vm._dirty_low
        strays = vm._stray_pages
        heap = vm._heap
        heap_base = vm.HEAP_BASE
        while pc != RETURN_SENTINEL:
            if not 0 <= pc < len(code):
                raise VMError("pc out of range: %d" % pc)
            instr = code[pc]
            op = instr.op
            cost = instr.cost
            ocell = vm._owner_cell(instr.owner)
            opcell = vm._op_cell(op)
            total = cyc[0] + cost
            cyc[0] = total
            ocell[0] += cost
            ocell[1] += 1
            opcell[0] += 1
            if total > maxc[0]:
                raise VMError("cycle budget exceeded")
            rd = instr.rd
            ra = instr.ra
            rb = instr.rb
            imm = instr.imm
            next_pc = pc + 1
            if op == "ldq" or op == "ldt":
                addr = int(regs[ra]) + imm
                if not 0 <= addr < memlen:
                    raise VMError("load from wild address %#x at pc %d"
                                  % (addr, pc))
                regs[rd] = memory[addr]
            elif op == "stq" or op == "stt":
                addr = int(regs[ra]) + imm
                if not 0 <= addr < memlen:
                    raise VMError("store to wild address %#x at pc %d"
                                  % (addr, pc))
                memory[addr] = regs[rb]
                if addr >= heap_base:
                    if addr >= heap[0] and addr < min_sp[0]:
                        strays.add(addr >> 8)
                else:
                    if addr < dirty_low[0]:
                        dirty_low[0] = addr
                    if addr > dirty_low[1]:
                        dirty_low[1] = addr
            elif op == "lda":
                if ra == ZERO:
                    regs[rd] = imm
                else:
                    regs[rd] = wrap_int(int(regs[ra]) + imm)
            elif op == "ldih":
                regs[rd] = wrap_int((int(regs[rd]) << 16) | (imm & 0xFFFF))
            elif op in ALU_OPS:
                fn = binop_impl(ALU_OPS[op])
                try:
                    if rb is not None:
                        regs[rd] = fn(int(regs[ra]), int(regs[rb]))
                    else:
                        regs[rd] = fn(int(regs[ra]), imm)
                except EvalTrap as trap:
                    raise VMError("arithmetic trap at pc %d: %s"
                                  % (pc, trap))
            elif op in FALU_OPS:
                fn = binop_impl(FALU_OPS[op])
                try:
                    regs[rd] = fn(float(regs[ra]), float(regs[rb]))
                except EvalTrap as trap:
                    raise VMError("float trap at pc %d: %s" % (pc, trap))
            elif op == "mov" or op == "fmov":
                regs[rd] = regs[ra]
            elif op == "br":
                target = instr.target
                if target < 0:
                    raise VMError("pc out of range: %d" % target)
                next_pc = target
            elif op == "beq" or op == "bne":
                if (regs[ra] == 0) == (op == "beq"):
                    target = instr.target
                    if target < 0:
                        raise VMError("pc out of range: %d" % target)
                    next_pc = target
            elif op == "jtab":
                targets, default = instr.extra  # resolved by the loader
                index = int(regs[ra]) - imm
                if 0 <= index < len(targets):
                    target = targets[index]
                else:
                    target = default
                if target < 0:
                    raise VMError("pc out of range: %d" % target)
                next_pc = target
            elif op == "negq":
                regs[rd] = wrap_int(-int(regs[ra]))
            elif op == "ornot":
                regs[rd] = wrap_int(~int(regs[ra]))
            elif op == "fneg":
                regs[rd] = -float(regs[ra])
            elif op == "cvtqt":
                regs[rd] = float(int(regs[ra]))
            elif op == "cvttq":
                regs[rd] = wrap_int(int(float(regs[ra])))
            elif op == "jsr":
                regs[RA] = pc + 1
                target = instr.target
                if target < 0:
                    raise VMError("pc out of range: %d" % target)
                next_pc = target
            elif op == "ret":
                target = int(regs[RA])
                if target < 0 and target != RETURN_SENTINEL:
                    raise VMError("pc out of range: %d" % target)
                next_pc = target
            elif op == "jmp":
                target = int(regs[ra])
                if target < 0 and target != RETURN_SENTINEL:
                    raise VMError("pc out of range: %d" % target)
                next_pc = target
            elif op == "call_rt":
                vm._call_rt(instr)
            elif op == "halt":
                next_pc = RETURN_SENTINEL
            elif op == "nop":
                pass
            else:
                raise VMError("unknown opcode %r at pc %d" % (op, pc))
            if rd is not None and op in RD_WRITING_OPS:
                if rd == ZERO:
                    regs[ZERO] = 0
                elif rd == SP:
                    value = int(regs[SP])
                    if value < min_sp[0]:
                        min_sp[0] = value
            pc = next_pc
        return int(regs[RV]), float(regs[FRV])
