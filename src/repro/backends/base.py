"""The execution-backend seam.

An :class:`ExecutionBackend` owns everything between a *lowered* piece
of code and its execution on the host.  The rest of the system speaks
backend-neutral forms only:

* the stitcher emits relocatable
  :class:`~repro.codecache.entry.CachedEntry` objects (instruction
  words + relocations + constant pool + entry offset);
* the fallback builder emits a plain instruction list plus symbolic
  labels;
* the loader emits per-function instruction lists.

The backend decides what *host artifact* those become.  The ``rvm``
backend is the bit-exact semantic oracle: per-instruction predecoded
closures driven by the threaded dispatch loop.  The ``pycode`` backend
overlays composed-closure "superhandlers" on top of the same installed
words (see :mod:`repro.backends.pycode`).

The seam contract (see ``docs/BACKENDS.md``):

* **Simulated observables are backend-invariant.**  Return value,
  floats, printed output, memory image, total cycles, per-owner
  cycle/instruction accounting and per-opcode counts must be
  bit-identical across backends for every successful run.  Trapping
  runs must trap with the same exception type (messages and the exact
  cycle count at the trap may differ -- the oracle compares status
  only for non-ok runs).
* **Runtime-service boundaries are exact.**  Whenever a ``call_rt``
  handler (region lookup, stitch, allocation, printing) runs,
  ``vm.cycles`` and the owner cells must hold exactly the value the
  ``rvm`` backend would show at that instruction -- tiering policies
  and the time-series sampler read them mid-run.
* **Install state is shared.**  Every backend installs the same words
  at the same addresses through the same cache/arena path, so cache
  stats, entry pcs, compaction behavior and golden accounting stay
  byte-identical.  Backend-specific artifacts ride alongside
  (``CachedEntry.artifacts``) and die with the entry.
"""

from __future__ import annotations

from typing import List, Optional, Tuple, Union

Number = Union[int, float]


class ExecutionBackend:
    """Base class: the ``rvm`` behavior, with every hook a no-op.

    Subclasses override the hooks they need; anything left alone
    behaves exactly like the historical single-backend engine.
    """

    #: registry name; also what ``--backend`` selects and what the
    #: post-run summary prints.
    name = "abstract"

    # -- execution ---------------------------------------------------------

    def execute(self, vm, entry: int,
                int_args: Optional[List[Tuple[int, Number]]] = None,
                dispatch: str = "threaded") -> Tuple[int, float]:
        """Run ``vm`` from ``entry``; returns ``(r0, f0)``.

        The default drives the VM's own dispatch (which executes
        whatever handlers are installed -- including overlays a
        backend's install hooks put there).  ``dispatch="naive"`` is
        the retained instruction-at-a-time oracle loop; it reads
        ``vm.code`` directly and is backend-independent by design.
        """
        return vm.run(entry, int_args, dispatch=dispatch)

    # -- install hooks ------------------------------------------------------

    def prepare_vm(self, vm, static_words: int) -> None:
        """Called once per fresh VM, after the static image is loaded
        (``static_words`` = length of the static code).  Backends may
        compile the static image here; the work survives
        ``reset_for_rerun`` and so amortizes across repeated runs."""

    def entry_installed(self, vm, entry) -> None:
        """Called by the code cache after a
        :class:`~repro.codecache.entry.CachedEntry` is placed,
        relocated and checksummed.  Backends compile their per-entry
        artifact here and may record it in ``entry.artifacts``."""

    def install_block(self, vm, instrs) -> int:
        """Install a non-cache code block (fallback tier); returns its
        base address.  Must behave exactly like ``vm.install_code`` as
        far as addresses and accounting are concerned."""
        return vm.install_code(instrs)

    def block_installed(self, vm, base: int, words: int,
                        entry_pc: int) -> None:
        """Called after a block installed via :meth:`install_block` has
        had its branch targets resolved (fallback blocks resolve labels
        *after* installation)."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<%s backend>" % self.name
