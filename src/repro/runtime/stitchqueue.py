"""Deterministic asynchronous stitching: the background job queue.

The paper keeps stitching on the region-entry critical path because it
is cheap; the compilation-as-a-service direction demands the opposite
discipline -- a region entry that misses the code cache *enqueues* a
:class:`StitchJob` and is immediately served by the static fallback
tier, while a background "compile thread" drains the queue.  This
module simulates that pipeline on the VM's logical clocks only
(region entries and simulated cycles -- never wall-clock), so every
schedule is deterministic, replayable, and fuzzable:

* ``enqueue`` admits a job per (region, key) at a priority equal to
  the key's observed hotness; when the queue is full the
  lowest-priority pending job is shed (admission control), counted
  and surfaced on ``RunResult.queue_stats``.
* a drain tick runs every ``drain_entries`` region entries (and/or
  every ``drain_cycles`` simulated cycles).  Each tick first runs the
  **watchdog** -- jobs older than ``deadline_cycles`` simulated cycles
  are expired (the engine turns each expiry into a
  ``RegionBreaker.on_failure``) -- then marks up to ``batch`` pending
  jobs *ready*, hottest first.
* a ready job **lands** at the key's next region entry: the table is
  entry-local, so the stitch must run against the fresh table of an
  actual entry (the same reason tiering promotions land one entry
  late).  The stitch charges the normal ``stitcher:`` owner at
  completion time; entries served from fallback while the job waited
  are recorded as :class:`QueuedEntry` events -- the oracle's fifth
  entry class.
* a failed landing retries with seeded jittered exponential backoff
  (``backoff_entries * 2**(attempt-1) + jitter`` region entries,
  via :func:`repro.runtime.guards.seeded_jitter`) until ``retries``
  attempts are spent; jobs are cancelled when their region's table is
  invalidated, its cached code evicted, or its breaker trips.
* two fault sites drive the chaos story: ``queue.drop`` (an enqueue
  silently dropped -- an injected shed) and ``stitch.hang`` (a ready
  job wedges and never lands; only the watchdog can clear it).  Both
  are consulted only by async runs, so configuring them never
  perturbs a sync run's seeded fault schedule.

Sync mode (``StitchQueueConfig.parse("sync")``, the default)
constructs no queue at all, which is what keeps every historical
golden bit-identical.  See ``docs/ROBUSTNESS.md`` ("Async
stitching").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, NamedTuple, Optional, Tuple, Union

from ..obs import trace as obs_trace
from ..obs.metrics import registry as obs_metrics
from .guards import seeded_jitter

Key = Tuple
RegionId = Tuple[str, int]

#: Simulated-cycle bookkeeping costs, charged to the ``stitchq:``
#: owner so conservation (sum of owners == total cycles) stays exact.
QUEUE_ENQUEUE_CYCLES = 3
QUEUE_DRAIN_CYCLES = 2


class QueuedEntry(NamedTuple):
    """A region entry served by fallback *because of the queue* --
    the miss was admitted (or already waiting) instead of stitched
    inline.  ``phase`` names where in the job lifecycle the entry
    landed: ``enqueued`` (this entry created the job), ``waiting``
    (job pending or backing off), ``hung`` (job wedged by a
    ``stitch.hang`` fault), ``shed`` (admission control refused the
    job), or ``dropped`` (a ``queue.drop`` fault ate the enqueue).
    """

    func_name: str
    region_id: int
    key: Key
    phase: str
    entry: int


@dataclass
class QueueStats:
    """End-of-run queue accounting, surfaced on ``RunResult``.

    Conservation: ``enqueued == landed + expired + sum(cancelled) +
    pending`` -- every admitted job ends in exactly one bucket (the
    oracle checks this).  ``shed`` and ``dropped`` count enqueue
    attempts that never became jobs.
    """

    config: str = "sync"
    enqueued: int = 0
    landed: int = 0
    #: jobs (or enqueue attempts) refused by admission control.
    shed: int = 0
    #: enqueue attempts eaten by an injected ``queue.drop`` fault.
    dropped: int = 0
    #: jobs expired by the watchdog (deadline exceeded).
    expired: int = 0
    #: cancellation reason -> jobs cancelled (breaker / invalidate /
    #: evict / failed).
    cancelled: Dict[str, int] = field(default_factory=dict)
    #: failed landings that were re-queued with backoff.
    retries: int = 0
    #: jobs wedged by an injected ``stitch.hang`` fault.
    hung: int = 0
    #: jobs still queued when the run ended.
    pending: int = 0
    max_depth: int = 0
    drains: int = 0
    #: entries-to-land latency per landed job (enqueue to landing).
    land_latencies: List[int] = field(default_factory=list)

    @property
    def total_cancelled(self) -> int:
        return sum(self.cancelled.values())


@dataclass(frozen=True)
class StitchQueueConfig:
    """Queue tuning; frozen so a parsed spec can be shared freely.

    Spec grammar (parallel to ``TierPolicy``/``CacheConfig``)::

        sync                      -- no queue (the historical engine)
        async                     -- defaults below
        async:depth=4,drain=2,cycles=5000,batch=2,deadline=100000,
              retries=1,backoff=2,jitter=3,seed=7
    """

    mode: str = "sync"
    #: max jobs in the queue; admission control sheds beyond this.
    depth: int = 8
    #: drain tick period in region entries.
    drain_entries: int = 4
    #: optional additional drain trigger in simulated cycles.
    drain_cycles: Optional[int] = None
    #: jobs marked ready per drain tick.
    batch: int = 1
    #: per-job deadline in simulated cycles (watchdog budget).
    deadline_cycles: int = 200_000
    #: failed-landing retries before the job is cancelled.
    retries: int = 2
    #: base retry backoff in region entries; doubles per attempt.
    backoff_entries: int = 4
    #: max seeded jitter entries added to each backoff (0 disables).
    jitter: int = 1
    #: seed for the backoff jitter hash.
    seed: int = 0

    def __post_init__(self) -> None:
        if self.mode not in ("sync", "async"):
            raise ValueError("stitch mode must be 'sync' or 'async', "
                             "not %r" % (self.mode,))
        for name in ("depth", "drain_entries", "batch"):
            if getattr(self, name) < 1:
                raise ValueError("stitch queue %s must be >= 1" % name)
        for name in ("deadline_cycles", "retries", "backoff_entries",
                     "jitter"):
            if getattr(self, name) < 0:
                raise ValueError("stitch queue %s must be >= 0" % name)

    @property
    def asynchronous(self) -> bool:
        return self.mode == "async"

    _FIELDS = {"depth": "depth", "drain": "drain_entries",
               "cycles": "drain_cycles", "batch": "batch",
               "deadline": "deadline_cycles", "retries": "retries",
               "backoff": "backoff_entries", "jitter": "jitter",
               "seed": "seed"}

    @classmethod
    def parse(cls, spec: Optional[Union[str, "StitchQueueConfig"]]
              ) -> "StitchQueueConfig":
        """Parse a spec string; ``None``/``""``/``"off"`` mean sync."""
        if isinstance(spec, cls):
            return spec
        if spec is None:
            return cls()
        text = spec.strip()
        if not text or text in ("sync", "off"):
            return cls()
        mode, _, rest = text.partition(":")
        if mode != "async":
            raise ValueError("unknown stitch mode %r (want sync or "
                             "async[:k=v,...])" % text)
        kwargs: Dict[str, int] = {"mode": "async"}
        for clause in rest.split(","):
            clause = clause.strip()
            if not clause:
                continue
            name, sep, value = clause.partition("=")
            if not sep or name not in cls._FIELDS:
                raise ValueError(
                    "bad stitch queue clause %r (want one of %s)"
                    % (clause, ", ".join(sorted(cls._FIELDS))))
            try:
                kwargs[cls._FIELDS[name]] = int(value)
            except ValueError:
                raise ValueError("bad stitch queue value %r in %r"
                                 % (value, clause))
        return cls(**kwargs)

    def describe(self) -> str:
        """A spec string that parses back to this config."""
        if not self.asynchronous:
            return "sync"
        default = StitchQueueConfig(mode="async")
        parts = []
        for name in ("depth", "drain", "cycles", "batch", "deadline",
                     "retries", "backoff", "jitter", "seed"):
            attr = self._FIELDS[name]
            value = getattr(self, attr)
            if value != getattr(default, attr) and value is not None:
                parts.append("%s=%d" % (name, value))
        return "async:" + ",".join(parts) if parts else "async"


@dataclass
class StitchJob:
    """One queued compilation request for a (region, key)."""

    func_name: str
    region_id: int
    key: Key
    #: hotness at enqueue time (tier count, or the queue's own per-key
    #: counter for eager runs); admission control sheds the coldest.
    priority: int
    #: region-entry clock at enqueue (entries-to-land latency base).
    enqueue_entries: int
    #: simulated-cycle clock at enqueue (deadline base).
    enqueue_cycles: int
    #: admission order; the deterministic tie-break everywhere.
    seq: int
    #: ``pending`` -> ``ready`` -> landed; ``hung`` is terminal until
    #: the watchdog expires it.
    state: str = "pending"
    #: landing attempts so far (bumped by each failed stitch).
    attempts: int = 0
    #: entry clock before which a backing-off job may not go ready.
    not_before: int = 0

    @property
    def region(self) -> RegionId:
        return (self.func_name, self.region_id)


class StitchQueue:
    """The deterministic background-stitching scheduler for one run."""

    def __init__(self, config: StitchQueueConfig, vm, faults=None):
        assert config.asynchronous, "sync runs construct no queue"
        self.config = config
        self.vm = vm
        self.faults = faults
        self.jobs: Dict[Tuple[str, int, Key], StitchJob] = {}
        self.stats = QueueStats(config=config.describe())
        #: region-entry clock (every lookup of any region ticks it).
        self.entry_clock = 0
        self._seq = 0
        self._last_drain_cycles = 0
        #: per-key entry counts for eager runs (priority source when no
        #: tier controller tracks hotness).
        self._key_counts: Dict[Tuple[str, int, Key], int] = {}
        #: engine callback: a job exceeded its deadline (watchdog).
        self.on_deadline = None
        #: the job whose stitch is running right now: a cache
        #: invalidation triggered by its own install must not cancel
        #: it out from under the landing.
        self.landing: Optional[StitchJob] = None

    # -- clocks ------------------------------------------------------------

    def on_entry(self) -> None:
        """Tick the logical clock; drain when a tick period elapses."""
        self.entry_clock += 1
        due = self.entry_clock % self.config.drain_entries == 0
        if not due and self.config.drain_cycles:
            due = (self.vm.cycles - self._last_drain_cycles
                   >= self.config.drain_cycles)
        if due and self.jobs:
            self.drain()

    def drain(self) -> None:
        """One background-compiler tick: watchdog, then readiness."""
        self.stats.drains += 1
        self._last_drain_cycles = self.vm.cycles
        self.vm.charge("stitchq:sched", QUEUE_DRAIN_CYCLES)
        deadline = self.config.deadline_cycles
        if deadline:
            for job in [j for j in self.jobs.values()
                        if self.vm.cycles - j.enqueue_cycles > deadline]:
                self._expire(job)
        ready_slots = self.config.batch
        if not ready_slots:
            return
        eligible = sorted(
            (job for job in self.jobs.values()
             if job.state == "pending"
             and job.not_before <= self.entry_clock),
            key=lambda job: (-job.priority, job.seq))
        for job in eligible[:ready_slots]:
            job.state = "ready"

    # -- admission ---------------------------------------------------------

    def key_count(self, func: str, region_id: int, key: Key) -> int:
        """Bump and return the queue's own hotness counter (used as
        priority when no tier controller is tracking the key)."""
        slot = (func, region_id, key)
        count = self._key_counts.get(slot, 0) + 1
        self._key_counts[slot] = count
        return count

    def get(self, func: str, region_id: int,
            key: Key) -> Optional[StitchJob]:
        return self.jobs.get((func, region_id, key))

    def enqueue(self, func: str, region_id: int, key: Key,
                priority: int) -> str:
        """Admit a job; returns the phase for the QueuedEntry record
        (``enqueued``, ``shed``, or ``dropped``)."""
        self.vm.charge("stitchq:%s:%d" % (func, region_id),
                       QUEUE_ENQUEUE_CYCLES)
        if self.faults is not None and self.faults.should_fire(
                "queue.drop", region=(func, region_id)):
            self.stats.dropped += 1
            self.stats.shed += 1
            self._instant("stitch.shed", func, region_id, key,
                          injected=True)
            return "dropped"
        if len(self.jobs) >= self.config.depth:
            victim = min(
                (job for job in self.jobs.values()
                 if job.state == "pending"),
                key=lambda job: (job.priority, -job.seq), default=None)
            if victim is None or victim.priority >= priority:
                # Nothing colder than the newcomer: shed the newcomer.
                self.stats.shed += 1
                self._instant("stitch.shed", func, region_id, key,
                              injected=False)
                return "shed"
            del self.jobs[(victim.func_name, victim.region_id,
                           victim.key)]
            self.stats.shed += 1
            self._instant("stitch.shed", victim.func_name,
                          victim.region_id, victim.key, injected=False)
        job = StitchJob(func, region_id, key, priority,
                        enqueue_entries=self.entry_clock,
                        enqueue_cycles=self.vm.cycles, seq=self._seq)
        self._seq += 1
        self.jobs[(func, region_id, key)] = job
        self.stats.enqueued += 1
        self.stats.max_depth = max(self.stats.max_depth, len(self.jobs))
        self._instant("stitch.enqueue", func, region_id, key,
                      priority=priority)
        self._gauge()
        return "enqueued"

    # -- landing -----------------------------------------------------------

    def land(self, job: StitchJob) -> None:
        """A ready job's stitch completed at a region entry."""
        del self.jobs[(job.func_name, job.region_id, job.key)]
        latency = self.entry_clock - job.enqueue_entries
        self.stats.landed += 1
        self.stats.land_latencies.append(latency)
        self._instant("stitch.land", job.func_name, job.region_id,
                      job.key, latency=latency, attempts=job.attempts)
        if obs_metrics._enabled:
            obs_metrics.counter("stitchq.landed").inc()
            obs_metrics.counter("stitchq.latency_entries").inc(latency)
        self._gauge()

    def on_land_failure(self, job: StitchJob) -> bool:
        """A landing attempt raised; back off and retry, or cancel.

        Returns True when the job stays queued for another attempt.
        """
        job.attempts += 1
        if job.attempts > self.config.retries:
            self.cancel(job, "failed")
            return False
        backoff = self.config.backoff_entries * (1 << (job.attempts - 1))
        backoff += seeded_jitter(
            self.config.seed,
            (job.func_name, job.region_id, job.key, job.attempts),
            self.config.jitter)
        job.state = "pending"
        job.not_before = self.entry_clock + backoff
        self.stats.retries += 1
        self._instant("stitch.retry", job.func_name, job.region_id,
                      job.key, attempt=job.attempts, backoff=backoff)
        return True

    def mark_hung(self, job: StitchJob) -> None:
        """An injected ``stitch.hang``: the job wedges until the
        watchdog's deadline clears it."""
        job.state = "hung"
        self.stats.hung += 1
        self._instant("stitch.hang", job.func_name, job.region_id,
                      job.key)

    # -- cancellation ------------------------------------------------------

    def cancel(self, job: StitchJob, reason: str) -> None:
        if job is self.landing:
            return
        if self.jobs.pop((job.func_name, job.region_id, job.key),
                         None) is None:
            return
        self.stats.cancelled[reason] = \
            self.stats.cancelled.get(reason, 0) + 1
        self._instant("stitch.cancel", job.func_name, job.region_id,
                      job.key, reason=reason)
        self._gauge()

    def cancel_region(self, func: str, region_id: int,
                      reason: str) -> int:
        """Cancel every job of a region (breaker trip, table
        invalidation); returns how many were cancelled."""
        doomed = [job for job in self.jobs.values()
                  if job.region == (func, region_id)]
        for job in doomed:
            self.cancel(job, reason)
        return len(doomed)

    def cancel_key(self, func: str, region_id: int, key: Key,
                   reason: str) -> None:
        job = self.jobs.get((func, region_id, key))
        if job is not None:
            self.cancel(job, reason)

    def region_in_flight(self, region: RegionId) -> bool:
        """Does the region have queued jobs?  The code cache consults
        this to pin the region's installed code against eviction while
        compilation is in flight."""
        return any(job.region == region for job in self.jobs.values())

    # -- watchdog ----------------------------------------------------------

    def _expire(self, job: StitchJob) -> None:
        if self.jobs.pop((job.func_name, job.region_id, job.key),
                         None) is None:
            return  # already cancelled by a sibling's breaker trip
        self.stats.expired += 1
        self._instant("stitch.deadline", job.func_name, job.region_id,
                      job.key, age=self.vm.cycles - job.enqueue_cycles,
                      hung=job.state == "hung")
        if obs_metrics._enabled:
            obs_metrics.counter("stitchq.expired").inc()
        if self.on_deadline is not None:
            self.on_deadline(job)
        self._gauge()

    # -- reporting ---------------------------------------------------------

    def snapshot(self) -> QueueStats:
        self.stats.pending = len(self.jobs)
        return self.stats

    def _gauge(self) -> None:
        if obs_metrics._enabled:
            obs_metrics.gauge("stitchq.depth").set(len(self.jobs))

    def _instant(self, name: str, func: str, region_id: int, key: Key,
                 **fields) -> None:
        if obs_metrics._enabled:
            obs_metrics.counter(
                name.replace("stitch.", "stitchq.", 1)).inc()
        if obs_trace._current is not None:
            obs_trace.instant(name, "stitchq",
                              region="%s:%d" % (func, region_id),
                              key=list(key), **fields)
