"""Adaptive tiering: the break-even model as a control loop.

The paper's Section 5 economics say dynamic compilation only pays when
a region's reuse amortizes the stitch cost -- yet the engine
historically stitched every region eagerly on its first entry.  This
module adds the missing control loop: a :class:`TierPolicy` decides,
per (region, key), *whether and when* a region entry is promoted from
the generic fallback tier (see :mod:`repro.runtime.fallback`) to
stitched code.

Three modes:

* ``eager`` -- the historical behavior and the default: every first
  entry stitches.  No controller is created, no ``tier:`` owner is
  charged, and every simulated observable is bit-identical to the
  pre-tiering engine (pinned by the accounting goldens).
* ``threshold:N`` -- a classic JIT hotness counter: a (region, key)
  runs the generic fallback tier until its Nth entry, which stitches.
* ``breakeven`` -- the paper's economics, live: a key is promoted only
  when the measured cost of its cold entries and a template-derived
  estimate of the stitch cost predict that the stitch amortizes within
  ``horizon`` future entries.

Cold entries execute the region's generic fallback code (table-driven,
built once per region) and pay a small counter-maintenance charge to a
``tier:<func>:<region>`` owner, so break-even accounting sees exactly
what the adaptive bookkeeping costs.

Promotion math (``breakeven`` mode), per (region, key):

* the key's first entry always runs cold -- the controller needs one
  measured execution;
* ``C`` = measured fallback cycles per cold entry of *this key*
  (fallback code is deterministic per key, so ``C`` is a pure function
  of the key -- which keeps promotion decisions order-independent, a
  property the tiering test layer checks);
* ``O`` = predicted stitch cost, estimated from the region's template
  (directives, instructions, holes, branch fixups priced by the
  :class:`~repro.machine.costs.StitcherCosts` model; loop unrolling is
  unknown before stitching, so ``O`` is a floor);
* ``S`` = predicted cycles saved per stitched execution,
  ``C * (1 - 1/assumed_speedup)``;
* predicted break-even count ``B = ceil(O / S)``; the key promotes at
  its ``B+1``-th entry, and never promotes when ``B > horizon``.

Speculative key-versioning: when a key earns promotion, up to
``speculate`` of its hottest cold sibling keys are marked; a marked
key stitches at its *next* entry instead of waiting out its own
threshold.  (A region's run-time-constants table is entry-local state
-- it is filled by set-up code on the way into an entry -- so the
earliest a sibling's version can be stitched is that sibling's next
entry.)  The per-region speculative version set is bounded by
``max_versions``.

Demotions: a promotion-eligible entry that ends up on the fallback
tier anyway (stitch failure, or a circuit breaker holding the region
open) counts as a demotion; the counters surface in
``RunResult.tier_stats`` and the ``tier.*`` metrics.

The controller also feeds *hotness-weighted eviction*: every cached
entry's ``hotness`` is kept at the key's live entry count, which the
``cost-aware`` cache policy folds into its retention score (hotter
entries are costlier to lose).  Non-adaptive runs leave ``hotness`` at
zero, so their eviction order is unchanged.

Chaos: the ``tier.flip`` fault site inverts individual promotion
decisions.  A flipped decision is *economically* wrong but must never
be *semantically* wrong -- the differential oracle proves tiered runs
match the interpreter bit-for-bit whatever the schedule flips.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Dict, List, NamedTuple, Optional, Set, Tuple, Union

from ..machine.costs import StitcherCosts
from ..obs import trace as obs_trace
from ..obs.metrics import registry as obs_metrics

Number = Union[int, float]

RegionId = Tuple[str, int]
Key = Tuple[Number, ...]

#: Cycles charged to the ``tier:`` owner per adaptive region entry
#: (hash the key, bump the counter -- the cheap profiling the paper's
#: economics assume can be had for almost nothing).
TIER_COUNTER_CYCLES = 4

#: Extra cycles charged when the controller runs the promotion
#: predicate on a cache miss (read the measurement, divide, compare).
TIER_DECIDE_CYCLES = 6

TIER_MODES = ("eager", "threshold", "breakeven")


class ColdEntry(NamedTuple):
    """A region entry served cold (fallback tier, by tiering policy).

    Distinct from :class:`~repro.runtime.engine.FallbackEvent`: a cold
    entry is the *policy working as intended*, not a degradation.  The
    oracle's adaptive invariant counts both: ``entries == cache hits +
    stitches + fallbacks + cold entries``.
    """

    func_name: str
    region_id: int
    key: Key
    #: the key's entry count when this entry ran cold (1-based).
    count: int
    #: fallback entry pc the dispatch glue jumped to.
    entry: int


@dataclass(frozen=True)
class TierPolicy:
    """When does a (region, key) deserve a stitch?

    Parsed from CLI specs (see :meth:`parse`); ``eager`` is the
    default everywhere and reproduces the historical engine exactly.
    """

    mode: str = "eager"
    #: ``threshold`` mode: promote at the key's Nth entry.
    threshold: int = 2
    #: ``breakeven`` mode: never promote a key whose predicted
    #: break-even count exceeds this many entries.
    horizon: int = 256
    #: ``breakeven`` mode: predicted speedup of stitched code over the
    #: generic fallback tier (the paper's Table 2 medians sit well
    #: above 2x; the estimate only gates *when* to stitch, never what
    #: the stitched code computes).
    assumed_speedup: float = 2.0
    #: pre-stitch marks handed to the K hottest sibling keys when a
    #: key earns promotion (0 disables speculation).
    speculate: int = 0
    #: bound on speculative versions per region.
    max_versions: int = 4

    def __post_init__(self) -> None:
        if self.mode not in TIER_MODES:
            raise ValueError("unknown tier mode %r (choose from %s)"
                             % (self.mode, ", ".join(TIER_MODES)))
        if self.threshold < 1:
            raise ValueError("tier threshold must be >= 1")
        if self.horizon < 1:
            raise ValueError("tier horizon must be >= 1")
        if self.assumed_speedup <= 1.0:
            raise ValueError("assumed_speedup must be > 1")
        if self.speculate < 0 or self.max_versions < 0:
            raise ValueError("speculate/max_versions must be >= 0")

    @property
    def adaptive(self) -> bool:
        return self.mode != "eager"

    @classmethod
    def parse(cls, spec: Optional[Union[str, "TierPolicy"]]
              ) -> "TierPolicy":
        """Parse a CLI tier spec.

        ``eager`` | ``threshold:N`` | ``breakeven[:HORIZON]``, with
        optional comma-separated options ``spec=K`` (speculative
        sibling marks), ``versions=V`` (speculative version bound) and
        ``speedup=F`` (breakeven's assumed speedup).  Examples::

            eager
            threshold:3
            threshold:4,spec=2,versions=3
            breakeven
            breakeven:64,speedup=1.5
        """
        if spec is None:
            return cls()
        if isinstance(spec, TierPolicy):
            return spec
        text = spec.strip()
        if not text:
            return cls()
        head, _, rest = text.partition(",")
        mode, _, arg = head.partition(":")
        mode = mode or "eager"
        if mode not in TIER_MODES:
            raise ValueError("unknown tier mode %r (choose from %s)"
                             % (mode, ", ".join(TIER_MODES)))
        kwargs: Dict[str, object] = {"mode": mode}
        if arg:
            try:
                value = int(arg)
            except ValueError:
                raise ValueError("bad tier argument %r in %r" % (arg, spec))
            if mode == "threshold":
                kwargs["threshold"] = value
            elif mode == "breakeven":
                kwargs["horizon"] = value
            else:
                raise ValueError("tier mode %r takes no argument" % mode)
        for clause in filter(None, rest.split(",")):
            name, sep, value_text = clause.partition("=")
            if not sep:
                raise ValueError("bad tier option %r (want NAME=VALUE)"
                                 % clause)
            try:
                if name == "spec":
                    kwargs["speculate"] = int(value_text)
                elif name == "versions":
                    kwargs["max_versions"] = int(value_text)
                elif name == "speedup":
                    kwargs["assumed_speedup"] = float(value_text)
                else:
                    raise ValueError("unknown tier option %r" % name)
            except ValueError as exc:
                if "tier option" in str(exc):
                    raise
                raise ValueError("bad tier option value %r in %r"
                                 % (value_text, clause))
        return cls(**kwargs)  # type: ignore[arg-type]

    def describe(self) -> str:
        if self.mode == "eager":
            return "eager"
        if self.mode == "threshold":
            text = "threshold:%d" % self.threshold
        else:
            text = "breakeven:%d" % self.horizon
        if self.speculate:
            text += ",spec=%d,versions=%d" % (self.speculate,
                                              self.max_versions)
        if self.mode == "breakeven" and self.assumed_speedup != 2.0:
            text += ",speedup=%g" % self.assumed_speedup
        return text

    def with_mode(self, mode: str, **kwargs) -> "TierPolicy":
        return replace(self, mode=mode, **kwargs)


@dataclass
class _RegionState:
    """Per-region adaptive bookkeeping."""

    #: key -> entries observed (hits, stitches, cold and degraded all
    #: count -- an entry is an entry).
    counts: Dict[Key, int] = field(default_factory=dict)
    #: keys with at least one successful stitch.
    promoted: Set[Key] = field(default_factory=set)
    #: keys marked for speculative promotion at their next entry.
    marks: Set[Key] = field(default_factory=set)
    #: key -> (measured fallback cycles, measured cold executions).
    measured: Dict[Key, List[int]] = field(default_factory=dict)
    #: key whose fallback execution is still accruing cycles (settled
    #: at the region's next entry).
    pending: Optional[Key] = None
    #: fallback-owner cycle reading at the last settlement.
    last_fallback_cycles: int = 0
    #: key -> predicted break-even entry count at decision time.
    predicted: Dict[Key, int] = field(default_factory=dict)
    cold_entries: int = 0
    #: entries served from fallback while an async stitch job waited.
    queued_entries: int = 0
    promotions: int = 0
    speculative_promotions: int = 0
    demotions: int = 0
    flips: int = 0


class TierController:
    """Run-time state of one adaptive execution.

    Created by the engine's region runtime only when the policy is
    adaptive; eager runs never construct one, which is what keeps them
    bit-identical to the historical engine.
    """

    def __init__(self, policy: TierPolicy, vm,
                 regions: Dict[RegionId, "RegionCode"],  # noqa: F821
                 costs: StitcherCosts, faults=None):
        assert policy.adaptive, "eager runs need no controller"
        self.policy = policy
        self.vm = vm
        self.regions = regions
        self.costs = costs
        self.faults = faults
        self.state: Dict[RegionId, _RegionState] = {}
        self._estimates: Dict[RegionId, int] = {}

    # -- bookkeeping helpers -----------------------------------------------

    def _state(self, region: RegionId) -> _RegionState:
        state = self.state.get(region)
        if state is None:
            state = self.state[region] = _RegionState()
        return state

    def count(self, func: str, region_id: int, key: Key) -> int:
        return self._state((func, region_id)).counts.get(key, 0)

    def _fallback_owner_cycles(self, region: RegionId) -> int:
        cell = self.vm._owner_cells.get("fallback:%s:%d" % region)
        return cell[0] if cell is not None else 0

    def _settle(self, region: RegionId, state: _RegionState) -> None:
        """Attribute fallback cycles accrued since the last settlement
        to the key whose execution produced them.  Region entries never
        nest into the same region (the fallback tier's documented
        reentrancy limit), so by the time the region is entered again
        the pending execution has fully completed."""
        current = self._fallback_owner_cycles(region)
        pending = state.pending
        if pending is not None:
            cell = state.measured.get(pending)
            if cell is None:
                cell = state.measured[pending] = [0, 0]
            cell[0] += current - state.last_fallback_cycles
            cell[1] += 1
            state.pending = None
        state.last_fallback_cycles = current

    def estimate_stitch_cycles(self, func: str, region_id: int) -> int:
        """Template-derived floor on what a stitch of this region will
        cost, in the stitcher's own cost model.  Loop unrolling and
        pool pressure are unknowable before the table is read, so the
        estimate is deliberately a floor -- it can only make the
        controller *more* willing to stitch, never over-conservative
        for loop-free regions."""
        region = (func, region_id)
        cached = self._estimates.get(region)
        if cached is not None:
            return cached
        code = self.regions[region]
        costs = self.costs
        instrs = sum(len(b.instrs) for b in code.blocks.values())
        holes = sum(len(b.holes) for b in code.blocks.values())
        fixups = sum(len(b.fixups) for b in code.blocks.values())
        estimate = (costs.per_region
                    + code.directive_count * costs.per_directive
                    + instrs * costs.per_instr_copied
                    + holes * costs.per_hole
                    + fixups * costs.per_branch_fixup)
        self._estimates[region] = estimate
        return estimate

    # -- engine hook points ------------------------------------------------

    def on_entry(self, func: str, region_id: int, key: Key) -> None:
        """Every region entry: bump the key's counter, charge the
        ``tier:`` owner, settle any pending cold-execution measurement."""
        region = (func, region_id)
        state = self._state(region)
        state.counts[key] = state.counts.get(key, 0) + 1
        self._settle(region, state)
        self.vm.charge("tier:%s:%d" % region, TIER_COUNTER_CYCLES)

    def decide(self, func: str, region_id: int, key: Key) -> bool:
        """On a cache miss: stitch now (True) or run cold (False)?"""
        region = (func, region_id)
        state = self._state(region)
        self.vm.charge("tier:%s:%d" % region, TIER_DECIDE_CYCLES)
        promote = self._predicate(region, state, key)
        if self.faults is not None and self.faults.should_fire("tier.flip"):
            promote = not promote
            state.flips += 1
        return promote

    def _predicate(self, region: RegionId, state: _RegionState,
                   key: Key) -> bool:
        if key in state.promoted:
            # Eviction/invalidation re-entry of a proven-hot key:
            # re-stitch immediately, no cooling-off.
            return True
        if key in state.marks:
            return True
        count = state.counts.get(key, 0)
        if self.policy.mode == "threshold":
            return count >= self.policy.threshold
        # breakeven: the first entry always runs cold (it *is* the
        # measurement), after which the economics take over.
        if count < 2:
            return False
        cell = state.measured.get(key)
        if cell is None or cell[1] == 0:
            return False
        cold_per_exec = cell[0] / cell[1]
        saved = cold_per_exec * (1.0 - 1.0 / self.policy.assumed_speedup)
        if saved <= 0:
            return False
        overhead = self.estimate_stitch_cycles(*region)
        breakeven = math.ceil(overhead / saved)
        state.predicted[key] = breakeven
        if breakeven > self.policy.horizon:
            return False
        return count > breakeven

    def on_cold(self, func: str, region_id: int, key: Key) -> None:
        """A region entry the policy kept on the fallback tier."""
        region = (func, region_id)
        state = self._state(region)
        state.cold_entries += 1
        state.pending = key
        if obs_metrics._enabled:
            obs_metrics.counter("tier.cold").labels(
                region="%s:%d" % region, tier=self.policy.mode).inc()
        if obs_trace._current is not None:
            obs_trace.instant("tier.cold", "runtime",
                              region="%s:%d" % region, key=list(key),
                              count=state.counts.get(key, 0))

    def on_queued(self, func: str, region_id: int, key: Key) -> None:
        """An async-stitching entry served from fallback while its job
        waits in the queue: not a demotion and not cold-by-policy, but
        the fallback cycles it accrues must still settle against this
        key so break-even measurements stay honest."""
        region = (func, region_id)
        state = self._state(region)
        state.queued_entries += 1
        state.pending = key

    def on_degraded(self, func: str, region_id: int, key: Key) -> None:
        """A degradation fallback (fault/budget/error/breaker) in an
        adaptive run: keep the cycle attribution honest and count a
        demotion when the entry was promotion-eligible."""
        region = (func, region_id)
        state = self._state(region)
        state.pending = key
        if key in state.promoted or key in state.marks:
            state.demotions += 1
            if obs_metrics._enabled:
                obs_metrics.counter("tier.demotions").labels(
                    region="%s:%d" % region, tier=self.policy.mode).inc()
            if obs_trace._current is not None:
                obs_trace.instant("tier.demote", "runtime",
                                  region="%s:%d" % region, key=list(key))

    def on_stitch_failed(self, func: str, region_id: int,
                         key: Key) -> None:
        self.on_degraded(func, region_id, key)

    def on_promote(self, func: str, region_id: int, key: Key,
                   entry) -> None:
        """A successful adaptive stitch: record it, seed the cached
        entry's hotness, and hand out speculative marks."""
        region = (func, region_id)
        state = self._state(region)
        speculative = key in state.marks and key not in state.promoted
        state.marks.discard(key)
        state.promoted.add(key)
        state.promotions += 1
        if speculative:
            state.speculative_promotions += 1
        count = state.counts.get(key, 0)
        entry.hotness = count
        if obs_metrics._enabled:
            obs_metrics.counter("tier.promotions").labels(
                region="%s:%d" % region, tier=self.policy.mode).inc()
            if speculative:
                obs_metrics.counter("tier.speculative_promotions").inc()
        if obs_trace._current is not None:
            obs_trace.instant(
                "tier.promote", "runtime", region="%s:%d" % region,
                key=list(key), count=count, speculative=speculative,
                predicted_breakeven=state.predicted.get(key))
        if not speculative:
            self._mark_siblings(region, state, key)

    def _mark_siblings(self, region: RegionId, state: _RegionState,
                       key: Key) -> None:
        """Speculative key-versioning: when a key *earns* promotion,
        mark its hottest cold siblings to stitch at their next entry,
        bounded by the region's speculative version budget."""
        budget = self.policy.speculate
        if budget <= 0:
            return
        room = self.policy.max_versions \
            - state.speculative_promotions - len(state.marks)
        budget = min(budget, max(0, room))
        if budget <= 0:
            return
        siblings = sorted(
            ((count, k) for k, count in state.counts.items()
             if k != key and k not in state.promoted
             and k not in state.marks),
            key=lambda item: (-item[0], item[1]))
        for _, sibling in siblings[:budget]:
            state.marks.add(sibling)
            if obs_metrics._enabled:
                obs_metrics.counter("tier.speculative_marks").inc()
            if obs_trace._current is not None:
                obs_trace.instant("tier.speculate", "runtime",
                                  region="%s:%d" % region,
                                  key=list(sibling))

    def on_hit(self, func: str, region_id: int, key: Key,
               cached) -> None:
        """Cache hit in an adaptive run: refresh the entry's hotness
        for the cost-aware policy's eviction score."""
        cached.hotness = self.count(func, region_id, key)

    # -- reporting ---------------------------------------------------------

    def snapshot(self) -> Dict[RegionId, Dict[str, object]]:
        """Per-region tiering stats for ``RunResult.tier_stats``."""
        out: Dict[RegionId, Dict[str, object]] = {}
        for region, state in sorted(self.state.items()):
            predicted = [state.predicted[k] for k in sorted(state.predicted)]
            out[region] = {
                "mode": self.policy.describe(),
                "keys": len(state.counts),
                "keys_promoted": len(state.promoted),
                "promoted_keys": [repr(list(k))
                                  for k in sorted(state.promoted)],
                "cold_entries": state.cold_entries,
                "queued_entries": state.queued_entries,
                "promotions": state.promotions,
                "speculative_promotions": state.speculative_promotions,
                "demotions": state.demotions,
                "decision_flips": state.flips,
                "predicted_breakeven": (
                    min(predicted) if predicted else None),
                "predicted_breakeven_by_key": {
                    repr(list(k)): v
                    for k, v in sorted(state.predicted.items())},
                "counters": {repr(list(k)): v
                             for k, v in sorted(state.counts.items())},
            }
        return out
