"""Execution: the engine (compile + run + measure) and the reference
interpreter used as the semantic oracle."""

from .engine import Program, RunResult, compile_ir_module, compile_program
from .interp import Interpreter, InterpError, run_source
from .stitchqueue import (
    QueuedEntry, QueueStats, StitchJob, StitchQueue, StitchQueueConfig,
)
from .tiering import ColdEntry, TierController, TierPolicy

__all__ = [
    "ColdEntry", "Interpreter", "InterpError", "Program", "QueuedEntry",
    "QueueStats", "RunResult", "StitchJob", "StitchQueue",
    "StitchQueueConfig", "TierController", "TierPolicy",
    "compile_ir_module", "compile_program", "run_source",
]
