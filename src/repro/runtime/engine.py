"""The execution engine: compile MiniC, run it on the RVM, measure.

This is the library's main entry point.  :func:`compile_program`
drives the full static pipeline (parse, check, lower to IR, SSA,
optimize, split regions, register-allocate, generate code and
templates); :class:`Program.run` executes the result on a fresh VM with
the dynamic-compilation runtime installed (keyed code cache, stitcher
hooks) and returns cycle accounting per component -- everything the
Table 2 harness needs.

Modes:

* ``"dynamic"`` -- the paper's system: regions split, templates
  stitched on first entry.
* ``"static"``  -- the baseline: annotations ignored, regions compiled
  as ordinary code (cycles still attributed per region for the
  comparison).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, NamedTuple, Optional, Tuple, Union

from ..backends import ExecutionBackend, get_backend
from ..codecache import (
    CacheConfig, CacheKey, CacheStats, CodeCache, region_key,
)
from ..codegen.lower import DataLayout, lower_module
from ..codegen.objects import CompiledFunction, RegionCode
from ..dynamic.splitter import RegionPlan, split_module
from ..dynamic.stitcher import StitchReport, stitch_entry
from ..errors import RegionNotFound, StitchBudgetExceeded, StitchError
from ..faults import FaultPlan
from ..frontend.parser import parse
from ..frontend.typecheck import check
from ..ir.builder import build_module
from ..ir.cfg import Module
from ..ir.ssa import from_ssa, to_ssa
from ..machine.costs import StitcherCosts
from ..machine.isa import ARG_BASE, CPOOL, MInstr
from ..machine.loader import load_program
from ..machine.vm import VM, VMError
from ..obs import timeseries as obs_ts
from ..obs import trace as obs_trace
from ..obs.metrics import registry as obs_metrics
from ..opt.pipeline import OptOptions, OptStats, optimize
from .fallback import FallbackCode, build_fallback
from .guards import BreakerConfig, RegionBreaker, StitchBudget
from .stitchqueue import (
    QueuedEntry, QueueStats, StitchJob, StitchQueue, StitchQueueConfig,
)
from .tiering import ColdEntry, TierController, TierPolicy

Number = Union[int, float]


class CacheHit(NamedTuple):
    """A region entry served from the keyed code cache.

    Recorded by the region runtime so post-run accounting sees *every*
    region execution, not just the ones that stitched: region entries
    == cache hits + stitch reports (the oracle checks this invariant).
    """

    func_name: str
    region_id: int
    key: Tuple[Number, ...]
    entry: int


class FallbackEvent(NamedTuple):
    """A region entry served by the static fallback tier.

    ``reason`` names the rung of the degradation ladder that was hit:
    ``"fault"`` (an injected failure), ``"budget"`` (a resource guard
    tripped), ``"error"`` (a genuine stitch/arena failure), or
    ``"breaker"`` (the region's circuit breaker was open -- no stitch
    was even attempted).  ``injected`` is True only for faults raised
    by the :mod:`repro.faults` harness; the oracle uses it to prove
    every injected fault is accounted for.
    """

    func_name: str
    region_id: int
    key: Tuple[Number, ...]
    reason: str
    injected: bool
    entry: int


@dataclass
class RunResult:
    """Outcome and measurements of one program execution."""

    value: int
    float_value: float
    output: List[Number]
    cycles: int
    cycles_by_owner: Dict[str, int]
    instrs_by_owner: Dict[str, int]
    stitch_reports: List[StitchReport] = field(default_factory=list)
    #: executed-instruction histogram by opcode.
    op_counts: Dict[str, int] = field(default_factory=dict)
    #: (func, region_id) -> region entries (cache hits + misses).
    region_entries: Dict[Tuple[str, int], int] = field(
        default_factory=dict)
    #: cache-hit events, one per entry that reused stitched code.
    cache_hits: List[CacheHit] = field(default_factory=list)
    #: code-cache accounting: policy, hits/misses, evictions,
    #: compactions, invalidations, re-stitches, and the live code
    #: ranges (the only run-time ranges invariant checks may scan).
    cache_stats: Optional[CacheStats] = None
    #: region entries served by the static fallback tier.
    fallbacks: List[FallbackEvent] = field(default_factory=list)
    #: installed fallback code ranges as (base, words, entry_pc) -- the
    #: run-time ranges the oracle's reachability scan must also cover.
    fallback_blocks: List[Tuple[int, int, int]] = field(
        default_factory=list)
    #: fault site -> injections during this run (empty without a plan).
    fault_counts: Dict[str, int] = field(default_factory=dict)
    #: (func, region_id) -> circuit-breaker snapshot, for regions whose
    #: breaker saw at least one failure.
    breaker_stats: Dict[Tuple[str, int], Dict[str, int]] = field(
        default_factory=dict)
    #: region entries the tiering policy kept on the fallback tier
    #: (always empty for eager runs -- cold-by-policy is distinct from
    #: the degradation ``fallbacks`` above).
    cold_entries: List[ColdEntry] = field(default_factory=list)
    #: (func, region_id) -> adaptive-tiering stats (promotions, cold
    #: entries, per-key counters...); empty for eager runs.
    tier_stats: Dict[Tuple[str, int], Dict[str, object]] = field(
        default_factory=dict)
    #: region entries served from fallback because their stitch was
    #: queued (async mode only -- the oracle's fifth entry class).
    queued_entries: List[QueuedEntry] = field(default_factory=list)
    #: async stitch-queue accounting; None for sync runs.
    queue_stats: Optional[QueueStats] = None
    #: registry name of the execution backend that produced this run.
    backend: str = "rvm"

    def owner_cycles(self, prefix: str) -> int:
        """Total cycles across owners starting with ``prefix``."""
        return sum(c for owner, c in self.cycles_by_owner.items()
                   if owner.startswith(prefix))

    def region_cycles(self, func: str, region_id: int,
                      mode: str) -> Dict[str, int]:
        """Cycle breakdown for one region.

        For dynamic mode: ``stitched`` (executions of compiled code),
        ``setup`` (set-up code), ``stitcher`` (dynamic compile),
        ``dispatch`` (lookup/enter glue).  For static mode: ``region``.
        """
        suffix = "%s:%d" % (func, region_id)
        if mode == "static":
            return {"region": self.cycles_by_owner.get(
                "region:" + suffix, 0)}
        return {
            "stitched": self.cycles_by_owner.get("stitched:" + suffix, 0),
            "setup": self.cycles_by_owner.get("setup:" + suffix, 0),
            "stitcher": self.cycles_by_owner.get("stitcher:" + suffix, 0),
            "dispatch": self.cycles_by_owner.get("dispatch:" + suffix, 0),
        }


class Program:
    """A compiled MiniC program, ready to run on fresh VMs."""

    def __init__(self, compiled: Dict[str, CompiledFunction],
                 layout: DataLayout, mode: str,
                 plans: List[RegionPlan],
                 stitcher_costs: StitcherCosts,
                 opt_stats: Optional[Dict[str, OptStats]] = None,
                 register_actions: bool = False,
                 cache_config: Optional[CacheConfig] = None,
                 fault_plan: Optional[FaultPlan] = None,
                 stitch_budget: Optional[StitchBudget] = None,
                 breaker_config: Optional[BreakerConfig] = None,
                 tier: Optional[Union[TierPolicy, str]] = None,
                 stitch: Optional[Union[StitchQueueConfig, str]] = None,
                 backend: Optional[Union[ExecutionBackend, str]] = None):
        self.compiled = compiled
        self.layout = layout
        self.mode = mode
        self.plans = plans
        self.stitcher_costs = stitcher_costs
        self.opt_stats = opt_stats or {}
        self.register_actions = register_actions
        #: default code-cache configuration for runs (a ``run`` call
        #: can override it per execution).
        self.cache_config = cache_config or CacheConfig()
        #: default fault-injection plan (a ``run`` call can override).
        self.fault_plan = fault_plan
        #: per-stitch resource guard; None = unlimited.
        self.stitch_budget = stitch_budget
        #: circuit-breaker tuning (always on; a no-op without failures).
        self.breaker_config = breaker_config or BreakerConfig()
        #: default tiering policy (``eager`` preserves the historical
        #: stitch-on-first-entry behavior; a ``run`` call can override).
        self.tier = TierPolicy.parse(tier)
        #: default stitch-queue configuration (``sync`` -- the
        #: historical inline stitch -- unless a run overrides it; see
        #: :mod:`repro.runtime.stitchqueue`).
        self.stitch = StitchQueueConfig.parse(stitch)
        #: the execution backend (name, instance, or None for the
        #: default ``rvm``): owns host execution and per-install
        #: artifact compilation for every run of this program.
        self.backend = get_backend(backend)
        # Cached VM for repeated runs: building a multi-megaword memory
        # image and re-installing/re-resolving the code dominates the
        # host cost of short executions.  The cache holds the VM plus
        # the static code length so run-time-stitched code can be
        # truncated away before the next run.
        self._vm: Optional[VM] = None
        self._vm_words = 0
        self._vm_code_len = 0

    # -- introspection ------------------------------------------------------

    def region_codes(self) -> List[RegionCode]:
        return [region for function in self.compiled.values()
                for region in function.regions]

    def template_size(self, func: str, region_id: int) -> int:
        """Template instructions for a region (static code-space cost)."""
        for function in self.compiled.values():
            for region in function.regions:
                if function.name == func and region.region_id == region_id:
                    return sum(len(b.instrs) for b in region.blocks.values())
        raise RegionNotFound("no region %d in %s" % (region_id, func))

    # -- execution ------------------------------------------------------------

    def _acquire_vm(self, memory_words: int, max_cycles: int) -> VM:
        """A loaded VM: the cached one reset in place, or a fresh one.

        A reset VM keeps its memory list, installed static code and
        predecoded handlers; only state the previous run dirtied is
        restored (and ``write_into`` re-applies the initial data
        image), so repeated ``run`` calls skip the dominant set-up
        cost.  Function bases are unchanged across reuse, so symbol
        resolution is skipped too.
        """
        vm = self._vm
        if vm is not None and self._vm_words == memory_words:
            vm.reset_for_rerun(self._vm_code_len)
            vm.max_cycles = max_cycles
        else:
            vm = VM(memory_words=memory_words, max_cycles=max_cycles)
            load_program(vm, self.compiled)
            self._vm = vm
            self._vm_words = memory_words
            self._vm_code_len = len(vm.code)
            # Static image in place, labels resolved: let the backend
            # compile it once (survives reset_for_rerun, amortizing
            # across repeated runs of the same program).
            self.backend.prepare_vm(vm, self._vm_code_len)
        self.layout.write_into(vm)
        return vm

    def run(self, func: str = "main", args: Optional[List[Number]] = None,
            max_cycles: int = 4_000_000_000,
            memory_words: int = 1 << 22,
            dispatch: str = "threaded",
            cache: Optional[CacheConfig] = None,
            fault_plan: Optional[FaultPlan] = None,
            tier: Optional[Union[TierPolicy, str]] = None,
            stitch: Optional[Union[StitchQueueConfig, str]] = None
            ) -> RunResult:
        """Run ``func(*args)``; ``dispatch`` picks the VM execution
        engine ("threaded" predecoded fast path, or the retained
        "naive" decode loop -- equivalent by construction and by
        test); ``cache`` overrides the program's code-cache
        configuration for this execution, ``fault_plan`` the fault
        schedule (default: the program's own plan, usually None),
        ``tier`` the tiering policy (a :class:`TierPolicy` or spec
        string; default: the program's policy, usually eager),
        ``stitch`` the stitch-queue mode (a
        :class:`StitchQueueConfig` or spec string; default: the
        program's config, usually ``sync`` -- the historical inline
        stitch)."""
        vm = self._acquire_vm(memory_words, max_cycles)
        faults = fault_plan if fault_plan is not None else self.fault_plan
        fault_baseline = dict(faults.counts) if faults is not None else {}
        tier_policy = TierPolicy.parse(tier) if tier is not None \
            else self.tier
        stitch_config = StitchQueueConfig.parse(stitch) \
            if stitch is not None else self.stitch
        runtime = _RegionRuntime(self, vm, cache or self.cache_config,
                                 faults=faults, tier=tier_policy,
                                 stitch=stitch_config)
        vm.rt_handlers["region_lookup"] = runtime.lookup
        vm.rt_handlers["region_stitch"] = runtime.stitch
        entry_fn = self.compiled.get(func)
        if entry_fn is None:
            raise VMError("no function named %s" % func)
        preload: List[Tuple[int, Number]] = []
        for i, arg in enumerate(args or []):
            preload.append((ARG_BASE + i, arg))
        with obs_trace.span("vm.run", "vm", func=func, mode=self.mode,
                            dispatch=dispatch,
                            backend=self.backend.name) as span:
            int_result, float_result = self.backend.execute(
                vm, entry_fn.base, preload, dispatch=dispatch)
            if span is not None:
                span["cycles"] = vm.cycles
                span["value"] = int_result
                span["stitches"] = len(runtime.reports)
                span["cache_hits"] = len(runtime.cache_hits)
        sampler = obs_ts._current
        if sampler is not None:
            # Force a final sample so short runs (fewer entries than
            # one sampler period) still record a point.
            sampler.sample(vm.cycles)
        if obs_metrics._enabled:
            obs_metrics.counter("vm.runs").inc()
            obs_metrics.counter("vm.cycles").inc(vm.cycles)
            owner_cycles = obs_metrics.counter("vm.owner_cycles")
            for owner, cycles in vm.cycles_by_owner.items():
                owner_cycles.labels(
                    owner=owner.split(":", 1)[0]).inc(cycles)
        fault_counts: Dict[str, int] = {}
        if faults is not None:
            for site, count in faults.counts.items():
                delta = count - fault_baseline.get(site, 0)
                if delta:
                    fault_counts[site] = delta
        return RunResult(
            value=int_result,
            float_value=float_result,
            output=vm.output,
            cycles=vm.cycles,
            cycles_by_owner=dict(vm.cycles_by_owner),
            instrs_by_owner=dict(vm.instrs_by_owner),
            stitch_reports=runtime.reports,
            op_counts=dict(vm.op_counts),
            region_entries=dict(runtime.entries),
            cache_hits=runtime.cache_hits,
            cache_stats=runtime.cache.snapshot(),
            fallbacks=list(runtime.fallbacks),
            fallback_blocks=[(fb.base, fb.words, fb.entry)
                             for fb in runtime.fallback_codes.values()],
            fault_counts=fault_counts,
            breaker_stats={
                region: breaker.snapshot()
                for region, breaker in runtime.breakers.items()
                if breaker.trips or breaker.resets or breaker.consecutive
            },
            cold_entries=list(runtime.cold_entries),
            tier_stats=(runtime.tier.snapshot()
                        if runtime.tier is not None else {}),
            queued_entries=list(runtime.queued_entries),
            queue_stats=(runtime.queue.snapshot()
                         if runtime.queue is not None else None),
            backend=self.backend.name,
        )


class _RegionRuntime:
    """The ``region_lookup`` / ``region_stitch`` services for one VM
    execution, backed by the :class:`~repro.codecache.CodeCache`."""

    def __init__(self, program: Program, vm: VM,
                 cache_config: Optional[CacheConfig] = None,
                 faults: Optional[FaultPlan] = None,
                 tier: Optional[TierPolicy] = None,
                 stitch: Optional[StitchQueueConfig] = None):
        self.program = program
        self.vm = vm
        self.faults = faults
        #: the code cache: keyed versions, eviction, compaction.  The
        #: program's backend hooks every install, so stitched entries
        #: get their host artifact whichever path placed them.
        self.cache: CodeCache = CodeCache(vm, cache_config, faults=faults,
                                          backend=program.backend)
        self.reports: List[StitchReport] = []
        #: (func, region_id) -> entries (every lookup, hit or miss).
        self.entries: Dict[Tuple[str, int], int] = {}
        self.cache_hits: List[CacheHit] = []
        #: region entries served by the static fallback tier.
        self.fallbacks: List[FallbackEvent] = []
        #: region entries kept cold by the tiering policy.
        self.cold_entries: List[ColdEntry] = []
        #: lazily built generic code per region (first failure only,
        #: or first cold entry under an adaptive tier).
        self.fallback_codes: Dict[Tuple[str, int], FallbackCode] = {}
        #: per-region circuit breakers (created on first stitch).
        self.breakers: Dict[Tuple[str, int], RegionBreaker] = {}
        #: memoized region.entries counter children, so the hot lookup
        #: path pays one dict probe instead of label resolution per
        #: entry while metrics are enabled (registry.reset() keeps
        #: instrument identity, so memoized children stay live).
        self._entry_counters: Dict[Tuple[str, int], object] = {}
        self._regions: Dict[Tuple[str, int], RegionCode] = {}
        for function in program.compiled.values():
            for region in function.regions:
                self._regions[(function.name, region.region_id)] = region
        #: adaptive-tiering controller; None for eager runs, which
        #: keeps the eager path bit-identical to the historical engine.
        self.tier: Optional[TierController] = None
        if tier is not None and tier.adaptive:
            self.tier = TierController(tier, vm, self._regions,
                                       program.stitcher_costs,
                                       faults=faults)
        #: region entries served from fallback because their stitch
        #: was queued (async mode only).
        self.queued_entries: List[QueuedEntry] = []
        #: the async stitch queue; None for sync runs, which therefore
        #: take exactly the historical inline-stitch code path.
        self.queue: Optional[StitchQueue] = None
        if stitch is not None and stitch.asynchronous:
            queue = self.queue = StitchQueue(stitch, vm, faults=faults)
            queue.on_deadline = self._on_job_deadline
            # In-flight jobs pin their region's installed code: the
            # cache must not evict what a queued compilation is about
            # to join, and a fingerprint invalidation or eviction
            # cancels the obsolete jobs.
            self.cache.pin_probe = queue.region_in_flight
            self.cache.on_invalidate = \
                lambda f, r: queue.cancel_region(f, r, "invalidate")
            self.cache.on_evict = \
                lambda key: queue.cancel_key(key.func, key.region_id,
                                             key.key, "evict")

    def lookup(self, vm: VM, instr: MInstr) -> int:
        func, region_id = instr.extra  # type: ignore[misc]
        region = self._regions[(func, region_id)]
        key = CacheKey(func, region_id,
                       region_key(vm.regs, region.key_count))
        entries = self.entries
        entries[key.region] = entries.get(key.region, 0) + 1
        sampler = obs_ts._current
        if sampler is not None:
            sampler.on_entry(vm)
        if obs_metrics._enabled:
            child = self._entry_counters.get((func, region_id))
            if child is None:
                child = obs_metrics.counter("region.entries").labels(
                    region="%s:%d" % (func, region_id))
                self._entry_counters[(func, region_id)] = child
            child.inc()
        tier = self.tier
        if tier is not None:
            tier.on_entry(func, region_id, key.key)
        if self.queue is not None:
            # The background compiler's logical clock: every region
            # entry ticks it; a due tick drains the queue (watchdog +
            # readiness) before this entry is served.
            self.queue.on_entry()
        cached = self.cache.lookup(key)
        if cached is None:
            # Miss: the dispatch glue falls through to region_stitch,
            # which records the StitchReport (so misses == stitches)
            # -- or, under an adaptive tier, decides to stay cold.
            return 0
        if tier is not None:
            tier.on_hit(func, region_id, key.key, cached)
        self.cache_hits.append(
            CacheHit(func, region_id, key.key, cached.entry_pc))
        vm.regs[CPOOL] = cached.pool_base
        return cached.entry_pc

    def stitch(self, vm: VM, instr: MInstr) -> int:
        func, region_id = instr.extra  # type: ignore[misc]
        region = self._regions[(func, region_id)]
        table_addr = int(vm.regs[ARG_BASE])
        key = region_key(vm.regs, region.key_count, stitch_args=True)
        breaker = self.breakers.get((func, region_id))
        if breaker is None:
            breaker = RegionBreaker(self.program.breaker_config,
                                    func, region_id)
            self.breakers[(func, region_id)] = breaker
        if not breaker.should_attempt():
            # Circuit open: the region is pinned to static execution
            # until the cooldown (counted in region entries) expires.
            # This outranks tiering -- a tripped region never promotes
            # mid-cooldown, however hot its keys run.
            breaker.on_entry_while_open()
            return self._fallback(func, region_id, key, table_addr,
                                  reason="breaker", injected=False)
        tier = self.tier
        if tier is not None and not tier.decide(func, region_id, key):
            return self._cold(func, region_id, key, table_addr)
        queue = self.queue
        job: Optional[StitchJob] = None
        if queue is not None:
            # Async mode: the promotion decision above became an
            # *enqueue* decision.  A miss with no job admits one and
            # is served from fallback; a miss whose job is still
            # pending keeps waiting; only a *ready* job stitches here,
            # against this entry's fresh table (tables are entry-local
            # -- the same reason tiering promotions land one entry
            # late), charging the stitcher owner at completion time.
            job = queue.get(func, region_id, key)
            if job is None:
                priority = tier.count(func, region_id, key) \
                    if tier is not None \
                    else queue.key_count(func, region_id, key)
                phase = queue.enqueue(func, region_id, key, priority)
                return self._queued(func, region_id, key, table_addr,
                                    phase)
            if job.state != "ready":
                phase = "hung" if job.state == "hung" else "waiting"
                return self._queued(func, region_id, key, table_addr,
                                    phase)
            if self.faults is not None and self.faults.should_fire(
                    "stitch.hang", region=(func, region_id)):
                queue.mark_hung(job)
                return self._queued(func, region_id, key, table_addr,
                                    "hung")
            queue.landing = job
        host_start = time.perf_counter()
        try:
            entry = stitch_entry(
                vm, self.program.compiled[func], region,
                table_addr, self.program.stitcher_costs, key=key,
                register_actions=self.program.register_actions,
                functions=self.program.compiled,
                faults=self.faults, budget=self.program.stitch_budget)
            self.cache.insert(entry)
        except (StitchError, VMError) as exc:
            # The degradation ladder: any failure of run-time code
            # generation -- a stitch error, a tripped budget, arena
            # exhaustion, an injected fault -- transfers this entry
            # (and the region, once the breaker trips) to the static
            # fallback instead of killing the run.
            breaker.on_failure()
            if queue is not None and job is not None:
                queue.landing = None
                queue.on_land_failure(job)
                if not breaker.should_attempt():
                    # The breaker tripped: the region is pinned static
                    # for the cooldown, so its queued work is moot.
                    queue.cancel_region(func, region_id, "breaker")
            injected = bool(getattr(exc, "injected", False))
            if isinstance(exc, StitchBudgetExceeded):
                reason = "budget"
            elif injected:
                reason = "fault"
            else:
                reason = "error"
            return self._fallback(func, region_id, key, table_addr,
                                  reason=reason, injected=injected)
        breaker.on_success()
        if queue is not None and job is not None:
            queue.landing = None
            queue.land(job)
        if tier is not None:
            tier.on_promote(func, region_id, key, entry)
        report = entry.report
        self.reports.append(report)
        if obs_metrics._enabled:
            region_label = "%s:%d" % (func, region_id)
            obs_metrics.counter("stitch.count").labels(
                region=region_label).inc()
            obs_metrics.counter("stitch.instrs_emitted").inc(
                report.instrs_emitted)
            obs_metrics.counter("stitch.holes_patched").inc(
                report.holes_patched)
            obs_metrics.counter("stitch.pool_entries").inc(
                report.pool_entries)
            obs_metrics.histogram("stitch.cycles").labels(
                region=region_label).observe(report.cycles)
            obs_metrics.histogram("stitch.host_seconds").observe(
                time.perf_counter() - host_start)
        vm.regs[CPOOL] = report.pool_base
        return report.entry

    def _fallback_code(self, func: str, region_id: int) -> FallbackCode:
        """The region's generic fallback code, built on first use."""
        fb = self.fallback_codes.get((func, region_id))
        if fb is None:
            fb = build_fallback(self.vm, self.program.compiled[func],
                                self._regions[(func, region_id)],
                                self.program.compiled,
                                backend=self.program.backend)
            self.fallback_codes[(func, region_id)] = fb
            # The block lives inside the code arena's address range but
            # must survive compaction and stay out of cache capacity.
            self.cache.reserve(fb.base, fb.words)
        return fb

    def _cold(self, func: str, region_id: int,
              key: Tuple[Number, ...], table_addr: int) -> int:
        """Serve a region entry cold: the tiering policy decided this
        (region, key) is not yet worth a stitch, so it executes the
        generic fallback code against the freshly filled table."""
        fb = self._fallback_code(func, region_id)
        self.vm.store(fb.table_cell, table_addr)
        tier = self.tier
        assert tier is not None
        self.cold_entries.append(
            ColdEntry(func, region_id, key,
                      tier.count(func, region_id, key), fb.entry))
        tier.on_cold(func, region_id, key)
        return fb.entry

    def _queued(self, func: str, region_id: int,
                key: Tuple[Number, ...], table_addr: int,
                phase: str) -> int:
        """Serve a region entry from fallback because its stitch is
        queued (or was shed): the async tier's steady state while the
        background compiler catches up."""
        fb = self._fallback_code(func, region_id)
        self.vm.store(fb.table_cell, table_addr)
        if self.tier is not None:
            self.tier.on_queued(func, region_id, key)
        self.queued_entries.append(
            QueuedEntry(func, region_id, key, phase, fb.entry))
        if obs_metrics._enabled:
            obs_metrics.counter("stitchq.entries").labels(
                phase=phase).inc()
        return fb.entry

    def _on_job_deadline(self, job: StitchJob) -> None:
        """Watchdog: a queued job blew its simulated-cycle deadline.
        That is a compilation failure like any other -- it feeds the
        region's breaker, and a trip flushes the region's queue."""
        region = (job.func_name, job.region_id)
        breaker = self.breakers.get(region)
        if breaker is None:
            breaker = RegionBreaker(self.program.breaker_config,
                                    job.func_name, job.region_id)
            self.breakers[region] = breaker
        breaker.on_failure()
        if not breaker.should_attempt() and self.queue is not None:
            self.queue.cancel_region(job.func_name, job.region_id,
                                     "breaker")

    def _fallback(self, func: str, region_id: int,
                  key: Tuple[Number, ...], table_addr: int,
                  reason: str, injected: bool) -> int:
        """Transfer this region entry to the static fallback tier:
        build (once) and target the region's generic code, pointing
        its table cell at the freshly filled constants table."""
        fb = self._fallback_code(func, region_id)
        self.vm.store(fb.table_cell, table_addr)
        if self.tier is not None:
            self.tier.on_degraded(func, region_id, key)
        self.fallbacks.append(
            FallbackEvent(func, region_id, key, reason, injected,
                          fb.entry))
        if obs_metrics._enabled:
            obs_metrics.counter("fallback.count").labels(
                region="%s:%d" % (func, region_id), reason=reason).inc()
            obs_metrics.counter("fallback.%s" % reason).inc()
        if obs_trace._current is not None:
            obs_trace.instant("region.fallback", "runtime",
                              region="%s:%d" % (func, region_id),
                              reason=reason, injected=injected,
                              entry=fb.entry)
        return fb.entry


def compile_program(source: str, mode: str = "dynamic",
                    opt_options: Optional[OptOptions] = None,
                    use_reachability: bool = True,
                    stitcher_costs: Optional[StitcherCosts] = None,
                    register_actions: bool = False,
                    module_name: str = "program",
                    cache_config: Optional[CacheConfig] = None,
                    fault_plan: Optional[FaultPlan] = None,
                    stitch_budget: Optional[StitchBudget] = None,
                    breaker_config: Optional[BreakerConfig] = None,
                    tier: Optional[Union[TierPolicy, str]] = None,
                    stitch: Optional[Union[StitchQueueConfig, str]] = None,
                    backend: Optional[Union[ExecutionBackend, str]] = None
                    ) -> Program:
    """Compile MiniC source through the full static pipeline.

    ``mode`` is ``"dynamic"`` (regions split + stitched at run time) or
    ``"static"`` (annotations ignored -- the paper's baseline).
    ``register_actions`` enables the section 5 extension: the stitcher
    promotes constant-index frame-array elements to unused registers.
    ``cache_config`` sets the default code-cache policy/capacity for
    the program's runs (default: unbounded, the historical behavior).
    ``fault_plan`` / ``stitch_budget`` / ``breaker_config`` tune the
    graceful-degradation tier (see ``docs/ROBUSTNESS.md``).
    ``tier`` sets the default tiering policy (see ``docs/TIERING.md``;
    default eager, the historical stitch-on-first-entry behavior).
    ``backend`` picks the execution backend (a registry name such as
    ``"rvm"``/``"pycode"`` or an instance; see ``docs/BACKENDS.md``;
    default rvm, the bit-exact oracle).
    """
    if mode not in ("dynamic", "static"):
        raise ValueError("mode must be 'dynamic' or 'static'")
    with obs_trace.span("frontend.parse", "frontend",
                        chars=len(source)) as span:
        ast = parse(source)
        if span is not None:
            span["decls"] = len(ast.decls)
    with obs_trace.span("frontend.typecheck", "frontend"):
        ast = check(ast)
    with obs_trace.span("ir.build", "frontend", module=module_name) as span:
        module = build_module(ast, name=module_name)
        if span is not None:
            span["functions"] = len(module.functions)
    return compile_ir_module(module, mode=mode, opt_options=opt_options,
                             use_reachability=use_reachability,
                             stitcher_costs=stitcher_costs,
                             register_actions=register_actions,
                             cache_config=cache_config,
                             fault_plan=fault_plan,
                             stitch_budget=stitch_budget,
                             breaker_config=breaker_config,
                             tier=tier, stitch=stitch, backend=backend)


def _refresh_plan_membership(func, plans: List[RegionPlan],
                             split_records: List[tuple]) -> None:
    """Fold critical-edge blocks created by ``from_ssa`` back into the
    region plans: a block splitting a template->template edge is
    template code (it carries phi copies, possibly with holes); one
    splitting a setup->setup edge is set-up code.  Unrolled-loop body
    lists in the table plan are refreshed from the (already updated)
    region metadata."""
    for plan in plans:
        plan.template_blocks = set(
            name for name in plan.region.blocks if name in func.blocks)
        for new, pred, succ in split_records:
            if pred in plan.setup_blocks and succ in plan.setup_blocks:
                plan.setup_blocks.add(new)
        loops_by_id = {loop.loop_id: loop
                       for loop in plan.region.unrolled_loops}
        for loop_plan in plan.table.loops.values():
            info = loops_by_id.get(loop_plan.loop_id)
            if info is not None:
                loop_plan.body = sorted(info.body)
            # A critical-edge block leading into the loop's extended
            # body must keep the iteration environment alive too.
            extended = set(loop_plan.extended_body)
            for new, _pred, succ in split_records:
                if succ in extended:
                    extended.add(new)
            loop_plan.extended_body = sorted(extended)


def compile_ir_module(module: Module, mode: str = "dynamic",
                      opt_options: Optional[OptOptions] = None,
                      use_reachability: bool = True,
                      stitcher_costs: Optional[StitcherCosts] = None,
                      register_actions: bool = False,
                      cache_config: Optional[CacheConfig] = None,
                      fault_plan: Optional[FaultPlan] = None,
                      stitch_budget: Optional[StitchBudget] = None,
                      breaker_config: Optional[BreakerConfig] = None,
                      tier: Optional[Union[TierPolicy, str]] = None,
                      stitch: Optional[Union[StitchQueueConfig, str]] = None,
                      backend: Optional[Union[ExecutionBackend, str]] = None
                      ) -> Program:
    """Compile an already-built IR module (for IR-level tests)."""
    opt_options = opt_options or OptOptions()
    stats: Dict[str, OptStats] = {}
    for func in module.functions.values():
        to_ssa(func)
        stats[func.name] = optimize(func, opt_options)
    plans: List[RegionPlan] = []
    if mode == "dynamic":
        with obs_trace.span("split.module", "split") as span:
            plans = split_module(module,
                                 use_reachability=use_reachability)
            if span is not None:
                span["regions"] = len(plans)
    plans_by_func: Dict[str, List[RegionPlan]] = {}
    for plan in plans:
        plans_by_func.setdefault(plan.func_name, []).append(plan)
    for func in module.functions.values():
        split_records = from_ssa(func)
        func.verify()
        _refresh_plan_membership(func, plans_by_func.get(func.name, []),
                                 split_records)
    layout = DataLayout()
    layout.add_module_globals(module)
    with obs_trace.span("codegen.lower", "codegen", mode=mode) as span:
        compiled = lower_module(
            module, layout, plans_by_func,
            reserve_action_regs=8 if register_actions else 0)
        if span is not None:
            span["functions"] = len(compiled)
            span["instrs"] = sum(len(cf.code)
                                 for cf in compiled.values())
    return Program(compiled, layout, mode, plans,
                   stitcher_costs or StitcherCosts(), stats,
                   register_actions=register_actions,
                   cache_config=cache_config,
                   fault_plan=fault_plan,
                   stitch_budget=stitch_budget,
                   breaker_config=breaker_config,
                   tier=tier, stitch=stitch, backend=backend)
