"""Reference interpreter for IR modules.

Executes a :class:`~repro.ir.cfg.Module` directly at the three-address
level, ignoring all dynamic-compilation annotations (a dynamic region's
blocks are just executed).  It is the semantic oracle for differential
tests: MiniC source run through the interpreter must produce the same
results as statically compiled RVM code and as dynamically compiled
(stitched) RVM code.

Handles both pre-SSA and SSA-form functions (phi instructions are
evaluated from the incoming edge, with the textbook parallel-copy
semantics within a block).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union

from ..dynamic.regionops import RegionEnter, RegionLookup, RegionStitch
from ..ir.builder import FrameAddr
from ..ir.cfg import Function, Module
from ..ir.instructions import (
    Assign, BinOp, Call, CondBr, Jump, Load, Phi, Return, Store, Switch,
    UnOp,
)
from ..ir.semantics import PURE_BUILTINS, eval_binop, eval_unop
from ..ir.values import (
    FloatConst, GlobalAddr, HoleRef, IntConst, Temp, Value,
)

Number = Union[int, float]


class InterpError(Exception):
    """Raised on invalid IR behaviour (wild address, missing value...)."""


class _RegionCtx:
    """Per-activation dynamic-region state for post-split execution."""

    __slots__ = ("region_tables", "loop_recs", "current_region")

    def __init__(self) -> None:
        #: region_id -> constants-table address.
        self.region_tables: Dict[int, int] = {}
        #: unrolled loop id -> current iteration record address.
        self.loop_recs: Dict[int, int] = {}
        self.current_region: Optional[int] = None


class Interpreter:
    """Evaluates IR functions over a flat word-addressed memory."""

    #: Default sizes, in words.
    HEAP_BASE = 0x10000
    STACK_BASE = 0x100000

    def __init__(self, module: Module, memory_words: int = 1 << 21,
                 max_steps: int = 50_000_000, plans=None):
        """``plans`` (a list of :class:`~repro.dynamic.splitter
        .RegionPlan`) enables executing *post-split* IR: region
        lookups always miss, so set-up code re-runs on every entry and
        template holes are read back from the constants table it filled
        -- semantically what stitched code computes, without any code
        generation.  Used for differential testing of the splitter."""
        self.module = module
        self._plans = {}
        for plan in plans or []:
            self._plans[(plan.func_name, plan.region_id)] = plan
        self.memory: List[Number] = [0] * memory_words
        self.output: List[Number] = []
        self.max_steps = max_steps
        self._steps = 0
        self._heap_next = self.HEAP_BASE
        self._stack_top = self.STACK_BASE
        self.global_addrs: Dict[str, int] = {}
        next_addr = 0x1000
        for data in module.globals.values():
            self.global_addrs[data.name] = next_addr
            for i, value in enumerate(data.values):
                self.memory[next_addr + i] = value
            next_addr += max(1, len(data.values))

    # -- memory -----------------------------------------------------------

    def load(self, addr: int) -> Number:
        if not 0 <= addr < len(self.memory):
            raise InterpError("load from wild address %#x" % addr)
        return self.memory[addr]

    def store(self, addr: int, value: Number) -> None:
        if not 0 <= addr < len(self.memory):
            raise InterpError("store to wild address %#x" % addr)
        self.memory[addr] = value

    def alloc(self, words: int) -> int:
        addr = self._heap_next
        self._heap_next += max(1, words)
        if self._heap_next >= self.STACK_BASE:
            raise InterpError("interpreter heap exhausted")
        return addr

    # -- execution ----------------------------------------------------------

    def run(self, func_name: str = "main",
            args: Optional[List[Number]] = None) -> Optional[Number]:
        """Execute ``func_name``; returns its return value."""
        func = self.module.functions.get(func_name)
        if func is None:
            raise InterpError("no function named %s" % func_name)
        return self._call(func, args or [])

    def _call(self, func: Function, args: List[Number]) -> Optional[Number]:
        if len(args) != len(func.params):
            raise InterpError(
                "%s expects %d args, got %d"
                % (func.name, len(func.params), len(args)))
        frame_base = self._stack_top
        self._stack_top += func.frame_size
        if self._stack_top >= len(self.memory):
            raise InterpError("interpreter stack exhausted")
        env: Dict[str, Number] = {}
        for param, value in zip(func.params, args):
            env[param.name] = value
        try:
            return self._run_function(func, env, frame_base)
        finally:
            self._stack_top = frame_base

    def _value(self, env: Dict[str, Number], value: Value,
               ctx: "Optional[_RegionCtx]" = None) -> Number:
        if isinstance(value, Temp):
            if value.name not in env:
                raise InterpError("use of undefined temp %s" % value.name)
            return env[value.name]
        if isinstance(value, IntConst):
            return value.value
        if isinstance(value, FloatConst):
            return value.value
        if isinstance(value, GlobalAddr):
            if value.name in self.global_addrs:
                return self.global_addrs[value.name]
            raise InterpError("unknown global %s" % value.name)
        if isinstance(value, HoleRef):
            if ctx is None or ctx.current_region is None:
                raise InterpError("hole %r outside region context" % (value,))
            if value.loop_id is None:
                table = ctx.region_tables[ctx.current_region]
                return self.load(table + value.index)
            return self.load(ctx.loop_recs[value.loop_id] + value.index)
        raise InterpError("cannot evaluate operand %r" % (value,))

    def _run_function(self, func: Function, env: Dict[str, Number],
                      frame_base: int) -> Optional[Number]:
        block_name = func.entry
        prev_block: Optional[str] = None
        ctx = _RegionCtx()
        # Template-loop bookkeeping: header block -> (plan, loop plan).
        headers = {}
        for region in func.regions:
            plan = self._plans.get((func.name, region.region_id))
            if plan is None:
                continue
            for loop in plan.table.loops.values():
                headers[loop.header] = (plan, loop)
        while True:
            if block_name in headers:
                plan, loop = headers[block_name]
                if prev_block == loop.latch:
                    ctx.loop_recs[loop.loop_id] = int(
                        self.load(ctx.loop_recs[loop.loop_id]
                                  + loop.next_offset))
                else:
                    if loop.parent is None:
                        head = (ctx.region_tables[plan.region_id]
                                + loop.head_slot)
                    else:
                        head = ctx.loop_recs[loop.parent] + loop.head_slot
                    ctx.loop_recs[loop.loop_id] = int(self.load(head))
            block = func.blocks[block_name]
            # Phi functions evaluate in parallel from the incoming edge.
            phis = block.phis()
            if phis:
                if prev_block is None:
                    raise InterpError("phi in entry block %s" % block_name)
                incoming: List[Tuple[str, Number]] = []
                for phi in phis:
                    if prev_block not in phi.args:
                        raise InterpError(
                            "phi %r missing edge from %s" % (phi, prev_block))
                    incoming.append(
                        (phi.dst.name,
                         self._value(env, phi.args[prev_block], ctx)))
                for name, value in incoming:
                    env[name] = value
            for instr in block.instrs[len(phis):]:
                self._steps += 1
                if self._steps > self.max_steps:
                    raise InterpError("interpreter step limit exceeded")
                self._exec(func, env, frame_base, instr, ctx)
            term = block.terminator
            self._steps += 1
            if self._steps > self.max_steps:
                raise InterpError("interpreter step limit exceeded")
            if isinstance(term, Return):
                if term.value is None:
                    return None
                return self._value(env, term.value, ctx)
            prev_block = block_name
            if isinstance(term, Jump):
                block_name = term.target
            elif isinstance(term, CondBr):
                cond = self._value(env, term.cond, ctx)
                block_name = term.if_true if cond != 0 else term.if_false
            elif isinstance(term, Switch):
                selector = int(self._value(env, term.value, ctx))
                block_name = term.default
                for case_value, label in term.cases:
                    if case_value == selector:
                        block_name = label
                        break
            elif isinstance(term, RegionEnter):
                ctx.current_region = term.region_id
                block_name = term.template_entry
            else:
                raise InterpError("unknown terminator %r" % term)

    def _exec(self, func: Function, env: Dict[str, Number],
              frame_base: int, instr: object,
              ctx: "Optional[_RegionCtx]" = None) -> None:
        if isinstance(instr, Assign):
            env[instr.dst.name] = self._value(env, instr.src, ctx)
        elif isinstance(instr, BinOp):
            lhs = self._value(env, instr.lhs, ctx)
            rhs = self._value(env, instr.rhs, ctx)
            env[instr.dst.name] = eval_binop(instr.op, lhs, rhs)
        elif isinstance(instr, UnOp):
            env[instr.dst.name] = eval_unop(instr.op,
                                            self._value(env, instr.src, ctx))
        elif isinstance(instr, Load):
            addr = int(self._value(env, instr.addr, ctx))
            env[instr.dst.name] = self.load(addr)
        elif isinstance(instr, Store):
            addr = int(self._value(env, instr.addr, ctx))
            self.store(addr, self._value(env, instr.src, ctx))
        elif isinstance(instr, FrameAddr):
            env[instr.dst.name] = frame_base + instr.offset
        elif isinstance(instr, RegionLookup):
            # The reference interpreter never caches compiled code, so
            # set-up re-runs on each entry (semantically equivalent).
            env[instr.dst.name] = 0
        elif isinstance(instr, RegionStitch):
            assert ctx is not None
            ctx.region_tables[instr.region_id] = int(
                self._value(env, instr.table, ctx))
            env[instr.dst.name] = 1
        elif isinstance(instr, Call):
            result = self._do_call(instr, env, ctx)
            if instr.dst is not None:
                env[instr.dst.name] = 0 if result is None else result
        elif isinstance(instr, Phi):
            raise InterpError("phi outside block prefix")
        else:
            raise InterpError("unknown instruction %r" % instr)

    def _do_call(self, instr: Call, env: Dict[str, Number],
                 ctx: "Optional[_RegionCtx]" = None) -> Optional[Number]:
        args = [self._value(env, a, ctx) for a in instr.args]
        if instr.intrinsic:
            if instr.callee in PURE_BUILTINS:
                return PURE_BUILTINS[instr.callee](*args)
            if instr.callee == "alloc":
                return self.alloc(int(args[0]))
            if instr.callee == "print_int":
                self.output.append(int(args[0]))
                return None
            if instr.callee == "print_float":
                self.output.append(float(args[0]))
                return None
            raise InterpError("unknown intrinsic %s" % instr.callee)
        callee = self.module.functions.get(instr.callee)
        if callee is None:
            raise InterpError("call to unknown function %s" % instr.callee)
        return self._call(callee, args)


def run_source(source: str, func: str = "main",
               args: Optional[List[Number]] = None
               ) -> Tuple[Optional[Number], List[Number]]:
    """Convenience: parse, check, build and interpret MiniC source.

    Returns ``(return value, printed output)``.
    """
    from ..frontend.parser import parse
    from ..frontend.typecheck import check
    from ..ir.builder import build_module

    module = build_module(check(parse(source)))
    interp = Interpreter(module)
    result = interp.run(func, args)
    return result, interp.output
