"""Resource guards for the dynamic-compilation tier.

Two guard families keep a misbehaving region from taking the process
down (see ``docs/ROBUSTNESS.md``):

* :class:`StitchBudget` -- per-stitch ceilings on emitted words,
  unrolled loop iterations and simulated stitch cycles.  The stitcher
  checks them as it works and aborts with
  :class:`repro.errors.StitchBudgetExceeded`; the engine turns the
  abort into a fallback transfer, charging the partially spent
  stitcher cycles so break-even economics stay honest.

* :class:`RegionBreaker` -- a per-region circuit breaker.  After
  ``threshold`` consecutive stitch failures the region is pinned to
  the static fallback for ``backoff`` region entries; each re-trip
  while the streak is unbroken doubles the cooldown (exponential
  backoff measured in region-entry counts, the only clock the
  simulated runtime has).  One success fully resets the breaker.

Both are pure host-side bookkeeping: with no failures they never
change a simulated cycle or address, so faults-disabled runs stay
bit-identical to the seed goldens.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..obs import trace as obs_trace
from ..obs.metrics import registry as obs_metrics


@dataclass(frozen=True)
class StitchBudget:
    """Per-stitch resource ceilings; ``None`` disables a knob."""

    #: max code words a single stitch may emit.
    max_words: Optional[int] = None
    #: max loop-record unrolled iterations a single stitch may follow.
    max_unroll: Optional[int] = None
    #: max simulated stitcher cycles a single stitch may spend.
    max_cycles: Optional[int] = None

    def enabled(self) -> bool:
        return (self.max_words is not None or self.max_unroll is not None
                or self.max_cycles is not None)


@dataclass(frozen=True)
class BreakerConfig:
    """Circuit-breaker tuning shared by every region of a program."""

    #: consecutive stitch failures before the region is pinned static.
    threshold: int = 3
    #: base cooldown, in region entries; doubles per re-trip.
    backoff: int = 8


class RegionBreaker:
    """Per-region failure streak + exponential-backoff cooldown.

    States: *closed* (stitching allowed), *open* (``cooldown`` > 0,
    entries served by fallback), *half-open* (cooldown expired but the
    trip streak is unbroken: one probe stitch is allowed, and a single
    failure re-trips at double the previous cooldown).
    """

    def __init__(self, config: BreakerConfig, func: str, region_id: int):
        self.config = config
        self.func = func
        self.region_id = region_id
        #: consecutive failures since the last success.
        self.consecutive = 0
        #: region entries left before stitching may be retried.
        self.cooldown = 0
        #: cumulative trips over the program run.
        self.trips = 0
        #: trips in the current unbroken failure streak (drives backoff).
        self._streak_trips = 0
        #: times a success closed a previously tripped breaker.
        self.resets = 0

    def should_attempt(self) -> bool:
        return self.cooldown == 0

    def on_entry_while_open(self) -> None:
        """A region entry served by fallback while the breaker is open."""
        if self.cooldown > 0:
            self.cooldown -= 1

    def on_failure(self) -> None:
        self.consecutive += 1
        half_open_refail = self._streak_trips > 0
        if self.consecutive >= self.config.threshold or half_open_refail:
            self._streak_trips += 1
            self.trips += 1
            self.cooldown = self.config.backoff * (1 << (self._streak_trips - 1))
            self.consecutive = 0
            if obs_metrics._enabled:
                obs_metrics.counter("breaker.trips").labels(
                    region="%s:%d" % (self.func, self.region_id)).inc()
            obs_trace.instant("breaker.trip", "robustness", func=self.func,
                              region=self.region_id, cooldown=self.cooldown,
                              streak=self._streak_trips)

    def on_success(self) -> None:
        self.consecutive = 0
        if self._streak_trips:
            self._streak_trips = 0
            self.resets += 1
            if obs_metrics._enabled:
                obs_metrics.counter("breaker.resets").labels(
                    region="%s:%d" % (self.func, self.region_id)).inc()
            obs_trace.instant("breaker.reset", "robustness", func=self.func,
                              region=self.region_id)

    def snapshot(self) -> dict:
        return {"trips": self.trips, "resets": self.resets,
                "cooldown": self.cooldown, "consecutive": self.consecutive}
