"""Resource guards for the dynamic-compilation tier.

Two guard families keep a misbehaving region from taking the process
down (see ``docs/ROBUSTNESS.md``):

* :class:`StitchBudget` -- per-stitch ceilings on emitted words,
  unrolled loop iterations and simulated stitch cycles.  The stitcher
  checks them as it works and aborts with
  :class:`repro.errors.StitchBudgetExceeded`; the engine turns the
  abort into a fallback transfer, charging the partially spent
  stitcher cycles so break-even economics stay honest.

* :class:`RegionBreaker` -- a per-region circuit breaker.  After
  ``threshold`` consecutive stitch failures the region is pinned to
  the static fallback for ``backoff`` region entries; each re-trip
  while the streak is unbroken doubles the cooldown (exponential
  backoff measured in region-entry counts, the only clock the
  simulated runtime has) up to ``max_cooldown``, optionally spread by
  :func:`seeded_jitter`.  One success fully resets the breaker.

:func:`seeded_jitter` is the deterministic jitter source shared by
the breaker and the async stitch queue's retry backoff (see
``repro.runtime.stitchqueue``): a stable hash, never host randomness,
so jittered schedules replay bit-identically from their seed.

Both are pure host-side bookkeeping: with no failures they never
change a simulated cycle or address, so faults-disabled runs stay
bit-identical to the seed goldens.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Optional

from ..obs import trace as obs_trace
from ..obs.metrics import registry as obs_metrics


def seeded_jitter(seed: int, token, spread: int) -> int:
    """Deterministic jitter in ``[0, spread]``.

    A stable CRC32 of ``(seed, token)`` -- not ``hash()``, which is
    salted per process, and not ``random``, which would entangle
    schedules that must stay independent.  ``token`` is any repr-able
    discriminator (region, key, attempt number...); ``spread <= 0``
    disables jitter entirely.
    """
    if spread <= 0:
        return 0
    digest = zlib.crc32(repr((seed, token)).encode("utf-8"))
    return digest % (spread + 1)


@dataclass(frozen=True)
class StitchBudget:
    """Per-stitch resource ceilings; ``None`` disables a knob."""

    #: max code words a single stitch may emit.
    max_words: Optional[int] = None
    #: max loop-record unrolled iterations a single stitch may follow.
    max_unroll: Optional[int] = None
    #: max simulated stitcher cycles a single stitch may spend.
    max_cycles: Optional[int] = None

    def enabled(self) -> bool:
        return (self.max_words is not None or self.max_unroll is not None
                or self.max_cycles is not None)


@dataclass(frozen=True)
class BreakerConfig:
    """Circuit-breaker tuning shared by every region of a program."""

    #: consecutive stitch failures before the region is pinned static.
    threshold: int = 3
    #: base cooldown, in region entries; doubles per re-trip.
    backoff: int = 8
    #: cooldown ceiling, in region entries: unbounded doubling would
    #: pin a long-running region's breaker far past any plausible
    #: recovery window, so growth saturates here.
    max_cooldown: int = 1024
    #: max seeded jitter entries added per trip (0 -- the default --
    #: keeps historical schedules bit-identical).
    jitter: int = 0
    #: seed for the trip-jitter hash (shared hook with the stitch
    #: queue's retry backoff).
    jitter_seed: int = 0


class RegionBreaker:
    """Per-region failure streak + exponential-backoff cooldown.

    States: *closed* (stitching allowed), *open* (``cooldown`` > 0,
    entries served by fallback), *half-open* (cooldown expired but the
    trip streak is unbroken: one probe stitch is allowed, and a single
    failure re-trips at double the previous cooldown).
    """

    def __init__(self, config: BreakerConfig, func: str, region_id: int):
        self.config = config
        self.func = func
        self.region_id = region_id
        #: consecutive failures since the last success.
        self.consecutive = 0
        #: region entries left before stitching may be retried.
        self.cooldown = 0
        #: cumulative trips over the program run.
        self.trips = 0
        #: trips in the current unbroken failure streak (drives backoff).
        self._streak_trips = 0
        #: times a success closed a previously tripped breaker.
        self.resets = 0

    def should_attempt(self) -> bool:
        return self.cooldown == 0

    def on_entry_while_open(self) -> None:
        """A region entry served by fallback while the breaker is open."""
        if self.cooldown > 0:
            self.cooldown -= 1

    def on_failure(self) -> None:
        self.consecutive += 1
        half_open_refail = self._streak_trips > 0
        if self.consecutive >= self.config.threshold or half_open_refail:
            self._streak_trips += 1
            self.trips += 1
            cooldown = self.config.backoff * (1 << (self._streak_trips - 1))
            cooldown = min(cooldown, self.config.max_cooldown)
            cooldown += seeded_jitter(
                self.config.jitter_seed,
                (self.func, self.region_id, self.trips),
                self.config.jitter)
            self.cooldown = cooldown
            self.consecutive = 0
            if obs_metrics._enabled:
                obs_metrics.counter("breaker.trips").labels(
                    region="%s:%d" % (self.func, self.region_id)).inc()
            obs_trace.instant("breaker.trip", "robustness", func=self.func,
                              region=self.region_id, cooldown=self.cooldown,
                              streak=self._streak_trips)

    def on_success(self) -> None:
        self.consecutive = 0
        if self._streak_trips:
            self._streak_trips = 0
            self.resets += 1
            if obs_metrics._enabled:
                obs_metrics.counter("breaker.resets").labels(
                    region="%s:%d" % (self.func, self.region_id)).inc()
            obs_trace.instant("breaker.reset", "robustness", func=self.func,
                              region=self.region_id)

    def snapshot(self) -> dict:
        return {"trips": self.trips, "resets": self.resets,
                "cooldown": self.cooldown, "consecutive": self.consecutive}
