"""The static fallback tier: generic code for a dynamic region.

The paper's system always has a statically compiled version of every
dynamic region available -- the baseline its speedups are measured
against.  This module materializes that baseline from the region's own
templates so that when run-time code generation fails (stitch error,
arena exhaustion, budget trip, injected fault) the engine can transfer
control to correct generic code instead of dying.

The fallback is built from the same :class:`TemplateBlock` objects the
stitcher consumes, so its register allocation is identical to stitched
code and the dispatch glue's jump lands with the right live state.
Where the stitcher *specializes* -- patching run-time constants into
the code, resolving constant branches, unrolling loops -- the fallback
stays *generic*:

* every hole becomes a run-time load from the region's constants
  table, reached through a per-region heap cell holding the current
  table base (the engine stores the table address there on each
  fallback transfer, mirroring how stitched code gets fresh constants
  by being re-stitched);
* constant branches become real compare-and-branch sequences on the
  table value;
* unrolled loops run as actual loops, walking the per-iteration record
  chain through a per-loop *cursor cell*: an enter stub loads the head
  record pointer, the latch's back edge advances the cursor to the
  next record, and the header's predicate test (record slot 0, zero in
  the final record) terminates the loop.

Register discipline matches the stitcher's contract: inside a block
only ``SCRATCH2`` is free at hole sites (``SCRATCH`` may carry a live
left operand or store value), while at block boundaries -- where the
enter/restart stubs and predicate tests live -- both scratches are
dead.

Cycles executed in fallback code are charged to a ``fallback:`` owner,
so break-even accounting sees exactly what degradation costs.

Reentrancy limitation: the per-region table/cursor cells assume one
active generic execution of a region at a time.  A region whose
callees recurse back into the *same* region would need a cell stack;
the MiniC programs the reproduction targets (and the fuzzer generates)
only call leaf helpers from regions, so this is documented rather than
engineered around (see ``docs/ROBUSTNESS.md``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..codegen.objects import CompiledFunction, RegionCode, TemplateBlock
from ..errors import StitchError
from ..obs import trace as obs_trace
from ..obs.metrics import registry as obs_metrics
from ..machine.isa import (
    MInstr, SCRATCH, SCRATCH2, ZERO, fits_imm,
)

#: SlotRef context: loop id (None = top-level table) -> address of the
#: heap cell holding the current table base / record pointer.


@dataclass
class FallbackCode:
    """One region's installed generic code."""

    func_name: str
    region_id: int
    #: absolute pc the engine jumps to instead of a stitched entry.
    entry: int = -1
    base: int = -1
    words: int = 0
    #: heap cell the engine stores the table address into on transfer.
    table_cell: int = -1
    #: loop id -> heap cell holding the current iteration record.
    cursor_cells: Dict[int, int] = field(default_factory=dict)
    owner: str = ""


class _FallbackBuilder:
    def __init__(self, vm, compiled: CompiledFunction, region: RegionCode,
                 functions: Dict[str, CompiledFunction], backend=None):
        self.vm = vm
        self.compiled = compiled
        self.region = region
        self.functions = functions
        #: execution backend the block installs through (None = plain
        #: vm.install_code).  A degraded pycode run must get pycode
        #: fallback code, not silently re-enter per-instruction rvm
        #: dispatch with differently-shaped host behavior.
        self.backend = backend
        self.owner = "fallback:%s:%d" % (region.func_name, region.region_id)
        self.out: List[MInstr] = []
        self.labels: Dict[str, int] = {}
        self.scheduled: set = set()
        self.queue: List[str] = []
        self.headers = {
            loop.header: loop for loop in region.table.loops.values()
        }
        self.table_cell = vm.alloc(1)
        self.cursor_cells = {
            loop_id: vm.alloc(1)
            for loop_id in sorted(region.table.loops)
        }

    # -- emission helpers --------------------------------------------------

    def _emit(self, instr: MInstr) -> None:
        instr.owner = self.owner
        self.out.append(instr)

    def _mat(self, reg: int, value: int) -> None:
        """Load an arbitrary constant into ``reg`` (lower.py's
        materialization idiom; heap cell addresses never fit imm)."""
        if fits_imm(value):
            self._emit(MInstr("lda", rd=reg, ra=ZERO, imm=value))
            return
        unsigned = value & ((1 << 64) - 1)
        chunks = [(unsigned >> shift) & 0xFFFF for shift in (48, 32, 16, 0)]
        while len(chunks) > 1 and chunks[0] == 0:
            chunks.pop(0)
        self._emit(MInstr("lda", rd=reg, ra=ZERO, imm=0))
        for chunk in chunks:
            self._emit(MInstr("ldih", rd=reg, imm=chunk))

    def _slot_context(self, reg: int, loop_id) -> None:
        """Emit: ``reg`` = current table base (loop_id None) or current
        iteration record (unrolled loop) -- one cell load."""
        if loop_id is None:
            self._mat(reg, self.table_cell)
        else:
            self._mat(reg, self.cursor_cells[loop_id])
        self._emit(MInstr("ldq", rd=reg, ra=reg, imm=0))

    # -- control-flow labeling ---------------------------------------------

    def _branch_label(self, source: str, target: str) -> str:
        """Map a template branch label to a fallback label, routing
        loop-header edges through the enter/restart stubs."""
        if target.startswith("ext:") or target.startswith("func:"):
            return target
        plan = self.headers.get(target)
        if plan is not None:
            stub = ("restart@%d" if source == plan.latch
                    else "enter@%d") % plan.loop_id
            if stub not in self.scheduled:
                self.scheduled.add(stub)
                self.queue.append(stub)
            return stub
        if target not in self.scheduled:
            self.scheduled.add(target)
            self.queue.append(target)
        return target

    # -- block emission -----------------------------------------------------

    def _emit_stub(self, stub: str) -> None:
        """Enter ("enter@N") / back-edge ("restart@N") stubs: maintain
        the loop's cursor cell, then branch to the header.  Block
        boundary: both scratches are free here."""
        kind, _, loop_text = stub.partition("@")
        plan = self.region.table.loops[int(loop_text)]
        self.labels[stub] = len(self.out)
        cursor = self.cursor_cells[plan.loop_id]
        if kind == "enter":
            # SCRATCH2 = head record pointer, read from the top-level
            # table (top loops) or the parent's current record (nested).
            self._slot_context(SCRATCH2, plan.parent)
            self._emit(MInstr("ldq", rd=SCRATCH2, ra=SCRATCH2,
                              imm=plan.head_slot))
        else:
            # SCRATCH2 = current record's next pointer.
            self._slot_context(SCRATCH2, plan.loop_id)
            self._emit(MInstr("ldq", rd=SCRATCH2, ra=SCRATCH2,
                              imm=plan.next_offset))
        self._mat(SCRATCH, cursor)
        self._emit(MInstr("stq", ra=SCRATCH, rb=SCRATCH2, imm=0))
        self._emit(MInstr("br", label=self._header_body_label(plan.header)))

    def _header_body_label(self, header: str) -> str:
        """Label of the header block *body* (bypassing the stubs)."""
        if header not in self.scheduled:
            self.scheduled.add(header)
            self.queue.append(header)
        return header

    def _emit_block(self, name: str) -> None:
        template = self.region.blocks[name]
        self.labels[name] = len(self.out)
        holes = {h.offset: h for h in template.holes}
        fixups = {f.offset: f for f in template.fixups}
        for offset, instr in enumerate(template.instrs):
            hole = holes.get(offset)
            if hole is not None:
                self._emit_hole(instr, hole)
                continue
            clone = instr.copy()
            fixup = fixups.get(offset)
            if fixup is not None:
                clone.label = self._branch_label(name, fixup.label)
            elif clone.label is not None \
                    and not clone.label.startswith(("ext:", "func:")):
                # Defensive: any local label routes through the same
                # mapping (templates put branches in fixups, but
                # hand-built test blocks may not).
                clone.label = self._branch_label(name, clone.label)
            self._emit(clone)
        term = template.term
        if term.kind == "const_branch":
            self._emit_predicate_branch(name, template)

    def _emit_hole(self, instr: MInstr, hole) -> None:
        """Generic expansion of a HOLE: load the value from the table
        at run time.  Only SCRATCH2 may be clobbered here."""
        loop_id, index = hole.slot
        self._slot_context(SCRATCH2, loop_id)
        if hole.kind == "materialize":
            # Placeholder was "lda rd, zero, 0": load the value.
            self._emit(MInstr("ldq", rd=instr.rd, ra=SCRATCH2, imm=index))
        elif hole.kind == "fpool":
            # The table slot holds the float value itself.
            clone = instr.copy()
            clone.ra = SCRATCH2
            clone.imm = index
            self._emit(clone)
        elif hole.kind == "alu_imm":
            # Value becomes the rb operand.
            self._emit(MInstr("ldq", rd=SCRATCH2, ra=SCRATCH2, imm=index))
            clone = instr.copy()
            clone.rb = SCRATCH2
            clone.imm = 0
            self._emit(clone)
        elif hole.kind == "loadbase":
            # Value is the address the load/store uses.
            self._emit(MInstr("ldq", rd=SCRATCH2, ra=SCRATCH2, imm=index))
            clone = instr.copy()
            clone.ra = SCRATCH2
            clone.imm = 0
            self._emit(clone)
        else:
            raise StitchError("unknown hole kind %r" % hole.kind,
                              func=self.region.func_name,
                              region_id=self.region.region_id)

    def _emit_predicate_branch(self, name: str,
                               template: TemplateBlock) -> None:
        """A stitch-time CONST_BRANCH becomes a real test on the table
        value.  Terminator position: both scratches are free."""
        term = template.term
        loop_id, index = term.slot
        self._slot_context(SCRATCH, loop_id)
        self._emit(MInstr("ldq", rd=SCRATCH, ra=SCRATCH, imm=index))
        if term.if_true is not None:
            self._emit(MInstr("bne", ra=SCRATCH,
                              label=self._branch_label(name, term.if_true)))
            self._emit(MInstr("br",
                              label=self._branch_label(name, term.if_false)))
            return
        # n-way: compare-and-branch chain, mirroring lower.py's Switch.
        for case_value, case_label in term.cases:
            if fits_imm(case_value):
                self._emit(MInstr("cmpeq", rd=SCRATCH2, ra=SCRATCH,
                                  imm=case_value))
            else:
                self._mat(SCRATCH2, case_value)
                self._emit(MInstr("cmpeq", rd=SCRATCH2, ra=SCRATCH,
                                  rb=SCRATCH2))
            self._emit(MInstr("bne", ra=SCRATCH2,
                              label=self._branch_label(name, case_label)))
        self._emit(MInstr("br",
                          label=self._branch_label(name, term.default)))

    # -- build --------------------------------------------------------------

    def build(self) -> FallbackCode:
        entry_label = self._branch_label("", self.region.entry)
        while self.queue:
            name = self.queue.pop()
            if "@" in name and name.split("@", 1)[0] in ("enter", "restart"):
                self._emit_stub(name)
            else:
                self._emit_block(name)
        if self.backend is not None:
            base = self.backend.install_block(self.vm, self.out)
        else:
            base = self.vm.install_code(self.out)
        for n, instr in enumerate(self.out):
            label = instr.label
            if label is None:
                continue
            if label.startswith("ext:"):
                instr.target = self.compiled.resolve(label[4:])
            elif label.startswith("func:"):
                callee = self.functions.get(label[5:])
                if callee is None or callee.base < 0:
                    raise StitchError(
                        "fallback call to unknown function %s" % label[5:],
                        func=self.region.func_name,
                        region_id=self.region.region_id)
                instr.target = callee.base
            else:
                instr.target = base + self.labels[label]
        if self.backend is not None:
            # Targets are resolved only now, so the backend's artifact
            # pass runs after the loop above, not inside install_block.
            self.backend.block_installed(
                self.vm, base, len(self.out),
                base + self.labels[entry_label])
        return FallbackCode(
            func_name=self.region.func_name,
            region_id=self.region.region_id,
            entry=base + self.labels[entry_label],
            base=base,
            words=len(self.out),
            table_cell=self.table_cell,
            cursor_cells=self.cursor_cells,
            owner=self.owner,
        )


def build_fallback(vm, compiled: CompiledFunction, region: RegionCode,
                   functions: Dict[str, CompiledFunction],
                   backend=None) -> FallbackCode:
    """Materialize and install the generic fallback for ``region``.

    Lazy by design: the engine only calls this on a region's first
    stitch failure, so faults-disabled runs allocate no cells, install
    no code, and stay bit-identical to the seed goldens.  ``backend``
    routes the install through the execution-backend seam so degraded
    runs keep backend-consistent host execution."""
    code = _FallbackBuilder(vm, compiled, region, functions,
                            backend=backend).build()
    if obs_metrics._enabled:
        region_label = "%s:%d" % (code.func_name, code.region_id)
        obs_metrics.counter("fallback.builds").labels(
            region=region_label).inc()
        obs_metrics.histogram("fallback.code_words").observe(code.words)
    if obs_trace._current is not None:
        obs_trace.instant("fallback.build", "runtime",
                          region="%s:%d" % (code.func_name, code.region_id),
                          words=code.words, entry=code.entry)
    return code
