"""Differential-fuzzing subsystem.

The standing correctness harness for the dynamic compiler: every
perf or refactor PR runs it.  Three layers:

* :mod:`repro.testing.genprog` -- a whole-program MiniC generator
  that emits random but type-correct programs exercising dynamic
  regions with run-time constants, ``unrolled`` loops over generated
  tables, ``key(...)`` multi-version regions, constant and variable
  branches, unstructured gotos, and ``dynamic[...]`` dereferences.
* :mod:`repro.testing.oracle` -- the three-way differential oracle:
  each program runs through the reference interpreter, static RVM
  compilation, and the stitched dynamic path; return values, float
  output, print output, global-memory effects and stitch-report
  invariants must all agree.
* :mod:`repro.testing.ablate` -- on divergence, localizes the culprit
  by toggling optimization passes off one at a time, then shrinks the
  program by greedy statement deletion to a minimal reproducer.

The CLI entry point is ``python -m repro.fuzz --seed N --iters K``.
"""

from .ablate import localize_divergence, shrink_program
from .genprog import GenProgram, ProgramGenerator, generate_program
from .oracle import Divergence, OracleOutcome, run_oracle

__all__ = [
    "Divergence",
    "GenProgram",
    "OracleOutcome",
    "ProgramGenerator",
    "generate_program",
    "localize_divergence",
    "run_oracle",
    "shrink_program",
]
