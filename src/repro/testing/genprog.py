"""Whole-program MiniC generator for differential fuzzing.

Emits random but *type-correct, terminating, trap-free* programs that
exercise the paper's dynamic-compilation machinery end to end:

* a ``dynamicRegion`` over run-time constant scalars and a constant
  table pointer (optionally a ``key(...)`` multi-version region);
* derived run-time constants (constant arithmetic, pure builtins,
  loads through the constant table pointer);
* ``unrolled`` loops -- including nested ones -- whose bounds are
  run-time constants, with per-iteration constant induction variables;
* constant branches and constant switches (resolved at stitch time,
  dead sides eliminated), variable branches and switches
  (fall-through included);
* unstructured forward ``goto`` control flow;
* ``dynamic[...]`` dereferences through constant addresses;
* float arithmetic (separate register file, pooled float constants);
* stores to a global ``out`` array (memory effects the oracle
  compares), ``print_int``/``print_float`` output, helper-function
  calls out of stitched code, and early ``return`` from the region.

The generated program is a tree of :class:`Node` objects, so the
shrinker in :mod:`repro.testing.ablate` can delete statements (or
unwrap block bodies) and re-render, rather than hacking at text.

Everything is driven by one ``random.Random`` instance: the same seed
always yields the same program.
"""

from __future__ import annotations

import random
from typing import List, Optional

__all__ = ["Node", "GenProgram", "ProgramGenerator", "generate_program"]

#: Size (power of two) of the constant input table and the output array.
TABLE_SIZE = 16
OUT_SIZE = 16

#: Pure integer builtins usable in derived-constant expressions.
_PURE_INT = ("imax", "imin")


class Node:
    """One generated statement (possibly with a nested block).

    ``head`` renders before the children, ``tail`` after; leaf
    statements have no children.  ``deletable`` nodes may be removed
    by the shrinker; ``unwrappable`` nodes may be replaced by their
    children (dropping the surrounding control structure).
    """

    __slots__ = ("head", "children", "tail", "deletable", "unwrappable",
                 "deleted", "unwrapped")

    def __init__(self, head: str = "", children: Optional[List["Node"]] = None,
                 tail: str = "", deletable: bool = True,
                 unwrappable: bool = False):
        self.head = head
        self.children: List[Node] = children if children is not None else []
        self.tail = tail
        self.deletable = deletable
        self.unwrappable = unwrappable
        self.deleted = False
        self.unwrapped = False

    def render(self, lines: List[str], indent: int) -> None:
        if self.deleted:
            return
        pad = "    " * indent
        if self.unwrapped:
            for child in self.children:
                child.render(lines, indent)
            return
        if self.head:
            for part in self.head.split("\n"):
                lines.append(pad + part)
        for child in self.children:
            child.render(lines, indent + 1)
        if self.tail:
            for part in self.tail.split("\n"):
                lines.append(pad + part)

    def walk(self):
        """All live nodes in this subtree (pre-order), including self."""
        if self.deleted:
            return
        yield self
        for child in self.children:
            yield from child.walk()


class GenProgram:
    """A generated program plus the metadata the oracle needs."""

    def __init__(self, root: Node, args: List[int], seed: int,
                 features: List[str], keyed: bool):
        self.root = root
        #: argument values for ``main(int x)`` -- the oracle runs the
        #: program once per argument.
        self.args = args
        self.seed = seed
        #: feature tags actually exercised (for coverage stats).
        self.features = features
        self.keyed = keyed

    @property
    def source(self) -> str:
        lines: List[str] = []
        self.root.render(lines, 0)
        return "\n".join(lines) + "\n"

    def live_nodes(self) -> List[Node]:
        return list(self.root.walk())


class _Scope:
    """Names in scope at a generation point, plus placement flags.

    The region splitter slices every run-time-constant computation into
    set-up code, which imposes two placement rules the generator must
    respect to keep the acceptance rate high:

    * ``tainted`` -- inside a non-unrolled (run-time) loop.  A constant
      computation there would put a loop into set-up code, which the
      splitter rejects; so every generated expression must depend on a
      run-time variable and contain no constant-only *compound*
      subexpression (bare constant names and literals are fine -- only
      instructions whose operands are all constant become set-up code).
    * ``const_ctrl`` -- whether constant *control flow* (constant
      branches/switches, ``unrolled`` loops) may be generated.  Under a
      variable branch, straight-line constant defs are speculatively
      hoisted by the splitter, but constant merges (phis) and unrolled
      loops there can be unplaceable, so we only emit them where set-up
      code is known to reach.
    """

    def __init__(self, consts: List[str], ivars: List[str],
                 fvars: List[str], tainted: bool = False,
                 const_ctrl: bool = True):
        #: run-time constant ints (region constants, derived constants,
        #: unrolled-loop induction variables).
        self.consts = list(consts)
        #: mutable int variables.
        self.ivars = list(ivars)
        #: mutable float variables.
        self.fvars = list(fvars)
        self.tainted = tainted
        self.const_ctrl = const_ctrl

    def child(self, tainted: Optional[bool] = None,
              const_ctrl: Optional[bool] = None) -> "_Scope":
        return _Scope(self.consts, self.ivars, self.fvars,
                      self.tainted if tainted is None else tainted,
                      self.const_ctrl if const_ctrl is None else const_ctrl)


class ProgramGenerator:
    """Generates one random program from one ``random.Random``."""

    def __init__(self, rng: random.Random, max_stmts: int = 14,
                 max_depth: int = 3):
        self.rng = rng
        self.max_stmts = max_stmts
        self.max_depth = max_depth
        self._names = 0
        self._budget = 0
        self._prints = 0
        self._label_depth = 0
        self.features: List[str] = []

    # -- small helpers ------------------------------------------------------

    def _fresh(self, prefix: str) -> str:
        self._names += 1
        return "%s%d" % (prefix, self._names)

    def _feature(self, tag: str) -> None:
        if tag not in self.features:
            self.features.append(tag)

    def _lit(self, lo: int = -9, hi: int = 9) -> str:
        value = self.rng.randint(lo, hi)
        return str(value) if value >= 0 else "(0 - %d)" % -value

    def _atom(self, scope: _Scope) -> str:
        """A bare name or literal: never creates an IR temp by itself."""
        pool = scope.ivars + scope.consts
        if pool and self.rng.random() < 0.8:
            return self.rng.choice(pool)
        return str(self.rng.randint(0, 9))

    def _rt_var(self, scope: _Scope) -> str:
        """A run-time (non-constant) variable; taint anchors."""
        return self.rng.choice(scope.ivars)

    # -- expressions --------------------------------------------------------

    def _const_expr(self, scope: _Scope, depth: int) -> str:
        """An int expression that is a *derived run-time constant*."""
        rng = self.rng
        if depth <= 0 or rng.random() < 0.3:
            if scope.consts and rng.random() < 0.75:
                return rng.choice(scope.consts)
            return self._lit(0, 13)
        choice = rng.randrange(6)
        if choice == 0:
            op = rng.choice(["+", "-", "*", "&", "|", "^"])
            return "(%s %s %s)" % (self._const_expr(scope, depth - 1), op,
                                   self._const_expr(scope, depth - 1))
        if choice == 1:
            return "(%s << %d)" % (self._const_expr(scope, depth - 1),
                                   rng.randrange(0, 5))
        if choice == 2:
            self._feature("pure_builtin")
            fn = rng.choice(_PURE_INT)
            return "%s(%s, %s)" % (fn, self._const_expr(scope, depth - 1),
                                   self._const_expr(scope, depth - 1))
        if choice == 3:
            self._feature("pure_builtin")
            return "iabs(%s)" % self._const_expr(scope, depth - 1)
        if choice == 4:
            # Load through the constant table pointer: a derived
            # constant (the paper's partially-constant data structures).
            self._feature("const_table_load")
            return "tabp[(%s) & %d]" % (self._const_expr(scope, depth - 1),
                                        TABLE_SIZE - 1)
        return "(%s >> %d)" % (self._const_expr(scope, depth - 1),
                               rng.randrange(0, 3))

    def _var_expr(self, scope: _Scope, depth: int,
                  in_region: bool = True) -> str:
        """An int expression over variables and constants.

        In a tainted scope (inside a run-time loop) the result is
        guaranteed to depend on a run-time variable and to contain no
        constant-only compound subexpression: the left spine always
        recurses down to a run-time variable, and the other operands
        are either equally tainted subexpressions or bare atoms.
        """
        rng = self.rng
        tainted = scope.tainted
        if depth <= 0 or rng.random() < 0.28:
            if tainted:
                return self._rt_var(scope)
            pool = scope.ivars + scope.consts
            if pool and rng.random() < 0.8:
                return rng.choice(pool)
            return self._lit()
        choice = rng.randrange(9)
        sub = lambda: self._var_expr(scope, depth - 1, in_region)
        other = (lambda: self._atom(scope) if rng.random() < 0.5
                 else sub()) if tainted else sub
        if choice == 0:
            op = rng.choice(["+", "-", "*", "&", "|", "^"])
            return "(%s %s %s)" % (sub(), op, other())
        if choice == 1:
            # The shift-amount wrapper (& 7) is itself a compound, so
            # its operand must be tainted in tainted scopes (an atom
            # would make the wrapper a constant-only computation).
            op = rng.choice(["<<", ">>"])
            return "(%s %s (%s & 7))" % (other(), op, sub())
        if choice == 2:
            op = rng.choice(["<", "<=", ">", ">=", "==", "!="])
            return "(%s %s %s)" % (sub(), op, other())
        if choice == 3:
            self._feature("ternary")
            left, right = sub(), other()
            if left == right:
                # Identical arms would make a constant phi under a
                # possibly-variable branch -- unplaceable set-up code.
                right = "(%s ^ 1)" % right if not tainted \
                    else self._rt_var(scope)
            return "(%s ? %s : %s)" % (self._cond(scope, depth - 1),
                                       left, right)
        if choice == 4:
            self._feature("division")
            # Trap-free: the denominator is forced odd (never zero).
            # The (| 1) wrapper is a compound, so its operand recurses
            # (an atom would make it constant-only in tainted scopes).
            op = rng.choice(["/", "%"])
            return "(%s %s ((%s) | 1))" % (other(), op, sub())
        if choice == 5 and in_region:
            self._feature("dynamic_deref")
            return "tabp dynamic[ (%s) & %d ]" % (sub(), TABLE_SIZE - 1)
        if choice == 6:
            self._feature("shortcircuit")
            op = rng.choice(["&&", "||"])
            return "(%s %s %s)" % (self._cond(scope, depth - 1), op,
                                   self._cond(scope, depth - 1))
        if choice == 7 and in_region:
            self._feature("helper_call")
            return "helper(%s, %s)" % (sub(), other())
        return "(%s + %s)" % (sub(), other())

    def _float_atom(self, scope: _Scope) -> str:
        rng = self.rng
        if scope.fvars and rng.random() < 0.6:
            return rng.choice(scope.fvars)
        return "%d.%d" % (rng.randint(0, 9), rng.randint(0, 9))

    def _float_expr(self, scope: _Scope, depth: int) -> str:
        rng = self.rng
        tainted = scope.tainted
        if depth <= 0 or rng.random() < 0.35:
            if tainted:
                # The taint anchor: cast of a run-time int variable.
                self._feature("float_cast")
                return "((float)((%s) & 15))" % self._rt_var(scope)
            return self._float_atom(scope)
        choice = rng.randrange(5)
        sub = lambda: self._float_expr(scope, depth - 1)
        other = (lambda: self._float_atom(scope) if rng.random() < 0.5
                 else sub()) if tainted else sub
        if choice == 0:
            op = rng.choice(["+", "-", "*"])
            return "(%s %s %s)" % (sub(), op, other())
        if choice == 1:
            self._feature("float_cast")
            return "((float)((%s) & 15))" % self._var_expr(scope, depth - 1)
        if choice == 2:
            self._feature("float_builtin")
            return "fsqrt(fabs(%s))" % sub()
        if choice == 3:
            self._feature("float_div")
            # Trap-free: denominator in 1..8.
            return "(%s / ((float)(((%s) & 7) + 1)))" % (
                sub(), self._var_expr(scope, depth - 1))
        return "fmin(%s, %s)" % (sub(), other())

    def _cond(self, scope: _Scope, depth: int) -> str:
        """A branch predicate.  Where constant control flow is not
        allowed (tainted scopes, and under variable branches where a
        nested constant branch would make constant phis set-up code
        cannot reach), the left operand is anchored on a run-time
        variable so the predicate is never a run-time constant."""
        rng = self.rng
        op = rng.choice(["<", "<=", ">", ">=", "==", "!="])
        if scope.tainted or not scope.const_ctrl:
            anchored = scope.child(tainted=True)
            rhs = (self._atom(scope) if rng.random() < 0.5
                   else self._var_expr(anchored, depth))
            return "(%s %s %s)" % (self._var_expr(anchored, depth), op, rhs)
        return "(%s %s %s)" % (self._var_expr(scope, depth), op,
                               self._var_expr(scope, depth))

    def _const_cond(self, scope: _Scope, depth: int) -> str:
        rng = self.rng
        if rng.random() < 0.4:
            return "((%s & 1) != 0)" % self._const_expr(scope, depth)
        op = rng.choice(["<", "<=", ">", "==", "!="])
        return "(%s %s %s)" % (self._const_expr(scope, depth), op,
                               self._const_expr(scope, depth))

    # -- statements ---------------------------------------------------------

    def _gen_block(self, scope: _Scope, depth: int, n_stmts: int,
                   in_unrolled: bool) -> List[Node]:
        nodes = []
        for _ in range(n_stmts):
            if self._budget <= 0:
                break
            self._budget -= 1
            nodes.append(self._gen_stmt(scope, depth, in_unrolled))
        return nodes

    def _gen_stmt(self, scope: _Scope, depth: int,
                  in_unrolled: bool) -> Node:
        rng = self.rng
        # Placement discipline (see _Scope): no constant computations
        # inside run-time loops, no constant control flow where set-up
        # code is not guaranteed to reach.
        const_ok = not scope.tainted
        cc = scope.const_ctrl and const_ok
        weights = [
            ("decl_const", 14 if const_ok else 0),
            ("decl_var", 14), ("assign", 16),
            ("store", 10),
            ("if_const", 8 if cc else 0), ("if_var", 8),
            ("switch_const", 5 if cc else 0), ("switch_var", 5),
            ("unrolled", 8 if depth > 0 and cc else 0),
            ("plain_loop", 5 if depth > 0 else 0),
            ("goto", 5 if self._label_depth == 0 else 0),
            ("float", 7),
            ("print", 4 if self._prints < 6 else 0),
            ("early_return", 2),
        ]
        total = sum(w for _, w in weights)
        pick = rng.randrange(total)
        for kind, weight in weights:
            if pick < weight:
                break
            pick -= weight
        method = getattr(self, "_stmt_" + kind)
        return method(scope, depth, in_unrolled)

    def _stmt_decl_const(self, scope: _Scope, depth: int,
                         in_unrolled: bool) -> Node:
        name = self._fresh("d")
        self._feature("derived_const")
        node = Node("int %s = %s;" % (name,
                                      self._const_expr(scope, depth + 1)))
        scope.consts.append(name)
        return node

    def _stmt_decl_var(self, scope: _Scope, depth: int,
                       in_unrolled: bool) -> Node:
        name = self._fresh("v")
        node = Node("int %s = %s;" % (name, self._var_expr(scope, 2)))
        scope.ivars.append(name)
        return node

    def _stmt_assign(self, scope: _Scope, depth: int,
                     in_unrolled: bool) -> Node:
        rng = self.rng
        if not scope.ivars:
            return self._stmt_decl_var(scope, depth, in_unrolled)
        target = rng.choice(scope.ivars)
        if rng.random() < 0.4:
            op = rng.choice(["+=", "-=", "*=", "^=", "|=", "&="])
            return Node("%s %s %s;" % (target, op, self._var_expr(scope, 2)))
        return Node("%s = %s;" % (target, self._var_expr(scope, 2)))

    def _stmt_store(self, scope: _Scope, depth: int,
                    in_unrolled: bool) -> Node:
        self._feature("memory_effect")
        index = "(%s) & %d" % (self._var_expr(scope, 1), OUT_SIZE - 1)
        return Node("out[%s] = %s;" % (index, self._var_expr(scope, 2)))

    def _stmt_if_const(self, scope: _Scope, depth: int,
                       in_unrolled: bool) -> Node:
        self._feature("const_branch")
        cond = self._const_cond(scope, 1)
        then = self._gen_block(scope.child(), depth - 1,
                               self.rng.randint(1, 2), in_unrolled)
        if self.rng.random() < 0.6:
            other = self._gen_block(scope.child(), depth - 1,
                                    self.rng.randint(1, 2), in_unrolled)
            els = Node("} else {", other, deletable=False)
            return Node("if (%s) {" % cond, then + [els], "}")
        return Node("if (%s) {" % cond, then, "}", unwrappable=True)

    def _stmt_if_var(self, scope: _Scope, depth: int,
                     in_unrolled: bool) -> Node:
        self._feature("var_branch")
        cond = self._cond(scope, 1)
        then = self._gen_block(scope.child(const_ctrl=False), depth - 1,
                               self.rng.randint(1, 2), in_unrolled)
        if self.rng.random() < 0.5:
            other = self._gen_block(scope.child(const_ctrl=False),
                                    depth - 1, 1, in_unrolled)
            els = Node("} else {", other, deletable=False)
            return Node("if (%s) {" % cond, then + [els], "}")
        return Node("if (%s) {" % cond, then, "}", unwrappable=True)

    def _switch(self, scope: _Scope, depth: int, in_unrolled: bool,
                selector: str, tag: str, case_scope: _Scope) -> Node:
        rng = self.rng
        self._feature(tag)
        n_cases = rng.randint(2, 4)
        children: List[Node] = []
        for case in range(n_cases):
            # Brace each case body: a declaration may not directly
            # follow a label, and braces keep its scope local.
            body = self._gen_block(case_scope.child(), depth - 1, 1,
                                   in_unrolled)
            fall_through = rng.random() < 0.3
            children.append(Node("case %d: {" % case, body, "}",
                                 deletable=False))
            if not fall_through:
                children.append(Node("break;", deletable=False))
            else:
                self._feature("fallthrough")
        default_body = self._gen_block(case_scope.child(), depth - 1, 1,
                                       in_unrolled)
        children.append(Node("default: {", default_body, "}",
                             deletable=False))
        return Node("switch ((%s) & 3) {" % selector, children, "}")

    def _stmt_switch_const(self, scope: _Scope, depth: int,
                           in_unrolled: bool) -> Node:
        return self._switch(scope, depth, in_unrolled,
                            self._const_expr(scope, 1), "const_switch",
                            scope)

    def _stmt_switch_var(self, scope: _Scope, depth: int,
                         in_unrolled: bool) -> Node:
        return self._switch(scope, depth, in_unrolled,
                            self._var_expr(scope, 1), "var_switch",
                            scope.child(const_ctrl=False))

    def _stmt_unrolled(self, scope: _Scope, depth: int,
                       in_unrolled: bool) -> Node:
        rng = self.rng
        self._feature("unrolled_nested" if in_unrolled else "unrolled")
        ivar = self._fresh("i")
        bound = rng.choice([
            "n",
            str(rng.randint(1, 6)),
            "((%s) & 3) + 1" % self._const_expr(scope, 1),
        ])
        inner = scope.child()
        # The induction variable is a per-iteration run-time constant.
        inner.consts.append(ivar)
        body = self._gen_block(inner, depth - 1, rng.randint(1, 3),
                               in_unrolled=True)
        if not body:
            body = [Node("out[%s & %d] = %s;"
                         % (ivar, OUT_SIZE - 1, self._var_expr(inner, 1)))]
        return Node("int %s;\nunrolled for (%s = 0; %s < %s; %s++) {"
                    % (ivar, ivar, ivar, bound, ivar), body, "}",
                    unwrappable=False)

    def _stmt_plain_loop(self, scope: _Scope, depth: int,
                         in_unrolled: bool) -> Node:
        rng = self.rng
        self._feature("plain_loop")
        ivar = self._fresh("j")
        # The bound is re-evaluated in the loop header (inside the
        # loop), so it must be tainted even when the loop itself sits
        # in constant-friendly context.
        bound_scope = scope.child(tainted=True)
        bound = "((%s) & 3) + %d" % (self._var_expr(bound_scope, 1),
                                     rng.randint(1, 3))
        inner = scope.child(tainted=True, const_ctrl=False)
        inner.ivars.append(ivar)
        # Generate the continue guard *before* the body so it cannot
        # reference variables declared later in the loop.
        guard = (Node("if (%s) continue;" % self._cond(inner, 0))
                 if rng.random() < 0.3 else None)
        body = self._gen_block(inner, depth - 1, rng.randint(1, 2),
                               in_unrolled)
        if guard is not None and body:
            self._feature("continue")
            body.insert(0, guard)
        return Node("int %s;\nfor (%s = 0; %s < %s; %s++) {"
                    % (ivar, ivar, ivar, bound, ivar), body, "}")

    def _stmt_goto(self, scope: _Scope, depth: int,
                   in_unrolled: bool) -> Node:
        """A forward unstructured diamond:

        ``if (c) goto La;  S1;  goto Lb;  La: S2;  Lb: S3;``
        """
        self._feature("goto")
        self._label_depth += 1
        la = self._fresh("L")
        lb = self._fresh("L")
        const_goto = (scope.const_ctrl and not scope.tainted
                      and self.rng.random() < 0.4)
        cond = (self._const_cond(scope, 1) if const_goto
                else self._cond(scope, 1))
        # Label-targeted statements must not be declarations (a label
        # can only prefix a statement), so both arms are assignments
        # or stores.  The arms are guarded by the goto's branch, so
        # constant control flow (from expression lowering) is off
        # there unless the goto itself branches on a constant.
        arm_scope = scope if const_goto else scope.child(const_ctrl=False)
        arm = lambda: (self._stmt_store(arm_scope, 0, in_unrolled)
                       if self.rng.random() < 0.4
                       else self._stmt_assign(arm_scope, 0, in_unrolled))
        s1, s2, s3 = arm(), arm(), self._stmt_assign(scope, 0, in_unrolled)
        self._label_depth -= 1
        return Node("if (%s) goto %s;" % (cond, la),
                    [s1,
                     Node("goto %s;" % lb, deletable=False),
                     Node("%s:" % la, deletable=False),
                     s2,
                     Node("%s:" % lb, deletable=False),
                     s3],
                    deletable=True)

    def _stmt_float(self, scope: _Scope, depth: int,
                    in_unrolled: bool) -> Node:
        rng = self.rng
        self._feature("float")
        if not scope.fvars or rng.random() < 0.5:
            name = self._fresh("g")
            node = Node("float %s = %s;" % (name,
                                            self._float_expr(scope, 2)))
            scope.fvars.append(name)
            return node
        target = rng.choice(scope.fvars)
        return Node("%s = %s;" % (target, self._float_expr(scope, 2)))

    def _stmt_print(self, scope: _Scope, depth: int,
                    in_unrolled: bool) -> Node:
        self._prints += 1
        self._feature("print")
        if scope.fvars and self.rng.random() < 0.35:
            return Node("print_float(%s);" % self.rng.choice(scope.fvars))
        return Node("print_int(%s);" % self._var_expr(scope, 2))

    def _stmt_early_return(self, scope: _Scope, depth: int,
                           in_unrolled: bool) -> Node:
        self._feature("early_return")
        # The returned expression is guarded by the (variable) branch.
        guarded = scope.child(const_ctrl=False)
        return Node("if (%s) return %s;" % (self._cond(scope, 1),
                                            self._var_expr(guarded, 2)))

    # -- whole program ------------------------------------------------------

    def generate(self, seed: int = 0) -> GenProgram:
        rng = self.rng
        self._budget = self.max_stmts
        keyed = rng.random() < 0.35
        c0 = rng.randint(-20, 20)
        c1 = rng.randint(0, 15)
        n = rng.randint(1, 7)
        table = [rng.randint(-25, 25) for _ in range(TABLE_SIZE)]
        keys = sorted({rng.randint(0, 9)
                       for _ in range(rng.randint(2, 3))}) if keyed else []

        scope = _Scope(consts=["c0", "c1", "n"],
                       ivars=["x", "y"], fvars=[])
        region_body = self._gen_block(scope, self.max_depth,
                                      self.max_stmts, in_unrolled=False)
        region_body.append(Node("return %s;" % self._var_expr(scope, 2),
                                deletable=False))

        if keyed:
            # The backend passes at most 6 parameters in registers, so
            # the keyed variant derives y locally instead of taking it.
            self._feature("keyed_region")
            region_head = "dynamicRegion key(k) (k, c0, c1, tabp, n) {"
            params = "int k, int c0, int c1, int *tabp, int n, int x"
            preamble = [Node("int y = x ^ 5;", deletable=False)]
        else:
            region_head = "dynamicRegion (c0, c1, tabp, n) {"
            params = "int c0, int c1, int *tabp, int n, int x, int y"
            preamble = []

        region = Node(region_head, region_body, "}", deletable=False)
        func = Node("int f(%s) {" % params, preamble + [region], "}",
                    deletable=False)

        helper = Node(
            "int helper(int a, int b) {\n"
            "    return a * 3 - (b ^ 5);\n"
            "}", deletable=False)

        init_lines = "\n".join("    tab[%d] = %d;" % (i, v)
                               for i, v in enumerate(table))
        globals_node = Node(
            "int tab[%d];\nint out[%d];\n"
            "void initTab() {\n%s\n}"
            % (TABLE_SIZE, OUT_SIZE, init_lines), deletable=False)

        # main: several calls with identical constants (the annotation
        # contract) but varying non-constant arguments, then a checksum
        # of the out[] array.
        call_nodes: List[Node] = []
        n_calls = rng.randint(2, 4)
        for i in range(n_calls):
            vx = rng.choice(["x", "x + %d" % i, "x - %d" % (2 * i + 1),
                             str(rng.randint(-5, 5))])
            vy = rng.choice(["x * 2", "y0", str(rng.randint(-5, 5)),
                             "acc & 15"])
            if keyed:
                key = rng.choice(keys)
                call = "f(%d, %d, %d, tab, %d, %s)" % (
                    key, c0, c1, n, vx)
            else:
                call = "f(%d, %d, tab, %d, %s, %s)" % (c0, c1, n, vx, vy)
            call_nodes.append(
                Node("acc = acc * 31 + %s;" % call,
                     deletable=(i != 0)))
        main = Node(
            "int main(int x) {",
            [Node("initTab();", deletable=False),
             Node("int acc = 0;", deletable=False),
             Node("int y0 = x ^ 3;", deletable=False)]
            + call_nodes
            + [Node("int q;\nfor (q = 0; q < %d; q++) "
                    "acc = acc * 3 + out[q];" % OUT_SIZE, deletable=False),
               Node("print_int(acc);", deletable=False),
               Node("return acc;", deletable=False)],
            "}", deletable=False)

        root = Node(children=[globals_node, helper, func, main],
                    deletable=False)
        args = sorted({rng.randint(-10, 10) for _ in range(2)}) or [0]
        return GenProgram(root, [int(a) for a in args], seed,
                          list(self.features), keyed)


def generate_program(seed: int, max_stmts: int = 14,
                     max_depth: int = 3) -> GenProgram:
    """One deterministic random program from ``seed``."""
    generator = ProgramGenerator(random.Random(seed), max_stmts=max_stmts,
                                 max_depth=max_depth)
    return generator.generate(seed)
