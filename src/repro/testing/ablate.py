"""Divergence localization and reproducer shrinking.

When the oracle finds a divergence, two questions matter for triage:

1. *Which pass is the culprit?*  :func:`localize_divergence` re-runs
   the oracle with each optimization pass of :mod:`repro.opt.pipeline`
   toggled off individually (plus the reachability analysis and the
   stitcher's value-based peepholes, the two dynamic-side
   optimizations), and reports every toggle that makes the divergence
   vanish.

2. *What is the smallest program that still shows it?*
   :func:`shrink_program` greedily deletes statements from the
   generated program tree (and unwraps control structures around
   their bodies) while the divergence persists, converging on a
   minimal reproducer suitable for ``tests/corpus/``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from ..opt.pipeline import OptOptions
from .genprog import GenProgram
from .oracle import OracleReport, run_oracle

__all__ = ["AblationResult", "localize_divergence", "shrink_program",
           "format_reproducer"]

#: The toggleable passes of the static optimization pipeline.
OPT_PASSES = ("fold", "copyprop", "cse", "algebraic", "dce", "merge")


@dataclass
class AblationResult:
    """Which toggles make the divergence disappear."""

    #: opt/pipeline passes whose removal fixes the program.
    culprit_passes: List[str] = field(default_factory=list)
    #: True if disabling the reachability analysis fixes it.
    reachability_implicated: bool = False
    #: True if disabling stitcher peepholes fixes it.
    peepholes_implicated: bool = False
    #: True if the divergence survives every ablation (a baseline or
    #: front-end bug rather than an optimizer interaction).
    survives_all: bool = False

    def summary(self) -> str:
        parts = list(self.culprit_passes)
        if self.reachability_implicated:
            parts.append("reachability")
        if self.peepholes_implicated:
            parts.append("stitcher-peepholes")
        if not parts:
            return "none (survives every pass ablation)"
        return ", ".join(parts)


def _options_without(pass_name: str) -> OptOptions:
    options = OptOptions()
    setattr(options, pass_name, False)
    return options


def localize_divergence(source: str, args: List[int],
                        max_cycles: int = 200_000_000) -> AblationResult:
    """Toggle passes off one at a time; report which ones matter."""
    result = AblationResult()
    for pass_name in OPT_PASSES:
        report = run_oracle(source, args,
                            opt_options=_options_without(pass_name),
                            max_cycles=max_cycles)
        if report.ok:
            result.culprit_passes.append(pass_name)
    report = run_oracle(source, args, use_reachability=False,
                        max_cycles=max_cycles)
    if report.ok:
        result.reachability_implicated = True
    from ..machine.costs import StitcherCosts
    costs = StitcherCosts()
    costs.enable_peepholes = False
    # Peepholes only affect the dynamic leg; reuse the oracle with the
    # alternate cost model by compiling the dynamic leg directly.
    from .oracle import _vm_leg, _interp_leg, _compare
    interp = _interp_leg(source, args)
    dynamic, _, invariants = _vm_leg(
        "dynamic", source, args, "dynamic", stitcher_costs=costs,
        runs=1, check_invariants=False, max_cycles=max_cycles)
    divergences: list = []
    _compare(interp, dynamic, divergences)
    if not divergences and not invariants:
        result.peepholes_implicated = True
    result.survives_all = not (result.culprit_passes
                               or result.reachability_implicated
                               or result.peepholes_implicated)
    return result


def shrink_program(program: GenProgram,
                   still_diverges: Optional[Callable[[str], bool]] = None,
                   max_rounds: int = 12,
                   max_cycles: int = 200_000_000) -> GenProgram:
    """Greedy statement deletion while the divergence persists.

    ``still_diverges(source)`` defaults to "the three-way oracle still
    reports a real divergence for this program's arguments" (a program
    every leg *rejects* does not count -- a reproducer must compile).
    Deletion is attempted node by node, in rounds, until a fixpoint;
    unwrappable nodes (an ``if`` around a block) are also tried as
    "replace with the body".
    """
    if still_diverges is None:
        args = program.args

        def still_diverges(source: str) -> bool:
            for arg in args:
                report = run_oracle(source, [arg], max_cycles=max_cycles)
                if report.compile_error:
                    return False
                if not report.ok:
                    return True
            return False

    for _ in range(max_rounds):
        changed = False
        for node in program.live_nodes():
            if node.deletable and not node.deleted:
                node.deleted = True
                if still_diverges(program.source):
                    changed = True
                else:
                    node.deleted = False
            if node.unwrappable and not node.unwrapped \
                    and not node.deleted:
                node.unwrapped = True
                if still_diverges(program.source):
                    changed = True
                else:
                    node.unwrapped = False
        if not changed:
            break
    return program


def format_reproducer(program: GenProgram, report: OracleReport,
                      ablation: Optional[AblationResult] = None,
                      title: str = "fuzz reproducer") -> str:
    """Render a corpus file: header comments + minimized source.

    The header is machine-readable enough for ``tests/test_corpus.py``
    to replay the program (``// args:`` drives the oracle).
    """
    lines = ["// %s (seed %d)" % (title, program.seed),
             "// args: %s" % " ".join(str(a) for a in program.args),
             "// features: %s" % ", ".join(program.features)]
    for divergence in report.divergences[:6]:
        lines.append("// divergence: %s" % divergence)
    if ablation is not None:
        lines.append("// implicated: %s" % ablation.summary())
    lines.append("")
    return "\n".join(lines) + program.source
