"""The three-way differential oracle.

Runs one MiniC program through three independent execution paths --

1. the reference interpreter on raw (unoptimized, unsplit) IR,
2. static RVM compilation (annotations ignored -- the paper's
   baseline), and
3. the full dynamic path (regions split, templates stitched at the
   first entry)

-- and compares everything observable: the integer return value, the
float return register, the printed output (ints and floats,
bit-exact), and the final contents of every global (the program's
memory effects).  The dynamic program is additionally run a second
time on its cached VM (exercising the code-cache hit and the
reset-for-rerun path) and, optionally, once more with the register-
actions extension enabled.  A fourth standing leg repeats the dynamic
configuration under the *other* registered execution backend (pycode
when the primary is the default rvm, and vice versa), so every oracle
run doubles as a bit-for-bit proof that the backend seam never
changes a simulated observable.

On top of value agreement, the oracle checks *stitch-report
invariants* on every dynamic run:

* every stitch produced a valid entry inside installed code;
* every branch emitted into stitched code has a resolved, in-range
  target (no HOLE or label left unpatched);
* every stitched instruction is reachable from the region entry --
  the stitcher must not emit dead-branch code;
* unrolled-loop iteration counts are positive and the report's cycle
  total matches the stitcher cost model.

A failed comparison is reported as a :class:`Divergence` naming the
two legs that disagree -- the input to the ablation bisector.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from ..backends import get_backend
from ..codecache import CacheConfig
from ..faults import NON_RAISING_SITES, FaultPlan
from ..frontend.errors import AnnotationError, CompileError
from ..frontend.parser import parse
from ..frontend.typecheck import check
from ..ir.builder import build_module
from ..machine.costs import StitcherCosts
from ..machine.vm import VMError
from ..opt.pipeline import OptOptions
from ..runtime.engine import Program, compile_program
from ..runtime.interp import Interpreter, InterpError
from ..runtime.tiering import TierPolicy

Number = Union[int, float]

__all__ = ["OracleOutcome", "Divergence", "OracleReport", "run_oracle",
           "check_stitch_invariants"]


@dataclass
class OracleOutcome:
    """What one execution leg observed (or how it failed)."""

    leg: str
    # "ok" | "compile-error" | "trap" | "annotation-reject".  The last
    # is an AnnotationError from the region splitter: a *legitimate*
    # rejection of an unsupported region shape, not a divergence (the
    # interpreter and static legs ignore annotations entirely, so they
    # accept programs the dynamic path may refuse).
    status: str
    value: Optional[int] = None
    output: List[Number] = field(default_factory=list)
    globals: Dict[str, List[Number]] = field(default_factory=dict)
    error: str = ""
    #: the leg's last RunResult (VM legs only) -- host-side telemetry
    #: for the fuzzer's health checks.  Never part of observables().
    run_result: Optional[object] = field(default=None, repr=False,
                                         compare=False)

    def observables(self) -> Tuple:
        if self.status != "ok":
            return (self.status,)
        return (self.value, tuple(self.output),
                tuple(sorted((name, tuple(vals))
                             for name, vals in self.globals.items())))


@dataclass
class Divergence:
    """Two legs disagreed (or an invariant failed)."""

    kind: str  # "value" | "output" | "memory" | "status" | "invariant"
    left: str
    right: str
    detail: str
    source: str = ""
    args: List[int] = field(default_factory=list)

    def __str__(self) -> str:
        return "%s divergence between %s and %s: %s" % (
            self.kind, self.left, self.right, self.detail)


@dataclass
class OracleReport:
    """All legs' outcomes for one (program, argument) pair."""

    args: List[int]
    outcomes: Dict[str, OracleOutcome]
    divergences: List[Divergence]

    @property
    def ok(self) -> bool:
        return not self.divergences

    @property
    def compile_error(self) -> bool:
        """True when every leg rejected the program identically."""
        return all(o.status == "compile-error"
                   for o in self.outcomes.values())

    @property
    def annotation_reject(self) -> bool:
        """True when a dynamic leg refused the region shape."""
        return any(o.status == "annotation-reject"
                   for o in self.outcomes.values())


def _module_globals(module) -> Dict[str, int]:
    return {name: max(1, len(data.values))
            for name, data in module.globals.items()}


def _interp_leg(source: str, args: List[int]) -> OracleOutcome:
    try:
        module = build_module(check(parse(source)))
    except CompileError as exc:
        return OracleOutcome("interp", "compile-error",
                             error="%s: %s" % (type(exc).__name__, exc))
    sizes = _module_globals(module)
    interp = Interpreter(copy.deepcopy(module))
    try:
        value = interp.run("main", list(args))
    except InterpError as exc:
        return OracleOutcome("interp", "trap", error=str(exc))
    final = {name: [interp.memory[interp.global_addrs[name] + i]
                    for i in range(size)]
             for name, size in sizes.items()}
    return OracleOutcome("interp", "ok", value=None if value is None
                         else int(value),
                         output=list(interp.output), globals=final)


def _vm_globals(program: Program) -> Dict[str, List[Number]]:
    vm = program._vm
    assert vm is not None, "program has not run yet"
    layout = program.layout
    return {name: [vm.memory[layout.addr_of(name) + i]
                   for i in range(max(1, len(values)))]
            for name, values in layout.global_values.items()}


def _vm_leg(leg: str, source: str, args: List[int], mode: str,
            opt_options: Optional[OptOptions] = None,
            use_reachability: bool = True,
            stitcher_costs: Optional[StitcherCosts] = None,
            register_actions: bool = False,
            runs: int = 1,
            check_invariants: bool = True,
            max_cycles: int = 200_000_000,
            cache_config: Optional[CacheConfig] = None,
            faults: Optional[str] = None,
            tier: Optional[str] = None,
            stitch: Optional[str] = None,
            backend: Optional[str] = None,
            ) -> Tuple[OracleOutcome, Optional[Program], list]:
    try:
        program = compile_program(
            source, mode=mode, opt_options=opt_options,
            use_reachability=use_reachability,
            stitcher_costs=stitcher_costs,
            register_actions=register_actions,
            cache_config=cache_config, tier=tier, stitch=stitch,
            backend=backend)
    except AnnotationError as exc:
        return (OracleOutcome(leg, "annotation-reject",
                              error="%s: %s" % (type(exc).__name__, exc)),
                None, [])
    except CompileError as exc:
        return (OracleOutcome(leg, "compile-error",
                              error="%s: %s" % (type(exc).__name__, exc)),
                None, [])
    result = None
    try:
        for run_index in range(max(1, runs)):
            # A fresh deterministic plan per run: repeated runs on the
            # cached VM exercise different fault schedules while the
            # whole leg stays reproducible from (spec, run index).
            plan = FaultPlan.parse(faults, seed=run_index)
            result = program.run("main", list(args), max_cycles=max_cycles,
                                 fault_plan=plan)
    except VMError as exc:
        return OracleOutcome(leg, "trap", error=str(exc)), program, []
    except AnnotationError as exc:
        # Defensive: a stitch-time rejection counts the same way.
        return (OracleOutcome(leg, "annotation-reject",
                              error="%s: %s" % (type(exc).__name__, exc)),
                program, [])
    invariant_failures: list = []
    if mode == "dynamic" and check_invariants:
        invariant_failures = check_stitch_invariants(program, result)
    return (OracleOutcome(leg, "ok", value=result.value,
                          output=list(result.output),
                          globals=_vm_globals(program),
                          run_result=result),
            program, invariant_failures)


def check_stitch_invariants(program: Program, result) -> List[str]:
    """Stitcher sanity conditions beyond value agreement."""
    failures: List[str] = []
    vm = program._vm
    if vm is None:
        return ["no VM retained after run"]
    code = vm.code
    static_end = program._vm_code_len
    for report in result.stitch_reports:
        where = "%s:%d key=%s" % (report.func_name, report.region_id,
                                  report.key)
        if not static_end <= report.entry < len(code):
            failures.append("stitch %s: entry %d outside stitched code"
                            % (where, report.entry))
            continue
        for count in report.loop_iterations.values():
            if count < 1:
                failures.append("stitch %s: non-positive loop iteration "
                                "count %d" % (where, count))
        costs = program.stitcher_costs
        expected = (
            costs.per_region
            + report.directives * costs.per_directive
            + report.instrs_emitted * costs.per_instr_copied
            + report.holes_patched * costs.per_hole
            + report.branch_fixups * costs.per_branch_fixup
            + report.pool_entries * costs.per_pool_entry
            + report.records_followed * costs.per_loop_record
            + sum(report.peepholes.values()) * costs.per_peephole)
        if report.cycles != expected:
            failures.append("stitch %s: cycles %d != cost model %d"
                            % (where, report.cycles, expected))
    # Branch resolution: every control transfer emitted after the
    # static code (i.e. by the stitcher) must carry an in-range target.
    for pc in range(static_end, len(code)):
        instr = code[pc]
        if instr.op in ("br", "beq", "bne", "jsr"):
            target = instr.target
            if target is None or not 0 <= target < len(code):
                failures.append(
                    "unresolved %s target %r at stitched pc %d (label %r)"
                    % (instr.op, target, pc, instr.label))
        elif instr.op == "jtab":
            extra = instr.extra
            if not extra:
                failures.append("unresolved jtab at stitched pc %d" % pc)
    # Dead-code freedom: every stitched instruction must be reachable
    # from some stitch entry (the stitcher only emits the live side of
    # resolved constant branches).  Under a bounded cache, eviction
    # leaves trapping filler words and stale report entries, so the
    # scan narrows to the cache's *live* ranges, seeded from the live
    # entry points.
    cache_stats = getattr(result, "cache_stats", None)
    fallback_blocks = getattr(result, "fallback_blocks", []) or []
    fallback_pcs = [pc for base, words, _ in fallback_blocks
                    for pc in range(base, base + words)]
    fallback_entries = [entry for _, _, entry in fallback_blocks]
    # Checksum invalidation frees blocks (trapping filler) even under
    # the unbounded policy, so any run with checksum failures must use
    # the live-ranges scan too.
    narrowed = cache_stats is not None and (
        cache_stats.bounded
        or getattr(cache_stats, "checksum_failures", 0) > 0)
    if narrowed:
        live_pcs = [pc for base, words in cache_stats.live_blocks
                    for pc in range(base, base + words)] + fallback_pcs
        if live_pcs:
            reachable = _reachable_stitched(
                code, static_end,
                list(cache_stats.live_entry_pcs) + fallback_entries)
            dead = [pc for pc in live_pcs if pc not in reachable]
            if dead:
                failures.append(
                    "stitcher emitted unreachable (dead-branch) code at "
                    "pcs %s" % dead[:8])
    elif len(code) > static_end and (result.stitch_reports
                                     or fallback_entries):
        reachable = _reachable_stitched(code, static_end,
                                        [r.entry for r in
                                         result.stitch_reports
                                         if r.entry >= static_end]
                                        + fallback_entries)
        dead = [pc for pc in range(static_end, len(code))
                if pc not in reachable]
        if dead:
            failures.append(
                "stitcher emitted unreachable (dead-branch) code at "
                "pcs %s" % dead[:8])
    # Re-stitch identity: after eviction or invalidation, stitching
    # the same key against an unchanged table must reproduce the
    # original code word-for-word (modulo relocation base).
    if cache_stats is not None and cache_stats.restitch_mismatches:
        failures.append(
            "re-stitches not word-identical to original stitches: %s"
            % ", ".join(cache_stats.restitch_mismatches[:4]))
    # Region-entry accounting: every lookup is a cache hit, a stitch
    # (a landed one, in async mode), a fallback transfer, a cold entry
    # (under an adaptive tier), or a queued-fallback entry (async
    # mode), so per region entries == hits + stitches + fallbacks +
    # cold_entries + queued_entries (the runtime records every event
    # precisely so this five-way partition can be checked).
    entries = getattr(result, "region_entries", None)
    fallback_events = getattr(result, "fallbacks", []) or []
    cold_events = getattr(result, "cold_entries", []) or []
    queued_events = getattr(result, "queued_entries", []) or []
    if entries is not None:
        stitches: Dict[Tuple[str, int], int] = {}
        for report in result.stitch_reports:
            key = (report.func_name, report.region_id)
            stitches[key] = stitches.get(key, 0) + 1
        hits: Dict[Tuple[str, int], int] = {}
        for hit in getattr(result, "cache_hits", []) or []:
            key = (hit.func_name, hit.region_id)
            hits[key] = hits.get(key, 0) + 1
        falls: Dict[Tuple[str, int], int] = {}
        for event in fallback_events:
            key = (event.func_name, event.region_id)
            falls[key] = falls.get(key, 0) + 1
        colds: Dict[Tuple[str, int], int] = {}
        for cold in cold_events:
            key = (cold.func_name, cold.region_id)
            colds[key] = colds.get(key, 0) + 1
        queued: Dict[Tuple[str, int], int] = {}
        for event in queued_events:
            key = (event.func_name, event.region_id)
            queued[key] = queued.get(key, 0) + 1
        for key in (set(entries) | set(stitches) | set(hits)
                    | set(falls) | set(colds) | set(queued)):
            observed = entries.get(key, 0)
            expected = (hits.get(key, 0) + stitches.get(key, 0)
                        + falls.get(key, 0) + colds.get(key, 0)
                        + queued.get(key, 0))
            if observed != expected:
                failures.append(
                    "region %s:%d: %d entries != %d cache hits + %d "
                    "stitches + %d fallbacks + %d cold entries + %d "
                    "queued entries"
                    % (key[0], key[1], observed, hits.get(key, 0),
                       stitches.get(key, 0), falls.get(key, 0),
                       colds.get(key, 0), queued.get(key, 0)))
    failures.extend(_check_tier_invariants(result))
    failures.extend(_check_queue_invariants(result))
    # Fault accounting: every injected fault must be matched by an
    # observed recovery.  Raising sites produce injected fallback
    # events; the non-raising sites recover differently -- checksum
    # produces a verification failure (and a re-stitch), tier.flip
    # perturbs a tiering decision, queue.drop sheds a queued job, and
    # stitch.hang wedges one (each checked against the queue stats).
    fault_counts = getattr(result, "fault_counts", None)
    if fault_counts:
        raised = sum(count for site, count in fault_counts.items()
                     if site not in NON_RAISING_SITES)
        injected_falls = sum(1 for event in fallback_events
                             if event.injected)
        if raised != injected_falls:
            failures.append(
                "fault accounting: %d injected raising faults != %d "
                "injected fallback events" % (raised, injected_falls))
        checksum = fault_counts.get("cache.checksum", 0)
        observed_checksum = getattr(cache_stats, "checksum_failures", 0) \
            if cache_stats is not None else 0
        if checksum != observed_checksum:
            failures.append(
                "fault accounting: %d injected checksum faults != %d "
                "observed checksum failures"
                % (checksum, observed_checksum))
        queue_stats = getattr(result, "queue_stats", None)
        for site, attr in (("queue.drop", "dropped"),
                           ("stitch.hang", "hung")):
            injected = fault_counts.get(site, 0)
            observed = getattr(queue_stats, attr, 0) \
                if queue_stats is not None else 0
            if injected != observed:
                failures.append(
                    "fault accounting: %d injected %s faults != %d "
                    "observed %s jobs" % (injected, site, observed, attr))
    return failures


def _check_queue_invariants(result) -> List[str]:
    """The async-stitching invariant set (empty for sync runs).

    * a sync run records no queued entries and no queue stats at all;
    * job conservation: every admitted job ends in exactly one bucket
      -- enqueued == landed + expired + cancelled + pending;
    * every landed job is a stitch report and its entries-to-land
      latency is non-negative;
    * shed accounting covers every injected drop.
    """
    failures: List[str] = []
    queue_stats = getattr(result, "queue_stats", None)
    queued_events = getattr(result, "queued_entries", []) or []
    if queue_stats is None:
        if queued_events:
            failures.append(
                "sync run recorded %d queued entries" % len(queued_events))
        return failures
    accounted = (queue_stats.landed + queue_stats.expired
                 + queue_stats.total_cancelled + queue_stats.pending)
    if queue_stats.enqueued != accounted:
        failures.append(
            "queue accounting: %d enqueued != %d landed + %d expired "
            "+ %d cancelled + %d pending"
            % (queue_stats.enqueued, queue_stats.landed,
               queue_stats.expired, queue_stats.total_cancelled,
               queue_stats.pending))
    if len(queue_stats.land_latencies) != queue_stats.landed:
        failures.append(
            "queue accounting: %d land latencies != %d landed jobs"
            % (len(queue_stats.land_latencies), queue_stats.landed))
    if any(latency < 0 for latency in queue_stats.land_latencies):
        failures.append("queue accounting: negative entries-to-land "
                        "latency %r" % (queue_stats.land_latencies,))
    if queue_stats.dropped > queue_stats.shed:
        failures.append(
            "queue accounting: %d injected drops exceed %d shed events"
            % (queue_stats.dropped, queue_stats.shed))
    return failures


def _check_tier_invariants(result) -> List[str]:
    """The adaptive-tiering invariant set (empty for eager runs).

    * every eager run has no cold entries and no tier stats at all;
    * every promoted key ran at least as many entries as the policy's
      promotion point demands (``threshold`` for threshold mode, 2 for
      breakeven -- the first entry is always the cold measurement),
      unless speculation or an injected ``tier.flip`` legitimately
      promoted it early;
    * per-region cold-entry counts agree between the event list and
      the controller's own stats.
    """
    failures: List[str] = []
    tier_stats = getattr(result, "tier_stats", None) or {}
    cold_events = getattr(result, "cold_entries", []) or []
    if not tier_stats:
        if cold_events:
            failures.append(
                "eager run recorded %d cold entries" % len(cold_events))
        return failures
    colds: Dict[Tuple[str, int], int] = {}
    for cold in cold_events:
        key = (cold.func_name, cold.region_id)
        colds[key] = colds.get(key, 0) + 1
    fault_counts = getattr(result, "fault_counts", None) or {}
    flipped = fault_counts.get("tier.flip", 0) > 0
    for region, stats in tier_stats.items():
        observed_cold = colds.get(region, 0)
        if observed_cold != stats.get("cold_entries", 0):
            failures.append(
                "tier %s:%d: %d cold entry events != %d controller "
                "cold entries" % (region[0], region[1], observed_cold,
                                  stats.get("cold_entries", 0)))
        policy = TierPolicy.parse(stats.get("mode"))
        if flipped or stats.get("speculative_promotions") \
                or policy.speculate:
            # Speculative marks and injected decision flips promote
            # keys below their earned promotion point by design.
            continue
        minimum = policy.threshold if policy.mode == "threshold" else 2
        counters = stats.get("counters", {})
        for key_repr in stats.get("promoted_keys", []):
            count = counters.get(key_repr, 0)
            if count < minimum:
                failures.append(
                    "tier %s:%d: key %s promoted at counter %d < "
                    "promotion point %d" % (region[0], region[1],
                                            key_repr, count, minimum))
    return failures


def _reachable_stitched(code, static_end: int,
                        entries: List[int]) -> set:
    seen = set()
    work = [pc for pc in entries if pc >= static_end]
    while work:
        pc = work.pop()
        if pc in seen or not static_end <= pc < len(code):
            continue
        seen.add(pc)
        instr = code[pc]
        op = instr.op
        if op == "br":
            work.append(instr.target)
        elif op in ("beq", "bne"):
            work.append(instr.target)
            work.append(pc + 1)
        elif op == "jtab":
            targets, default = instr.extra
            work.extend(targets)
            work.append(default)
        elif op == "jsr":
            # The callee is static code; execution resumes after it.
            work.append(pc + 1)
        elif op in ("ret", "jmp", "halt"):
            pass
        else:
            work.append(pc + 1)
    return seen


def _compare(a: OracleOutcome, b: OracleOutcome,
             divergences: List[Divergence]) -> None:
    if "annotation-reject" in (a.status, b.status):
        return  # a legitimate region-shape rejection, not a divergence
    if a.status != b.status:
        divergences.append(Divergence(
            "status", a.leg, b.leg,
            "%s %s (%s) vs %s %s (%s)" % (a.leg, a.status, a.error,
                                          b.leg, b.status, b.error)))
        return
    if a.status != "ok":
        return  # both failed the same way: agreement
    if a.value != b.value:
        divergences.append(Divergence(
            "value", a.leg, b.leg,
            "return value %r vs %r" % (a.value, b.value)))
    if a.output != b.output:
        divergences.append(Divergence(
            "output", a.leg, b.leg,
            "printed output %r vs %r" % (a.output[:12], b.output[:12])))
    if a.globals != b.globals:
        diffs = []
        for name in sorted(set(a.globals) | set(b.globals)):
            va, vb = a.globals.get(name), b.globals.get(name)
            if va != vb:
                diffs.append("%s: %r vs %r" % (name, va, vb))
        divergences.append(Divergence(
            "memory", a.leg, b.leg,
            "global memory effects differ (%s)" % "; ".join(diffs[:4])))


def run_oracle(source: str, args: List[int],
               opt_options: Optional[OptOptions] = None,
               use_reachability: bool = True,
               register_actions_leg: bool = True,
               check_invariants: bool = True,
               max_cycles: int = 200_000_000,
               cache_config: Optional[CacheConfig] = None,
               faults: Optional[str] = None,
               tier: Optional[str] = None,
               stitch: Optional[str] = None,
               backend: Optional[str] = None,
               backend_leg: bool = True) -> OracleReport:
    """Run all legs on ``main(args...)`` and compare.

    The interpreter is the semantic baseline; static and dynamic (and
    the optional register-actions dynamic leg) are each compared
    against it, and dynamic is also compared against static so the
    divergence report names the closest pair.  ``cache_config``
    applies to the dynamic legs: a bounded cache must never change
    observables, only stitch counts -- so the comparison against the
    interpreter and static legs doubles as an eviction-correctness
    proof.  ``faults`` (a :meth:`FaultPlan.parse` spec) likewise
    applies only to the dynamic legs: under injected faults the engine
    must degrade to the static fallback tier, never to a wrong answer,
    so the same comparisons double as a degradation-correctness proof.
    ``tier`` (a :meth:`TierPolicy.parse` spec), when adaptive, adds a
    fourth execution leg -- the same dynamic program under the
    adaptive tiering policy -- proving interp/static/stitched/tiered
    all observe bit-identical results and that the tiering invariant
    set (entries == hits + stitches + fallbacks + cold entries, no
    under-threshold promotions) holds whatever the policy decides.
    ``stitch`` (a :meth:`StitchQueueConfig.parse` spec) applies to
    the same dynamic legs: under ``async`` queueing, entries are
    served from fallback until their background stitch lands, and the
    five-way partition plus queue-conservation invariants must hold
    while every observable still matches the interpreter bit-for-bit.
    ``backend`` names the execution backend for every VM leg (default
    ``rvm``); when ``backend_leg`` is true the oracle adds one more
    dynamic leg -- the same configuration under the *other* registered
    backend (``pycode`` when the primary is ``rvm`` and vice versa) --
    and compares it bit-for-bit against both the interpreter and the
    primary dynamic leg, proving the backend seam never changes a
    simulated observable.
    """
    divergences: List[Divergence] = []
    primary = get_backend(backend).name
    interp = _interp_leg(source, args)
    static, _, _ = _vm_leg("static", source, args, "static",
                           opt_options=opt_options,
                           max_cycles=max_cycles, backend=primary)
    dynamic, dyn_program, dyn_invariants = _vm_leg(
        "dynamic", source, args, "dynamic", opt_options=opt_options,
        use_reachability=use_reachability, runs=2,
        check_invariants=check_invariants, max_cycles=max_cycles,
        cache_config=cache_config, faults=faults, stitch=stitch,
        backend=primary)
    outcomes = {"interp": interp, "static": static, "dynamic": dynamic}

    _compare(interp, static, divergences)
    _compare(interp, dynamic, divergences)
    if not any(d.left == "interp" or d.right == "interp"
               for d in divergences):
        _compare(static, dynamic, divergences)
    for failure in dyn_invariants:
        divergences.append(Divergence("invariant", "dynamic", "stitcher",
                                      failure))

    if backend_leg:
        other = "pycode" if primary != "pycode" else "rvm"
        leg_name = "dynamic+%s" % other
        cross, _, cross_invariants = _vm_leg(
            leg_name, source, args, "dynamic", opt_options=opt_options,
            use_reachability=use_reachability, runs=2,
            check_invariants=check_invariants, max_cycles=max_cycles,
            cache_config=cache_config, faults=faults, stitch=stitch,
            backend=other)
        outcomes[leg_name] = cross
        _compare(interp, cross, divergences)
        if not any(leg_name in (d.left, d.right) for d in divergences):
            _compare(dynamic, cross, divergences)
        for failure in cross_invariants:
            divergences.append(Divergence(
                "invariant", leg_name, "stitcher", failure))

    if register_actions_leg:
        actions, _, action_invariants = _vm_leg(
            "dynamic+regactions", source, args, "dynamic",
            opt_options=opt_options, use_reachability=use_reachability,
            register_actions=True, check_invariants=check_invariants,
            max_cycles=max_cycles, cache_config=cache_config,
            faults=faults, stitch=stitch, backend=primary)
        outcomes["dynamic+regactions"] = actions
        _compare(interp, actions, divergences)
        for failure in action_invariants:
            divergences.append(Divergence(
                "invariant", "dynamic+regactions", "stitcher", failure))

    if tier is not None and TierPolicy.parse(tier).adaptive:
        tiered, _, tier_invariants = _vm_leg(
            "dynamic+tiered", source, args, "dynamic",
            opt_options=opt_options, use_reachability=use_reachability,
            runs=2, check_invariants=check_invariants,
            max_cycles=max_cycles, cache_config=cache_config,
            faults=faults, tier=tier, stitch=stitch, backend=primary)
        outcomes["dynamic+tiered"] = tiered
        _compare(interp, tiered, divergences)
        if not any("dynamic+tiered" in (d.left, d.right)
                   for d in divergences):
            _compare(dynamic, tiered, divergences)
        for failure in tier_invariants:
            divergences.append(Divergence(
                "invariant", "dynamic+tiered", "tiering", failure))

    for divergence in divergences:
        divergence.source = source
        divergence.args = list(args)
    return OracleReport(list(args), outcomes, divergences)
