"""Lowering from the MiniC AST to the three-address CFG IR.

Scalar locals become virtual registers; arrays, structs and
address-taken locals live in the function's stack frame.  Dynamic
regions and ``unrolled`` loops are recorded as metadata
(:class:`~repro.ir.cfg.DynamicRegionInfo`) on the function for the
static compiler's analyses.

Every loop is built with a dedicated *latch* block carrying the single
back edge, which is what the region splitter and stitcher expect of
unrolled loops.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple, Union

from ..frontend import astnodes as ast
from ..frontend.errors import AnnotationError, CompileError
from ..frontend.typecheck import BUILTINS, CheckedProgram, FunctionInfo
from ..frontend.types import (
    ArrayType, FloatType, IntType, PointerType, StructType, Type, VoidType,
    decay,
)
from .cfg import (
    BasicBlock, DynamicRegionInfo, Function, GlobalData, Module,
    UnrolledLoopInfo,
)
from .instructions import (
    Assign, BinOp, Call, CondBr, Instr, Jump, Load, Return, Store, Switch,
    UnOp,
)
from .values import FloatConst, GlobalAddr, IntConst, Temp, Value


class FrameAddr(Instr):
    """``dst := &frame[offset]`` -- address of a stack-frame slot.

    Defined here (rather than in :mod:`repro.ir.instructions`) because
    only the builder creates it.  Frame addresses are *not* run-time
    constants: a dynamic region's stitched code is shared across
    activations of its enclosing function, and the frame moves.
    """

    __slots__ = ("dst", "offset")

    def __init__(self, dst: Temp, offset: int):
        self.dst = dst
        self.offset = offset

    def defs(self) -> Optional[Temp]:
        return self.dst

    def __repr__(self) -> str:
        return "%r := frameaddr(%d)" % (self.dst, self.offset)


class _MemLV:
    """A memory lvalue: address value plus access attributes."""

    __slots__ = ("addr", "is_float", "dynamic")

    def __init__(self, addr: Value, is_float: bool, dynamic: bool = False):
        self.addr = addr
        self.is_float = is_float
        self.dynamic = dynamic


class _TempLV:
    """A register lvalue."""

    __slots__ = ("temp",)

    def __init__(self, temp: Temp):
        self.temp = temp


_LValue = Union[_MemLV, _TempLV]


def build_module(checked: CheckedProgram, name: str = "module") -> Module:
    """Lower a checked program to an IR module."""
    module = Module(name)
    for gname, gtype in checked.globals.items():
        init = checked.global_inits.get(gname)
        values: List[object] = [0] * gtype.size()
        if init is not None:
            if isinstance(init, ast.IntLit):
                values[0] = (float(init.value)
                             if isinstance(gtype, FloatType) else init.value)
            elif isinstance(init, ast.FloatLit):
                values[0] = init.value
        if isinstance(gtype, FloatType) and init is None:
            values = [0.0]
        module.add_global(GlobalData(gname, values))
    for decl in checked.program.decls:
        if isinstance(decl, ast.FuncDecl) and decl.body is not None:
            builder = _FunctionBuilder(checked, decl)
            func = module.add_function(builder.build())
            if checked.functions[decl.name].pure:
                _validate_pure(func)
    module.verify()
    return module


def _validate_pure(func: Function) -> None:
    """Enforce the checkable part of the ``pure`` contract.

    A pure function may be hoisted into a region's set-up code and
    executed speculatively, so it must not store to memory, call
    anything impure, or contain operators that can trap.  (Whether the
    memory it *reads* is invariant remains the programmer's assertion,
    exactly as for region constants.)
    """
    from ..frontend.errors import AnnotationError
    from .instructions import TRAPPING_OPS

    for block in func.blocks.values():
        for instr in block.all_instrs():
            if isinstance(instr, Store):
                raise AnnotationError(
                    "pure function %s contains a store" % func.name)
            if isinstance(instr, Call) and not instr.pure:
                raise AnnotationError(
                    "pure function %s calls impure %s"
                    % (func.name, instr.callee))
            op = getattr(instr, "op", None)
            if op in TRAPPING_OPS:
                raise AnnotationError(
                    "pure function %s contains trapping operator %s "
                    "(division/modulus may trap and cannot be hoisted "
                    "into set-up code)" % (func.name, op))


class _FunctionBuilder:
    """Lowers one function body."""

    def __init__(self, checked: CheckedProgram, decl: ast.FuncDecl):
        self._checked = checked
        self._decl = decl
        self._info: FunctionInfo = checked.functions[decl.name]
        self._func = Function(decl.name, [])
        self._block: Optional[BasicBlock] = None
        #: scalar local name -> Temp
        self._var_temps: Dict[str, Temp] = {}
        #: frame-resident local name -> word offset
        self._frame: Dict[str, int] = {}
        self._frame_size = 0
        self._break_stack: List[str] = []
        self._continue_stack: List[str] = []
        self._label_blocks: Dict[str, BasicBlock] = {}
        self._region: Optional[DynamicRegionInfo] = None
        self._region_counter = 0
        self._loop_counter = 0

    # -- infrastructure -----------------------------------------------------

    def _kind_of(self, t: Type) -> str:
        return "float" if isinstance(decay(t), FloatType) else "int"

    def _emit(self, instr: Instr) -> None:
        assert self._block is not None
        if self._block.terminator is None:
            self._block.append(instr)
        # else: unreachable code after return/goto -- silently dropped

    def _new_block(self, prefix: str = "B") -> BasicBlock:
        block = self._func.new_block(prefix)
        if self._region is not None:
            self._region.blocks.add(block.name)
        return block

    def _switch_to(self, block: BasicBlock) -> None:
        self._block = block

    def _jump_to(self, block: BasicBlock) -> None:
        assert self._block is not None
        if self._block.terminator is None:
            self._block.append(Jump(block.name))
        self._switch_to(block)

    def _alloc_frame(self, name: str, size: int) -> int:
        offset = self._frame_size
        self._frame[name] = offset
        self._frame_size += size
        return offset

    # -- entry point ----------------------------------------------------------

    def build(self) -> Function:
        entry = self._new_block("entry")
        self._switch_to(entry)
        for pname, ptype in self._info.params:
            kind = self._kind_of(ptype)
            param_temp = Temp("arg_" + pname)
            self._func.temp_types[param_temp.name] = kind
            self._func.params.append(param_temp)
            if pname in self._info.addr_taken:
                offset = self._alloc_frame(pname, 1)
                addr = self._func.new_temp("int")
                self._emit(FrameAddr(addr, offset))
                self._emit(Store(addr, param_temp,
                                 is_float=(kind == "float")))
            else:
                var = Temp(pname)
                self._func.temp_types[var.name] = kind
                self._var_temps[pname] = var
                self._emit(Assign(var, param_temp))
        assert self._decl.body is not None
        self._stmt(self._decl.body)
        assert self._block is not None
        if self._block.terminator is None:
            if isinstance(self._info.ret_type, VoidType):
                self._block.append(Return(None))
            else:
                self._block.append(Return(IntConst(0)))
        self._func.frame_slots = dict(self._frame)
        self._func.frame_size = self._frame_size
        self._func.remove_unreachable_blocks()
        # Seal any label blocks that were declared but never defined via
        # LabeledStmt (cannot happen after typecheck, but stay safe).
        for block in self._func.blocks.values():
            if block.terminator is None:
                block.append(Return(None if isinstance(
                    self._info.ret_type, VoidType) else IntConst(0)))
        return self._func

    # -- statements -------------------------------------------------------------

    def _stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.Block):
            for inner in stmt.stmts:
                self._stmt(inner)
        elif isinstance(stmt, ast.VarDecl):
            self._var_decl(stmt)
        elif isinstance(stmt, ast.ExprStmt):
            self._expr(stmt.expr)
        elif isinstance(stmt, ast.If):
            self._if(stmt)
        elif isinstance(stmt, ast.While):
            self._while(stmt)
        elif isinstance(stmt, ast.DoWhile):
            self._do_while(stmt)
        elif isinstance(stmt, ast.For):
            self._for(stmt)
        elif isinstance(stmt, ast.UnrolledWhile):
            self._unrolled_while(stmt)
        elif isinstance(stmt, ast.Switch):
            self._switch(stmt)
        elif isinstance(stmt, ast.Break):
            self._jump_out(self._break_stack, "break", stmt)
        elif isinstance(stmt, ast.Continue):
            self._jump_out(self._continue_stack, "continue", stmt)
        elif isinstance(stmt, ast.Return):
            self._return(stmt)
        elif isinstance(stmt, ast.Goto):
            target = self._label_block(stmt.label)
            assert self._block is not None
            if self._block.terminator is None:
                self._block.append(Jump(target.name))
            self._switch_to(self._new_block("dead"))
        elif isinstance(stmt, ast.LabeledStmt):
            target = self._label_block(stmt.label)
            self._jump_to(target)
            self._stmt(stmt.stmt)
        elif isinstance(stmt, ast.DynamicRegion):
            self._dynamic_region(stmt)
        else:
            raise CompileError("cannot lower statement %r" % stmt,
                               stmt.line, stmt.col)

    def _label_block(self, label: str) -> BasicBlock:
        if label not in self._label_blocks:
            block = self._new_block("L_" + label)
            self._label_blocks[label] = block
        return self._label_blocks[label]

    def _jump_out(self, stack: List[str], what: str, stmt: ast.Stmt) -> None:
        if not stack:
            raise CompileError("%s outside loop" % what, stmt.line, stmt.col)
        assert self._block is not None
        if self._block.terminator is None:
            self._block.append(Jump(stack[-1]))
        self._switch_to(self._new_block("dead"))

    def _var_decl(self, stmt: ast.VarDecl) -> None:
        var_type = stmt.var_type
        name = stmt.name
        if isinstance(var_type, (ArrayType, StructType)) \
                or name in self._info.addr_taken:
            self._alloc_frame(name, var_type.size())
            if stmt.init is not None:
                if not decay(var_type).is_scalar():
                    raise CompileError(
                        "aggregate initializers are not supported",
                        stmt.line, stmt.col)
                value = self._expr_as(stmt.init, decay(var_type))
                addr = self._frame_addr(name)
                self._emit(Store(addr, value,
                                 is_float=self._kind_of(var_type) == "float"))
            return
        kind = self._kind_of(var_type)
        var = Temp(name)
        self._func.temp_types[name] = kind
        self._var_temps[name] = var
        if stmt.init is not None:
            value = self._expr_as(stmt.init, decay(var_type))
            self._emit(Assign(var, value))
        else:
            zero: Value = FloatConst(0.0) if kind == "float" else IntConst(0)
            self._emit(Assign(var, zero))

    def _frame_addr(self, name: str) -> Temp:
        addr = self._func.new_temp("int")
        self._emit(FrameAddr(addr, self._frame[name]))
        return addr

    def _if(self, stmt: ast.If) -> None:
        then_block = self._new_block("then")
        join_block = self._new_block("join")
        else_block = self._new_block("else") if stmt.otherwise else join_block
        self._cond(stmt.cond, then_block, else_block)
        self._switch_to(then_block)
        self._stmt(stmt.then)
        assert self._block is not None
        if self._block.terminator is None:
            self._block.append(Jump(join_block.name))
        if stmt.otherwise is not None:
            self._switch_to(else_block)
            self._stmt(stmt.otherwise)
            assert self._block is not None
            if self._block.terminator is None:
                self._block.append(Jump(join_block.name))
        self._switch_to(join_block)

    def _while(self, stmt: ast.While) -> None:
        header = self._new_block("while")
        body = self._new_block("body")
        latch = self._new_block("latch")
        exit_block = self._new_block("endwhile")
        self._jump_to(header)
        self._cond(stmt.cond, body, exit_block)
        self._break_stack.append(exit_block.name)
        self._continue_stack.append(latch.name)
        self._switch_to(body)
        self._stmt(stmt.body)
        assert self._block is not None
        if self._block.terminator is None:
            self._block.append(Jump(latch.name))
        latch.append(Jump(header.name))
        self._break_stack.pop()
        self._continue_stack.pop()
        self._switch_to(exit_block)

    def _do_while(self, stmt: ast.DoWhile) -> None:
        body = self._new_block("dobody")
        latch = self._new_block("latch")
        exit_block = self._new_block("enddo")
        self._jump_to(body)
        self._break_stack.append(exit_block.name)
        self._continue_stack.append(latch.name)
        self._stmt(stmt.body)
        assert self._block is not None
        if self._block.terminator is None:
            self._block.append(Jump(latch.name))
        self._switch_to(latch)
        self._cond(stmt.cond, body, exit_block)
        self._break_stack.pop()
        self._continue_stack.pop()
        self._switch_to(exit_block)

    def _for(self, stmt: ast.For) -> None:
        if stmt.init is not None:
            self._stmt(stmt.init)
        assert self._block is not None
        entry_pred = self._block.name
        header = self._new_block("for")
        body = self._new_block("body")
        latch = self._new_block("latch")
        exit_block = self._new_block("endfor")
        self._jump_to(header)
        if stmt.cond is not None:
            self._cond(stmt.cond, body, exit_block)
        else:
            assert self._block is not None
            self._block.append(Jump(body.name))
        loop_info: Optional[UnrolledLoopInfo] = None
        if stmt.unrolled:
            loop_info = self._begin_unrolled(stmt, header, entry_pred, latch)
        self._break_stack.append(exit_block.name)
        self._continue_stack.append(latch.name)
        self._switch_to(body)
        self._stmt(stmt.body)
        assert self._block is not None
        if self._block.terminator is None:
            self._block.append(Jump(latch.name))
        self._switch_to(latch)
        if stmt.update is not None:
            self._expr(stmt.update)
        assert self._block is not None
        if self._block.terminator is None:
            self._block.append(Jump(header.name))
        self._break_stack.pop()
        self._continue_stack.pop()
        if loop_info is not None:
            self._end_unrolled(loop_info, exit_block)
        self._switch_to(exit_block)

    def _unrolled_while(self, stmt: ast.UnrolledWhile) -> None:
        assert self._block is not None
        entry_pred = self._block.name
        header = self._new_block("uwhile")
        body = self._new_block("body")
        latch = self._new_block("latch")
        exit_block = self._new_block("enduwhile")
        self._jump_to(header)
        self._cond(stmt.cond, body, exit_block)
        loop_info = self._begin_unrolled(stmt, header, entry_pred, latch)
        self._break_stack.append(exit_block.name)
        self._continue_stack.append(latch.name)
        self._switch_to(body)
        self._stmt(stmt.body)
        assert self._block is not None
        if self._block.terminator is None:
            self._block.append(Jump(latch.name))
        latch.append(Jump(header.name))
        self._break_stack.pop()
        self._continue_stack.pop()
        self._end_unrolled(loop_info, exit_block)
        self._switch_to(exit_block)

    def _begin_unrolled(self, stmt: ast.Stmt, header: BasicBlock,
                        entry_pred: str, latch: BasicBlock) -> UnrolledLoopInfo:
        if self._region is None:
            raise AnnotationError("'unrolled' loop outside a dynamicRegion",
                                  stmt.line, stmt.col)
        self._loop_counter += 1
        info = UnrolledLoopInfo(
            loop_id=self._loop_counter,
            header=header.name,
            entry_pred=entry_pred,
            latch=latch.name,
        )
        info.body.add(header.name)
        info.body.add(latch.name)
        self._region.unrolled_loops.append(info)
        return info

    def _end_unrolled(self, info: UnrolledLoopInfo,
                      exit_block: BasicBlock) -> None:
        assert self._region is not None
        # Loop body = blocks created between begin and end, minus the exit.
        # Compute from CFG: blocks reachable from header without passing
        # through the exit block, intersected with region blocks created
        # after the header.  Simpler and robust: collect blocks that can
        # reach the latch from the header.
        info.body |= self._blocks_between(info.header, info.latch)
        info.body.discard(exit_block.name)

    def _blocks_between(self, header: str, latch: str) -> Set[str]:
        """Natural-loop body: blocks on paths header ->* latch."""
        preds: Dict[str, List[str]] = {}
        for name, block in self._func.blocks.items():
            for succ in block.successors():
                preds.setdefault(succ, []).append(name)
        body = {header, latch}
        work = [latch]
        while work:
            current = work.pop()
            if current == header:
                continue
            for pred in preds.get(current, []):
                if pred not in body:
                    body.add(pred)
                    work.append(pred)
        return body

    def _switch(self, stmt: ast.Switch) -> None:
        value = self._expr_value(stmt.expr)
        exit_block = self._new_block("endswitch")
        arm_blocks: List[BasicBlock] = [
            self._new_block("case") for _ in stmt.cases
        ]
        cases: List[Tuple[int, str]] = []
        default_target = exit_block.name
        for case, block in zip(stmt.cases, arm_blocks):
            if case.values is None:
                default_target = block.name
            else:
                for v in case.values:
                    cases.append((v, block.name))
        assert self._block is not None
        self._block.append(Switch(value, cases, default_target))
        self._break_stack.append(exit_block.name)
        for i, (case, block) in enumerate(zip(stmt.cases, arm_blocks)):
            self._switch_to(block)
            for inner in case.stmts:
                self._stmt(inner)
            assert self._block is not None
            if self._block.terminator is None:
                # fall through to the next arm, or out of the switch
                next_name = (arm_blocks[i + 1].name
                             if i + 1 < len(arm_blocks) else exit_block.name)
                self._block.append(Jump(next_name))
        self._break_stack.pop()
        self._switch_to(exit_block)

    def _return(self, stmt: ast.Return) -> None:
        assert self._block is not None
        if stmt.value is None:
            if self._block.terminator is None:
                self._block.append(Return(None))
        else:
            value = self._expr_as(stmt.value, decay(self._info.ret_type))
            if self._block.terminator is None:
                self._block.append(Return(value))
        self._switch_to(self._new_block("dead"))

    def _dynamic_region(self, stmt: ast.DynamicRegion) -> None:
        for name in stmt.const_vars + stmt.key_vars:
            if name not in self._var_temps:
                raise AnnotationError(
                    "region variable %s must be a register-resident scalar "
                    "(its address is taken)" % name, stmt.line, stmt.col)
        self._region_counter += 1
        region = DynamicRegionInfo(
            region_id=self._region_counter,
            const_vars=list(stmt.const_vars),
            key_vars=list(stmt.key_vars),
            entry="",
            exit="",
        )
        self._func.regions.append(region)
        entry = self._func.new_block("region%d_entry" % region.region_id)
        region.entry = entry.name
        region.blocks.add(entry.name)
        self._jump_to(entry)
        self._region = region
        self._stmt(stmt.body)
        self._region = None
        exit_block = self._func.new_block("region%d_exit" % region.region_id)
        region.exit = exit_block.name
        assert self._block is not None
        if self._block.terminator is None:
            self._block.append(Jump(exit_block.name))
        self._switch_to(exit_block)

    # -- conditions ----------------------------------------------------------

    def _cond(self, expr: ast.Expr, true_block: BasicBlock,
              false_block: BasicBlock) -> None:
        """Lower ``expr`` as a branch condition with short-circuiting."""
        if isinstance(expr, ast.Binary) and expr.op == "&&":
            middle = self._new_block("and")
            self._cond(expr.lhs, middle, false_block)
            self._switch_to(middle)
            self._cond(expr.rhs, true_block, false_block)
            return
        if isinstance(expr, ast.Binary) and expr.op == "||":
            middle = self._new_block("or")
            self._cond(expr.lhs, true_block, middle)
            self._switch_to(middle)
            self._cond(expr.rhs, true_block, false_block)
            return
        if isinstance(expr, ast.Unary) and expr.op == "!":
            self._cond(expr.operand, false_block, true_block)
            return
        value = self._expr_value(expr)
        assert self._block is not None
        if self._block.terminator is None:
            self._block.append(CondBr(value, true_block.name, false_block.name))

    # -- expressions -----------------------------------------------------------

    def _expr(self, expr: ast.Expr) -> Value:
        """Lower an expression for its value (arrays decay to addresses)."""
        return self._expr_value(expr)

    def _expr_as(self, expr: ast.Expr, target: Type) -> Value:
        """Lower and convert to ``target`` (int->float only)."""
        value = self._expr_value(expr)
        source = decay(self._typeof(expr))
        if isinstance(target, FloatType) and not isinstance(source, FloatType):
            return self._to_float(value)
        return value

    def _to_float(self, value: Value) -> Value:
        if isinstance(value, IntConst):
            return FloatConst(float(value.value))
        if isinstance(value, FloatConst):
            return value
        dst = self._func.new_temp("float")
        self._emit(UnOp(dst, "itof", value))
        return dst

    def _typeof(self, expr: ast.Expr) -> Type:
        if expr.type is None:
            raise CompileError("expression was not type-checked",
                               expr.line, expr.col)
        return expr.type

    def _expr_value(self, expr: ast.Expr) -> Value:
        if isinstance(expr, ast.IntLit):
            return IntConst(expr.value)
        if isinstance(expr, ast.FloatLit):
            return FloatConst(expr.value)
        if isinstance(expr, ast.Var):
            return self._var_value(expr)
        if isinstance(expr, ast.Binary):
            return self._binary(expr)
        if isinstance(expr, ast.Unary):
            return self._unary(expr)
        if isinstance(expr, (ast.Deref, ast.Index, ast.Field)):
            lv = self._lvalue(expr)
            if isinstance(self._typeof(expr), (ArrayType, StructType)):
                # aggregates used as values decay to their address
                assert isinstance(lv, _MemLV)
                return lv.addr
            return self._load(lv)
        if isinstance(expr, ast.AddrOf):
            lv = self._lvalue(expr.operand)
            if isinstance(lv, _TempLV):
                raise CompileError(
                    "cannot take address of register variable",
                    expr.line, expr.col)
            return lv.addr
        if isinstance(expr, ast.Call):
            return self._call(expr)
        if isinstance(expr, ast.Cast):
            return self._cast(expr)
        if isinstance(expr, ast.Assign):
            return self._assign(expr)
        if isinstance(expr, ast.IncDec):
            return self._incdec(expr)
        if isinstance(expr, ast.Conditional):
            return self._conditional(expr)
        if isinstance(expr, ast.SizeOf):
            return IntConst(expr.target.size())  # type: ignore[union-attr]
        raise CompileError("cannot lower expression %r" % expr,
                           expr.line, expr.col)

    def _var_value(self, expr: ast.Var) -> Value:
        name = expr.name
        vtype = self._typeof(expr)
        if name in self._var_temps:
            return self._var_temps[name]
        if name in self._frame:
            addr = self._frame_addr(name)
            if isinstance(vtype, (ArrayType, StructType)):
                return addr
            dst = self._func.new_temp(self._kind_of(vtype))
            self._emit(Load(dst, addr,
                            is_float=self._kind_of(vtype) == "float"))
            return dst
        # global
        if isinstance(vtype, (ArrayType, StructType)):
            return GlobalAddr(name)
        dst = self._func.new_temp(self._kind_of(vtype))
        self._emit(Load(dst, GlobalAddr(name),
                        is_float=self._kind_of(vtype) == "float"))
        return dst

    def _lvalue(self, expr: ast.Expr) -> _LValue:
        if isinstance(expr, ast.Var):
            name = expr.name
            vtype = self._typeof(expr)
            if name in self._var_temps:
                return _TempLV(self._var_temps[name])
            is_float = self._kind_of(vtype) == "float"
            if name in self._frame:
                return _MemLV(self._frame_addr(name), is_float)
            return _MemLV(GlobalAddr(name), is_float)
        if isinstance(expr, ast.Deref):
            addr = self._expr_value(expr.pointer)
            pointee = self._typeof(expr)
            return _MemLV(addr, self._kind_of(pointee) == "float",
                          expr.dynamic)
        if isinstance(expr, ast.Index):
            base = self._expr_value(expr.base)
            elem = self._typeof(expr)
            index = self._expr_value(expr.index)
            addr = self._address_add(base, index, elem.size())
            return _MemLV(addr, self._kind_of(elem) == "float", expr.dynamic)
        if isinstance(expr, ast.Field):
            struct, base_addr = self._field_base(expr)
            offset, ftype = struct.field(expr.name)
            addr = self._address_add(base_addr, IntConst(offset), 1)
            return _MemLV(addr, self._kind_of(ftype) == "float", expr.dynamic)
        raise CompileError("expression is not an lvalue", expr.line, expr.col)

    def _field_base(self, expr: ast.Field) -> Tuple[StructType, Value]:
        if expr.arrow:
            base_type = decay(self._typeof(expr.base))
            assert isinstance(base_type, PointerType)
            struct = base_type.pointee
            assert isinstance(struct, StructType)
            struct = self._checked.structs[struct.name]
            return struct, self._expr_value(expr.base)
        struct_t = self._typeof(expr.base)
        assert isinstance(struct_t, StructType)
        struct = self._checked.structs[struct_t.name]
        lv = self._lvalue(expr.base)
        assert isinstance(lv, _MemLV)
        return struct, lv.addr

    def _address_add(self, base: Value, index: Value, scale: int) -> Value:
        if isinstance(index, IntConst):
            if index.value == 0:
                return base
            total = index.value * scale
            dst = self._func.new_temp("int")
            self._emit(BinOp(dst, "add", base, IntConst(total)))
            return dst
        scaled: Value = index
        if scale != 1:
            scaled_t = self._func.new_temp("int")
            self._emit(BinOp(scaled_t, "mul", index, IntConst(scale)))
            scaled = scaled_t
        dst = self._func.new_temp("int")
        self._emit(BinOp(dst, "add", base, scaled))
        return dst

    def _load(self, lv: _LValue) -> Value:
        if isinstance(lv, _TempLV):
            return lv.temp
        dst = self._func.new_temp("float" if lv.is_float else "int")
        self._emit(Load(dst, lv.addr, dynamic=lv.dynamic,
                        is_float=lv.is_float))
        return dst

    def _store(self, lv: _LValue, value: Value) -> None:
        if isinstance(lv, _TempLV):
            self._emit(Assign(lv.temp, value))
        else:
            self._emit(Store(lv.addr, value, is_float=lv.is_float))

    # -- operators -----------------------------------------------------------

    def _binary(self, expr: ast.Binary) -> Value:
        op = expr.op
        if op in ("&&", "||"):
            return self._logical_value(expr)
        lhs_type = decay(self._typeof(expr.lhs))
        rhs_type = decay(self._typeof(expr.rhs))
        lhs = self._expr_value(expr.lhs)
        rhs = self._expr_value(expr.rhs)
        return self._binary_values(op, lhs, lhs_type, rhs, rhs_type)

    def _binary_values(self, op: str, lhs: Value, lhs_type: Type,
                       rhs: Value, rhs_type: Type) -> Value:
        # pointer arithmetic
        if isinstance(lhs_type, PointerType) or isinstance(rhs_type, PointerType):
            return self._pointer_op(op, lhs, lhs_type, rhs, rhs_type)
        float_op = isinstance(lhs_type, FloatType) or isinstance(rhs_type, FloatType)
        if float_op:
            lhs = self._to_float(lhs) if not isinstance(lhs_type, FloatType) else lhs
            rhs = self._to_float(rhs) if not isinstance(rhs_type, FloatType) else rhs
            ir_op = {
                "+": "fadd", "-": "fsub", "*": "fmul", "/": "fdiv",
                "==": "feq", "!=": "fne", "<": "flt", "<=": "fle",
                ">": "fgt", ">=": "fge",
            }.get(op)
            if ir_op is None:
                raise CompileError("operator %s not valid on floats" % op, 0, 0)
            kind = "int" if ir_op in ("feq", "fne", "flt", "fle", "fgt", "fge") \
                else "float"
            dst = self._func.new_temp(kind)
            self._emit(BinOp(dst, ir_op, lhs, rhs))
            return dst
        unsigned = (isinstance(lhs_type, IntType) and not lhs_type.signed) or \
                   (isinstance(rhs_type, IntType) and not rhs_type.signed)
        ir_op = self._int_op(op, unsigned)
        dst = self._func.new_temp("int")
        self._emit(BinOp(dst, ir_op, lhs, rhs))
        return dst

    def _int_op(self, op: str, unsigned: bool) -> str:
        table = {
            "+": "add", "-": "sub", "*": "mul",
            "/": "udiv" if unsigned else "div",
            "%": "umod" if unsigned else "mod",
            "&": "and", "|": "or", "^": "xor",
            "<<": "shl", ">>": "lshr" if unsigned else "ashr",
            "==": "eq", "!=": "ne",
            "<": "ult" if unsigned else "lt",
            "<=": "ule" if unsigned else "le",
            ">": "ugt" if unsigned else "gt",
            ">=": "uge" if unsigned else "ge",
        }
        if op not in table:
            raise CompileError("unknown operator %s" % op, 0, 0)
        return table[op]

    def _pointer_op(self, op: str, lhs: Value, lhs_type: Type,
                    rhs: Value, rhs_type: Type) -> Value:
        if op in ("==", "!=", "<", "<=", ">", ">="):
            ir_op = {"==": "eq", "!=": "ne", "<": "ult", "<=": "ule",
                     ">": "ugt", ">=": "uge"}[op]
            dst = self._func.new_temp("int")
            self._emit(BinOp(dst, ir_op, lhs, rhs))
            return dst
        if op == "+":
            if isinstance(lhs_type, PointerType):
                return self._address_add(lhs, rhs, lhs_type.pointee.size())
            assert isinstance(rhs_type, PointerType)
            return self._address_add(rhs, lhs, rhs_type.pointee.size())
        if op == "-":
            if isinstance(rhs_type, PointerType) and isinstance(lhs_type, PointerType):
                diff = self._func.new_temp("int")
                self._emit(BinOp(diff, "sub", lhs, rhs))
                size = lhs_type.pointee.size()
                if size == 1:
                    return diff
                dst = self._func.new_temp("int")
                self._emit(BinOp(dst, "div", diff, IntConst(size)))
                return dst
            assert isinstance(lhs_type, PointerType)
            neg = self._func.new_temp("int")
            self._emit(UnOp(neg, "neg", rhs))
            return self._address_add(lhs, neg, lhs_type.pointee.size())
        raise CompileError("invalid pointer operation %s" % op, 0, 0)

    def _logical_value(self, expr: ast.Binary) -> Value:
        dst = self._func.new_temp("int")
        true_block = self._new_block("ltrue")
        false_block = self._new_block("lfalse")
        join = self._new_block("ljoin")
        self._cond(expr, true_block, false_block)
        true_block.append(Assign(dst, IntConst(1)))
        true_block.append(Jump(join.name))
        false_block.append(Assign(dst, IntConst(0)))
        false_block.append(Jump(join.name))
        self._switch_to(join)
        return dst

    def _unary(self, expr: ast.Unary) -> Value:
        operand_type = decay(self._typeof(expr.operand))
        operand = self._expr_value(expr.operand)
        if expr.op == "-":
            if isinstance(operand_type, FloatType):
                dst = self._func.new_temp("float")
                self._emit(UnOp(dst, "fneg", operand))
            else:
                dst = self._func.new_temp("int")
                self._emit(UnOp(dst, "neg", operand))
            return dst
        if expr.op == "!":
            dst = self._func.new_temp("int")
            if isinstance(operand_type, FloatType):
                self._emit(BinOp(dst, "feq", operand, FloatConst(0.0)))
            else:
                self._emit(BinOp(dst, "eq", operand, IntConst(0)))
            return dst
        if expr.op == "~":
            dst = self._func.new_temp("int")
            self._emit(UnOp(dst, "bnot", operand))
            return dst
        raise CompileError("unknown unary operator %s" % expr.op,
                           expr.line, expr.col)

    def _call(self, expr: ast.Call) -> Value:
        builtin = BUILTINS.get(expr.name)
        if builtin is not None:
            param_types = builtin.params
            ret = builtin.ret
            pure = builtin.pure
            intrinsic = True
        else:
            info = self._checked.functions[expr.name]
            param_types = [t for _, t in info.params]
            ret = info.ret_type
            pure = info.pure
            intrinsic = False
        args = [self._expr_as(arg, decay(ptype))
                for arg, ptype in zip(expr.args, param_types)]
        if isinstance(ret, VoidType):
            self._emit(Call(None, expr.name, args, pure=pure,
                            intrinsic=intrinsic))
            return IntConst(0)
        dst = self._func.new_temp(self._kind_of(ret))
        self._emit(Call(dst, expr.name, args, pure=pure, intrinsic=intrinsic))
        return dst

    def _cast(self, expr: ast.Cast) -> Value:
        source_type = decay(self._typeof(expr.operand))
        target = expr.target
        assert isinstance(target, Type)
        value = self._expr_value(expr.operand)
        if isinstance(target, FloatType) and not isinstance(source_type, FloatType):
            return self._to_float(value)
        if not isinstance(target, FloatType) and isinstance(source_type, FloatType):
            if isinstance(value, FloatConst):
                return IntConst(int(value.value))
            dst = self._func.new_temp("int")
            self._emit(UnOp(dst, "ftoi", value))
            return dst
        return value  # same representation

    def _assign(self, expr: ast.Assign) -> Value:
        target_type = decay(self._typeof(expr.target))
        if expr.op is None:
            value = self._expr_as(expr.value, target_type)
            lv = self._lvalue(expr.target)
            self._store(lv, value)
            return value
        # compound assignment: evaluate the lvalue address once
        lv = self._lvalue(expr.target)
        old = self._load(lv)
        rhs_type = decay(self._typeof(expr.value))
        rhs = self._expr_value(expr.value)
        new = self._binary_values(expr.op, old, target_type, rhs, rhs_type)
        self._store(lv, new)
        return new

    def _incdec(self, expr: ast.IncDec) -> Value:
        target_type = decay(self._typeof(expr.target))
        lv = self._lvalue(expr.target)
        old = self._load(lv)
        if isinstance(lv, _TempLV):
            # The loaded value aliases the variable; snapshot it so the
            # expression's value is the *pre*-increment one.
            snapshot = self._func.new_temp(self._kind_of(target_type))
            self._emit(Assign(snapshot, old))
            old = snapshot
        step = 1
        if isinstance(target_type, PointerType):
            step = target_type.pointee.size()
        op = "add" if expr.op == "++" else "sub"
        new = self._func.new_temp("int")
        self._emit(BinOp(new, op, old, IntConst(step)))
        self._store(lv, new)
        return old

    def _conditional(self, expr: ast.Conditional) -> Value:
        result_type = decay(self._typeof(expr))
        kind = self._kind_of(result_type)
        dst = self._func.new_temp(kind)
        then_block = self._new_block("cthen")
        else_block = self._new_block("celse")
        join = self._new_block("cjoin")
        self._cond(expr.cond, then_block, else_block)
        self._switch_to(then_block)
        value = self._expr_as(expr.then, result_type)
        self._emit(Assign(dst, value))
        assert self._block is not None
        if self._block.terminator is None:
            self._block.append(Jump(join.name))
        self._switch_to(else_block)
        value = self._expr_as(expr.otherwise, result_type)
        self._emit(Assign(dst, value))
        assert self._block is not None
        if self._block.terminator is None:
            self._block.append(Jump(join.name))
        self._switch_to(join)
        return dst
