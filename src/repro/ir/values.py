"""Operand values for the three-address intermediate representation.

The IR is register-based: instruction operands are either virtual
registers (:class:`Temp`), literal constants (:class:`IntConst`,
:class:`FloatConst`), symbolic addresses (:class:`GlobalAddr`), or --
only inside extracted template code -- references to run-time constant
table slots (:class:`HoleRef`).

Values are immutable and hashable so they can be used as dictionary
keys by the dataflow analyses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union


@dataclass(frozen=True)
class Temp:
    """A virtual register.

    ``name`` is unique within a function.  SSA renaming produces names
    of the form ``base.N``; compiler-generated temporaries are ``tN``.
    """

    name: str

    def __repr__(self) -> str:
        return self.name


@dataclass(frozen=True)
class IntConst:
    """A compile-time integer constant (64-bit two's complement)."""

    value: int

    def __post_init__(self) -> None:
        object.__setattr__(self, "value", wrap_int(self.value))

    def __repr__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class FloatConst:
    """A compile-time floating-point constant (IEEE double)."""

    value: float

    def __repr__(self) -> str:
        return repr(self.value)


@dataclass(frozen=True)
class GlobalAddr:
    """The address of a global symbol (function or global variable)."""

    name: str

    def __repr__(self) -> str:
        return "@" + self.name


@dataclass(frozen=True)
class HoleRef:
    """A reference to a run-time constants table slot.

    Holes appear only in template code produced by the region splitter.
    ``index`` is the slot within the table identified by ``loop_id``:
    ``loop_id`` is ``None`` for the region's top-level table and the
    id of an unrolled loop for per-iteration subtables (the paper's
    ``hole4.1`` notation).  ``is_float`` records the value's type so
    code generation can decide between immediate patching and a load
    from the linearized large-constants table.
    """

    index: int
    loop_id: Union[int, None] = None
    is_float: bool = False

    def __repr__(self) -> str:
        if self.loop_id is None:
            return "hole%d" % self.index
        return "hole%d.%d" % (self.loop_id, self.index)


Value = Union[Temp, IntConst, FloatConst, GlobalAddr, HoleRef]

_INT_MASK = (1 << 64) - 1
_INT_SIGN = 1 << 63


def wrap_int(value: int) -> int:
    """Wrap ``value`` to a signed 64-bit integer (two's complement)."""
    value &= _INT_MASK
    if value & _INT_SIGN:
        value -= 1 << 64
    return value


def to_unsigned(value: int) -> int:
    """Reinterpret a signed 64-bit integer as unsigned."""
    return value & _INT_MASK


def is_constant(value: Value) -> bool:
    """Return True for literal (compile-time constant) operands."""
    return isinstance(value, (IntConst, FloatConst, GlobalAddr))
