"""Three-address-code IR: CFGs, SSA, dominance, the AST lowering."""

from .builder import build_module
from .cfg import (
    BasicBlock, DynamicRegionInfo, Function, GlobalData, Module,
    UnrolledLoopInfo,
)
from .dominance import DominatorTree
from .printer import format_function, format_module
from .ssa import from_ssa, is_ssa, to_ssa

__all__ = [
    "BasicBlock", "DominatorTree", "DynamicRegionInfo", "Function",
    "GlobalData", "Module", "UnrolledLoopInfo", "build_module",
    "format_function", "format_module", "from_ssa", "is_ssa", "to_ssa",
]
