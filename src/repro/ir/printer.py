"""Human-readable dumps of IR functions and modules.

Used by tests (golden comparisons) and for debugging compiler passes.
"""

from __future__ import annotations

from typing import List

from .cfg import Function, Module


def format_function(func: Function) -> str:
    """Render ``func`` as text, blocks in definition order."""
    lines: List[str] = []
    params = ", ".join(p.name for p in func.params)
    lines.append("func %s(%s) {" % (func.name, params))
    for region in func.regions:
        keys = " key(%s)" % ", ".join(region.key_vars) if region.key_vars else ""
        lines.append(
            "  ; region %d%s consts(%s) entry=%s exit=%s blocks=%s"
            % (
                region.region_id,
                keys,
                ", ".join(region.const_vars),
                region.entry,
                region.exit,
                ",".join(sorted(region.blocks)),
            )
        )
        for loop in region.unrolled_loops:
            lines.append(
                "  ; unrolled loop %d header=%s latch=%s body=%s"
                % (loop.loop_id, loop.header, loop.latch,
                   ",".join(sorted(loop.body)))
            )
    for name in func.blocks:
        block = func.blocks[name]
        marker = " ; entry" if name == func.entry else ""
        lines.append("%s:%s" % (name, marker))
        for instr in block.instrs:
            lines.append("  %r" % instr)
        if block.terminator is not None:
            lines.append("  %r" % block.terminator)
    lines.append("}")
    return "\n".join(lines)


def format_module(module: Module) -> str:
    parts: List[str] = []
    for data in module.globals.values():
        parts.append("global %s = %r" % (data.name, data.values))
    for func in module.functions.values():
        parts.append(format_function(func))
    return "\n\n".join(parts)
