"""Evaluation semantics for IR operators.

Shared by the reference interpreter, the constant folder, the stitcher's
value-based peepholes and the RVM virtual machine, so that "what does
``ashr`` mean" is defined exactly once.

Integers are 64-bit two's complement; division truncates toward zero
and remainder takes the dividend's sign (C semantics).  Shift counts
are masked to 0..63.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Union

from .values import to_unsigned, wrap_int

Number = Union[int, float]


class EvalTrap(Exception):
    """Run-time arithmetic trap (division by zero)."""


def _sdiv(a: int, b: int) -> int:
    if b == 0:
        raise EvalTrap("integer division by zero")
    q = abs(a) // abs(b)
    if (a < 0) != (b < 0):
        q = -q
    return wrap_int(q)


def _smod(a: int, b: int) -> int:
    if b == 0:
        raise EvalTrap("integer modulo by zero")
    return wrap_int(a - _sdiv(a, b) * b)


def _udiv(a: int, b: int) -> int:
    ua, ub = to_unsigned(a), to_unsigned(b)
    if ub == 0:
        raise EvalTrap("integer division by zero")
    return wrap_int(ua // ub)


def _umod(a: int, b: int) -> int:
    ua, ub = to_unsigned(a), to_unsigned(b)
    if ub == 0:
        raise EvalTrap("integer modulo by zero")
    return wrap_int(ua % ub)


def _fdiv(a: float, b: float) -> float:
    if b == 0.0:
        raise EvalTrap("float division by zero")
    return a / b


_INT_BIN: Dict[str, Callable[[int, int], int]] = {
    "add": lambda a, b: wrap_int(a + b),
    "sub": lambda a, b: wrap_int(a - b),
    "mul": lambda a, b: wrap_int(a * b),
    "div": _sdiv,
    "udiv": _udiv,
    "mod": _smod,
    "umod": _umod,
    "and": lambda a, b: wrap_int(a & b),
    "or": lambda a, b: wrap_int(a | b),
    "xor": lambda a, b: wrap_int(a ^ b),
    "shl": lambda a, b: wrap_int(a << (b & 63)),
    "lshr": lambda a, b: wrap_int(to_unsigned(a) >> (b & 63)),
    "ashr": lambda a, b: wrap_int(a >> (b & 63)),
    "eq": lambda a, b: int(a == b),
    "ne": lambda a, b: int(a != b),
    "lt": lambda a, b: int(a < b),
    "le": lambda a, b: int(a <= b),
    "gt": lambda a, b: int(a > b),
    "ge": lambda a, b: int(a >= b),
    "ult": lambda a, b: int(to_unsigned(a) < to_unsigned(b)),
    "ule": lambda a, b: int(to_unsigned(a) <= to_unsigned(b)),
    "ugt": lambda a, b: int(to_unsigned(a) > to_unsigned(b)),
    "uge": lambda a, b: int(to_unsigned(a) >= to_unsigned(b)),
}

_FLOAT_BIN: Dict[str, Callable[[float, float], Number]] = {
    "fadd": lambda a, b: a + b,
    "fsub": lambda a, b: a - b,
    "fmul": lambda a, b: a * b,
    "fdiv": _fdiv,
    "feq": lambda a, b: int(a == b),
    "fne": lambda a, b: int(a != b),
    "flt": lambda a, b: int(a < b),
    "fle": lambda a, b: int(a <= b),
    "fgt": lambda a, b: int(a > b),
    "fge": lambda a, b: int(a >= b),
}


def eval_binop(op: str, lhs: Number, rhs: Number) -> Number:
    """Apply a binary IR operator to concrete values."""
    if op in _INT_BIN:
        return _INT_BIN[op](int(lhs), int(rhs))
    if op in _FLOAT_BIN:
        return _FLOAT_BIN[op](float(lhs), float(rhs))
    raise ValueError("unknown binary operator %r" % op)


def binop_impl(op: str) -> Callable[..., Number]:
    """The concrete implementation behind one binary operator.

    For callers that resolve dispatch once and apply many times (the
    VM's predecoded instruction handlers).  Integer operators expect
    ``int`` arguments and float operators ``float`` arguments -- the
    caller performs the coercion :func:`eval_binop` would do.
    """
    fn = _INT_BIN.get(op) or _FLOAT_BIN.get(op)
    if fn is None:
        raise ValueError("unknown binary operator %r" % op)
    return fn


def eval_unop(op: str, value: Number) -> Number:
    """Apply a unary IR operator to a concrete value."""
    if op == "neg":
        return wrap_int(-int(value))
    if op == "fneg":
        return -float(value)
    if op == "not":
        return int(value == 0)
    if op == "bnot":
        return wrap_int(~int(value))
    if op == "itof":
        return float(int(value))
    if op == "ftoi":
        return wrap_int(int(float(value)))
    raise ValueError("unknown unary operator %r" % op)


#: Pure builtin implementations, shared by the interpreter and the VM's
#: runtime (and usable by set-up code evaluation in the splitter tests).
PURE_BUILTINS: Dict[str, Callable[..., Number]] = {
    "imax": lambda a, b: max(int(a), int(b)),
    "imin": lambda a, b: min(int(a), int(b)),
    "iabs": lambda a: wrap_int(abs(int(a))),
    "fsqrt": lambda a: math.sqrt(a),
    "fsin": lambda a: math.sin(a),
    "fcos": lambda a: math.cos(a),
    "fexp": lambda a: math.exp(a),
    "flog": lambda a: math.log(a),
    "fpow": lambda a, b: math.pow(a, b),
    "fabs": lambda a: abs(float(a)),
    "ffloor": lambda a: math.floor(a),
    "fmax": lambda a, b: max(float(a), float(b)),
    "fmin": lambda a, b: min(float(a), float(b)),
}
