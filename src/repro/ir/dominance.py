"""Dominator tree and dominance frontiers.

Implements the Cooper-Harvey-Kennedy iterative algorithm ("A Simple,
Fast Dominance Algorithm").  Used by SSA construction and by loop
analysis in the region splitter.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from .cfg import Function


class DominatorTree:
    """Immediate dominators, dominance frontiers and child lists."""

    def __init__(self, func: Function):
        self.func = func
        self.rpo: List[str] = func.rpo()
        self._rpo_index: Dict[str, int] = {
            name: i for i, name in enumerate(self.rpo)
        }
        self.preds: Dict[str, List[str]] = func.predecessors()
        #: block -> immediate dominator (entry maps to itself).
        self.idom: Dict[str, str] = {}
        #: block -> blocks it immediately dominates.
        self.children: Dict[str, List[str]] = {name: [] for name in self.rpo}
        #: block -> dominance frontier.
        self.frontier: Dict[str, Set[str]] = {name: set() for name in self.rpo}
        self._compute_idoms()
        self._compute_frontiers()

    def _compute_idoms(self) -> None:
        entry = self.func.entry
        assert entry is not None
        idom: Dict[str, Optional[str]] = {name: None for name in self.rpo}
        idom[entry] = entry
        changed = True
        while changed:
            changed = False
            for name in self.rpo:
                if name == entry:
                    continue
                new_idom: Optional[str] = None
                for pred in self.preds[name]:
                    if pred not in self._rpo_index or idom.get(pred) is None:
                        continue
                    if new_idom is None:
                        new_idom = pred
                    else:
                        new_idom = self._intersect(idom, pred, new_idom)
                if new_idom is not None and idom[name] != new_idom:
                    idom[name] = new_idom
                    changed = True
        for name, dom in idom.items():
            if dom is None:
                continue
            self.idom[name] = dom
            if name != entry:
                self.children[dom].append(name)

    def _intersect(self, idom: Dict[str, Optional[str]], a: str, b: str) -> str:
        index = self._rpo_index
        while a != b:
            while index[a] > index[b]:
                parent = idom[a]
                assert parent is not None
                a = parent
            while index[b] > index[a]:
                parent = idom[b]
                assert parent is not None
                b = parent
        return a

    def _compute_frontiers(self) -> None:
        for name in self.rpo:
            preds = [p for p in self.preds[name] if p in self.idom]
            if len(preds) < 2:
                continue
            for pred in preds:
                runner = pred
                while runner != self.idom[name]:
                    self.frontier[runner].add(name)
                    runner = self.idom[runner]

    def dominates(self, a: str, b: str) -> bool:
        """True if ``a`` dominates ``b`` (reflexively)."""
        entry = self.func.entry
        runner = b
        while True:
            if runner == a:
                return True
            if runner == entry:
                return a == entry
            runner = self.idom[runner]

    def dom_tree_preorder(self) -> List[str]:
        entry = self.func.entry
        assert entry is not None
        order: List[str] = []
        stack = [entry]
        while stack:
            name = stack.pop()
            order.append(name)
            stack.extend(reversed(self.children[name]))
        return order
