"""Control-flow graph: basic blocks, functions, modules, region metadata.

A :class:`Function` holds an ordered mapping of block name to
:class:`BasicBlock`.  Dynamic-region membership and unrolled-loop
annotations (placed by the MiniC front end) live in
:class:`DynamicRegionInfo` records attached to the function; the static
compiler's analyses and the region splitter consume them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set

from .instructions import Instr, Jump, Phi, Terminator
from .values import Temp


class BasicBlock:
    """A straight-line sequence of instructions ended by a terminator.

    Phi instructions, when present, must be a prefix of ``instrs``.
    """

    __slots__ = ("name", "instrs", "terminator")

    def __init__(self, name: str):
        self.name = name
        self.instrs: List[Instr] = []
        self.terminator: Optional[Terminator] = None

    def append(self, instr: Instr) -> None:
        if self.terminator is not None:
            raise ValueError("block %s already terminated" % self.name)
        if instr.is_terminator():
            self.terminator = instr  # type: ignore[assignment]
        else:
            self.instrs.append(instr)

    def phis(self) -> List[Phi]:
        result = []
        for instr in self.instrs:
            if not isinstance(instr, Phi):
                break
            result.append(instr)
        return result

    def non_phi_instrs(self) -> List[Instr]:
        return [i for i in self.instrs if not isinstance(i, Phi)]

    def successors(self) -> List[str]:
        if self.terminator is None:
            return []
        return self.terminator.successors()

    def all_instrs(self) -> List[Instr]:
        """Instructions including the terminator."""
        if self.terminator is None:
            return list(self.instrs)
        return self.instrs + [self.terminator]

    def __repr__(self) -> str:
        return "<BasicBlock %s: %d instrs>" % (self.name, len(self.instrs))


@dataclass
class UnrolledLoopInfo:
    """An ``unrolled`` loop inside a dynamic region.

    ``header`` is the loop-head merge block; ``entry_pred`` the block
    that enters the loop from outside and ``latch`` the back-edge
    source.  ``body`` is the set of blocks in the loop.
    """

    loop_id: int
    header: str
    entry_pred: str
    latch: str
    body: Set[str] = field(default_factory=set)


@dataclass
class DynamicRegionInfo:
    """Metadata for one annotated ``dynamicRegion``."""

    region_id: int
    #: Source names annotated as run-time constants at region entry.
    const_vars: List[str]
    #: Source names used to key the region's code cache (may be empty).
    key_vars: List[str]
    #: First block of the region body.
    entry: str
    #: Block reached when the region body falls through its end.
    exit: str
    #: All blocks belonging to the region body.
    blocks: Set[str] = field(default_factory=set)
    unrolled_loops: List[UnrolledLoopInfo] = field(default_factory=list)
    #: SSA values of const_vars/key_vars reaching the region entry,
    #: recorded during SSA renaming (None before SSA conversion).
    const_temps: Optional[list] = None
    key_temps: Optional[list] = None

    def loop_of_block(self, name: str) -> Optional[UnrolledLoopInfo]:
        """The innermost unrolled loop containing block ``name``."""
        best: Optional[UnrolledLoopInfo] = None
        for loop in self.unrolled_loops:
            if name in loop.body and (best is None or
                                      loop.body < best.body):
                best = loop
        return best


class Function:
    """A function lowered to a CFG of three-address code."""

    def __init__(self, name: str, params: List[Temp]):
        self.name = name
        self.params = params
        self.blocks: Dict[str, BasicBlock] = {}
        self.entry: Optional[str] = None
        #: Temp name -> "int" | "float".
        self.temp_types: Dict[str, str] = {}
        #: Stack-frame slots (local arrays/structs and address-taken
        #: locals): symbol -> word offset within the frame.
        self.frame_slots: Dict[str, int] = {}
        self.frame_size: int = 0
        self.regions: List[DynamicRegionInfo] = []
        self._temp_counter = 0
        self._block_counter = 0

    # -- construction -----------------------------------------------------

    def new_block(self, prefix: str = "B") -> BasicBlock:
        self._block_counter += 1
        name = "%s%d" % (prefix, self._block_counter)
        while name in self.blocks:
            self._block_counter += 1
            name = "%s%d" % (prefix, self._block_counter)
        block = BasicBlock(name)
        self.blocks[name] = block
        if self.entry is None:
            self.entry = name
        return block

    def add_block(self, block: BasicBlock) -> BasicBlock:
        if block.name in self.blocks:
            raise ValueError("duplicate block name: %s" % block.name)
        self.blocks[block.name] = block
        if self.entry is None:
            self.entry = block.name
        return block

    def new_temp(self, kind: str = "int", prefix: str = "t") -> Temp:
        self._temp_counter += 1
        name = "%s%d" % (prefix, self._temp_counter)
        while name in self.temp_types:
            self._temp_counter += 1
            name = "%s%d" % (prefix, self._temp_counter)
        self.temp_types[name] = kind
        return Temp(name)

    def type_of(self, temp: Temp) -> str:
        return self.temp_types.get(temp.name, "int")

    def set_type(self, temp: Temp, kind: str) -> None:
        self.temp_types[temp.name] = kind

    # -- traversal --------------------------------------------------------

    def predecessors(self) -> Dict[str, List[str]]:
        """Block name -> list of predecessor block names (no duplicates)."""
        preds: Dict[str, List[str]] = {name: [] for name in self.blocks}
        for name, block in self.blocks.items():
            for succ in block.successors():
                if name not in preds[succ]:
                    preds[succ].append(name)
        return preds

    def rpo(self) -> List[str]:
        """Block names in reverse postorder from the entry."""
        if self.entry is None:
            return []
        visited: Set[str] = set()
        order: List[str] = []

        stack: List[tuple] = [(self.entry, iter(self.blocks[self.entry].successors()))]
        visited.add(self.entry)
        while stack:
            name, succs = stack[-1]
            advanced = False
            for succ in succs:
                if succ not in visited:
                    visited.add(succ)
                    stack.append((succ, iter(self.blocks[succ].successors())))
                    advanced = True
                    break
            if not advanced:
                order.append(name)
                stack.pop()
        order.reverse()
        return order

    def reachable_blocks(self) -> Set[str]:
        return set(self.rpo())

    def iter_instrs(self) -> Iterator[Instr]:
        for block in self.blocks.values():
            for instr in block.all_instrs():
                yield instr

    # -- maintenance ------------------------------------------------------

    def remove_unreachable_blocks(self) -> List[str]:
        """Delete unreachable blocks; fix phi args.  Returns removed names."""
        reachable = self.reachable_blocks()
        removed = [name for name in self.blocks if name not in reachable]
        for name in removed:
            del self.blocks[name]
        if removed:
            gone = set(removed)
            for block in self.blocks.values():
                for phi in block.phis():
                    phi.args = {
                        p: v for p, v in phi.args.items() if p not in gone
                    }
            for region in self.regions:
                region.blocks -= gone
                for loop in region.unrolled_loops:
                    loop.body -= gone
        return removed

    def split_critical_edges(self) -> List[tuple]:
        """Split edges from multi-successor blocks to multi-pred blocks.

        Returns a list of ``(new block, pred, succ)`` records.  Phi
        argument labels and region/loop membership are updated; callers
        holding their own block-membership sets (e.g. region plans) use
        the records to update them.
        """
        preds = self.predecessors()
        records: List[tuple] = []
        for name in list(self.blocks):
            block = self.blocks[name]
            succs = block.successors()
            if len(succs) <= 1 or block.terminator is None:
                continue
            for succ in list(dict.fromkeys(succs)):
                if len(preds[succ]) <= 1:
                    continue
                middle = self.new_block("crit")
                middle.append(Jump(succ))
                block.terminator.replace_successor(succ, middle.name)
                for phi in self.blocks[succ].phis():
                    if name in phi.args:
                        phi.args[middle.name] = phi.args.pop(name)
                for region in self.regions:
                    if name in region.blocks and succ in region.blocks:
                        region.blocks.add(middle.name)
                        for loop in region.unrolled_loops:
                            if name in loop.body and succ in loop.body:
                                loop.body.add(middle.name)
                records.append((middle.name, name, succ))
        return records

    def verify(self) -> None:
        """Check structural invariants; raise ValueError on violation."""
        if self.entry is None or self.entry not in self.blocks:
            raise ValueError("function %s: missing entry block" % self.name)
        for name, block in self.blocks.items():
            if block.terminator is None:
                raise ValueError("block %s has no terminator" % name)
            for succ in block.successors():
                if succ not in self.blocks:
                    raise ValueError(
                        "block %s branches to unknown block %s" % (name, succ)
                    )
            seen_non_phi = False
            for instr in block.instrs:
                if isinstance(instr, Phi):
                    if seen_non_phi:
                        raise ValueError(
                            "block %s: phi after non-phi instruction" % name
                        )
                else:
                    seen_non_phi = True
        preds = self.predecessors()
        for name, block in self.blocks.items():
            for phi in block.phis():
                if set(phi.args) != set(preds[name]):
                    raise ValueError(
                        "block %s: phi %r args %s do not match preds %s"
                        % (name, phi, sorted(phi.args), sorted(preds[name]))
                    )

    def __repr__(self) -> str:
        return "<Function %s: %d blocks>" % (self.name, len(self.blocks))


@dataclass
class GlobalData:
    """A module-level data object, laid out as a sequence of words."""

    name: str
    values: List[object]  # ints and floats
    mutable: bool = True


class Module:
    """A compilation unit: functions plus global data."""

    def __init__(self, name: str = "module"):
        self.name = name
        self.functions: Dict[str, Function] = {}
        self.globals: Dict[str, GlobalData] = {}

    def add_function(self, func: Function) -> Function:
        if func.name in self.functions:
            raise ValueError("duplicate function: %s" % func.name)
        self.functions[func.name] = func
        return func

    def add_global(self, data: GlobalData) -> GlobalData:
        if data.name in self.globals:
            raise ValueError("duplicate global: %s" % data.name)
        self.globals[data.name] = data
        return data

    def verify(self) -> None:
        for func in self.functions.values():
            func.verify()

    def __repr__(self) -> str:
        return "<Module %s: %d functions>" % (self.name, len(self.functions))
